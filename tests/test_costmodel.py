"""The pluggable accounting seam (:mod:`repro.costmodel`).

Three claims, mirroring the seam's contract:

* the default ``krw`` model is *bit-identical* to the legacy inline
  accounting it replaced -- property-tested against verbatim replicas of
  the pre-seam simulator/migration code on dense and lazy backends,
  including zero-demand periods and empty migration diffs;
* the generalized :class:`~repro.core.costs.CostBreakdown` validates
  itself (non-negative components, total consistent with the sum);
* the two scenario models (``admission``, ``broadcast-write``) obey
  their invariants and run end-to-end through config, planner and CLI.
"""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Planner, PlanReport
from repro.cli import main
from repro.config import PlanConfig
from repro.core.costs import CostBreakdown, placement_cost
from repro.core.instance import DataManagementInstance
from repro.costmodel import (
    AdmissionCostModel,
    BroadcastWriteCostModel,
    CostModel,
    KRWCostModel,
    MigrationBill,
    available_cost_models,
    get_cost_model,
    register_cost_model,
)
from repro.engine import PlacementEngine
from repro.graphs import generators
from repro.graphs.backend import LazyMetric
from repro.graphs.metric import Metric
from repro.graphs.mst import mst_cost
from repro.simulate.events import RequestLog
from repro.simulate.replanner import EpochReplanner, migration_diff
from repro.simulate.simulator import NetworkSimulator
from repro.workloads.request_models import make_instance, uniform_storage_costs

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _graph_instance(seed: int, *, backend: str = "dense", num_objects: int = 4,
                    write_fraction: float = 0.2):
    """Small multi-object instance over a transit-stub network."""
    g = generators.sized_transit_stub_graph(30, seed=seed)
    metric = (Metric.from_graph(g) if backend == "dense"
              else LazyMetric.from_graph(g))
    inst = make_instance(
        metric, seed=seed + 1, num_objects=num_objects,
        storage_price=3.0, write_fraction=write_fraction,
    )
    return g, inst


def _legacy_request_bill(inst, placement, reads, writes, objects):
    """Verbatim replica of the pre-seam ``_run_vectorized`` accounting."""
    metric = inst.metric
    storage = 0.0
    cs = inst.storage_costs
    for obj in range(inst.num_objects):
        for v in placement.copies(obj):
            storage += float(cs[v])
    read_cost = 0.0
    write_cost = 0.0
    messages = 0
    node_ids = np.arange(inst.num_nodes)
    for obj in objects:
        obj = int(obj)
        r = reads[obj]
        w = writes[obj]
        copies = placement.copies(obj)
        nearest, dist = metric.nearest_in_set(copies)
        read_cost += float(r @ dist)
        write_cost += float(w @ dist)
        num_writes = int(w.sum())
        if num_writes and len(copies) > 1:
            write_cost += num_writes * mst_cost(metric, copies)
            messages += num_writes * (len(copies) - 1)
        remote = nearest != node_ids
        messages += int(r[remote].sum() + w[remote].sum())
    return storage, read_cost, write_cost, messages


def _legacy_migration_diff(metric, prev, new):
    """Verbatim replica of the pre-seam batched ``migration_diff``."""
    gained_by_prev = {}
    added = dropped = 0
    for old, nxt in zip(prev, new):
        if old == nxt:
            continue
        old_set = set(old)
        gained = [v for v in nxt if v not in old_set]
        dropped += len(old_set.difference(nxt))
        if gained:
            added += len(gained)
            gained_by_prev.setdefault(old, []).extend(gained)
    cost = 0.0
    for old, nodes in gained_by_prev.items():
        dist = metric.dist_to_set(old)
        cost += float(dist[np.asarray(nodes, dtype=int)].sum())
    return cost, added, dropped


# ----------------------------------------------------------------------
class TestCostBreakdownValidation:
    def test_total_derived_from_components(self):
        b = CostBreakdown(1.0, 2.0, 3.5)
        assert b.total == 6.5

    def test_consistent_explicit_total_accepted(self):
        b = CostBreakdown(1.0, 2.0, 3.0, total=6.0)
        assert b.total == 6.0

    @pytest.mark.parametrize("field", ["storage", "read", "update"])
    def test_negative_component_rejected(self, field):
        kwargs = {"storage": 1.0, "read": 1.0, "update": 1.0, field: -0.5}
        with pytest.raises(ValueError, match=field):
            CostBreakdown(**kwargs)

    @pytest.mark.parametrize("bad", [math.nan, math.inf])
    def test_non_finite_component_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            CostBreakdown(bad, 0.0, 0.0)

    def test_inconsistent_total_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            CostBreakdown(1.0, 2.0, 3.0, total=7.0)

    def test_float_noise_in_total_tolerated(self):
        parts = [0.1] * 10
        total = sum(parts)  # 0.9999999999999999, not 1.0
        CostBreakdown(sum(parts[:4]), sum(parts[4:7]), sum(parts[7:]),
                      total=total)

    def test_arithmetic_recomputes_total_and_drops_detail(self):
        a = CostBreakdown(1.0, 2.0, 3.0, detail={"messages": 5})
        b = a + CostBreakdown(1.0, 1.0, 1.0)
        assert b.total == 9.0 and b.detail is None
        s = a.scaled(2.0)
        assert s.total == 12.0 and s.detail is None


# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = available_cost_models()
        assert names[0] == "krw"
        assert {"krw", "admission", "broadcast-write"} <= set(names)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="krw"):
            get_cost_model("nope")

    def test_builtin_instances_satisfy_the_protocol(self):
        for name in available_cost_models():
            assert isinstance(get_cost_model(name), CostModel)

    def test_duplicate_name_rejected_and_override_replaces(self):
        from repro.costmodel import _COST_MODELS

        class Dummy(KRWCostModel):
            name = "test-dummy-model"
            routable = False

        try:
            register_cost_model(Dummy)
            with pytest.raises(ValueError, match="already registered"):
                register_cost_model(Dummy)
            replacement = Dummy()
            register_cost_model(replacement, override=True)
            assert get_cost_model("test-dummy-model") is replacement
        finally:
            _COST_MODELS.pop("test-dummy-model", None)

    def test_nameless_model_rejected(self):
        class NoName(KRWCostModel):
            name = ""

        with pytest.raises(ValueError, match="name"):
            register_cost_model(NoName)

    def test_model_without_bill_methods_rejected(self):
        class Hollow:
            name = "test-hollow"

        with pytest.raises(TypeError, match="bill_placement"):
            register_cost_model(Hollow)


# ----------------------------------------------------------------------
class TestKRWBitParity:
    """Satellite: the krw model equals the legacy inline accounting
    bit-for-bit on dense and lazy backends."""

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_bill_placement_is_placement_cost_verbatim(self, seed):
        for backend in ("dense", "lazy"):
            _, inst = _graph_instance(seed, backend=backend)
            placement = PlacementEngine(inst).place()
            krw = get_cost_model("krw")
            for policy in ("mst", "steiner_mst"):
                legacy = placement_cost(inst, placement, policy=policy)
                seam = krw.bill_placement(inst, placement, policy=policy)
                assert (seam.storage, seam.read, seam.update) \
                    == (legacy.storage, legacy.read, legacy.update)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_bill_requests_matches_legacy_vectorized_replay(self, seed):
        krw = get_cost_model("krw")
        for backend in ("dense", "lazy"):
            g, inst = _graph_instance(seed, backend=backend)
            placement = PlacementEngine(inst).place()
            log = RequestLog.from_frequencies(
                inst.read_freq, inst.write_freq, seed=seed
            )
            reads, writes = log.counts(inst.num_objects, inst.num_nodes)
            objects = np.unique(log.obj)
            storage, read, write, messages = _legacy_request_bill(
                inst, placement, reads, writes, objects
            )
            bill = krw.bill_requests(
                inst, placement, reads, writes, objects=objects
            )
            assert (bill.storage, bill.read, bill.update) \
                == (storage, read, write)
            assert bill.detail["messages"] == messages
            # and the simulator routes through the same seam
            report = NetworkSimulator(g, inst).run(placement, log)
            assert (report.storage_cost, report.read_traffic_cost,
                    report.write_traffic_cost, report.messages) \
                == (storage, read, write, messages)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_zero_demand_period_bills_storage_only(self, seed):
        for backend in ("dense", "lazy"):
            g, inst = _graph_instance(seed, backend=backend)
            placement = PlacementEngine(inst).place()
            zero = np.zeros_like(inst.read_freq)
            bill = get_cost_model("krw").bill_requests(
                inst, placement, zero, zero
            )
            storage, *_ = _legacy_request_bill(
                inst, placement, zero, zero, []
            )
            assert (bill.storage, bill.read, bill.update) \
                == (storage, 0.0, 0.0)
            assert bill.detail["messages"] == 0
            empty_log = RequestLog.from_frequencies(zero, zero)
            report = NetworkSimulator(g, inst).run(placement, empty_log)
            assert (report.storage_cost, report.transmission_cost,
                    report.messages) == (storage, 0.0, 0)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_bill_migration_matches_legacy_diff_bit_for_bit(self, seed):
        for backend in ("dense", "lazy"):
            _, inst = _graph_instance(seed, backend=backend)
            placement = PlacementEngine(inst).place()
            start = int(np.argmin(inst.storage_costs))
            prev = [(start,) for _ in range(inst.num_objects)]
            legacy = _legacy_migration_diff(
                inst.metric, prev, placement.copy_sets
            )
            bill = get_cost_model("krw").bill_migration(
                inst.metric, prev, placement.copy_sets
            )
            assert isinstance(bill, MigrationBill)
            assert tuple(bill) == legacy
            # the module-level wrapper delegates to the same kernel and
            # still unpacks like the legacy 3-tuple
            cost, added, dropped = migration_diff(
                inst.metric, prev, placement.copy_sets
            )
            assert (cost, added, dropped) == legacy

    def test_empty_migration_diff_is_exactly_zero(self):
        _, inst = _graph_instance(3)
        placement = PlacementEngine(inst).place()
        sets = list(placement.copy_sets)
        bill = get_cost_model("krw").bill_migration(
            inst.metric, sets, placement.copy_sets
        )
        assert tuple(bill) == (0.0, 0, 0)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_bill_migration_matches_per_object_reference(self, seed):
        g, inst = _graph_instance(seed)
        placement = PlacementEngine(inst).place()
        replanner = EpochReplanner(
            g, inst.metric, inst.storage_costs, PlanConfig()
        )
        start = int(np.argmin(inst.storage_costs))
        prev = [(start,) for _ in range(inst.num_objects)]
        ref_cost, ref_added, ref_dropped = 0.0, 0, 0
        for old, new in zip(prev, placement.copy_sets):
            c, a, d = replanner._migration(old, new)
            ref_cost += c
            ref_added += a
            ref_dropped += d
        bill = get_cost_model("krw").bill_migration(
            inst.metric, prev, placement.copy_sets
        )
        assert (bill.added, bill.dropped) == (ref_added, ref_dropped)
        assert bill.cost == pytest.approx(ref_cost, rel=1e-9)


# ----------------------------------------------------------------------
class TestAdmission:
    def test_uncapped_equals_krw_request_bill(self):
        _, inst = _graph_instance(11)
        placement = PlacementEngine(inst).place()
        fr, fw = inst.read_freq, inst.write_freq
        krw_bill = get_cost_model("krw").bill_requests(inst, placement, fr, fw)
        bill = AdmissionCostModel(slots=5).bill_requests(inst, placement, fr, fw)
        assert bill.total == pytest.approx(krw_bill.total, rel=1e-12)
        assert bill.detail["rejected"] == 0.0
        assert bill.detail["accepted"] == pytest.approx(float(fr.sum()))

    def test_capacity_pressure_rejects_and_never_bills_more(self):
        _, inst = _graph_instance(11)
        placement = PlacementEngine(inst).place()
        fr, fw = inst.read_freq, inst.write_freq
        slots = 4
        demand = max(
            float(fr[o].sum()) / slots / len(placement.copies(o))
            for o in range(inst.num_objects)
        )
        capped = AdmissionCostModel(
            slots=slots, capacity_per_copy=0.3 * demand
        ).bill_requests(inst, placement, fr, fw)
        uncapped = AdmissionCostModel(slots=slots).bill_requests(
            inst, placement, fr, fw
        )
        assert capped.detail["rejected"] > 0
        assert capped.detail["accepted"] > 0
        assert capped.total <= uncapped.total
        # conservation: every read is either accepted or rejected
        assert capped.detail["accepted"] + capped.detail["rejected"] \
            == pytest.approx(float(fr.sum()))

    def test_per_slot_decomposition_sums_to_the_bill(self):
        _, inst = _graph_instance(7)
        placement = PlacementEngine(inst).place()
        bill = AdmissionCostModel(slots=3, capacity_per_copy=2.0).bill_requests(
            inst, placement, inst.read_freq, inst.write_freq
        )
        per_slot = bill.detail["per_slot"]
        assert len(per_slot) == 3
        assert sum(s["read"] for s in per_slot) == pytest.approx(bill.read)
        assert sum(s["storage"] for s in per_slot) == pytest.approx(bill.storage)
        assert sum(s["update"] for s in per_slot) == pytest.approx(bill.update)
        assert sum(s["accepted"] for s in per_slot) \
            == pytest.approx(bill.detail["accepted"])

    def test_detail_is_json_serializable(self):
        _, inst = _graph_instance(7)
        placement = PlacementEngine(inst).place()
        bill = AdmissionCostModel(slots=2).bill_requests(
            inst, placement, inst.read_freq, inst.write_freq
        )
        json.dumps(bill.detail)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            AdmissionCostModel(slots=0)
        with pytest.raises(ValueError, match="capacity_per_copy"):
            AdmissionCostModel(capacity_per_copy=-1.0)

    def test_non_mst_policy_rejected(self):
        _, inst = _graph_instance(5)
        placement = PlacementEngine(inst).place()
        with pytest.raises(ValueError, match="mst"):
            get_cost_model("admission").bill_placement(
                inst, placement, policy="steiner"
            )


# ----------------------------------------------------------------------
class TestBroadcastWrite:
    def test_never_bills_more_than_krw(self):
        _, inst = _graph_instance(13, write_fraction=0.4)
        placement = PlacementEngine(inst).place()
        fr, fw = inst.read_freq, inst.write_freq
        krw_bill = get_cost_model("krw").bill_requests(inst, placement, fr, fw)
        bc = get_cost_model("broadcast-write").bill_requests(
            inst, placement, fr, fw
        )
        assert bc.total <= krw_bill.total
        assert bc.storage == krw_bill.storage
        assert bc.read == krw_bill.read

    def test_read_only_bill_equals_krw_bit_for_bit(self):
        _, inst = _graph_instance(13, write_fraction=0.0)
        placement = PlacementEngine(inst).place()
        legacy = placement_cost(inst, placement, policy="mst")
        bc = get_cost_model("broadcast-write").bill_placement(inst, placement)
        assert (bc.storage, bc.read, bc.update) \
            == (legacy.storage, legacy.read, legacy.update)

    def test_propagations_count_multi_copy_written_objects(self):
        _, inst = _graph_instance(13, write_fraction=0.4)
        placement = PlacementEngine(inst).place()
        bc = get_cost_model("broadcast-write").bill_requests(
            inst, placement, inst.read_freq, inst.write_freq
        )
        expected = sum(
            1 for o in range(inst.num_objects)
            if inst.write_freq[o].sum() > 0 and len(placement.copies(o)) > 1
        )
        assert bc.detail["propagations"] == expected


# ----------------------------------------------------------------------
class TestConfigAndPlanner:
    def test_unknown_cost_model_rejected(self):
        with pytest.raises(ValueError, match="cost_model"):
            PlanConfig(cost_model="nope")

    def test_non_mst_policy_with_scenario_model_rejected(self):
        with pytest.raises(ValueError, match="cost_model"):
            PlanConfig(cost_model="admission", cost_policy="steiner")

    def test_round_trip_preserves_cost_model(self):
        config = PlanConfig(cost_model="broadcast-write")
        assert PlanConfig.from_dict(config.to_dict()) == config

    def test_planner_bills_through_the_configured_model(self):
        _, inst = _graph_instance(17)
        base = Planner(PlanConfig(cost_model="krw")).plan(inst, "krw")
        assert base.extras["cost_model"] == "krw"
        legacy = placement_cost(inst, base.placement, policy="mst")
        assert (base.cost.storage, base.cost.read, base.cost.update) \
            == (legacy.storage, legacy.read, legacy.update)
        for model in ("admission", "broadcast-write"):
            report = Planner(PlanConfig(cost_model=model)).plan(inst, "krw")
            # the model changes the bill, never the placement search
            assert report.placement.copy_sets == base.placement.copy_sets
            assert report.extras["cost_model"] == model
        adm = Planner(PlanConfig(cost_model="admission")).plan(inst, "krw")
        assert adm.cost.detail["accepted"] > 0
        bc = Planner(PlanConfig(cost_model="broadcast-write")).plan(inst, "krw")
        assert bc.cost.total <= base.cost.total

    def test_report_with_detail_round_trips(self, tmp_path):
        _, inst = _graph_instance(17)
        report = Planner(PlanConfig(cost_model="admission")).plan(inst, "krw")
        assert report.cost.detail is not None
        for suffix in (".json", ".npz"):
            path = tmp_path / f"report{suffix}"
            report.save(path)
            loaded = PlanReport.load(path)
            assert loaded.cost == report.cost
            assert loaded == report

    def test_krw_report_serialization_has_no_detail_key(self, tmp_path):
        _, inst = _graph_instance(17)
        report = Planner(PlanConfig()).plan(inst, "krw")
        assert "detail" not in report.to_dict()["cost"]

    def test_engine_bill_routes_through_the_seam(self):
        _, inst = _graph_instance(17)
        engine = PlacementEngine(inst)
        placement = engine.place()
        legacy = placement_cost(inst, placement, policy="mst")
        default = engine.bill(placement)
        assert (default.storage, default.read, default.update) \
            == (legacy.storage, legacy.read, legacy.update)
        named = engine.bill(placement, cost_model="broadcast-write")
        assert named.total <= default.total
        instance_model = engine.bill(
            placement, cost_model=AdmissionCostModel(slots=2)
        )
        assert instance_model.total == pytest.approx(default.total, rel=1e-12)

    def test_replanner_accepts_a_cost_model_config(self):
        g, inst = _graph_instance(19)
        replanner = EpochReplanner(
            g, inst.metric, inst.storage_costs,
            PlanConfig(cost_model="broadcast-write"),
        )
        assert replanner._cost_model.name == "broadcast-write"


# ----------------------------------------------------------------------
class TestSimulatorGuards:
    def test_non_routable_model_rejects_kmb(self):
        g, inst = _graph_instance(23)
        with pytest.raises(ValueError, match="routable"):
            NetworkSimulator(g, inst, update_policy="kmb",
                             cost_model="admission")

    def test_non_routable_model_rejects_edge_load_tracking(self):
        g, inst = _graph_instance(23)
        sim = NetworkSimulator(g, inst, cost_model="broadcast-write")
        placement = PlacementEngine(inst).place()
        log = RequestLog.from_frequencies(inst.read_freq, inst.write_freq)
        with pytest.raises(ValueError, match="track_edge_load"):
            sim.run(placement, log, track_edge_load=True)

    def test_simulator_bills_through_alternate_models(self):
        g, inst = _graph_instance(23, write_fraction=0.4)
        placement = PlacementEngine(inst).place()
        log = RequestLog.from_frequencies(inst.read_freq, inst.write_freq)
        default = NetworkSimulator(g, inst).run(placement, log)
        bc = NetworkSimulator(
            g, inst, cost_model="broadcast-write"
        ).run(placement, log)
        assert bc.total_cost <= default.total_cost


# ----------------------------------------------------------------------
class TestCLI:
    def test_list_prints_cost_models(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "cost models:" in text
        for name in available_cost_models():
            assert name in text

    def test_plan_accepts_cost_model_flag(self, tmp_path):
        path = tmp_path / "report.json"
        out = io.StringIO()
        assert main(
            ["plan", "--scenario", "tree", "--num-objects", "3",
             "--cost-model", "admission", "--save", str(path)],
            out=out,
        ) == 0
        report = PlanReport.load(path)
        assert report.extras["cost_model"] == "admission"
        assert report.cost.detail["accepted"] > 0

    def test_plan_cost_model_krw_matches_unspecified(self, tmp_path):
        base, krw = tmp_path / "base.json", tmp_path / "krw.json"
        out = io.StringIO()
        assert main(
            ["plan", "--scenario", "tree", "--num-objects", "4",
             "--save", str(base)], out=out,
        ) == 0
        assert main(
            ["plan", "--scenario", "tree", "--num-objects", "4",
             "--cost-model", "krw", "--save", str(krw)], out=out,
        ) == 0
        a, b = PlanReport.load(base), PlanReport.load(krw)
        assert a.placement.copy_sets == b.placement.copy_sets
        assert (a.cost.storage, a.cost.read, a.cost.update) \
            == (b.cost.storage, b.cost.read, b.cost.update)

    def test_place_cost_flag_honours_the_model(self):
        out = io.StringIO()
        assert main(
            ["place", "--scenario", "tree", "--num-objects", "3", "--cost",
             "--cost-model", "broadcast-write"],
            out=out,
        ) == 0
        assert "bill (broadcast-write" in out.getvalue()
