"""Tests for repro.facility: the four UFL solvers against LP and MILP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facility import (
    FL_SOLVERS,
    FacilityLocationProblem,
    exact_ufl,
    greedy_ufl,
    local_search_ufl,
    lp_rounding_ufl,
    related_facility_problem,
    solve_ufl_lp,
)
from tests.conftest import make_random_instance


def random_problem(seed: int, nf: int = 8, nc: int = 8) -> FacilityLocationProblem:
    rng = np.random.default_rng(seed)
    pts_f = rng.random((nf, 2))
    pts_c = rng.random((nc, 2))
    dist = np.sqrt(((pts_f[:, None, :] - pts_c[None, :, :]) ** 2).sum(axis=2))
    return FacilityLocationProblem(
        open_costs=rng.uniform(0.1, 1.5, size=nf),
        demands=rng.integers(0, 6, size=nc).astype(float),
        dist=dist,
    )


class TestProblem:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            FacilityLocationProblem(np.ones(2), np.ones(3), np.zeros((3, 3)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FacilityLocationProblem(-np.ones(2), np.ones(2), np.zeros((2, 2)))

    def test_cost_decomposition(self):
        p = random_problem(1)
        s = [0, 3]
        assert p.cost(s) == pytest.approx(p.facility_cost(s) + p.connection_cost(s))

    def test_empty_open_set_rejected(self):
        p = random_problem(2)
        with pytest.raises(ValueError):
            p.cost([])

    def test_assignments_are_nearest(self):
        p = random_problem(3)
        open_set = [1, 4, 6]
        assign = p.assignments(open_set)
        for j in range(p.num_clients):
            best = min(open_set, key=lambda i: (p.dist[i, j], i))
            assert assign[j] == best

    def test_cheapest_facility(self):
        p = FacilityLocationProblem(
            np.array([3.0, 1.0, 2.0]), np.zeros(2), np.zeros((3, 2))
        )
        assert p.cheapest_facility() == 1

    def test_related_problem_recasts_writes(self):
        inst = make_random_instance(5, n=6)
        fl = related_facility_problem(inst, 0)
        assert np.allclose(fl.demands, inst.demand(0))
        assert np.allclose(fl.open_costs, inst.storage_costs)
        assert fl.dist.shape == (6, 6)


class TestLP:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_lp_lower_bounds_exact(self, seed):
        p = random_problem(seed, nf=6, nc=6)
        lp_value, y, x = solve_ufl_lp(p)
        opt = p.cost(exact_ufl(p))
        assert lp_value <= opt + 1e-6

    def test_lp_solution_is_feasible(self):
        p = random_problem(7)
        _, y, x = solve_ufl_lp(p)
        clients = np.flatnonzero(p.demands > 0)
        assert np.allclose(x[:, clients].sum(axis=0), 1.0, atol=1e-6)
        assert np.all(x <= y[:, None] + 1e-6)

    def test_zero_demand_lp_is_zero(self):
        p = FacilityLocationProblem(np.ones(3), np.zeros(3), np.ones((3, 3)))
        value, _, _ = solve_ufl_lp(p)
        assert value == 0.0


class TestExact:
    def test_known_small_instance(self):
        # two facilities; opening both is optimal when connections dominate
        dist = np.array([[0.0, 10.0], [10.0, 0.0]])
        p = FacilityLocationProblem(np.array([1.0, 1.0]), np.array([2.0, 2.0]), dist)
        assert exact_ufl(p) == [0, 1]

    def test_expensive_facility_closed(self):
        dist = np.array([[0.0, 1.0], [1.0, 0.0]])
        p = FacilityLocationProblem(np.array([0.5, 100.0]), np.array([1.0, 1.0]), dist)
        assert exact_ufl(p) == [0]

    def test_zero_demand_opens_cheapest(self):
        p = FacilityLocationProblem(np.array([2.0, 1.0]), np.zeros(2), np.ones((2, 2)))
        assert exact_ufl(p) == [1]

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_beats_every_heuristic(self, seed):
        p = random_problem(seed, nf=6, nc=6)
        opt = p.cost(exact_ufl(p))
        for name, solver in FL_SOLVERS.items():
            assert opt <= p.cost(solver(p)) + 1e-9


class TestLocalSearch:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_within_korupolu_factor(self, seed):
        """KPR prove 5 + eps for add/drop/swap local optima; we assert the
        proven bound (empirically it is far smaller)."""
        p = random_problem(seed, nf=7, nc=7)
        cost = p.cost(local_search_ufl(p))
        opt = p.cost(exact_ufl(p))
        assert cost <= 5.0 * opt + 1e-6

    def test_initial_set_respected(self):
        p = random_problem(9)
        out = local_search_ufl(p, initial=[0, 1, 2, 3, 4, 5, 6])
        assert len(out) >= 1

    def test_empty_initial_rejected(self):
        p = random_problem(9)
        with pytest.raises(ValueError):
            local_search_ufl(p, initial=[])

    def test_local_optimum_has_no_improving_add(self):
        p = random_problem(11)
        out = local_search_ufl(p)
        cost = p.cost(out)
        for i in range(p.num_facilities):
            if i in out:
                continue
            assert p.cost(sorted(set(out) | {i})) >= cost - 1e-6

    def test_local_optimum_has_no_improving_drop(self):
        p = random_problem(12)
        out = local_search_ufl(p)
        cost = p.cost(out)
        if len(out) >= 2:
            for i in out:
                rest = [j for j in out if j != i]
                assert p.cost(rest) >= cost - 1e-6


class TestGreedy:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_serves_everyone_and_reasonable(self, seed):
        p = random_problem(seed, nf=7, nc=7)
        out = greedy_ufl(p)
        assert len(out) >= 1
        opt = p.cost(exact_ufl(p))
        # O(log n) bound; for n=7 assert a loose 4x envelope
        assert p.cost(out) <= 4.0 * opt + 1e-6

    def test_zero_demand(self):
        p = FacilityLocationProblem(np.array([2.0, 1.0]), np.zeros(2), np.ones((2, 2)))
        assert greedy_ufl(p) == [1]


class TestLPRounding:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=12, deadline=None)
    def test_within_proven_factor(self, seed):
        """STA filtering with alpha = 1/4 proves factor 4."""
        p = random_problem(seed, nf=6, nc=6)
        out = lp_rounding_ufl(p)
        opt = p.cost(exact_ufl(p))
        assert p.cost(out) <= 4.0 * opt + 1e-6

    def test_alpha_validated(self):
        p = random_problem(1)
        with pytest.raises(ValueError):
            lp_rounding_ufl(p, alpha=0.0)
        with pytest.raises(ValueError):
            lp_rounding_ufl(p, alpha=1.0)

    def test_zero_demand(self):
        p = FacilityLocationProblem(np.array([2.0, 1.0]), np.zeros(2), np.ones((2, 2)))
        assert lp_rounding_ufl(p) == [1]


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(FL_SOLVERS))
    def test_each_solver_deterministic(self, name):
        p = random_problem(77)
        solver = FL_SOLVERS[name]
        assert solver(p) == solver(p)
