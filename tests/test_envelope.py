"""Tests for repro.core.envelope: hull algebra vs brute-force minima."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import Line, LowerEnvelope

finite = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
lines_strategy = st.lists(
    st.tuples(finite, finite), min_size=1, max_size=12
).map(lambda ps: [Line(c, m, idx) for idx, (c, m) in enumerate(ps)])
xs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False), min_size=1, max_size=8
)


def brute_min(lines, x):
    return min(l.at(x) for l in lines)


class TestFromLinesAndQuery:
    def test_single_line(self):
        env = LowerEnvelope.from_lines([Line(2.0, 3.0, "a")])
        value, line = env.query(4.0)
        assert value == pytest.approx(14.0)
        assert line.payload == "a"

    def test_dominated_line_dropped(self):
        env = LowerEnvelope.from_lines([Line(1.0, 1.0), Line(2.0, 2.0)])
        assert len(env) == 1
        assert env.lines[0].intercept == 1.0

    def test_equal_slope_keeps_cheapest(self):
        env = LowerEnvelope.from_lines([Line(5.0, 1.0), Line(3.0, 1.0)])
        assert len(env) == 1
        assert env.lines[0].intercept == 3.0

    def test_crossover(self):
        a, b = Line(0.0, 2.0, "steep"), Line(4.0, 0.0, "flat")
        env = LowerEnvelope.from_lines([a, b])
        assert env.query(1.0)[1].payload == "steep"
        assert env.query(3.0)[1].payload == "flat"
        # breakpoint exactly at x=2
        assert env.query(2.0)[0] == pytest.approx(4.0)

    def test_middle_line_pruned(self):
        # middle line never touches the envelope
        lines = [Line(0.0, 3.0), Line(10.0, 1.5), Line(6.0, 0.0)]
        env = LowerEnvelope.from_lines(lines)
        assert all(l.slope != 1.5 for l in env.lines)

    def test_infinite_intercepts_filtered(self):
        env = LowerEnvelope.from_lines([Line(math.inf, 0.0), Line(1.0, 1.0)])
        assert len(env) == 1

    def test_empty(self):
        env = LowerEnvelope.from_lines([])
        assert env.is_empty
        assert env.query(1.0) == (math.inf, None)

    def test_negative_query_rejected(self):
        env = LowerEnvelope.constant(1.0)
        with pytest.raises(ValueError):
            env.query(-1.0)

    def test_starts_begin_at_zero_and_increase(self):
        env = LowerEnvelope.from_lines(
            [Line(0.0, 5.0), Line(2.0, 2.0), Line(7.0, 0.5), Line(12.0, 0.0)]
        )
        assert env.starts[0] == 0.0
        assert all(a <= b for a, b in zip(env.starts, env.starts[1:]))

    @given(lines_strategy, xs_strategy)
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, lines, xs):
        env = LowerEnvelope.from_lines(lines)
        for x in xs:
            expected = brute_min(lines, x)
            got = env.value(x)
            assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(lines_strategy)
    @settings(max_examples=60, deadline=None)
    def test_hull_invariants(self, lines):
        env = LowerEnvelope.from_lines(lines)
        slopes = [l.slope for l in env.lines]
        intercepts = [l.intercept for l in env.lines]
        assert slopes == sorted(slopes, reverse=True)
        assert all(a < b for a, b in zip(slopes[1:], slopes[:-1]))  # strict
        assert intercepts == sorted(intercepts)


class TestMinAtInfinity:
    def test_picks_smallest_slope(self):
        env = LowerEnvelope.from_lines([Line(0.0, 2.0), Line(10.0, 0.0, "flat")])
        value, line = env.min_at_infinity()
        assert value == 10.0 and line.payload == "flat"

    def test_empty_gives_inf(self):
        assert LowerEnvelope.empty().min_at_infinity() == (math.inf, None)


class TestShift:
    @given(lines_strategy, st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_shift_semantics(self, lines, delta):
        env = LowerEnvelope.from_lines(lines)
        shifted = env.shifted(delta)
        for x in (0.0, 1.0, 7.5):
            assert shifted.value(x) == pytest.approx(env.value(x + delta), rel=1e-9)

    def test_extra_intercept(self):
        env = LowerEnvelope.constant(2.0)
        assert env.shifted(0.0, extra_intercept=3.0).value(0.0) == pytest.approx(5.0)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            LowerEnvelope.constant(1.0).shifted(-1.0)


class TestAddedSlope:
    @given(lines_strategy, st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_added_slope_semantics(self, lines, extra):
        env = LowerEnvelope.from_lines(lines)
        bumped = env.with_added_slope(extra)
        for x in (0.0, 2.0, 9.0):
            assert bumped.value(x) == pytest.approx(env.value(x) + extra * x, rel=1e-9)


class TestMinimumAndSum:
    @given(lines_strategy, lines_strategy)
    @settings(max_examples=80, deadline=None)
    def test_minimum_semantics(self, la, lb):
        ea, eb = LowerEnvelope.from_lines(la), LowerEnvelope.from_lines(lb)
        merged = ea.minimum(eb)
        for x in (0.0, 0.5, 3.0, 17.0):
            assert merged.value(x) == pytest.approx(
                min(brute_min(la, x), brute_min(lb, x)), rel=1e-9, abs=1e-9
            )

    @given(lines_strategy, lines_strategy)
    @settings(max_examples=80, deadline=None)
    def test_sum_semantics(self, la, lb):
        ea, eb = LowerEnvelope.from_lines(la), LowerEnvelope.from_lines(lb)
        total = ea.sum(eb)
        for x in (0.0, 1.0, 4.0, 25.0):
            assert total.value(x) == pytest.approx(
                brute_min(la, x) + brute_min(lb, x), rel=1e-9, abs=1e-9
            )

    def test_sum_payload_combination(self):
        ea = LowerEnvelope.from_lines([Line(0.0, 1.0, "a")])
        eb = LowerEnvelope.from_lines([Line(1.0, 0.0, "b")])
        total = ea.sum(eb)
        assert total.query(0.0)[1].payload == ("a", "b")

    def test_sum_with_empty_is_empty(self):
        e = LowerEnvelope.constant(1.0)
        assert e.sum(LowerEnvelope.empty()).is_empty

    def test_minimum_with_empty_is_identity(self):
        e = LowerEnvelope.constant(1.0, "p")
        merged = e.minimum(LowerEnvelope.empty())
        assert merged.value(3.0) == 1.0
