"""Tests for repro.api: the Planner façade and PlanReport artifacts."""

import numpy as np
import pytest

from repro.api import PlanReport, Planner, compare_table
from repro.config import PlanConfig
from repro.core.approx import approximate_placement
from repro.graphs.backend import LazyMetric
from repro.graphs.metric import Metric
from repro.workloads import tree_network, www_content_provider


class TestPlanner:
    def test_plan_carries_provenance_config(self):
        cfg = PlanConfig(fl_solver="greedy", chunk_size=4)
        report = Planner(cfg).plan(tree_network(num_objects=3))
        assert report.config == cfg
        # re-running from the recorded provenance reproduces the artifact
        again = Planner(report.config).plan(tree_network(num_objects=3))
        assert again.placement.copy_sets == report.placement.copy_sets

    def test_plan_accepts_bare_instance(self):
        inst = tree_network(num_objects=2).instance
        report = Planner().plan(inst)
        assert report.placement.copy_sets == approximate_placement(inst).copy_sets

    def test_plan_rejects_non_instances(self):
        with pytest.raises(TypeError, match="Scenario"):
            Planner().plan({"not": "an instance"})

    def test_compare_preserves_request_order(self):
        names = ["full-replication", "krw", "single-median"]
        reports = Planner().compare(tree_network(num_objects=2), names)
        assert [r.strategy for r in reports] == names

    def test_compare_table_lists_strategies(self):
        reports = Planner().compare(
            tree_network(num_objects=2), ["krw", "single-median"]
        )
        table = compare_table(reports)
        assert "krw" in table and "single-median" in table
        assert "total" in table


class TestPlannerReplan:
    def _workload(self, n):
        from repro.workloads import drifting_zipf_catalog

        return drifting_zipf_catalog(
            n, 5, epochs=3, seed=8, drift=0.4, requests_per_epoch=250,
            redraw="changed",
        )

    def test_replan_honors_incremental_knobs(self):
        import networkx as nx

        from repro.graphs.generators import transit_stub_graph

        g = transit_stub_graph(2, 2, 5, seed=6)
        assert nx.is_connected(g)
        n = g.number_of_nodes()
        wl = self._workload(n)
        cs = np.full(n, 4.0)
        full = Planner(PlanConfig()).replan(g, wl, cs, log_seed=1)
        incr = Planner(PlanConfig(replan_mode="incremental")).replan(
            g, wl, cs, log_seed=1
        )
        assert incr.total_cost == pytest.approx(full.total_cost, rel=1e-9)
        assert incr.epochs[1].replaced_objects < full.epochs[1].replaced_objects
        assert [e.placement.copy_sets for e in incr.epochs] == [
            e.placement.copy_sets for e in full.epochs
        ]

    def test_replan_builds_backend_from_config(self):
        from repro.graphs.generators import transit_stub_graph
        from repro.simulate.replanner import ReplanResult

        g = transit_stub_graph(2, 2, 4, seed=7)
        n = g.number_of_nodes()
        wl = self._workload(n)
        cs = np.full(n, 4.0)
        res = Planner(PlanConfig(backend="lazy")).replan(g, wl, cs)
        assert isinstance(res, ReplanResult)
        assert len(res.epochs) == wl.num_epochs

    def test_replan_rejects_mismatched_workload(self):
        from repro.graphs.generators import transit_stub_graph

        g = transit_stub_graph(2, 2, 4, seed=7)
        n = g.number_of_nodes()
        wl = self._workload(n - 3)  # built for a smaller network
        cs = np.full(n, 4.0)
        with pytest.raises(ValueError, match=f"workload built for {n - 3}"):
            Planner().replan(g, wl, cs)

    def test_replan_rejects_mismatched_metric(self):
        import networkx as nx

        from repro.graphs.generators import transit_stub_graph

        g = transit_stub_graph(2, 2, 4, seed=7)
        n = g.number_of_nodes()
        wl = self._workload(n)
        cs = np.full(n, 4.0)
        other = nx.path_graph(n + 2)
        nx.set_edge_attributes(other, 1.0, "weight")
        wrong = Metric.from_graph(other)
        with pytest.raises(ValueError, match="distance backend"):
            Planner().replan(g, wl, cs, metric=wrong)

    def test_unknown_replan_mode_names_itself(self):
        import networkx as nx

        from repro.simulate.replanner import EpochReplanner

        with pytest.raises(ValueError, match="unknown replan_mode"):
            PlanConfig(replan_mode="bogus")
        # the legacy engine-kwargs spelling funnels through the same check
        g = nx.path_graph(4)
        nx.set_edge_attributes(g, 1.0, "weight")
        metric = Metric.from_graph(g)
        with pytest.raises(ValueError, match="unknown replan_mode"):
            EpochReplanner(
                g, metric, np.full(4, 2.0), replan_mode="bogus"
            )


class TestBackendResolution:
    def test_scenario_rebuilt_on_requested_backend(self):
        sc = www_content_provider(num_objects=2)
        dense = Planner(PlanConfig(backend="dense")).resolve_instance(sc)
        lazy = Planner(PlanConfig(backend="lazy")).resolve_instance(sc)
        assert isinstance(dense.metric, Metric)
        assert isinstance(lazy.metric, LazyMetric)
        # identical problems -> identical placements across backends
        a = Planner(PlanConfig(backend="dense")).plan(sc)
        b = Planner(PlanConfig(backend="lazy")).plan(sc)
        assert a.placement.copy_sets == b.placement.copy_sets

    def test_auto_keeps_instance_metric(self):
        sc = www_content_provider(num_objects=2)
        assert Planner().resolve_instance(sc) is sc.instance

    def test_matching_backend_is_a_no_op(self):
        inst = tree_network(num_objects=2).instance
        assert Planner(PlanConfig(backend="dense")).resolve_instance(inst) is inst

    def test_bare_instance_can_densify_but_not_lazify(self):
        sc = www_content_provider(num_objects=2)
        lazy_inst = Planner(PlanConfig(backend="lazy")).resolve_instance(sc)
        densified = Planner(PlanConfig(backend="dense")).resolve_instance(lazy_inst)
        assert isinstance(densified.metric, Metric)
        dense_inst = sc.instance
        with pytest.raises(ValueError, match="lazy"):
            Planner(PlanConfig(backend="lazy")).resolve_instance(dense_inst)


class TestPlanReportArtifacts:
    def _report(self) -> PlanReport:
        return Planner(PlanConfig(seed=5)).plan(tree_network(num_objects=3))

    def test_dict_round_trip(self):
        report = self._report()
        assert PlanReport.from_dict(report.to_dict()) == report

    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_file_round_trip(self, tmp_path, suffix):
        report = self._report()
        path = tmp_path / f"report{suffix}"
        report.save(path)
        assert PlanReport.load(path) == report

    def test_unknown_suffix_rejected_up_front(self, tmp_path):
        """No silent np.savez '.npz' appending: a suffix save cannot
        round-trip through load must be refused at save time."""
        report = self._report()
        with pytest.raises(ValueError, match="suffix"):
            report.save(tmp_path / "report.pkl")
        with pytest.raises(ValueError, match="suffix"):
            PlanReport.load(tmp_path / "report")

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, meta=np.str_('{"format": "something-else"}'))
        with pytest.raises(ValueError, match="PlanReport"):
            PlanReport.load(path)

    def test_render_mentions_strategy_and_cost(self):
        report = self._report()
        text = report.render()
        assert "[krw]" in text and "cost" in text
