"""Tests for repro.core.instance: validation and derived quantities."""

import networkx as nx
import numpy as np
import pytest

from repro.core.instance import DataManagementInstance
from repro.graphs.generators import random_tree
from repro.graphs.metric import Metric


@pytest.fixture
def basic(line_metric):
    return DataManagementInstance(
        line_metric,
        storage_costs=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        read_freq=np.array([[1.0, 0.0, 2.0, 0.0, 1.0], [0.0, 3.0, 0.0, 0.0, 0.0]]),
        write_freq=np.array([[0.0, 1.0, 0.0, 0.0, 1.0], [0.0, 0.0, 0.0, 0.0, 0.0]]),
    )


class TestValidation:
    def test_shape_mismatch_storage(self, line_metric):
        with pytest.raises(ValueError, match="storage_costs"):
            DataManagementInstance(
                line_metric, np.ones(4), np.ones((1, 5)), np.zeros((1, 5))
            )

    def test_shape_mismatch_freq(self, line_metric):
        with pytest.raises(ValueError, match="equal shapes"):
            DataManagementInstance(
                line_metric, np.ones(5), np.ones((1, 5)), np.zeros((2, 5))
            )

    def test_wrong_column_count(self, line_metric):
        with pytest.raises(ValueError, match="columns"):
            DataManagementInstance(
                line_metric, np.ones(5), np.ones((1, 4)), np.zeros((1, 4))
            )

    def test_negative_frequency_rejected(self, line_metric):
        fr = np.ones((1, 5))
        fr[0, 2] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            DataManagementInstance(line_metric, np.ones(5), fr, np.zeros((1, 5)))

    def test_negative_storage_rejected(self, line_metric):
        with pytest.raises(ValueError, match="non-negative"):
            DataManagementInstance(
                line_metric, -np.ones(5), np.ones((1, 5)), np.zeros((1, 5))
            )

    def test_object_names_default(self, basic):
        assert basic.object_names == ("x0", "x1")

    def test_object_names_wrong_length(self, line_metric):
        with pytest.raises(ValueError, match="object_names"):
            DataManagementInstance(
                line_metric,
                np.ones(5),
                np.ones((2, 5)),
                np.zeros((2, 5)),
                object_names=("only-one",),
            )

    def test_metric_factory_tuple_rejected_by_name(self):
        """metric_from_graph returns (metric, index, nodes); passing the
        whole tuple must raise a TypeError naming that convention, not
        die later with a bare AttributeError on .n."""
        from repro.graphs.backend import lazy_metric_from_graph
        from repro.graphs.metric import metric_from_graph

        g = random_tree(5, seed=3)
        for factory in (metric_from_graph, lazy_metric_from_graph):
            bundle = factory(g)
            with pytest.raises(TypeError, match=r"\(metric, index, nodes\)"):
                DataManagementInstance(
                    bundle, np.ones(5), np.ones((1, 5)), np.zeros((1, 5))
                )
        # the unpacked metric element works as documented
        metric, _, _ = metric_from_graph(g)
        inst = DataManagementInstance(
            metric, np.ones(5), np.ones((1, 5)), np.zeros((1, 5))
        )
        assert inst.num_nodes == 5

    def test_one_dim_frequencies_promoted(self, line_metric):
        inst = DataManagementInstance(line_metric, np.ones(5), np.ones(5), np.zeros(5))
        assert inst.num_objects == 1


class TestDerived:
    def test_counts(self, basic):
        assert basic.num_nodes == 5
        assert basic.num_objects == 2

    def test_demand_adds_reads_and_writes(self, basic):
        assert np.allclose(basic.demand(0), [1, 1, 2, 0, 2])

    def test_totals(self, basic):
        assert basic.total_reads(0) == 4.0
        assert basic.total_writes(0) == 2.0
        assert basic.total_requests(0) == 6.0

    def test_read_only_per_object(self, basic):
        assert not basic.is_read_only(0)
        assert basic.is_read_only(1)
        assert not basic.is_read_only()

    def test_validate_copies(self, basic):
        assert basic.validate_copies([3, 1, 1]) == [1, 3]

    def test_validate_copies_empty(self, basic):
        with pytest.raises(ValueError, match="at least one copy"):
            basic.validate_copies([])

    def test_validate_copies_out_of_range(self, basic):
        with pytest.raises(ValueError, match="out of range"):
            basic.validate_copies([5])
        with pytest.raises(ValueError, match="out of range"):
            basic.validate_copies([-1])


class TestConstructors:
    def test_from_graph(self):
        g = random_tree(6, seed=2)
        inst = DataManagementInstance.from_graph(
            g, np.ones(6), np.ones((1, 6)), np.zeros((1, 6))
        )
        assert inst.num_nodes == 6

    def test_from_graph_rejects_odd_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b", weight=1.0)
        with pytest.raises(ValueError, match="0..n-1"):
            DataManagementInstance.from_graph(
                g, np.ones(2), np.ones((1, 2)), np.zeros((1, 2))
            )

    def test_single_object(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric, np.ones(5), np.arange(5.0), np.zeros(5)
        )
        assert inst.num_objects == 1
        assert inst.total_reads(0) == 10.0
