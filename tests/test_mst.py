"""Tests for repro.graphs.mst: subset MSTs in metric closures."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.metric import Metric
from repro.graphs.mst import (
    mst_cost,
    mst_edges,
    mst_parent_array,
    tree_distances_from_root,
)


class TestMstCost:
    def test_single_node_is_free(self, line_metric):
        assert mst_cost(line_metric, [3]) == 0.0

    def test_two_nodes(self, line_metric):
        assert mst_cost(line_metric, [0, 3]) == pytest.approx(3.0)

    def test_line_subset(self, line_metric):
        # 0-2-4 chains with cost 2 + 2
        assert mst_cost(line_metric, [0, 2, 4]) == pytest.approx(4.0)

    def test_triangle(self, triangle_metric):
        # edges 3,4,5: MST takes 3 + 4
        assert mst_cost(triangle_metric, [0, 1, 2]) == pytest.approx(7.0)

    def test_empty_subset_rejected(self, line_metric):
        with pytest.raises(ValueError, match="non-empty"):
            mst_cost(line_metric, [])

    def test_duplicates_rejected(self, line_metric):
        with pytest.raises(ValueError, match="duplicates"):
            mst_cost(line_metric, [1, 1])

    def test_order_invariant(self, line_metric):
        assert mst_cost(line_metric, [4, 0, 2]) == mst_cost(line_metric, [0, 2, 4])

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx_on_random_metrics(self, seed):
        g = erdos_renyi_graph(8, 0.5, seed=seed)
        m = Metric.from_graph(g)
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, 8))
        nodes = sorted(rng.choice(8, size=k, replace=False).tolist())
        complete = nx.Graph()
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                complete.add_edge(u, v, weight=m.d(u, v))
        expected = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_tree(complete).edges(data=True)
        )
        assert mst_cost(m, nodes) == pytest.approx(expected)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_monotone_under_node_removal_is_not_assumed(self, seed):
        """MSTs are not monotone in general, but cost is always >= 0 and
        <= sum over a star from the first node (sanity envelope)."""
        g = erdos_renyi_graph(7, 0.5, seed=seed)
        m = Metric.from_graph(g)
        nodes = [0, 2, 4, 6]
        cost = mst_cost(m, nodes)
        star = sum(m.d(nodes[0], v) for v in nodes[1:])
        assert 0.0 <= cost <= star + 1e-9


class TestMstEdges:
    def test_edge_count(self, line_metric):
        edges = mst_edges(line_metric, [0, 1, 3])
        assert len(edges) == 2

    def test_edges_cost_matches_mst_cost(self, line_metric):
        nodes = [0, 1, 3, 4]
        edges = mst_edges(line_metric, nodes)
        assert sum(w for _, _, w in edges) == pytest.approx(mst_cost(line_metric, nodes))

    def test_edges_form_spanning_tree(self, triangle_metric):
        nodes = [0, 1, 2]
        edges = mst_edges(triangle_metric, nodes)
        g = nx.Graph()
        g.add_nodes_from(nodes)
        g.add_edges_from((u, v) for u, v, _ in edges)
        assert nx.is_connected(g)
        assert g.number_of_edges() == len(nodes) - 1

    def test_single_node_no_edges(self, line_metric):
        assert mst_edges(line_metric, [2]) == []

    def test_deterministic(self, line_metric):
        a = mst_edges(line_metric, [0, 2, 4])
        b = mst_edges(line_metric, [0, 2, 4])
        assert a == b


class TestParentArray:
    def test_root_has_none_parent(self, line_metric):
        parents = mst_parent_array(line_metric, [1, 2, 4])
        assert parents[1] is None  # default root = min index

    def test_explicit_root(self, line_metric):
        parents = mst_parent_array(line_metric, [1, 2, 4], root=4)
        assert parents[4] is None

    def test_root_must_be_member(self, line_metric):
        with pytest.raises(ValueError, match="root"):
            mst_parent_array(line_metric, [1, 2], root=0)

    def test_every_node_reaches_root(self, line_metric):
        nodes = [0, 1, 3, 4]
        parents = mst_parent_array(line_metric, nodes)
        for v in nodes:
            seen = set()
            while parents[v] is not None:
                assert v not in seen
                seen.add(v)
                v = parents[v]
            assert v == 0


class TestTreeDistances:
    def test_line_tree_distances(self, line_metric):
        dist = tree_distances_from_root(line_metric, [0, 2, 4])
        # MST on the line is the chain 0-2-4
        assert dist[0] == 0.0
        assert dist[2] == pytest.approx(2.0)
        assert dist[4] == pytest.approx(4.0)

    def test_tree_distance_at_least_metric_distance(self, triangle_metric):
        dist = tree_distances_from_root(triangle_metric, [0, 1, 2])
        for v, d in dist.items():
            assert d >= triangle_metric.d(0, v) - 1e-12

    def test_all_nodes_present(self, line_metric):
        nodes = [0, 1, 2, 3, 4]
        dist = tree_distances_from_root(line_metric, nodes)
        assert set(dist) == set(nodes)
