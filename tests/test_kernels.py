"""Tests for repro.kernels: dispatch, mode management, bit-parity.

The registry's contract is that every implementation of a kernel is
**bit-identical** to the numpy reference -- dispatch is a pure
wall-clock choice with zero numerical surface.  The property tests here
generate sorted radii state, sweep inputs and row blocks (including the
empty-demand and single-node degenerations) and assert exact array
equality between the reference and whatever ``auto`` resolves to; on a
numba-less host that is a self-consistency check, with numba installed
(the CI accelerator leg) it pins the compiled twins to the reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    KERNEL_MODES,
    KERNEL_NAMES,
    active_impl,
    dispatch,
    get_kernel_mode,
    kernel_mode,
    kernel_provenance,
    numba_available,
    set_kernel_mode,
)

seeds = st.integers(min_value=0, max_value=500)


def _sorted_state(seed, *, b=None, size=None, zero_rows=False):
    """Random presorted (SD, SW) radii state plus derived cumsums."""
    rng = np.random.default_rng(seed)
    b = int(rng.integers(1, 7)) if b is None else b
    size = int(rng.integers(1, 30)) if size is None else size
    SD = np.sort(rng.uniform(0.0, 9.0, (b, size)), axis=1)
    SD[:, 0] = 0.0  # a node is at distance 0 from itself
    SW = rng.uniform(0.0, 4.0, (b, size))
    if zero_rows:
        SW[:] = 0.0
    CW, CWD = dispatch("radii_cums", "numpy")(SD.copy(), SW.copy())
    return SD, SW, CW, CWD


def _both(name, *args, copy_args=()):
    """Run the reference and the auto-dispatch impl on equal inputs."""
    def call(mode):
        fresh = [a.copy() if i in copy_args else a for i, a in enumerate(args)]
        return dispatch(name, mode)(*fresh), fresh
    return call("numpy"), call("auto")


def _assert_equal(ref, act):
    (ref_ret, ref_args), (act_ret, act_args) = ref, act
    ref_out = ref_ret if isinstance(ref_ret, tuple) else (ref_ret,)
    act_out = act_ret if isinstance(act_ret, tuple) else (act_ret,)
    for x, y in zip(ref_out, act_out):
        if x is not None:
            np.testing.assert_array_equal(x, y)
    for x, y in zip(ref_args, act_args):  # in-place mutations too
        np.testing.assert_array_equal(x, y)


class TestModeManagement:
    def test_default_mode_is_auto(self):
        assert get_kernel_mode() in KERNEL_MODES

    def test_set_and_restore(self):
        previous = set_kernel_mode("numpy")
        try:
            assert get_kernel_mode() == "numpy"
        finally:
            set_kernel_mode(previous)

    def test_context_manager_restores_on_error(self):
        before = get_kernel_mode()
        with pytest.raises(RuntimeError):
            with kernel_mode("numpy"):
                assert get_kernel_mode() == "numpy"
                raise RuntimeError("boom")
        assert get_kernel_mode() == before

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="kernel mode"):
            set_kernel_mode("fortran")
        with pytest.raises(KeyError, match="unknown kernel"):
            dispatch("warp_drive")

    def test_numba_request_degrades_not_raises(self):
        """An explicit 'numba' without numba must still dispatch."""
        fn = dispatch("dist_reduce", "numba")
        out = fn(np.array([[1.0, 2.0], [0.5, 3.0]]))
        np.testing.assert_array_equal(out, [0.5, 2.0])

    def test_provenance_reports_every_kernel(self):
        info = kernel_provenance("auto")
        assert info["mode"] == "auto"
        assert set(info["active"]) == set(KERNEL_NAMES)
        assert all(v in ("numpy", "numba") for v in info["active"].values())
        assert info["numba_available"] == numba_available()
        numpy_info = kernel_provenance("numpy")
        assert set(numpy_info["active"].values()) == {"numpy"}
        if not numba_available():
            assert "note" in kernel_provenance("numba")
            assert active_impl("radii_cums", "numba") == "numpy"
        else:
            assert "note" not in kernel_provenance("numba")
            assert active_impl("radii_cums", "numba") == "numba"


class TestKernelParity:
    """auto-dispatch == numpy reference, bit for bit, on every kernel."""

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_radii_cums(self, seed):
        SD, SW, _, _ = _sorted_state(seed)
        # whether SW is consumed in place is impl-private (callers discard
        # it), so only the returned (CW, CWD) pair carries the contract
        (ref_ret, _), (act_ret, _) = _both("radii_cums", SD, SW, copy_args=(1,))
        for x, y in zip(ref_ret, act_ret):
            np.testing.assert_array_equal(x, y)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_radii_prefix(self, seed):
        SD, SW, CW, CWD = _sorted_state(seed)
        total = float(SW.sum(axis=1).max())
        rng = np.random.default_rng(seed + 1)
        z = rng.uniform(-1.0, total + 2.0, SD.shape[0])
        _assert_equal(*_both("radii_prefix", SD, CW, CWD, z, total))

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_radii_storage(self, seed):
        SD, SW, CW, CWD = _sorted_state(seed)
        total = float(SW[0].sum())
        rng = np.random.default_rng(seed + 2)
        costs = rng.uniform(0.1, 5.0, SD.shape[0])
        _assert_equal(*_both("radii_storage", SD, CW, CWD, costs, total))

    def test_radii_zero_demand_and_single_node(self):
        for kwargs in (dict(zero_rows=True), dict(b=1, size=1)):
            SD, SW, CW, CWD = _sorted_state(3, **kwargs)
            total = float(SW[0].sum())
            costs = np.ones(SD.shape[0])
            _assert_equal(*_both("radii_storage", SD, CW, CWD, costs, total))
            z = np.full(SD.shape[0], total)
            _assert_equal(*_both("radii_prefix", SD, CW, CWD, z, total))

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_phase2_sweep(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 25))
        pts = rng.uniform(0.0, 10.0, n)
        dist = np.abs(pts[:, None] - pts[None, :])
        dts = dist[0].copy()
        rs = rng.uniform(0.0, 1.5, n)
        _assert_equal(*_both("phase2_sweep", dts, rs, dist, copy_args=(0,)))

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_phase3_sweep(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 20))
        rows = rng.uniform(0.0, 5.0, (k, k))
        np.fill_diagonal(rows, 0.0)
        live = np.arange(k, dtype=np.int64)
        u_bound = rng.uniform(0.0, 3.0, k)
        alive = np.ones(k, dtype=bool)
        _assert_equal(
            *_both("phase3_sweep", rows, live, u_bound, alive, copy_args=(3,))
        )

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_row_block_reductions(self, seed):
        rng = np.random.default_rng(seed)
        k, n = int(rng.integers(1, 8)), int(rng.integers(1, 30))
        sub = rng.uniform(0.0, 7.0, (k, n))
        if seed % 3 == 0:  # exercise tie-breaking: duplicated rows
            sub[k // 2] = sub[0]
        idx = rng.permutation(np.arange(100, 100 + k)).astype(np.int64)
        _assert_equal(*_both("nearest_reduce", sub, idx))
        _assert_equal(*_both("dist_reduce", sub))

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
    def test_reductions_across_dtypes(self, dtype):
        sub = np.array([[3, 1, 4], [1, 5, 9], [2, 6, 5]], dtype=dtype)
        idx = np.array([7, 8, 9], dtype=np.int64)
        _assert_equal(*_both("nearest_reduce", sub, idx))
        _assert_equal(*_both("dist_reduce", sub))


class TestEngineKernelKnob:
    def test_explicit_modes_place_identically(self, line_metric):
        from repro.core.instance import DataManagementInstance
        from repro.engine import PlacementEngine

        inst = DataManagementInstance(
            line_metric, np.ones(5) * 2.0, np.ones((3, 5)), np.ones((3, 5)) * 0.2
        )
        results = {
            mode: PlacementEngine(inst, kernels=mode).place().copy_sets
            for mode in KERNEL_MODES
        }
        assert results["numpy"] == results["auto"] == results["numba"]

    def test_bad_kernels_knob_rejected(self, line_metric):
        from repro.core.instance import DataManagementInstance
        from repro.engine import PlacementEngine

        inst = DataManagementInstance(
            line_metric, np.ones(5), np.ones((1, 5)), np.zeros((1, 5))
        )
        with pytest.raises(ValueError, match="kernels"):
            PlacementEngine(inst, kernels="fortran")
