"""Tests for repro.core.costs: hand-computed cases and policy relations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostBreakdown, object_cost, placement_cost
from repro.core.instance import DataManagementInstance
from repro.core.placement import Placement
from tests.conftest import make_random_instance


@pytest.fixture
def small(line_metric):
    """Line 0-1-2-3-4, unit edges.  fr = [2,0,0,0,1], fw = [0,0,1,0,0],
    cs = [1,1,1,1,1]."""
    return DataManagementInstance.single_object(
        line_metric,
        np.ones(5),
        np.array([2.0, 0.0, 0.0, 0.0, 1.0]),
        np.array([0.0, 0.0, 1.0, 0.0, 0.0]),
    )


class TestHandComputedMstPolicy:
    def test_single_copy_costs(self, small):
        # copy at node 0: storage 1; reads: 2*0 + 1*4 = 4; write at 2 pays
        # d=2 (attach) and MST over {0} = 0
        cost = object_cost(small, 0, [0], policy="mst")
        assert cost.storage == pytest.approx(1.0)
        assert cost.read == pytest.approx(4.0 + 2.0)  # attach booked as read
        assert cost.update == pytest.approx(0.0)
        assert cost.total == pytest.approx(7.0)

    def test_two_copies_update_cost(self, small):
        # copies at 0 and 4: storage 2; reads 0; write at 2: attach 2,
        # update = W * mst({0,4}) = 1 * 4
        cost = object_cost(small, 0, [0, 4], policy="mst")
        assert cost.storage == pytest.approx(2.0)
        assert cost.read == pytest.approx(2.0)
        assert cost.update == pytest.approx(4.0)
        assert cost.total == pytest.approx(8.0)

    def test_full_replication(self, small):
        cost = object_cost(small, 0, range(5), policy="mst")
        assert cost.storage == pytest.approx(5.0)
        assert cost.read == pytest.approx(0.0)
        assert cost.update == pytest.approx(4.0)  # W=1 times line MST=4


class TestHandComputedSteinerPolicy:
    def test_single_copy_matches_mst_policy(self, small):
        a = object_cost(small, 0, [0], policy="mst")
        b = object_cost(small, 0, [0], policy="steiner")
        assert a.total == pytest.approx(b.total)

    def test_two_copies_steiner(self, small):
        # write at 2 pays steiner({0,2,4}) = 4 (the whole segment), with no
        # double-counted attach path
        cost = object_cost(small, 0, [0, 4], policy="steiner")
        assert cost.read == pytest.approx(0.0)
        assert cost.update == pytest.approx(4.0)
        assert cost.total == pytest.approx(6.0)

    def test_writer_holding_copy_pays_copy_tree_only(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric,
            np.zeros(5),
            np.zeros(5),
            np.array([1.0, 0.0, 0.0, 0.0, 0.0]),
        )
        cost = object_cost(inst, 0, [0, 2], policy="steiner")
        assert cost.update == pytest.approx(2.0)

    def test_steiner_mst_upper_bounds_steiner(self, small):
        exact = object_cost(small, 0, [0, 2, 4], policy="steiner")
        approx = object_cost(small, 0, [0, 2, 4], policy="steiner_mst")
        assert exact.update <= approx.update + 1e-9
        assert approx.update <= 2 * exact.update + 1e-9


class TestBreakdown:
    def test_total_is_sum(self):
        c = CostBreakdown(1.0, 2.0, 3.0)
        assert c.total == 6.0

    def test_addition(self):
        c = CostBreakdown(1.0, 2.0, 3.0) + CostBreakdown(0.5, 0.5, 0.5)
        assert c.storage == 1.5 and c.read == 2.5 and c.update == 3.5

    def test_unknown_policy_rejected(self, small):
        with pytest.raises(ValueError, match="unknown update policy"):
            object_cost(small, 0, [0], policy="bogus")

    def test_empty_copies_rejected(self, small):
        with pytest.raises(ValueError):
            object_cost(small, 0, [], policy="mst")


class TestPlacementCost:
    def test_sums_over_objects(self, line_metric):
        inst = DataManagementInstance(
            line_metric,
            np.ones(5),
            np.array([[1.0, 0, 0, 0, 0], [0, 0, 0, 0, 1.0]]),
            np.zeros((2, 5)),
        )
        p = Placement.from_sets([{0}, {4}])
        total = placement_cost(inst, p, policy="mst")
        a = object_cost(inst, 0, [0], policy="mst")
        b = object_cost(inst, 1, [4], policy="mst")
        assert total.total == pytest.approx(a.total + b.total)

    def test_placement_must_match_instance(self, line_metric):
        inst = DataManagementInstance(
            line_metric, np.ones(5), np.ones((2, 5)), np.zeros((2, 5))
        )
        with pytest.raises(ValueError):
            placement_cost(inst, Placement.from_sets([{0}]))


class TestPolicyRelations:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_steiner_update_never_exceeds_mst_policy_write_cost(self, seed):
        """The restricted (MST) policy upper-bounds the exact policy: per
        write, steiner({h} ∪ S) <= d(h, S) + mst(S)."""
        inst = make_random_instance(seed, n=7)
        rng = np.random.default_rng(seed + 1)
        k = int(rng.integers(1, 5))
        copies = sorted(rng.choice(7, size=k, replace=False).tolist())
        exact = object_cost(inst, 0, copies, policy="steiner")
        mst = object_cost(inst, 0, copies, policy="mst")
        # compare write-side costs: mst books the attach under read
        attach = mst.read - exact.read  # = sum_w fw * d(h, S)
        assert exact.update <= attach + mst.update + 1e-6

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_single_copy_policies_agree(self, seed):
        inst = make_random_instance(seed, n=6)
        v = seed % 6
        a = object_cost(inst, 0, [v], policy="mst").total
        b = object_cost(inst, 0, [v], policy="steiner").total
        c = object_cost(inst, 0, [v], policy="steiner_mst").total
        assert a == pytest.approx(b)
        assert a == pytest.approx(c)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_read_cost_decreases_with_more_copies(self, seed):
        inst = make_random_instance(seed, n=8)
        small = object_cost(inst, 0, [0], policy="steiner")
        large = object_cost(inst, 0, [0, 3, 6], policy="steiner")
        assert large.read <= small.read + 1e-9

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_read_only_objects_have_zero_update(self, seed):
        inst = make_random_instance(seed, n=6, max_write=0)
        cost = object_cost(inst, 0, [1, 4], policy="mst")
        assert cost.update == 0.0
