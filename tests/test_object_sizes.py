"""Tests for the non-uniform object size model (Section 1.1 remark).

The paper states "all our results hold also in a non-uniform model":
per-byte fees mean an object of size ``s`` scales every cost term by
``s``, so placements are invariant and bills scale linearly.  These tests
pin down exactly that semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approximate_placement
from repro.core.costs import object_cost, placement_cost
from repro.core.instance import DataManagementInstance
from tests.conftest import make_random_instance


def _with_sizes(inst: DataManagementInstance, sizes) -> DataManagementInstance:
    return DataManagementInstance(
        inst.metric,
        inst.storage_costs,
        inst.read_freq,
        inst.write_freq,
        object_sizes=np.asarray(sizes, dtype=float),
    )


class TestValidation:
    def test_default_sizes_are_one(self):
        inst = make_random_instance(1, n=6)
        assert np.allclose(inst.object_sizes, 1.0)
        assert inst.object_size(0) == 1.0

    def test_wrong_shape_rejected(self):
        inst = make_random_instance(2, n=6)
        with pytest.raises(ValueError, match="object_sizes"):
            _with_sizes(inst, [1.0, 2.0])

    def test_nonpositive_rejected(self):
        inst = make_random_instance(3, n=6)
        with pytest.raises(ValueError, match="positive"):
            _with_sizes(inst, [0.0])


class TestScaling:
    @given(
        st.integers(min_value=0, max_value=200),
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_cost_scales_linearly(self, seed, size):
        inst = make_random_instance(seed, n=7)
        sized = _with_sizes(inst, [size])
        for policy in ("mst", "steiner"):
            base = object_cost(inst, 0, [0, 3], policy=policy)
            scaled = object_cost(sized, 0, [0, 3], policy=policy)
            assert scaled.total == pytest.approx(size * base.total, rel=1e-9)
            assert scaled.storage == pytest.approx(size * base.storage, rel=1e-9)
            assert scaled.read == pytest.approx(size * base.read, rel=1e-9)
            assert scaled.update == pytest.approx(size * base.update, rel=1e-9)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_placement_invariant_under_size(self, seed):
        """The optimal and the approximate placement don't depend on size."""
        inst = make_random_instance(seed, n=8)
        sized = _with_sizes(inst, [7.5])
        assert approximate_placement(inst).copies(0) == approximate_placement(
            sized
        ).copies(0)

    def test_mixed_catalogue_bills_add(self, line_metric):
        inst = DataManagementInstance(
            line_metric,
            np.ones(5),
            np.array([[2.0, 0, 0, 0, 0], [0, 0, 0, 0, 2.0]]),
            np.zeros((2, 5)),
            object_sizes=np.array([1.0, 10.0]),
        )
        placement = approximate_placement(inst)
        total = placement_cost(inst, placement, policy="mst").total
        a = object_cost(inst, 0, placement.copies(0), policy="mst").total
        b = object_cost(inst, 1, placement.copies(1), policy="mst").total
        assert total == pytest.approx(a + b)
        # the big object's bill dominates
        assert b > a
