"""Tests for repro.graphs.steiner: exact DP vs the MST 2-approximation."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import erdos_renyi_graph, grid_graph, star_graph
from repro.graphs.metric import Metric
from repro.graphs.steiner import (
    MAX_EXACT_TERMINALS,
    steiner_exact_cost,
    steiner_kmb,
    steiner_mst_cost,
)


class TestExactSteiner:
    def test_single_terminal_free(self, line_metric):
        assert steiner_exact_cost(line_metric, [2]) == 0.0

    def test_two_terminals_is_distance(self, line_metric):
        assert steiner_exact_cost(line_metric, [0, 3]) == pytest.approx(3.0)

    def test_duplicates_collapse(self, line_metric):
        assert steiner_exact_cost(line_metric, [0, 0, 3]) == pytest.approx(3.0)

    def test_line_terminals_span_interval(self, line_metric):
        # optimal tree for {0, 2, 4} on a line is the segment [0, 4]
        assert steiner_exact_cost(line_metric, [0, 2, 4]) == pytest.approx(4.0)

    def test_star_uses_centre_as_steiner_point(self):
        # star with 4 leaves at distance 1: spanning 3 leaves costs 3 via the
        # centre, while the leaf-MST costs 4 -- the classic Steiner gain
        g = star_graph(5, seed=0)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        m = Metric.from_graph(g)
        leaves = [1, 2, 3]
        assert steiner_exact_cost(m, leaves) == pytest.approx(3.0)
        assert steiner_mst_cost(m, leaves) == pytest.approx(4.0)

    def test_terminal_cap_enforced(self):
        m = Metric(np.zeros((MAX_EXACT_TERMINALS + 2, MAX_EXACT_TERMINALS + 2)))
        with pytest.raises(ValueError, match="MAX_EXACT_TERMINALS"):
            steiner_exact_cost(m, list(range(MAX_EXACT_TERMINALS + 1)))

    def test_no_terminals_rejected(self, line_metric):
        with pytest.raises(ValueError):
            steiner_exact_cost(line_metric, [])

    def test_all_nodes_equals_mst(self, triangle_metric):
        # with every node a terminal there is no room for Steiner points
        assert steiner_exact_cost(triangle_metric, [0, 1, 2]) == pytest.approx(
            steiner_mst_cost(triangle_metric, [0, 1, 2])
        )


class TestApproximationGuarantee:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=30, deadline=None)
    def test_exact_le_mst_le_twice_exact(self, seed):
        """Claim 2's inequality chain on random instances."""
        g = erdos_renyi_graph(8, 0.45, seed=seed)
        m = Metric.from_graph(g)
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, 7))
        terminals = sorted(rng.choice(8, size=k, replace=False).tolist())
        exact = steiner_exact_cost(m, terminals)
        approx = steiner_mst_cost(m, terminals)
        assert exact <= approx + 1e-9
        assert approx <= 2.0 * exact + 1e-9

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_exact_monotone_in_terminals(self, seed):
        g = erdos_renyi_graph(8, 0.45, seed=seed)
        m = Metric.from_graph(g)
        base = [0, 3, 6]
        bigger = [0, 2, 3, 6]
        assert steiner_exact_cost(m, base) <= steiner_exact_cost(m, bigger) + 1e-9


class TestKMB:
    def test_tree_spans_terminals(self):
        g = grid_graph(3, 3, seed=5)
        terminals = [0, 4, 8]
        edges, cost = steiner_kmb(g, terminals)
        t = nx.Graph(edges)
        for term in terminals:
            assert term in t
        assert nx.is_connected(t)

    def test_cost_between_exact_and_mst_bound(self):
        g = grid_graph(3, 3, seed=5)
        m = Metric.from_graph(g)
        terminals = [0, 4, 8]
        edges, cost = steiner_kmb(g, terminals)
        exact = steiner_exact_cost(m, terminals)
        assert exact - 1e-9 <= cost <= 2 * exact + 1e-9

    def test_single_terminal(self):
        g = grid_graph(2, 2, seed=1)
        edges, cost = steiner_kmb(g, [0])
        assert edges == [] and cost == 0.0

    def test_two_terminals_is_shortest_path(self):
        g = grid_graph(3, 3, seed=2)
        _, cost = steiner_kmb(g, [0, 8])
        assert cost == pytest.approx(nx.shortest_path_length(g, 0, 8, weight="weight"))

    def test_no_nonterminal_leaves(self):
        g = grid_graph(4, 4, seed=9)
        terminals = [0, 15, 3]
        edges, _ = steiner_kmb(g, terminals)
        t = nx.Graph(edges)
        for v in t.nodes:
            if t.degree(v) == 1:
                assert v in terminals
