"""Tests for the CLI (python -m repro)."""

import io

import pytest

from repro.cli import EXPERIMENTS, SCENARIOS, main


class TestList:
    def test_list_outputs_registries(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "E1" in text and "E12" in text
        assert "www" in text and "vsm" in text

    def test_list_outputs_strategies_and_dynamic_scenarios(self):
        from repro.registry import available_strategies

        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for name in available_strategies():
            assert name in text
        assert "drift" in text and "flash" in text

    def test_list_prints_krw_sharded_knob_summary(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "krw-sharded" in text
        assert "num_shards (--shards)" in text
        assert "portals_per_shard (--portals)" in text
        assert "num_shards=1 equals krw" in text

    def test_no_command_prints_help(self):
        out = io.StringIO()
        assert main([], out=out) == 1
        assert "usage" in out.getvalue().lower()


class TestExperimentCommand:
    def test_registry_covers_all_runners(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 21)} | {"E10B"}

    def test_unknown_experiment(self, capsys):
        out = io.StringIO()
        assert main(["experiment", "E99"], out=out) == 2

    def test_case_insensitive_name(self, monkeypatch):
        # stub the runner so the test stays fast
        from repro.analysis import ExperimentResult

        called = {}

        def fake():
            called["yes"] = True
            return ExperimentResult("E1", "stub", ("a",), [[1]])

        monkeypatch.setitem(EXPERIMENTS, "E1", fake)
        out = io.StringIO()
        assert main(["experiment", "e1"], out=out) == 0
        assert called.get("yes")
        assert "[E1] stub" in out.getvalue()

    def test_all_expands_registry(self, monkeypatch):
        from repro.analysis import ExperimentResult

        count = {"n": 0}

        def fake():
            count["n"] += 1
            return ExperimentResult("EX", "stub", ("a",), [[1]])

        for key in list(EXPERIMENTS):
            monkeypatch.setitem(EXPERIMENTS, key, fake)
        out = io.StringIO()
        assert main(["experiment", "all"], out=out) == 0
        assert count["n"] == len(EXPERIMENTS)


class TestScenarioCommand:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "nope"], out=io.StringIO())

    def test_vsm_scenario_runs(self):
        out = io.StringIO()
        assert main(["scenario", "vsm"], out=out) == 0
        text = out.getvalue()
        assert "krw" in text
        assert "full-replication" in text
        assert "total" in text

    def test_registry_names(self):
        assert set(SCENARIOS) == {"www", "dfs", "vsm", "tree"}


class TestPlaceCommand:
    def test_place_runs_and_writes_summary(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "place.json"
        rc = main(
            ["place", "--scenario", "tree", "--num-objects", "4",
             "--chunk-size", "2", "--compare-loop", "--cost",
             "--out", str(path)],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "engine:" in text and "identical copy sets: True" in text
        import json

        summary = json.loads(path.read_text())
        assert summary["objects"] == 4
        assert summary["matches_loop"] is True
        assert summary["cost"]["total"] > 0

    def test_place_rejects_bad_jobs(self):
        out = io.StringIO()
        assert main(["place", "--jobs", "0"], out=out) == 2

    def test_scenario_num_objects_wiring(self):
        out = io.StringIO()
        assert main(["scenario", "tree", "--num-objects", "3"], out=out) == 0
        assert "3 objects" in out.getvalue()


class TestPlanCommand:
    def test_plan_save_load_reproduces_legacy_place(self, tmp_path):
        """The acceptance loop: plan --config --save, then --load, must
        reproduce the legacy engine placement's copy sets exactly."""
        import json

        from repro.api import PlanReport
        from repro.engine import PlacementEngine
        from repro.workloads import www_content_provider

        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"fl_solver": "local_search", "chunk_size": 4}))
        saved = tmp_path / "out.npz"
        out = io.StringIO()
        rc = main(
            ["plan", "--scenario", "www", "--config", str(cfg),
             "--save", str(saved)],
            out=out,
        )
        assert rc == 0 and "wrote" in out.getvalue()

        out = io.StringIO()
        assert main(["plan", "--load", str(saved)], out=out) == 0
        assert "[krw]" in out.getvalue()

        report = PlanReport.load(saved)
        legacy = PlacementEngine(
            www_content_provider().instance, chunk_size=4
        ).place()
        assert report.placement.copy_sets == legacy.copy_sets
        assert report.config.chunk_size == 4

    def test_plan_json_artifact(self, tmp_path):
        from repro.api import PlanReport

        saved = tmp_path / "report.json"
        out = io.StringIO()
        rc = main(
            ["plan", "--scenario", "tree", "--strategy", "single-median",
             "--save", str(saved)],
            out=out,
        )
        assert rc == 0
        report = PlanReport.load(saved)
        assert report.strategy == "single-median"
        assert report.placement.replication_degree() == 1.0

    def test_plan_prints_kernel_and_cache_provenance(self, tmp_path):
        """`repro plan` surfaces the dispatch mode, worker transport and
        (lazy backend) row-cache hit rate under the report line."""
        import json

        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"backend": "lazy", "chunk_size": 2}))
        out = io.StringIO()
        rc = main(
            ["plan", "--scenario", "tree", "--config", str(cfg),
             "--kernels", "numpy", "--cache-rows", "16", "--jobs", "2"],
            out=out,
        )
        text = out.getvalue()
        assert rc == 0
        assert "kernels: mode=numpy" in text
        assert "shared memory: requested=True" in text
        assert "row cache:" in text and "cache_rows=16" in text

    def test_plan_sharded_strategy_with_shard_flags(self, tmp_path):
        """`plan --strategy krw-sharded --shards/--portals` threads the
        knobs into the config and prints the sharded provenance line."""
        from repro.api import PlanReport

        saved = tmp_path / "out.json"
        out = io.StringIO()
        rc = main(
            ["plan", "--scenario", "www", "--strategy", "krw-sharded",
             "--shards", "3", "--portals", "2", "--save", str(saved)],
            out=out,
        )
        text = out.getvalue()
        assert rc == 0
        assert "[krw-sharded]" in text
        assert "sharded: 3 shards" in text
        report = PlanReport.load(saved)
        assert report.config.num_shards == 3
        assert report.config.portals_per_shard == 2
        assert report.extras["sharded"]["num_shards"] == 3

    def test_plan_sharded_degenerate_path_matches_krw(self):
        out = io.StringIO()
        rc = main(
            ["plan", "--scenario", "tree", "--strategy", "krw-sharded",
             "--partition", "none", "--shards", "4"],
            out=out,
        )
        assert rc == 0
        assert "sharded: degenerate" in out.getvalue()

    def test_plan_load_missing_file_is_clean_error(self, tmp_path):
        out = io.StringIO()
        assert main(["plan", "--load", str(tmp_path / "nope.npz")], out=out) == 2

    def test_plan_rejects_unknown_config_knob(self, tmp_path):
        import json

        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"chunk_sze": 4}))
        out = io.StringIO()
        assert main(["plan", "--config", str(cfg)], out=out) == 2

    def test_plan_cli_overrides_config_file(self, tmp_path):
        import json

        from repro.api import PlanReport

        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({"fl_solver": "local_search"}))
        saved = tmp_path / "out.json"
        out = io.StringIO()
        rc = main(
            ["plan", "--scenario", "tree", "--config", str(cfg),
             "--fl-solver", "greedy", "--save", str(saved)],
            out=out,
        )
        assert rc == 0
        assert PlanReport.load(saved).config.fl_solver == "greedy"


class TestCompareCommand:
    def test_compare_runs_every_registered_strategy(self, tmp_path):
        """Acceptance: every registry name runs through the CLI."""
        import json

        from repro.registry import available_strategies

        path = tmp_path / "compare.json"
        out = io.StringIO()
        rc = main(
            ["compare", "--scenario", "tree", "--out", str(path)], out=out
        )
        assert rc == 0
        text = out.getvalue()
        data = json.loads(path.read_text())
        ran = {r["strategy"] for r in data["reports"]}
        assert ran == set(available_strategies())
        for name in available_strategies():
            assert name in text

    def test_compare_subset(self):
        out = io.StringIO()
        rc = main(
            ["compare", "--scenario", "vsm", "--strategies", "krw", "online"],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "krw" in text and "online" in text
        assert "full-replication" not in text


class TestDynamicCommand:
    def test_dynamic_runs_and_writes_json(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "dynamic.json"
        rc = main(
            ["dynamic", "--nodes", "30", "--num-objects", "5", "--epochs", "2",
             "--requests-per-epoch", "150", "--out", str(path)],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "[E15]" in text and "epoch-replan" in text
        import json

        data = json.loads(path.read_text())
        assert data["exp_id"] == "E15"
        labels = {row[1] for row in data["rows"]}
        assert {"vectorized", "clairvoyant-static", "online-counting"} <= labels

    def test_dynamic_rejects_bad_epochs(self):
        out = io.StringIO()
        assert main(["dynamic", "--epochs", "0"], out=out) == 2

    def test_dynamic_incremental_flags(self):
        out = io.StringIO()
        rc = main(
            ["dynamic", "--nodes", "30", "--num-objects", "5", "--epochs", "2",
             "--requests-per-epoch", "150", "--no-loop",
             "--incremental", "--tolerance", "0.1"],
            out=out,
        )
        assert rc == 0
        assert "epoch-replan" in out.getvalue()

    def test_dynamic_rejects_negative_tolerance(self):
        out = io.StringIO()
        assert main(["dynamic", "--tolerance", "-0.5"], out=out) == 2
