"""Cross-module property tests: invariants that span subsystems.

Each property here ties at least two modules together (costs + graphs,
DP + brute force, approx + simulator, ...) -- the places where subtle
inconsistencies between independently-correct components would hide.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import SteinerOracle, brute_force_object
from repro.core.approx import approximate_object_placement
from repro.core.costs import object_cost
from repro.core.instance import DataManagementInstance
from repro.core.restricted import restrict_placement
from repro.core.tree_dp import optimal_tree_placement
from repro.graphs.metric import Metric
from tests.conftest import make_random_instance, make_random_tree_instance

seeds = st.integers(min_value=0, max_value=400)


class TestCostOrderings:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_policy_sandwich(self, seed):
        """For any placement: steiner <= steiner_mst, and steiner_mst's
        update <= 2x steiner's update (Claim 2's factor)."""
        inst = make_random_instance(seed, n=8)
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 6))
        copies = sorted(rng.choice(8, size=k, replace=False).tolist())
        exact = object_cost(inst, 0, copies, policy="steiner")
        approx = object_cost(inst, 0, copies, policy="steiner_mst")
        assert exact.total <= approx.total + 1e-9
        assert approx.update <= 2.0 * exact.update + 1e-9

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_more_demand_costs_more(self, seed):
        """Adding requests never lowers the cost of a fixed placement."""
        inst = make_random_instance(seed, n=7)
        boosted = DataManagementInstance(
            inst.metric,
            inst.storage_costs,
            inst.read_freq + 1.0,
            inst.write_freq,
        )
        for policy in ("mst", "steiner"):
            a = object_cost(inst, 0, [0, 3], policy=policy).total
            b = object_cost(boosted, 0, [0, 3], policy=policy).total
            assert b >= a - 1e-9

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_cheaper_storage_never_raises_optimum(self, seed):
        """Lowering every storage price weakly lowers the optimal cost."""
        inst = make_random_instance(seed, n=7)
        cheaper = DataManagementInstance(
            inst.metric,
            inst.storage_costs * 0.5,
            inst.read_freq,
            inst.write_freq,
        )
        _, opt_a = brute_force_object(inst, 0, policy="mst")
        _, opt_b = brute_force_object(cheaper, 0, policy="mst")
        assert opt_b <= opt_a + 1e-9


class TestOptimaAgainstAlgorithms:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_tree_dp_lower_bounds_krw(self, seed):
        """On trees, the DP optimum lower-bounds the approximation under
        the exact policy."""
        g, inst = make_random_tree_instance(seed, n=8)
        _, dp_cost = optimal_tree_placement(
            g, inst.storage_costs, inst.read_freq, inst.write_freq
        )
        krw = approximate_object_placement(inst, 0)
        krw_cost = object_cost(inst, 0, krw, policy="steiner").total
        assert dp_cost <= krw_cost + 1e-9

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_brute_force_policies_ordered(self, seed):
        """min over subsets: Steiner-policy optimum <= MST-policy optimum
        (per-placement domination transfers to the minima)."""
        inst = make_random_instance(seed, n=7)
        _, opt_exact = brute_force_object(inst, 0, policy="steiner")
        _, opt_mst = brute_force_object(inst, 0, policy="mst")
        assert opt_exact <= opt_mst + 1e-9

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_restriction_idempotent(self, seed):
        inst = make_random_instance(seed, n=8)
        rng = np.random.default_rng(seed + 5)
        k = int(rng.integers(1, 8))
        copies = sorted(rng.choice(8, size=k, replace=False).tolist())
        once = restrict_placement(inst, 0, copies)
        twice = restrict_placement(inst, 0, once)
        assert once == twice


class TestSteinerOracleConsistency:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_oracle_monotone_in_terminals(self, seed):
        inst = make_random_instance(seed, n=7)
        oracle = SteinerOracle(inst.metric)
        rng = np.random.default_rng(seed)
        base = sorted(rng.choice(7, size=3, replace=False).tolist())
        extra = sorted(set(base) | {int(rng.integers(0, 7))})
        assert oracle.steiner_cost(base) <= oracle.steiner_cost(extra) + 1e-9

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_oracle_triangle_consistency(self, seed):
        """steiner({a, b}) is exactly the metric distance."""
        inst = make_random_instance(seed, n=6)
        oracle = SteinerOracle(inst.metric)
        rng = np.random.default_rng(seed)
        a, b = rng.choice(6, size=2, replace=False)
        assert oracle.steiner_cost([int(a), int(b)]) == pytest.approx(
            inst.metric.d(int(a), int(b)), rel=1e-9, abs=1e-9
        )


class TestSimulatorCrossChecks:
    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=10, deadline=None)
    def test_simulated_krw_ratio_matches_analytic_ratio(self, seed):
        """Ratios computed from simulated bills equal ratios from the
        closed form -- the full pipeline agrees end to end."""
        from repro.graphs.generators import random_tree
        from repro.simulate import NetworkSimulator, request_log_from_instance
        from repro.workloads import make_instance
        from repro.core.placement import Placement

        g = random_tree(9, seed=seed)
        metric = Metric.from_graph(g)
        inst = make_instance(metric, seed=seed + 10, num_objects=1,
                             write_fraction=0.3)
        krw = Placement.single(approximate_object_placement(inst, 0))
        opt, _ = optimal_tree_placement(
            g, inst.storage_costs, inst.read_freq, inst.write_freq
        )
        sim = NetworkSimulator(g, inst, update_policy="mst")
        log = request_log_from_instance(inst, seed=seed)
        sim_krw = sim.run(krw, log).total_cost
        analytic_krw = object_cost(inst, 0, krw.copies(0), policy="mst").total
        assert sim_krw == pytest.approx(analytic_krw, rel=1e-9)


class TestDegenerateInstances:
    def test_all_demand_on_one_node(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric,
            np.full(5, 2.0),
            np.array([50.0, 0, 0, 0, 0]),
            np.array([5.0, 0, 0, 0, 0]),
        )
        copies = approximate_object_placement(inst, 0)
        assert copies == (0,)
        _, opt = brute_force_object(inst, 0, policy="steiner")
        assert object_cost(inst, 0, copies, policy="steiner").total == pytest.approx(opt)

    def test_uniform_everything_symmetric_cost(self):
        """On a symmetric ring with uniform demand, all single-copy
        placements cost the same."""
        import networkx as nx

        g = nx.cycle_graph(6)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        metric = Metric.from_graph(g)
        inst = DataManagementInstance.single_object(
            metric, np.ones(6), np.ones(6), np.zeros(6)
        )
        costs = {
            round(object_cost(inst, 0, [v], policy="mst").total, 9)
            for v in range(6)
        }
        assert len(costs) == 1

    def test_zero_transmission_everywhere(self):
        """Free bandwidth: a single copy on the cheapest node is optimal."""
        metric = Metric(np.zeros((5, 5)))
        cs = np.array([4.0, 1.0, 3.0, 2.0, 5.0])
        inst = DataManagementInstance.single_object(
            metric, cs, np.full(5, 3.0), np.full(5, 2.0)
        )
        copies, opt = brute_force_object(inst, 0, policy="steiner")
        assert opt == pytest.approx(1.0)
        krw = approximate_object_placement(inst, 0)
        assert object_cost(inst, 0, krw, policy="steiner").total == pytest.approx(1.0)
