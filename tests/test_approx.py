"""Tests for repro.core.approx: the Section 2.2 three-phase algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import brute_force_object
from repro.core.approx import (
    approximate_object_placement,
    approximate_placement,
    proper_placement_margins,
)
from repro.core.costs import object_cost
from repro.core.instance import DataManagementInstance
from repro.core.radii import radii_for_object
from repro.facility import related_facility_problem
from tests.conftest import make_random_instance


class TestBasics:
    def test_returns_nonempty_sorted(self):
        inst = make_random_instance(1, n=8)
        copies = approximate_object_placement(inst, 0)
        assert copies == tuple(sorted(set(copies)))
        assert len(copies) >= 1

    def test_deterministic(self):
        inst = make_random_instance(2, n=9)
        assert approximate_object_placement(inst, 0) == approximate_object_placement(
            inst, 0
        )

    def test_zero_demand_stores_on_cheapest_node(self, line_metric):
        cs = np.array([3.0, 1.0, 2.0, 4.0, 5.0])
        inst = DataManagementInstance.single_object(
            line_metric, cs, np.zeros(5), np.zeros(5)
        )
        assert approximate_object_placement(inst, 0) == (1,)

    def test_unknown_solver_rejected(self):
        inst = make_random_instance(3, n=6)
        with pytest.raises(ValueError, match="fl_solver"):
            approximate_object_placement(inst, 0, fl_solver="nope")

    def test_multi_object_placement(self, line_metric):
        inst = DataManagementInstance(
            line_metric,
            np.ones(5),
            np.array([[4.0, 0, 0, 0, 0], [0, 0, 0, 0, 4.0]]),
            np.zeros((2, 5)),
        )
        p = approximate_placement(inst)
        assert p.num_objects == 2
        # each object's demand is concentrated at one end
        assert 0 in p.copies(0)
        assert 4 in p.copies(1)

    def test_all_fl_solvers_work(self):
        inst = make_random_instance(4, n=7)
        for solver in ("local_search", "greedy", "lp_rounding", "exact"):
            copies = approximate_object_placement(inst, 0, fl_solver=solver)
            assert len(copies) >= 1


class TestDiagnostics:
    def test_phase_progression(self):
        inst = make_random_instance(5, n=9)
        copies, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        assert copies == diag.after_phase3
        # phase 2 only adds; phase 3 only deletes
        assert set(diag.after_phase1) <= set(diag.after_phase2)
        assert set(diag.after_phase3) <= set(diag.after_phase2)

    def test_ablation_switches(self):
        inst = make_random_instance(6, n=9)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        no23 = approximate_object_placement(inst, 0, phase2=False, phase3=False)
        assert no23 == diag.after_phase1

    def test_radii_recorded(self):
        inst = make_random_instance(7, n=6)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        rw, rs, zs = radii_for_object(
            inst.metric, inst.storage_costs, inst.read_freq[0], inst.write_freq[0]
        )
        assert np.allclose(diag.write_radii, rw)
        assert np.allclose(diag.storage_radii, rs)


class TestPhaseSemantics:
    @given(st.integers(min_value=0, max_value=250))
    @settings(max_examples=40, deadline=None)
    def test_phase2_adds_only_violations(self, seed):
        """After phase 2 every node is within 5 rs(v) of a copy (only nodes
        with finite rs can demand one)."""
        inst = make_random_instance(seed)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        dts = inst.metric.dist_to_set(diag.after_phase2)
        bound = 5.0 * diag.storage_radii
        assert np.all((dts <= bound + 1e-9) | np.isinf(bound))

    @given(st.integers(min_value=0, max_value=250))
    @settings(max_examples=40, deadline=None)
    def test_claim10_read_plus_storage_does_not_increase(self, seed):
        """Claim 10: phase 2 never increases read + storage cost."""
        inst = make_random_instance(seed)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)

        def read_storage(copies):
            c = object_cost(inst, 0, copies, policy="mst")
            return c.read + c.storage

        assert read_storage(diag.after_phase2) <= read_storage(diag.after_phase1) + 1e-9

    @given(st.integers(min_value=0, max_value=250))
    @settings(max_examples=40, deadline=None)
    def test_phase3_separation(self, seed):
        """After phase 3, surviving copies violate no deletion rule: for the
        scan to be stable, no copy pair may sit within 4 rw of *both* scan
        orders -- the Lemma 8 separation property covers this."""
        inst = make_random_instance(seed)
        copies = approximate_object_placement(inst, 0)
        margins = proper_placement_margins(inst, 0, copies)
        assert margins["separation"] >= -1e-9

    @given(st.integers(min_value=0, max_value=250))
    @settings(max_examples=40, deadline=None)
    def test_lemma8_coverage(self, seed):
        inst = make_random_instance(seed)
        copies = approximate_object_placement(inst, 0)
        margins = proper_placement_margins(inst, 0, copies)
        assert margins["coverage"] >= -1e-9

    def test_read_only_instances_skip_deletions(self):
        """With no writes all write radii vanish, so phase 3 can only merge
        coincident copies (distance 0)."""
        inst = make_random_instance(11, n=8, max_write=0)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        survivors = set(diag.after_phase3)
        for u in diag.after_phase2:
            if u in survivors:
                continue
            # deleted: must be at metric distance 0 from some survivor
            assert min(inst.metric.d(u, v) for v in survivors) <= 1e-12


class TestApproximationQuality:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=25, deadline=None)
    def test_within_small_constant_of_restricted_optimum(self, seed):
        """Theorem 7 proves a (large) constant; empirically the ratio stays
        tiny.  We assert a generous 4x against the MST-policy optimum."""
        inst = make_random_instance(seed, n=8)
        copies = approximate_object_placement(inst, 0)
        cost = object_cost(inst, 0, copies, policy="mst").total
        _, opt = brute_force_object(inst, 0, policy="mst")
        assert cost <= 4.0 * opt + 1e-9

    def test_beats_or_matches_phase1_when_writes_dominate(self):
        """With heavy writes the FL placement over-replicates; phases 2+3
        must not be worse."""
        worse = 0
        for seed in range(25):
            inst = make_random_instance(seed, n=9, max_read=1, max_write=6)
            full = approximate_object_placement(inst, 0)
            fl_only = approximate_object_placement(inst, 0, phase2=False, phase3=False)
            c_full = object_cost(inst, 0, full, policy="mst").total
            c_fl = object_cost(inst, 0, fl_only, policy="mst").total
            if c_full > c_fl + 1e-9:
                worse += 1
        # the deletion phase should help on average for write-heavy loads
        assert worse <= 12

    def test_storage_price_zero_replicates_widely(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric, np.zeros(5), np.full(5, 5.0), np.zeros(5)
        )
        copies = approximate_object_placement(inst, 0)
        assert len(copies) == 5  # free storage, read-only: copy everywhere

    def test_huge_storage_price_single_copy(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric, np.full(5, 1e6), np.full(5, 1.0), np.zeros(5)
        )
        copies = approximate_object_placement(inst, 0)
        assert len(copies) == 1
