"""Tests for repro.engine: catalog engine parity, batching and streaming.

The engine's contract is *identity*: however the catalog is chunked,
parallelized or streamed, every copy set equals what the per-object
Section 2 loop places.  These tests assert that bit-for-bit, alongside
the batched-radii equality and the capacity-repair determinism the
engine-era refactors rely on.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approximate_placement
from repro.core.capacity import capacity_violations, enforce_capacities
from repro.core.costs import object_cost, placement_cost
from repro.core.instance import DataManagementInstance
from repro.core.placement import Placement
from repro.core.radii import radii_for_object, radii_for_objects
from repro.engine import PlacementEngine, place_catalog
from repro.graphs import generators
from repro.graphs.backend import LazyMetric
from repro.graphs.metric import Metric
from repro.workloads.request_models import make_instance

seeds = st.integers(min_value=0, max_value=200)


def _catalog_instance(seed: int, *, backend: str = "dense", n: int | None = None,
                      num_objects: int | None = None) -> DataManagementInstance:
    """Random multi-object instance; sprinkles in a zero-demand object."""
    rng = np.random.default_rng(seed)
    if n is None:
        n = int(rng.integers(6, 40))
    g = generators.erdos_renyi_graph(n, 0.35, seed=seed)
    metric = Metric.from_graph(g) if backend == "dense" else LazyMetric.from_graph(g)
    m = num_objects if num_objects is not None else int(rng.integers(2, 8))
    inst = make_instance(
        metric, seed=seed + 1, num_objects=m,
        demand_model=["uniform", "zipf", "hotspot"][seed % 3],
        write_fraction=float(rng.choice([0.0, 0.1, 0.4])),
    )
    if seed % 4 == 0 and m >= 2:
        fr = inst.read_freq.copy()
        fw = inst.write_freq.copy()
        fr[m // 2] = 0.0
        fw[m // 2] = 0.0
        inst = DataManagementInstance(metric, inst.storage_costs, fr, fw)
    return inst


class TestEngineParity:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_serial_and_chunked_match_loop(self, seed):
        """Engine copy sets equal the per-object loop for any chunking."""
        inst = _catalog_instance(seed)
        loop = approximate_placement(inst)
        for chunk in (1, 3, 512):
            engine = PlacementEngine(inst, chunk_size=chunk).place()
            assert engine.copy_sets == loop.copy_sets

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_lazy_backend_matches_loop(self, seed):
        inst = _catalog_instance(seed, backend="lazy")
        loop = approximate_placement(inst)
        engine = PlacementEngine(inst, chunk_size=2).place()
        assert engine.copy_sets == loop.copy_sets

    def test_parallel_jobs_match_loop(self):
        """jobs=2 ships the instance to workers and merges chunks back in
        deterministic order; results are identical to the loop."""
        g = generators.sized_transit_stub_graph(120, seed=9)
        inst = make_instance(
            Metric.from_graph(g), seed=10, num_objects=30, write_fraction=0.2
        )
        loop = approximate_placement(inst)
        par = PlacementEngine(inst, chunk_size=7, jobs=2).place()
        assert par.copy_sets == loop.copy_sets

    def test_parallel_jobs_lazy_backend(self):
        g = generators.sized_transit_stub_graph(120, seed=11)
        inst = make_instance(
            LazyMetric.from_graph(g), seed=12, num_objects=12, write_fraction=0.1
        )
        serial = PlacementEngine(inst, chunk_size=4).place()
        par = PlacementEngine(inst, chunk_size=4, jobs=2).place()
        assert par.copy_sets == serial.copy_sets

    def test_solver_and_ablation_knobs_forwarded(self):
        inst = _catalog_instance(17)
        for kwargs in (
            dict(fl_solver="greedy"),
            dict(phase2=False),
            dict(phase3=False),
            dict(facility_candidates=4),
        ):
            loop = approximate_placement(inst, **kwargs)
            engine = PlacementEngine(inst, chunk_size=2, **kwargs).place()
            assert engine.copy_sets == loop.copy_sets

    def test_zero_demand_catalog(self, line_metric):
        inst = DataManagementInstance(
            line_metric, np.array([3.0, 1.0, 2.0, 4.0, 5.0]),
            np.zeros((3, 5)), np.zeros((3, 5)),
        )
        placement = place_catalog(inst)
        assert placement.copy_sets == ((1,), (1,), (1,))


class TestEngineStreaming:
    def test_stream_yields_in_object_order(self):
        inst = _catalog_instance(5, num_objects=11)
        pairs = list(PlacementEngine(inst, chunk_size=4).stream())
        assert [obj for obj, _ in pairs] == list(range(11))
        assert Placement(tuple(c for _, c in pairs)).copy_sets == \
            approximate_placement(inst).copy_sets

    def test_stream_parallel_order(self):
        inst = _catalog_instance(6, num_objects=13)
        pairs = list(PlacementEngine(inst, chunk_size=3, jobs=2).stream())
        assert [obj for obj, _ in pairs] == list(range(13))

    def test_invalid_parameters_rejected(self):
        inst = _catalog_instance(7)
        with pytest.raises(ValueError, match="fl_solver"):
            PlacementEngine(inst, fl_solver="nope")
        with pytest.raises(ValueError, match="chunk_size"):
            PlacementEngine(inst, chunk_size=0)
        with pytest.raises(ValueError, match="jobs"):
            PlacementEngine(inst, jobs=0)

    def test_stream_early_exit_parallel_drains_window_and_shuts_down(self):
        """A consumer that stops mid-iteration with jobs > 1 must only
        drain the bounded in-flight window (the ``finally: fut.cancel()``
        path) and leave the pool cleanly shut down."""
        inst = _catalog_instance(8, num_objects=24)
        engine = PlacementEngine(inst, chunk_size=2, jobs=2)
        expected = approximate_placement(inst)

        stream = engine.stream()
        head = [next(stream) for _ in range(5)]
        # closing the generator mid-flight raises GeneratorExit inside it:
        # the finally block cancels the pending window and the pool's
        # context manager joins the workers
        stream.close()
        assert [obj for obj, _ in head] == list(range(5))
        for obj, copies in head:
            assert copies == expected.copy_sets[obj]

        # the engine object stays usable: a fresh stream starts a fresh
        # pool and still produces the full, identical catalog
        assert engine.place().copy_sets == expected.copy_sets

    def test_uninitialized_worker_is_a_named_runtime_error(self, monkeypatch):
        """The pool task must fail with an error naming the initializer,
        not a bare assert, when run outside a prepared worker process."""
        import repro.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_WORKER_ENGINE", None)
        with pytest.raises(RuntimeError, match="_engine_worker_init"):
            engine_mod._engine_worker_place([0])

    def test_pool_context_is_pinned(self):
        """The engine pins an explicit mp context (fork where available)
        instead of inheriting the platform default."""
        import multiprocessing as mp

        import repro.engine as engine_mod

        ctx = engine_mod._pool_context()
        expected = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        assert ctx.get_start_method() == expected

    def test_stream_early_exit_serial(self):
        inst = _catalog_instance(9, num_objects=9)
        engine = PlacementEngine(inst, chunk_size=3)
        stream = engine.stream()
        assert next(stream)[0] == 0
        stream.close()
        assert engine.place().copy_sets == \
            approximate_placement(inst).copy_sets


class TestPlaceSubset:
    """The sparse-object entry point: subset results must equal the full
    catalog solve restricted to the subset (objects are independent)."""

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_subset_matches_full_place(self, seed):
        inst = _catalog_instance(seed, num_objects=7)
        full = PlacementEngine(inst, chunk_size=3).place()
        subset = [5, 1, 3]
        solved = PlacementEngine(inst, chunk_size=2).place_subset(subset)
        assert sorted(solved) == [1, 3, 5]
        for obj, copies in solved.items():
            assert copies == full.copies(obj)

    def test_subset_lazy_backend(self):
        inst = _catalog_instance(8, backend="lazy", num_objects=6)
        full = PlacementEngine(inst).place()
        solved = PlacementEngine(inst, chunk_size=2).place_subset([0, 4])
        assert solved == {0: full.copies(0), 4: full.copies(4)}

    def test_subset_parallel_jobs(self):
        g = generators.sized_transit_stub_graph(80, seed=13)
        inst = make_instance(
            Metric.from_graph(g), seed=14, num_objects=16, write_fraction=0.1
        )
        serial = PlacementEngine(inst, chunk_size=3).place_subset(range(1, 12))
        par = PlacementEngine(inst, chunk_size=3, jobs=2).place_subset(range(1, 12))
        assert par == serial

    def test_duplicates_collapse_and_order_preserved(self):
        inst = _catalog_instance(9, num_objects=5)
        engine = PlacementEngine(inst, chunk_size=2)
        solved = engine.place_subset([4, 2, 4, 2, 0])
        assert list(solved) == [4, 2, 0]

    def test_stream_subset_in_given_order(self):
        inst = _catalog_instance(10, num_objects=6)
        engine = PlacementEngine(inst, chunk_size=2)
        pairs = list(engine.stream(objects=[5, 0, 3]))
        assert [obj for obj, _ in pairs] == [5, 0, 3]
        full = engine.place()
        assert all(copies == full.copies(obj) for obj, copies in pairs)

    def test_empty_subset(self):
        inst = _catalog_instance(11)
        assert PlacementEngine(inst).place_subset([]) == {}

    def test_out_of_range_rejected(self):
        inst = _catalog_instance(12, num_objects=4)
        engine = PlacementEngine(inst)
        with pytest.raises(ValueError, match="out of range"):
            engine.place_subset([0, 4])
        with pytest.raises(ValueError, match="out of range"):
            engine.place_subset([-1])
        # stream validates eagerly too -- at the call, not at first next()
        with pytest.raises(ValueError, match="out of range"):
            engine.stream(objects=[-1])
        with pytest.raises(ValueError, match="out of range"):
            engine.stream(objects=[4])


class TestPlaceCatalogSignature:
    def test_unknown_knob_is_a_typeerror(self):
        inst = _catalog_instance(11)
        with pytest.raises(TypeError, match="chunk_sze"):
            place_catalog(inst, chunk_sze=4)

    def test_positional_knobs_rejected(self):
        inst = _catalog_instance(11)
        with pytest.raises(TypeError):
            place_catalog(inst, "greedy")

    def test_explicit_knobs_delegate_to_config(self):
        inst = _catalog_instance(12)
        direct = PlacementEngine(inst, fl_solver="greedy", chunk_size=2).place()
        assert place_catalog(inst, fl_solver="greedy", chunk_size=2).copy_sets \
            == direct.copy_sets

    def test_bad_value_still_validated(self):
        inst = _catalog_instance(12)
        with pytest.raises(ValueError, match="fl_solver"):
            place_catalog(inst, fl_solver="nope")

    def test_version_bumped_for_the_cost_model_seam(self):
        import repro

        assert repro.__version__ == "1.7.0"


class TestBatchedRadii:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_radii_for_objects_equals_per_object(self, seed):
        """The shared sweep is bit-identical to the per-object sweep."""
        inst = _catalog_instance(seed)
        RW, RS, ZS = radii_for_objects(
            inst.metric, inst.storage_costs, inst.read_freq, inst.write_freq
        )
        for i in range(inst.num_objects):
            rw, rs, zs = radii_for_object(
                inst.metric, inst.storage_costs,
                inst.read_freq[i], inst.write_freq[i],
            )
            assert np.array_equal(RW[i], rw)
            assert np.array_equal(RS[i], rs)
            assert np.array_equal(ZS[i], zs)

    def test_fractional_weights_fall_back_bitwise(self):
        """Non-integer counts use the shared-argsort dense path; still
        bit-identical to the per-object computation."""
        rng = np.random.default_rng(3)
        g = generators.random_tree(15, seed=4)
        metric = Metric.from_graph(g)
        fr = rng.uniform(0.0, 3.0, size=(4, 15))
        fw = rng.uniform(0.0, 1.0, size=(4, 15))
        cs = rng.uniform(0.1, 5.0, size=15)
        RW, RS, ZS = radii_for_objects(metric, cs, fr, fw)
        for i in range(4):
            rw, rs, zs = radii_for_object(metric, cs, fr[i], fw[i])
            assert np.array_equal(RW[i], rw)
            assert np.array_equal(RS[i], rs)
            assert np.array_equal(ZS[i], zs)

    def test_block_size_invariance(self):
        inst = _catalog_instance(9, n=30)
        a = radii_for_objects(inst.metric, inst.storage_costs,
                              inst.read_freq, inst.write_freq, block_size=5)
        b = radii_for_objects(inst.metric, inst.storage_costs,
                              inst.read_freq, inst.write_freq, block_size=128)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestWorkerPickling:
    def test_lazy_metric_pickles_without_cache(self):
        g = generators.sized_transit_stub_graph(150, seed=5)
        lm = LazyMetric.from_graph(g)
        lm.precompute([0, 1, 2])
        _ = lm.rows(np.arange(40))
        clone = pickle.loads(pickle.dumps(lm))
        assert clone.n == lm.n
        assert clone.rows_computed == 0  # caches dropped from the payload
        assert np.array_equal(np.asarray(clone.row(7)), np.asarray(lm.row(7)))
        assert np.array_equal(clone.dist_to_set([3, 9]), lm.dist_to_set([3, 9]))


class TestCapacityRepairRefactor:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_memoized_repair_matches_naive_greedy(self, seed):
        """The delta-memoized repair follows the exact greedy trajectory
        of a naive re-derive-every-candidate reference."""
        inst = _catalog_instance(seed, n=int(np.random.default_rng(seed).integers(5, 12)))
        placement = approximate_placement(inst)
        caps = np.full(inst.num_nodes, 2, dtype=int)
        if caps.sum() < inst.num_objects:
            return
        try:
            repaired = enforce_capacities(inst, placement, caps)
        except RuntimeError:
            with pytest.raises(RuntimeError):
                _naive_enforce(inst, placement, caps)
            return
        assert repaired.copy_sets == _naive_enforce(inst, placement, caps).copy_sets
        assert capacity_violations(repaired, caps) == {}

    def test_repair_deterministic_across_runs(self):
        inst = _catalog_instance(21, num_objects=5)
        placement = approximate_placement(inst)
        caps = np.ones(inst.num_nodes, dtype=int)
        if caps.sum() < inst.num_objects:
            caps += 1
        runs = {enforce_capacities(inst, placement, caps).copy_sets for _ in range(3)}
        assert len(runs) == 1

    def test_engine_placement_feeds_repair(self):
        """Catalog pipeline end to end: engine placement -> capacity repair
        -> batched billing, all on one instance."""
        g = generators.sized_transit_stub_graph(60, seed=31)
        inst = make_instance(
            Metric.from_graph(g), seed=32, num_objects=20,
            demand_model="catalog", write_fraction=0.1,
        )
        placement = PlacementEngine(inst, chunk_size=8).place()
        caps = np.full(inst.num_nodes, 3, dtype=int)
        repaired = enforce_capacities(inst, placement, caps)
        assert capacity_violations(repaired, caps) == {}
        bill = placement_cost(inst, repaired, policy="mst")
        by_hand = sum(
            object_cost(inst, obj, repaired.copies(obj), policy="mst").total
            for obj in range(inst.num_objects)
        )
        assert bill.total == pytest.approx(by_hand, rel=1e-12)


def _naive_enforce(instance, placement, capacities, *, policy="mst"):
    """The pre-refactor repair loop: re-derives object_cost per candidate.

    Kept as the reference semantics for the memoized implementation."""
    caps = np.asarray(capacities, dtype=int)
    sets = [set(c) for c in placement]
    counts = np.zeros(instance.num_nodes, dtype=int)
    for copies in sets:
        for v in copies:
            counts[v] += 1

    def cost_of(obj, copies):
        return object_cost(instance, obj, copies, policy=policy).total

    steps, limit = 0, 4 * sum(len(s) for s in sets) + 16
    while True:
        overflowing = np.flatnonzero(counts > caps)
        if overflowing.size == 0:
            break
        steps += 1
        if steps > limit:
            raise RuntimeError("no convergence")
        slack_nodes = np.flatnonzero(counts < caps)
        best = None
        for v in overflowing:
            v = int(v)
            for obj in range(instance.num_objects):
                if v not in sets[obj]:
                    continue
                base = cost_of(obj, sets[obj])
                if len(sets[obj]) >= 2:
                    cand = (cost_of(obj, sets[obj] - {v}) - base, obj, v, -1)
                    if best is None or cand < best:
                        best = cand
                for u in slack_nodes:
                    u = int(u)
                    if u in sets[obj]:
                        continue
                    cand = (cost_of(obj, (sets[obj] - {v}) | {u}) - base, obj, v, u)
                    if best is None or cand < best:
                        best = cand
        if best is None:
            raise RuntimeError("no legal repair move")
        _, obj, v_from, v_to = best
        sets[obj].discard(v_from)
        counts[v_from] -= 1
        if v_to >= 0:
            sets[obj].add(v_to)
            counts[v_to] += 1
    return Placement(tuple(tuple(sorted(s)) for s in sets))
