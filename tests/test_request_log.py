"""Tests for the columnar RequestLog: parity with per-event expansion,
grouping kernels, and the sequence back-compat surface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.metric import Metric
from repro.simulate import READ, WRITE, Request, RequestLog, request_log_from_instance
from repro.workloads import make_instance


def _instance(seed: int, *, n: int = 8, objects: int = 3, write_fraction: float = 0.3):
    g = erdos_renyi_graph(n, 0.5, seed=seed)
    return make_instance(
        Metric.from_graph(g), seed=seed + 50, num_objects=objects,
        write_fraction=write_fraction,
    )


def _reference_expansion(instance, seed=None):
    """The original per-event loop, kept as the specification."""
    fr, fw = instance.read_freq, instance.write_freq
    log = []
    for obj in range(instance.num_objects):
        for node in range(instance.num_nodes):
            log.extend(Request(READ, node, obj) for _ in range(int(round(fr[obj, node]))))
            log.extend(Request(WRITE, node, obj) for _ in range(int(round(fw[obj, node]))))
    if seed is not None:
        rng = np.random.default_rng(seed)
        log = [log[i] for i in rng.permutation(len(log))]
    return log


class TestVectorizedExpansion:
    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=15, deadline=None)
    def test_matches_per_event_loop_bit_for_bit(self, seed):
        inst = _instance(seed % 7)
        for shuffle in (None, seed + 1):
            log = request_log_from_instance(inst, seed=shuffle)
            ref = _reference_expansion(inst, seed=shuffle)
            assert list(log) == ref  # same events, same order, same shuffle

    def test_counts_invert_from_frequencies(self):
        inst = _instance(4)
        log = request_log_from_instance(inst, seed=9)
        reads, writes = log.counts(inst.num_objects, inst.num_nodes)
        assert np.array_equal(reads, np.rint(inst.read_freq).astype(int))
        assert np.array_equal(writes, np.rint(inst.write_freq).astype(int))

    def test_shuffle_is_deterministic_permutation(self):
        inst = _instance(5)
        base = request_log_from_instance(inst)
        shuffled = request_log_from_instance(inst, seed=2)
        assert len(base) == len(shuffled)
        assert base.counts(inst.num_objects, inst.num_nodes)[0].sum() == \
            shuffled.counts(inst.num_objects, inst.num_nodes)[0].sum()
        assert request_log_from_instance(inst, seed=2) == shuffled

    def test_fractional_frequencies_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            RequestLog.from_frequencies(np.full((1, 4), 0.5), np.zeros((1, 4)))

    def test_empty_frequencies_give_empty_log(self):
        log = RequestLog.from_frequencies(np.zeros((2, 5)), np.zeros((2, 5)))
        assert len(log) == 0
        reads, writes = log.counts(2, 5)
        assert reads.sum() == 0 and writes.sum() == 0


class TestSequenceSurface:
    def test_iterates_as_request_objects(self):
        log = RequestLog.from_frequencies([[2.0, 0]], [[0.0, 1.0]])
        events = list(log)
        assert events == [
            Request(READ, 0, 0), Request(READ, 0, 0), Request(WRITE, 1, 0)
        ]

    def test_indexing_and_slicing(self):
        log = RequestLog.from_frequencies([[1.0, 1.0]], [[1.0, 0.0]])
        assert log[0] == Request(READ, 0, 0)
        tail = log[1:]
        assert isinstance(tail, RequestLog)
        assert len(tail) == 2

    def test_equality_with_lists_and_logs(self):
        log = RequestLog.from_frequencies([[1.0]], [[1.0]])
        assert log == [Request(READ, 0, 0), Request(WRITE, 0, 0)]
        assert log == RequestLog.from_requests(list(log))
        assert log != log[:1]

    def test_round_trip_through_requests(self):
        inst = _instance(6)
        log = request_log_from_instance(inst, seed=3)
        assert RequestLog.from_requests(list(log)) == log

    def test_coerce(self):
        events = [Request(WRITE, 1, 0), Request(READ, 0, 2)]
        log = RequestLog.coerce(events)
        assert isinstance(log, RequestLog)
        assert RequestLog.coerce(log) is log
        assert log.num_reads == 1 and log.num_writes == 1

    def test_concat(self):
        a = RequestLog.from_frequencies([[1.0]], [[0.0]])
        b = RequestLog.from_frequencies([[0.0]], [[2.0]])
        both = RequestLog.concat([a, b])
        assert len(both) == 3
        assert list(both) == list(a) + list(b)
        assert len(RequestLog.concat([])) == 0

    def test_concat_empty_is_well_typed(self):
        """concat([]) must carry the same dtypes as a populated log, so
        zero-demand horizons concatenate and group without upcasting."""
        empty = RequestLog.concat([])
        assert empty.kind.dtype == np.uint8
        assert empty.node.dtype == np.int64
        assert empty.obj.dtype == np.int64
        # still concatenable with real logs and groupable
        real = RequestLog.from_frequencies([[2.0]], [[1.0]])
        rejoined = RequestLog.concat([empty, real])
        assert rejoined == real
        reads, writes = empty.counts(2, 3)
        assert reads.sum() == 0 and writes.sum() == 0


class TestValidation:
    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            RequestLog([0, 1], [0], [0])

    def test_bad_kind_codes_rejected(self):
        with pytest.raises(ValueError, match="kind codes"):
            RequestLog([0, 7], [0, 0], [0, 0])

    def test_unknown_object_and_node(self):
        log = RequestLog([0], [3], [1])
        with pytest.raises(ValueError, match="unknown object"):
            log.validate_for(1, 10)
        with pytest.raises(ValueError, match="unknown node"):
            log.validate_for(5, 2)


class TestCountsByObject:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_per_event_loop(self, seed):
        """counts_by_object against the naive per-event tally, on random
        logs (including objects that never appear)."""
        rng = np.random.default_rng(seed)
        events = int(rng.integers(0, 80))
        num_objects = int(rng.integers(1, 7))
        log = RequestLog(
            kind=rng.integers(0, 2, events),
            node=rng.integers(0, 5, events),
            obj=rng.integers(0, num_objects, events),
        )
        reads, writes = log.counts_by_object(num_objects)
        ref_reads = np.zeros(num_objects, dtype=np.int64)
        ref_writes = np.zeros(num_objects, dtype=np.int64)
        for req in log:
            if req.kind == READ:
                ref_reads[req.obj] += 1
            else:
                ref_writes[req.obj] += 1
        assert np.array_equal(reads, ref_reads)
        assert np.array_equal(writes, ref_writes)
        assert reads.sum() + writes.sum() == events

    def test_consistent_with_counts(self):
        inst = _instance(6)
        log = request_log_from_instance(inst, seed=3)
        reads, writes = log.counts_by_object(inst.num_objects)
        fr, fw = log.counts(inst.num_objects, inst.num_nodes)
        assert np.array_equal(reads, fr.sum(axis=1).astype(np.int64))
        assert np.array_equal(writes, fw.sum(axis=1).astype(np.int64))

    def test_out_of_range_object_rejected(self):
        log = RequestLog(kind=[0], node=[0], obj=[3])
        with pytest.raises(ValueError):
            log.counts_by_object(2)
