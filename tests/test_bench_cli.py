"""Exit-code contract of ``python -m repro bench run | gate | list``."""

import io
import json
import shutil

import pytest

from repro.bench import GATES
from repro.bench.gate import DEFAULT_ARTIFACT_DIR
from repro.cli import main

RUN_E1 = ["--experiment", "E1",
          "--params", '{"families": ["tree"], "n": 6, "seeds": [0]}']


def bench(args):
    out = io.StringIO()
    code = main(["bench", *args], out=out)
    return code, out.getvalue()


@pytest.fixture
def artifact_dir(tmp_path):
    """A private copy of the committed artifacts, safe to perturb."""
    for spec in GATES.values():
        shutil.copy(DEFAULT_ARTIFACT_DIR / spec.artifact, tmp_path)
    return tmp_path


class TestBenchRun:
    def test_run_then_cached_rerun(self, tmp_path):
        store = str(tmp_path / "cache")
        code, text = bench(["run", *RUN_E1, "--store", store, "--show"])
        assert code == 0
        assert "1 ran, 0 cached" in text
        assert "approximation ratio" in text  # --show rendered the table

        code, text = bench(["run", *RUN_E1, "--store", store])
        assert code == 0
        assert "0 ran, 1 cached" in text

    def test_sweep_file_with_limit_reports_pending(self, tmp_path):
        sweep = tmp_path / "sweep.json"
        sweep.write_text(json.dumps({
            "name": "tiny",
            "experiments": [{
                "experiment": "E1",
                "params": {"families": ["tree"], "seeds": [0]},
                "grid": {"n": [6, 7]},
            }],
        }))
        store = str(tmp_path / "cache")
        code, text = bench(["run", "--sweep", str(sweep), "--store", store,
                            "--limit", "1"])
        assert code == 0
        assert "1 ran, 0 cached, 1 pending" in text

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        store = str(tmp_path / "cache")
        assert bench(["run", "--store", store])[0] == 2  # no trial source
        assert bench(["run", "--experiment", "E99", "--store", store])[0] == 2
        assert bench(["run", "--experiment", "E1", "--params", "[1]",
                      "--store", store])[0] == 2  # not a JSON object
        assert bench(["run", "--experiment", "E1", "--params", "{nope",
                      "--store", store])[0] == 2  # not JSON at all
        assert bench(["run", "--sweep", str(tmp_path / "nope.json"),
                      "--store", store])[0] == 2
        assert bench([])[0] == 2  # bench with no subcommand
        assert "choose a subcommand" in capsys.readouterr().err


class TestBenchGate:
    def test_artifact_tier_passes_exit_0(self):
        code, text = bench(["gate", "--tier", "artifact"])
        assert code == 0
        assert "all checks passed" in text

    def test_missing_artifact_exit_3(self, tmp_path):
        code, text = bench(["gate", "--tier", "artifact",
                            "--artifact-dir", str(tmp_path / "empty")])
        assert code == 3
        assert "missing" in text

    def test_regression_exit_1_with_diff_and_report(self, artifact_dir,
                                                    tmp_path):
        spec = GATES["E14"]
        payload = json.loads((artifact_dir / spec.artifact).read_text())
        col = spec.headers.index("matches loop")
        for r, row in enumerate(payload["rows"]):
            if row[col] is True:
                payload["rows"][r][col] = False
        (artifact_dir / spec.artifact).write_text(json.dumps(payload))

        report_path = tmp_path / "gate-report.txt"
        code, text = bench(["gate", "--tier", "artifact",
                            "--artifact-dir", str(artifact_dir),
                            "--report", str(report_path)])
        assert code == 1
        assert "[E14] FAIL" in text and "expected True" in text
        assert report_path.read_text().strip() in text

    def test_only_restricts_and_validates(self, capsys):
        code, text = bench(["gate", "--tier", "artifact", "--only", "E16"])
        assert code == 0
        assert "[E16]" in text and "[E14]" not in text

        assert bench(["gate", "--only", "E99"])[0] == 2
        assert "no gate for" in capsys.readouterr().err

    def test_smoke_tier_caches_between_runs(self, tmp_path):
        store = str(tmp_path / "cache")
        code, text = bench(["gate", "--only", "E15", "--store", store,
                            "--timestamp", "t0"])
        assert code == 0
        assert "smoke trial ran" in text

        code, text = bench(["gate", "--only", "E15", "--store", store])
        assert code == 0
        assert "smoke trial cached" in text


class TestBenchList:
    def test_lists_experiments_gates_and_store(self, tmp_path):
        store = str(tmp_path / "cache")
        bench(["run", *RUN_E1, "--store", store])
        code, text = bench(["list", "--store", store])
        assert code == 0
        assert "E16" in text
        for spec in GATES.values():
            assert spec.artifact in text
        assert "1 cached trial(s)" in text
        assert "E1[" in text
