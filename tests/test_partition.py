"""Partitioner invariants: exact cover, true boundary portals, admissible
quotient distances, named errors on degenerate inputs."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    Partition,
    PartitionError,
    partition_graph,
    partition_instance,
    partition_metric,
)
from repro.graphs.generators import (
    erdos_renyi_graph,
    sized_transit_stub_graph,
    transit_stub_graph,
)
from repro.graphs.metric import Metric, graph_to_adjacency


def dense_metric(g) -> Metric:
    return Metric.from_graph(g)


class TestPartitionDataclass:
    def test_trivial_partition(self):
        part = Partition.trivial(7)
        assert part.n == 7 and part.num_shards == 1
        assert part.shards == (tuple(range(7)),)
        assert part.num_portals == 0 and part.quotient.shape == (0, 0)
        assert np.array_equal(part.shard_of, np.zeros(7, dtype=np.int64))

    def test_empty_shard_is_named_error(self):
        with pytest.raises(PartitionError, match="shard 1 is empty"):
            Partition(((0, 1), ()), ((0,), ()), np.zeros((1, 1)))

    def test_overlapping_shards_rejected(self):
        with pytest.raises(PartitionError, match="overlaps"):
            Partition(
                ((0, 1), (1, 2)), ((0,), (2,)),
                np.zeros((2, 2)),
            )

    def test_portals_must_be_shard_members(self):
        with pytest.raises(PartitionError, match="not a subset"):
            Partition(((0, 1), (2, 3)), ((2,), (3,)), np.zeros((2, 2)))

    def test_multi_shard_partition_needs_portals_everywhere(self):
        with pytest.raises(PartitionError, match="no portal"):
            Partition(((0, 1), (2, 3)), ((0,), ()), np.zeros((1, 1)))

    def test_quotient_shape_checked(self):
        with pytest.raises(PartitionError, match="quotient"):
            Partition(((0, 1), (2, 3)), ((0,), (2,)), np.zeros((3, 3)))

    def test_quotient_must_be_finite(self):
        q = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(PartitionError, match="finite"):
            Partition(((0, 1), (2, 3)), ((0,), (2,)), q)


class TestPartitionGraph:
    def test_every_node_in_exactly_one_shard(self):
        g = transit_stub_graph(4, 3, 6, seed=11)
        part = partition_graph(g, num_shards=4, portals_per_shard=2)
        seen = sorted(v for shard in part.shards for v in shard)
        assert seen == list(range(g.number_of_nodes()))
        # shard_of agrees with the shard tuples
        for s, members in enumerate(part.shards):
            assert all(part.shard_of[v] == s for v in members)

    def test_portals_are_true_boundary_nodes(self):
        g = transit_stub_graph(4, 3, 6, seed=11)
        part = partition_graph(g, num_shards=4, portals_per_shard=2)
        adj, _, _ = graph_to_adjacency(g)
        sym = adj.maximum(adj.T).tocsr()
        for s, ports in enumerate(part.portals):
            assert ports, "every shard of a multi-shard partition has portals"
            for v in ports:
                nbrs = sym.indices[sym.indptr[v]:sym.indptr[v + 1]]
                assert any(part.shard_of[u] != s for u in nbrs), (
                    f"portal {v} of shard {s} has no edge leaving the shard"
                )

    def test_quotient_distances_are_true_distances(self):
        # quotient cells are full-graph shortest paths between portals:
        # never shorter than the true metric (here: exactly equal)
        g = transit_stub_graph(3, 3, 5, seed=3)
        part = partition_graph(g, num_shards=3, portals_per_shard=3)
        metric = dense_metric(g)
        pnodes = np.asarray(part.portal_nodes)
        true = metric.dist[np.ix_(pnodes, pnodes)]
        assert np.allclose(part.quotient, true)
        assert (part.quotient - true).min() >= -1e-9

    def test_transit_stub_extraction_balances_shards(self):
        g = sized_transit_stub_graph(240, seed=7)
        part = partition_graph(
            g, num_shards=4, portals_per_shard=2, method="transit_stub"
        )
        sizes = sorted(len(s) for s in part.shards)
        assert sizes[-1] <= 3 * sizes[0]  # no snowballed giant shard

    def test_bfs_fallback_on_flat_weights(self):
        # unit weights carry no transit-stub hierarchy: "auto" must fall
        # back to BFS growth instead of failing
        g = erdos_renyi_graph(40, 0.15, seed=5)
        with pytest.raises(PartitionError, match="hierarchy"):
            partition_graph(g, num_shards=3, portals_per_shard=2,
                            method="transit_stub")
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        assert part.num_shards == 3
        assert sorted(v for s in part.shards for v in s) == list(range(40))

    def test_disconnected_graph_is_named_error(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(2, 3, weight=1.0)
        with pytest.raises(PartitionError, match="disconnected"):
            partition_graph(g, num_shards=2, portals_per_shard=1)

    def test_more_shards_than_nodes_is_named_error(self):
        g = nx.path_graph(3)
        nx.set_edge_attributes(g, 1.0, "weight")
        with pytest.raises(PartitionError, match="non-empty shards"):
            partition_graph(g, num_shards=5, portals_per_shard=1)

    def test_bad_knobs_are_named_errors(self):
        g = nx.path_graph(4)
        nx.set_edge_attributes(g, 1.0, "weight")
        with pytest.raises(PartitionError):
            partition_graph(g, num_shards=0, portals_per_shard=1)
        with pytest.raises(PartitionError):
            partition_graph(g, num_shards=2, portals_per_shard=0)
        with pytest.raises(PartitionError, match="unknown partition method"):
            partition_graph(g, num_shards=2, portals_per_shard=1,
                            method="metis")

    def test_single_shard_is_trivial(self):
        g = erdos_renyi_graph(12, 0.4, seed=2)
        part = partition_graph(g, num_shards=1, portals_per_shard=3)
        assert part.num_shards == 1 and part.num_portals == 0


class TestPartitionMetric:
    def test_covers_and_quotient_admissible(self):
        g = erdos_renyi_graph(30, 0.2, seed=9)
        metric = dense_metric(g)
        part = partition_metric(metric, num_shards=4, portals_per_shard=2)
        assert sorted(v for s in part.shards for v in s) == list(range(30))
        pnodes = np.asarray(part.portal_nodes)
        true = metric.dist[np.ix_(pnodes, pnodes)]
        assert (part.quotient - true).min() >= -1e-9

    def test_too_many_shards_is_named_error(self):
        metric = dense_metric(erdos_renyi_graph(6, 0.6, seed=1))
        with pytest.raises(PartitionError, match="non-empty shards"):
            partition_metric(metric, num_shards=9, portals_per_shard=1)


class TestPartitionInstance:
    def test_lazy_backend_uses_graph_partitioner(self):
        from repro.core.instance import DataManagementInstance
        from repro.graphs.backend import LazyMetric

        g = sized_transit_stub_graph(120, seed=4)
        metric = LazyMetric.from_graph(g)
        n = metric.n
        rng = np.random.default_rng(0)
        inst = DataManagementInstance.single_object(
            metric, np.ones(n), rng.integers(0, 4, n).astype(float),
            np.zeros(n),
        )
        part = partition_instance(inst, num_shards=3, portals_per_shard=2)
        assert part.num_shards == 3 and part.n == n

    def test_dense_backend_rejects_transit_stub_method(self):
        from repro.core.instance import DataManagementInstance

        metric = dense_metric(erdos_renyi_graph(10, 0.5, seed=3))
        inst = DataManagementInstance.single_object(
            metric, np.ones(10), np.ones(10), np.zeros(10)
        )
        with pytest.raises(PartitionError, match="adjacency"):
            partition_instance(inst, num_shards=2, portals_per_shard=1,
                               method="transit_stub")
        part = partition_instance(inst, num_shards=2, portals_per_shard=1)
        assert part.num_shards == 2
