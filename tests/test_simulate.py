"""Tests for repro.simulate: event logs, the network simulator, online."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import placement_cost
from repro.core.instance import DataManagementInstance
from repro.core.placement import Placement
from repro.graphs.generators import random_tree, transit_stub_graph
from repro.graphs.metric import Metric
from repro.simulate import (
    READ,
    WRITE,
    NetworkSimulator,
    OnlineCountingStrategy,
    Request,
    request_log_from_instance,
)
from repro.workloads import make_instance


def _setup(seed: int, *, n: int = 10, write_fraction: float = 0.25, objects: int = 1):
    g = random_tree(n, seed=seed) if seed % 2 else transit_stub_graph(2, 1, max(n // 2 - 1, 1), seed=seed)
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric, seed=seed + 100, num_objects=objects, write_fraction=write_fraction
    )
    return g, inst


class TestRequestLog:
    def test_log_realizes_frequencies(self):
        _, inst = _setup(2, objects=2)
        log = request_log_from_instance(inst)
        for obj in range(2):
            reads = sum(1 for r in log if r.obj == obj and r.kind == READ)
            writes = sum(1 for r in log if r.obj == obj and r.kind == WRITE)
            assert reads == inst.total_reads(obj)
            assert writes == inst.total_writes(obj)

    def test_shuffle_is_permutation(self):
        _, inst = _setup(3)
        base = request_log_from_instance(inst)
        shuffled = request_log_from_instance(inst, seed=1)
        assert len(base) == len(shuffled)
        assert sorted(map(repr, base)) == sorted(map(repr, shuffled))
        assert request_log_from_instance(inst, seed=1) == shuffled  # deterministic

    def test_fractional_frequencies_rejected(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric, np.ones(5), np.full(5, 0.5), np.zeros(5)
        )
        with pytest.raises(ValueError, match="integer"):
            request_log_from_instance(inst)

    def test_request_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            Request("update", 0, 0)


class TestSimulatorAgreement:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_simulation_matches_analytic_mst_cost(self, seed):
        """E11's core claim: the executed bill equals the closed form."""
        g, inst = _setup(seed)
        from repro.core.approx import approximate_placement

        placement = approximate_placement(inst)
        sim = NetworkSimulator(g, inst, update_policy="mst")
        report = sim.run(placement, request_log_from_instance(inst, seed=seed))
        analytic = placement_cost(inst, placement, policy="mst")
        assert report.total_cost == pytest.approx(analytic.total, rel=1e-9)
        assert report.storage_cost == pytest.approx(analytic.storage, rel=1e-9)
        assert report.read_traffic_cost + report.write_traffic_cost == pytest.approx(
            analytic.read + analytic.update, rel=1e-9
        )

    def test_log_order_does_not_change_static_bill(self):
        g, inst = _setup(4)
        placement = Placement.single([0, inst.num_nodes - 1])
        sim = NetworkSimulator(g, inst)
        a = sim.run(placement, request_log_from_instance(inst, seed=1))
        b = sim.run(placement, request_log_from_instance(inst, seed=2))
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_kmb_policy_within_factor_two_of_exact(self):
        g, inst = _setup(6, n=8)
        placement = Placement.single([0, 3])
        sim = NetworkSimulator(g, inst, update_policy="kmb")
        report = sim.run(placement, request_log_from_instance(inst))
        exact = placement_cost(inst, placement, policy="steiner")
        assert report.total_cost >= exact.total - 1e-9
        # reads and storage identical; writes within factor 2
        assert report.write_traffic_cost <= 2.0 * exact.update + 1e-9

    def test_edge_load_accounting(self):
        g, inst = _setup(8)
        placement = Placement.single([0])
        sim = NetworkSimulator(g, inst)
        report = sim.run(
            placement, request_log_from_instance(inst), track_edge_load=True
        )
        assert report.total_load() == pytest.approx(report.transmission_cost)
        assert report.max_edge_load() <= report.total_load() + 1e-9

    def test_fast_path_skips_edge_load(self):
        g, inst = _setup(8)
        placement = Placement.single([0])
        sim = NetworkSimulator(g, inst)
        report = sim.run(placement, request_log_from_instance(inst))
        assert report.edge_load == {}
        assert report.total_load() == 0.0

    def test_message_count(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric, np.ones(5), np.array([1.0, 0, 0, 0, 0]), np.zeros(5)
        )
        import networkx as nx

        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        sim = NetworkSimulator(g, inst)
        report = sim.run(Placement.single([4]), request_log_from_instance(inst))
        assert report.messages == 1
        assert report.read_traffic_cost == pytest.approx(4.0)

    def test_write_by_copy_holder_costs_only_multicast(self, line_metric):
        import networkx as nx

        inst = DataManagementInstance.single_object(
            line_metric, np.zeros(5), np.zeros(5), np.array([1.0, 0, 0, 0, 0])
        )
        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        sim = NetworkSimulator(g, inst)
        report = sim.run(Placement.single([0, 2]), request_log_from_instance(inst))
        # attach is free (writer holds a copy); MST over {0,2} costs 2
        assert report.write_traffic_cost == pytest.approx(2.0)


class TestVectorizedReplay:
    """The tentpole invariant: vectorized bill == hop-by-hop bill ==
    the closed-form `mst` cost, on dense and lazy backends alike."""

    @staticmethod
    def _lazy_clone(g, inst):
        from repro.graphs.backend import LazyMetric

        metric = LazyMetric.from_graph(g)
        return DataManagementInstance(
            metric, inst.storage_costs, inst.read_freq, inst.write_freq
        )

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=12, deadline=None)
    def test_vectorized_equals_hop_by_hop_and_closed_form(self, seed):
        g, inst = _setup(seed, objects=2)
        from repro.core.approx import approximate_placement

        placement = approximate_placement(inst)
        log = request_log_from_instance(inst, seed=seed + 1)
        for instance in (inst, self._lazy_clone(g, inst)):
            sim = NetworkSimulator(g, instance, update_policy="mst")
            fast = sim.run(placement, log)
            slow = sim.run(placement, log, track_edge_load=True)
            assert fast.total_cost == pytest.approx(slow.total_cost, rel=1e-9)
            assert fast.read_traffic_cost == pytest.approx(
                slow.read_traffic_cost, rel=1e-9
            )
            assert fast.write_traffic_cost == pytest.approx(
                slow.write_traffic_cost, rel=1e-9
            )
            assert fast.storage_cost == pytest.approx(slow.storage_cost, rel=1e-9)
            assert fast.messages == slow.messages  # integers: exactly equal
            analytic = placement_cost(inst, placement, policy="mst")
            assert fast.total_cost == pytest.approx(analytic.total, rel=1e-9)

    def test_vectorized_matches_per_object_closed_form(self):
        from repro.core.costs import object_cost

        g, inst = _setup(9, objects=3)
        placement = Placement.from_sets(
            [[0], [0, inst.num_nodes - 1], list(range(inst.num_nodes))]
        )
        sim = NetworkSimulator(g, inst)
        report = sim.run(placement, request_log_from_instance(inst))
        total = sum(
            object_cost(inst, o, placement.copies(o), policy="mst").total
            for o in range(3)
        )
        assert report.total_cost == pytest.approx(total, rel=1e-9)

    def test_local_read_counts_no_message(self, line_metric):
        import networkx as nx

        # all reads issued at the copy holder: zero traffic, zero messages
        inst = DataManagementInstance.single_object(
            line_metric, np.ones(5), np.array([3.0, 0, 0, 0, 0]), np.zeros(5)
        )
        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        sim = NetworkSimulator(g, inst)
        for kwargs in ({}, {"track_edge_load": True}):
            report = sim.run(
                Placement.single([0]), request_log_from_instance(inst), **kwargs
            )
            assert report.messages == 0
            assert report.read_traffic_cost == 0.0

    def test_local_write_counts_only_multicast_messages(self, line_metric):
        import networkx as nx

        inst = DataManagementInstance.single_object(
            line_metric, np.zeros(5), np.zeros(5), np.array([2.0, 0, 0, 0, 0])
        )
        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        sim = NetworkSimulator(g, inst)
        for kwargs in ({}, {"track_edge_load": True}):
            report = sim.run(
                Placement.single([0, 2]), request_log_from_instance(inst), **kwargs
            )
            # per write: free local attach + one MST-edge multicast message
            assert report.messages == 2
            assert report.write_traffic_cost == pytest.approx(4.0)

    def test_accepts_plain_request_lists(self):
        from repro.simulate import RequestLog

        g, inst = _setup(5)
        placement = Placement.single([0])
        sim = NetworkSimulator(g, inst)
        events = [Request(READ, inst.num_nodes - 1, 0), Request(WRITE, 1, 0)]
        a = sim.run(placement, events)
        b = sim.run(placement, RequestLog.from_requests(events))
        assert a.total_cost == pytest.approx(b.total_cost, rel=1e-12)
        assert a.messages == b.messages


class TestPathCacheBounds:
    def test_path_cache_is_bounded(self):
        from repro.simulate import PathCache

        g, inst = _setup(7, n=16)
        cache = PathCache(g, max_sources=4)
        sim = NetworkSimulator(g, inst, path_cache=cache)
        log = request_log_from_instance(inst, seed=3)
        sim.run(Placement.single([0]), log, track_edge_load=True)
        assert cache.cached_sources <= 4

    def test_shared_cache_between_simulator_and_online(self):
        from repro.simulate import PathCache

        g, inst = _setup(11)
        cache = PathCache(g)
        sim = NetworkSimulator(g, inst, path_cache=cache)
        online = OnlineCountingStrategy(g, inst, path_cache=cache)
        log = request_log_from_instance(inst, seed=4)
        sim.run(Placement.single([0]), log, track_edge_load=True)
        before = cache.sources_computed
        online.run(log)  # mostly reuses the simulator's sources
        assert cache.sources_computed >= before
        assert cache.cache_hits > 0

    def test_path_reconstruction_matches_metric(self):
        from repro.simulate import PathCache

        g, inst = _setup(13)
        cache = PathCache(g)
        metric = inst.metric
        for u in range(inst.num_nodes):
            path = cache.path(0, u)
            cost = sum(g[a][b]["weight"] for a, b in zip(path[:-1], path[1:]))
            assert cost == pytest.approx(metric.d(0, u), rel=1e-9)

    def test_unreachable_target_raises_value_error(self):
        import networkx as nx
        from repro.simulate import PathCache

        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_node(2)
        cache = PathCache(g)
        with pytest.raises(ValueError, match="unreachable"):
            cache.path(0, 2)


class TestSimulatorValidation:
    def test_disconnected_graph_rejected(self):
        import networkx as nx

        _, inst = _setup(10, n=4)
        g = nx.Graph()
        g.add_nodes_from(range(inst.num_nodes))
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(2, 3, weight=1.0)
        with pytest.raises(ValueError, match="connected"):
            NetworkSimulator(g, inst)
        with pytest.raises(ValueError, match="connected"):
            OnlineCountingStrategy(g, inst)

    def test_mismatched_graph_rejected(self):
        g, inst = _setup(10)
        import networkx as nx

        other = nx.path_graph(inst.num_nodes + 1)
        with pytest.raises(ValueError, match="0..n-1"):
            NetworkSimulator(other, inst)

    def test_wrong_metric_rejected(self):
        g, inst = _setup(12, n=8)
        # rescale the graph fees so the instance metric no longer matches
        for u, v in g.edges():
            g[u][v]["weight"] *= 7.0
        with pytest.raises(ValueError, match="closure"):
            NetworkSimulator(g, inst)

    def test_unknown_policy_rejected(self):
        g, inst = _setup(14)
        with pytest.raises(ValueError, match="update_policy"):
            NetworkSimulator(g, inst, update_policy="flood")

    def test_unknown_object_in_log(self):
        g, inst = _setup(16)
        sim = NetworkSimulator(g, inst)
        with pytest.raises(ValueError, match="unknown object"):
            sim.run(Placement.single([0]), [Request(READ, 0, 5)])


class TestOnlineStrategy:
    def test_threshold_validated(self):
        g, inst = _setup(18)
        with pytest.raises(ValueError):
            OnlineCountingStrategy(g, inst, replication_threshold=0)

    def test_hot_reader_gets_a_copy(self, line_metric):
        import networkx as nx

        inst = DataManagementInstance.single_object(
            line_metric, np.ones(5), np.array([0.0, 0, 0, 0, 10.0]), np.zeros(5)
        )
        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        online = OnlineCountingStrategy(g, inst, replication_threshold=3)
        report, finals = online.run(request_log_from_instance(inst))
        assert 4 in finals[0]  # the hot reader bought a local copy

    def test_write_invalidates_to_single_copy(self, line_metric):
        import networkx as nx

        inst = DataManagementInstance.single_object(
            line_metric,
            np.ones(5),
            np.array([0.0, 0, 0, 0, 5.0]),
            np.array([0.0, 0, 0, 0, 1.0]),
        )
        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        online = OnlineCountingStrategy(g, inst, replication_threshold=2)
        # canonical order: reads first, then the write -> ends with 1 copy
        report, finals = online.run(request_log_from_instance(inst))
        assert len(finals[0]) == 1

    def test_deterministic(self):
        g, inst = _setup(20)
        online = OnlineCountingStrategy(g, inst)
        log = request_log_from_instance(inst, seed=5)
        a, _ = online.run(log)
        b, _ = online.run(log)
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_read_only_online_approaches_replication(self):
        """With no writes and threshold k, every node that reads >= k times
        ends up holding a copy."""
        g, inst = _setup(22, write_fraction=0.0)
        online = OnlineCountingStrategy(g, inst, replication_threshold=1)
        _, finals = online.run(request_log_from_instance(inst))
        readers = set(np.flatnonzero(inst.read_freq[0] > 0).tolist())
        assert readers <= finals[0]

    def test_local_read_is_free_and_messageless(self, line_metric):
        """Reads served by the node's own copy ship nothing: no traffic,
        no message, no replication-counter movement."""
        import networkx as nx

        start = 0  # cheapest storage node holds the initial copy
        cs = np.array([0.5, 1, 1, 1, 1])
        inst = DataManagementInstance.single_object(
            line_metric, cs, np.array([10.0, 0, 0, 0, 0]), np.zeros(5)
        )
        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        online = OnlineCountingStrategy(g, inst, replication_threshold=1)
        report, finals = online.run(request_log_from_instance(inst))
        assert finals[0] == {start}
        assert report.messages == 0
        assert report.transmission_cost == 0.0
        assert report.storage_cost == pytest.approx(0.5)  # initial copy only

    def test_write_resets_replication_counters(self, line_metric):
        """After a write invalidates, a reader needs `threshold` *fresh*
        reads before it buys a copy again."""
        import networkx as nx
        from repro.simulate import RequestLog

        cs = np.array([0.5, 1, 1, 1, 1])
        inst = DataManagementInstance.single_object(
            line_metric, cs, np.zeros(5), np.zeros(5)
        )
        g = nx.path_graph(5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        online = OnlineCountingStrategy(g, inst, replication_threshold=3)
        # two reads at node 4, a write at node 0, then two more reads at 4:
        # the write clears the count, so node 4 never reaches threshold 3
        log = RequestLog.from_requests([
            Request(READ, 4, 0), Request(READ, 4, 0),
            Request(WRITE, 0, 0),
            Request(READ, 4, 0), Request(READ, 4, 0),
        ])
        _, finals = online.run(log)
        assert 4 not in finals[0]
        # without the intervening write, four reads cross the threshold
        log2 = RequestLog.from_requests([Request(READ, 4, 0)] * 4)
        _, finals2 = online.run(log2)
        assert 4 in finals2[0]
