"""Deeper mechanics tests for the three phases of the Section 2 algorithm.

These pin down the *procedural* claims the proofs rely on (beyond the
outcome invariants in test_approx.py): single-pass sufficiency of phase 2,
survival of the minimum-write-radius holder in phase 3, and the scan-order
discipline of the deletion rule.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approximate_object_placement
from repro.core.instance import DataManagementInstance
from repro.core.radii import radii_for_object
from tests.conftest import make_random_instance

seeds = st.integers(min_value=0, max_value=300)


class TestPhase2Mechanics:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_single_pass_is_a_fixed_point(self, seed):
        """After phase 2, no node violates the 5*rs rule -- i.e. a second
        pass would add nothing (adding copies only shrinks distances, so
        one fixed-order pass suffices)."""
        inst = make_random_instance(seed)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        dts = inst.metric.dist_to_set(diag.after_phase2)
        violations = [
            v
            for v in range(inst.num_nodes)
            if np.isfinite(diag.storage_radii[v])
            and dts[v] > 5.0 * diag.storage_radii[v] + 1e-9
        ]
        assert violations == []

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_added_nodes_were_violating(self, seed):
        """Every phase-2 addition must have been a genuine violation
        against the copies present at its scan moment; at minimum it must
        violate the rule against the phase-1 set."""
        inst = make_random_instance(seed)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        added = set(diag.after_phase2) - set(diag.after_phase1)
        dts1 = inst.metric.dist_to_set(diag.after_phase1)
        for v in sorted(added):
            # the scan processes nodes in index order; copies added before
            # v can only have shrunk its distance, so violating against
            # the *final pre-v* set implies violating against phase 1 would
            # be too strong -- instead check the recorded rs justifies it:
            # v joined because d(v, current) > 5 rs(v) held at its turn,
            # and current ⊆ after_phase2 \ {later additions}; we verify the
            # weaker monotone certificate d(v, phase1 ∪ earlier) > 5 rs(v).
            earlier = set(diag.after_phase1) | {u for u in added if u < v}
            d_v = inst.metric.dist_to_set(sorted(earlier))[v]
            assert d_v > 5.0 * diag.storage_radii[v] - 1e-9

    def test_no_additions_when_rs_infinite_everywhere(self, line_metric):
        """Storage dearer than total request mass: phase 2 never fires."""
        inst = DataManagementInstance.single_object(
            line_metric, np.full(5, 1e9), np.ones(5), np.zeros(5)
        )
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        assert diag.after_phase2 == diag.after_phase1


class TestPhase3Mechanics:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_min_write_radius_holder_survives(self, seed):
        """The first-scanned (minimum rw) phase-2 holder is never deleted
        -- the argument that keeps the copy set non-empty."""
        inst = make_random_instance(seed)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        first = min(diag.after_phase2, key=lambda v: (diag.write_radii[v], v))
        assert first in diag.after_phase3

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_survivors_do_not_trigger_deletion_rule(self, seed):
        """No surviving pair (u, v) with rw(v) >= rw(u) may satisfy
        d(u, v) <= 4 rw(u): v's scan would have deleted u (or u's scan v)."""
        inst = make_random_instance(seed)
        copies = approximate_object_placement(inst, 0)
        rw, _, _ = radii_for_object(
            inst.metric, inst.storage_costs, inst.read_freq[0], inst.write_freq[0]
        )
        for u in copies:
            for v in copies:
                if u == v:
                    continue
                # the later-scanned node of the pair deletes the other
                if (rw[v], v) >= (rw[u], u):
                    assert inst.metric.d(u, v) > 4.0 * rw[u] - 1e-9

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_deleted_nodes_have_a_justifying_survivor_or_chain(self, seed):
        """Every phase-3 deletion is justified by some holder within
        4 rw(victim) that was alive at scan time; in particular each victim
        has *some* phase-2 holder within that radius."""
        inst = make_random_instance(seed)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        deleted = set(diag.after_phase2) - set(diag.after_phase3)
        for u in deleted:
            near = [
                v
                for v in diag.after_phase2
                if v != u and inst.metric.d(u, v) <= 4.0 * diag.write_radii[u] + 1e-9
            ]
            assert near, f"deleted node {u} has no justifying neighbour"

    def test_write_free_instance_keeps_phase2_set_modulo_coincidence(self):
        inst = make_random_instance(44, max_write=0)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        # rw == 0 everywhere: only distance-0 deletions are legal
        removed = set(diag.after_phase2) - set(diag.after_phase3)
        for u in removed:
            assert any(
                inst.metric.d(u, v) <= 1e-12 for v in diag.after_phase3
            )


class TestEndToEndPhaseInterplay:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_result_contained_in_phase2_superset(self, seed):
        inst = make_random_instance(seed)
        _, diag = approximate_object_placement(inst, 0, return_diagnostics=True)
        assert set(diag.after_phase3) <= set(diag.after_phase2)
        assert set(diag.after_phase1) <= set(diag.after_phase2)
        assert len(diag.after_phase3) >= 1

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_phase_switches_compose(self, seed):
        """phase2=False, phase3=True must equal running phase 3 directly on
        the phase-1 output -- the phases have no hidden coupling."""
        inst = make_random_instance(seed)
        via_flag = approximate_object_placement(inst, 0, phase2=False, phase3=True)
        _, diag = approximate_object_placement(
            inst, 0, phase2=False, phase3=True, return_diagnostics=True
        )
        assert via_flag == diag.after_phase3
        assert diag.after_phase1 == diag.after_phase2  # phase 2 skipped
