"""Tests for repro.shm: publish/attach lifecycle, zero-copy views, leaks.

The shm layer's contract is lifecycle discipline: the owner unlinks
exactly once, attachers only unmap, a handle pickles small, attached
views are read-only and rebuild an instance whose placement equals the
original's bit for bit -- and no code path (including a consumer
abandoning ``stream()`` mid-iteration) leaves blocks behind in
``/dev/shm``.
"""

import pickle

import numpy as np
import pytest

from repro.core.instance import DataManagementInstance
from repro.engine import PlacementEngine
from repro.graphs import generators
from repro.graphs.backend import LazyMetric
from repro.graphs.metric import Metric
from repro.shm import (
    SharedInstance,
    publish_instance,
    shm_available,
)
from repro.workloads.request_models import make_instance

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _instance(backend: str = "dense", *, n: int = 24, num_objects: int = 5):
    g = generators.erdos_renyi_graph(n, 0.3, seed=3)
    metric = Metric.from_graph(g) if backend == "dense" else LazyMetric.from_graph(g)
    return make_instance(metric, seed=4, num_objects=num_objects,
                         write_fraction=0.2)


def _segment_names(shared: SharedInstance) -> list[str]:
    return [spec.name for _, spec in shared.handle.arrays]


def _all_unlinked(names: list[str]) -> bool:
    from multiprocessing import shared_memory as _raw

    for name in names:
        try:
            seg = _raw.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        return False
    return True


class TestPublishAttach:
    @pytest.mark.parametrize("backend", ["dense", "lazy"])
    def test_round_trip_places_identically(self, backend):
        inst = _instance(backend)
        expected = PlacementEngine(inst).place()
        shared = publish_instance(inst)
        assert shared is not None
        try:
            with shared.handle.attach() as attached:
                rebuilt = attached.instance
                assert isinstance(rebuilt.metric, type(inst.metric))
                assert rebuilt.object_names == inst.object_names
                got = PlacementEngine(rebuilt).place()
                assert got.copy_sets == expected.copy_sets
        finally:
            shared.close()

    def test_attached_views_are_read_only_and_zero_copy(self):
        inst = _instance("dense")
        shared = publish_instance(inst)
        try:
            attached = shared.handle.attach()
            rebuilt = attached.instance
            np.testing.assert_array_equal(rebuilt.metric.dist, inst.metric.dist)
            with pytest.raises(ValueError, match="read-only"):
                rebuilt.metric.dist[0, 0] = 99.0
            with pytest.raises(ValueError, match="read-only"):
                rebuilt.read_freq[0, 0] = 99.0
            # zero-copy: the view's buffer is the shm mapping, not a copy
            assert not rebuilt.metric.dist.flags.owndata
            attached.close()
        finally:
            shared.close()

    def test_handle_pickles_small(self):
        inst = _instance("dense", n=40)
        shared = publish_instance(inst)
        try:
            handle_bytes = len(pickle.dumps(shared.handle))
            inst_bytes = len(pickle.dumps(inst))
            assert handle_bytes < 2048
            assert handle_bytes < inst_bytes / 4
            clone = pickle.loads(pickle.dumps(shared.handle))
            assert clone == shared.handle
        finally:
            shared.close()

    def test_owner_close_is_idempotent_and_unlinks(self):
        shared = publish_instance(_instance("dense"))
        names = _segment_names(shared)
        shared.close()
        shared.close()  # second close is a no-op, not an error
        assert _all_unlinked(names)

    def test_attacher_never_unlinks(self):
        shared = publish_instance(_instance("lazy"))
        try:
            attached = shared.handle.attach()
            attached.close()
            attached.close()
            # the owner still holds the blocks: attaching again works
            shared.handle.attach().close()
        finally:
            shared.close()
        assert _all_unlinked(_segment_names(shared))

    def test_unshareable_metric_falls_back_to_none(self):
        class FakeMetric:
            n = 3

        inst = DataManagementInstance.__new__(DataManagementInstance)
        object.__setattr__(inst, "metric", FakeMetric())
        object.__setattr__(inst, "storage_costs", np.ones(3))
        object.__setattr__(inst, "read_freq", np.ones((1, 3)))
        object.__setattr__(inst, "write_freq", np.zeros((1, 3)))
        object.__setattr__(inst, "object_names", ("x0",))
        object.__setattr__(inst, "object_sizes", np.ones(1))
        assert publish_instance(inst) is None

    def test_publish_failure_leaves_no_blocks(self, monkeypatch):
        """A crash mid-publish must unlink the partially created blocks."""
        created = []

        import repro.shm as shm_mod

        orig_shared_memory = shm_mod._shm.SharedMemory

        class Tracking(orig_shared_memory):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                if k.get("create"):
                    created.append(self.name)

        monkeypatch.setattr(shm_mod._shm, "SharedMemory", Tracking)

        inst = _instance("dense")
        boom = DataManagementInstance(
            inst.metric, inst.storage_costs, inst.read_freq, inst.write_freq,
        )
        # poison the last-shared array so publish raises after several
        # blocks already exist
        class Poison:
            def __array__(self, *a, **k):
                raise RuntimeError("poisoned array")

        object.__setattr__(boom, "object_sizes", Poison())
        with pytest.raises(RuntimeError, match="poisoned"):
            SharedInstance.publish(boom)
        assert created  # some blocks were created before the failure...
        assert _all_unlinked(created)  # ...and every one was unlinked


class TestEngineShmPath:
    @pytest.mark.parametrize("backend", ["dense", "lazy"])
    def test_parallel_shm_matches_serial(self, backend):
        inst = _instance(backend, n=40, num_objects=10)
        serial = PlacementEngine(inst).place()
        engine = PlacementEngine(inst, chunk_size=3, jobs=2, shared_memory=True)
        assert engine.place().copy_sets == serial.copy_sets
        assert engine.used_shared_memory is True

    def test_pickle_fallback_matches(self):
        inst = _instance("dense", n=40, num_objects=8)
        serial = PlacementEngine(inst).place()
        engine = PlacementEngine(inst, chunk_size=3, jobs=2, shared_memory=False)
        assert engine.place().copy_sets == serial.copy_sets
        assert engine.used_shared_memory is False

    def test_stream_early_exit_unlinks_blocks(self, monkeypatch):
        """Abandoning a parallel stream mid-iteration must still unlink
        the published blocks (the engine's try/finally owner path)."""
        import repro.engine as engine_mod

        published = []
        real = engine_mod.publish_instance

        def spying(instance):
            shared = real(instance)
            if shared is not None:
                published.append(shared)
            return shared

        monkeypatch.setattr(engine_mod, "publish_instance", spying)

        inst = _instance("dense", n=30, num_objects=12)
        engine = PlacementEngine(inst, chunk_size=2, jobs=2, shared_memory=True)
        stream = engine.stream()
        head = [next(stream) for _ in range(3)]
        stream.close()

        assert [obj for obj, _ in head] == [0, 1, 2]
        assert len(published) == 1
        assert _all_unlinked([s.name for _, s in published[0].handle.arrays])
        # the engine stays usable after the early exit
        assert engine.place().copy_sets == PlacementEngine(inst).place().copy_sets
