"""Tests for repro.core.tree_dp: exactness of the Section 3 algorithm.

The crown jewel of the test suite: the DP must equal brute-force optimal
on every random tree, in both the general and the read-only case, and its
reported cost must match independent cost accounting of the reconstructed
placement.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import brute_force_object
from repro.core.costs import object_cost
from repro.core.instance import DataManagementInstance
from repro.core.tree_binarize import binarize_tree
from repro.core.tree_dp import optimal_tree_object_placement, optimal_tree_placement
from repro.facility.mip import exact_ufl
from repro.facility.problem import FacilityLocationProblem
from repro.graphs.generators import (
    balanced_tree,
    caterpillar_tree,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.metric import Metric
from tests.conftest import make_random_tree_instance


def _run_dp(g, inst):
    placement, cost = optimal_tree_placement(
        g, inst.storage_costs, inst.read_freq, inst.write_freq
    )
    return placement.copies(0), cost


class TestHandCases:
    def test_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        placement, cost = optimal_tree_placement(
            g, np.array([2.5]), np.array([[3.0]]), np.array([[1.0]])
        )
        assert placement.copies(0) == (0,)
        assert cost == pytest.approx(2.5)

    def test_two_nodes_cheap_storage_replicates(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=10.0)
        # read-only, heavy demand both sides, cheap storage -> two copies
        placement, cost = optimal_tree_placement(
            g, np.array([1.0, 1.0]), np.array([[5.0, 5.0]]), np.array([[0.0, 0.0]])
        )
        assert placement.copies(0) == (0, 1)
        assert cost == pytest.approx(2.0)

    def test_two_nodes_writes_forbid_replication(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=10.0)
        # heavy writes: the second copy costs 10 per write to update
        placement, cost = optimal_tree_placement(
            g, np.array([1.0, 1.0]), np.array([[0.0, 0.0]]), np.array([[5.0, 5.0]])
        )
        assert len(placement.copies(0)) == 1
        # one copy at either end: storage 1 + 5 writes crossing the edge
        assert cost == pytest.approx(1.0 + 5 * 10.0)

    def test_zero_demand_picks_cheapest_node(self):
        g = path_graph(4, seed=1)
        cs = np.array([3.0, 0.5, 2.0, 1.0])
        placement, cost = optimal_tree_placement(
            g, cs, np.zeros((1, 4)), np.zeros((1, 4))
        )
        assert placement.copies(0) == (1,)
        assert cost == pytest.approx(0.5)

    def test_star_hub_preferred_for_uniform_demand(self):
        g = star_graph(6, seed=3)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        cs = np.full(6, 10.0)  # expensive storage: single copy
        fr = np.full((1, 6), 1.0)
        placement, cost = optimal_tree_placement(g, cs, fr, np.zeros((1, 6)))
        assert placement.copies(0) == (0,)  # the hub is the 1-median
        assert cost == pytest.approx(10.0 + 5.0)


class TestAgainstBruteForce:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_general(self, seed):
        g, inst = make_random_tree_instance(seed)
        copies, cost = _run_dp(g, inst)
        _, opt = brute_force_object(inst, 0, policy="steiner")
        assert cost == pytest.approx(opt, rel=1e-9, abs=1e-9)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_cost_matches_reported(self, seed):
        g, inst = make_random_tree_instance(seed)
        copies, cost = _run_dp(g, inst)
        evaluated = object_cost(inst, 0, copies, policy="steiner").total
        assert evaluated == pytest.approx(cost, rel=1e-9, abs=1e-9)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_read_only_matches_exact_ufl(self, seed):
        """Read-only data management on any metric is exactly UFL."""
        g, inst = make_random_tree_instance(seed, max_write=0)
        copies, cost = _run_dp(g, inst)
        fl = FacilityLocationProblem(
            inst.storage_costs, inst.read_freq[0], inst.metric.dist
        )
        assert cost == pytest.approx(fl.cost(exact_ufl(fl)), rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda seed: path_graph(7, seed=seed),
            lambda seed: star_graph(7, seed=seed),
            lambda seed: caterpillar_tree(3, 1, seed=seed),
            lambda seed: balanced_tree(2, 2, seed=seed),
        ],
        ids=["path", "star", "caterpillar", "balanced"],
    )
    def test_structured_shapes(self, builder):
        for seed in range(8):
            g = builder(seed)
            n = g.number_of_nodes()
            rng = np.random.default_rng(seed + 900)
            inst = DataManagementInstance.single_object(
                Metric.from_graph(g),
                rng.uniform(0.1, 5.0, size=n),
                rng.integers(0, 5, size=n).astype(float),
                rng.integers(0, 3, size=n).astype(float),
            )
            copies, cost = _run_dp(g, inst)
            _, opt = brute_force_object(inst, 0, policy="steiner")
            assert cost == pytest.approx(opt, rel=1e-9)

    def test_zero_weight_edges(self):
        g = path_graph(5, seed=1)
        for u, v in list(g.edges())[:2]:
            g[u][v]["weight"] = 0.0
        rng = np.random.default_rng(5)
        inst = DataManagementInstance.single_object(
            Metric.from_graph(g),
            rng.uniform(0.1, 4.0, size=5),
            rng.integers(0, 5, size=5).astype(float),
            rng.integers(0, 3, size=5).astype(float),
        )
        copies, cost = _run_dp(g, inst)
        _, opt = brute_force_object(inst, 0, policy="steiner")
        assert cost == pytest.approx(opt, rel=1e-9)

    def test_integer_tie_heavy_weights(self):
        """Unit weights create massive tie degeneracy; DP must still match."""
        for seed in range(6):
            g = random_tree(7, seed=seed)
            for u, v in g.edges():
                g[u][v]["weight"] = 1.0
            rng = np.random.default_rng(seed)
            inst = DataManagementInstance.single_object(
                Metric.from_graph(g),
                rng.integers(1, 4, size=7).astype(float),
                rng.integers(0, 3, size=7).astype(float),
                rng.integers(0, 2, size=7).astype(float),
            )
            copies, cost = _run_dp(g, inst)
            _, opt = brute_force_object(inst, 0, policy="steiner")
            assert cost == pytest.approx(opt, rel=1e-9)


class TestInvariance:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_root_choice_does_not_change_cost(self, seed):
        g, inst = make_random_tree_instance(seed, n=7)
        costs = set()
        for root in range(7):
            _, cost = optimal_tree_placement(
                g, inst.storage_costs, inst.read_freq, inst.write_freq, root=root
            )
            costs.add(round(cost, 8))
        assert len(costs) == 1

    def test_deterministic(self):
        g, inst = make_random_tree_instance(42, n=9)
        a = _run_dp(g, inst)
        b = _run_dp(g, inst)
        assert a == b

    def test_multi_object_cost_adds(self):
        g = random_tree(8, seed=10)
        rng = np.random.default_rng(10)
        cs = rng.uniform(0.5, 3.0, size=8)
        fr = rng.integers(0, 5, size=(2, 8)).astype(float)
        fw = rng.integers(0, 3, size=(2, 8)).astype(float)
        _, total = optimal_tree_placement(g, cs, fr, fw)
        singles = 0.0
        for obj in range(2):
            _, c = optimal_tree_placement(
                g, cs, fr[obj : obj + 1], fw[obj : obj + 1]
            )
            singles += c
        assert total == pytest.approx(singles)


class TestOptimalityAgainstHeuristics:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_never_beaten_by_any_subset(self, seed):
        """Spot-check optimality: random copy sets can't beat the DP."""
        g, inst = make_random_tree_instance(seed, n=8)
        _, cost = _run_dp(g, inst)
        rng = np.random.default_rng(seed + 1)
        for _ in range(10):
            k = int(rng.integers(1, 9))
            copies = sorted(rng.choice(8, size=k, replace=False).tolist())
            other = object_cost(inst, 0, copies, policy="steiner").total
            assert cost <= other + 1e-9


class TestDirectBinaryInterface:
    def test_runs_on_prebinarized_instance(self):
        g = star_graph(9, seed=2)
        rng = np.random.default_rng(2)
        cs = rng.uniform(0.5, 3.0, size=9)
        fr = rng.integers(0, 5, size=9).astype(float)
        fw = rng.integers(0, 2, size=9).astype(float)
        bt = binarize_tree(g, cs, fr, fw)
        result = optimal_tree_object_placement(bt)
        placement, cost = optimal_tree_placement(
            g, cs, fr.reshape(1, -1), fw.reshape(1, -1)
        )
        assert result.copies == placement.copies(0)
        assert result.cost == pytest.approx(cost)

    def test_all_infinite_storage_raises(self):
        import math

        from repro.core.tree_binarize import BinaryNode, BinaryTreeInstance

        bt = BinaryTreeInstance(
            [BinaryNode(0, math.inf, 1.0, 0.0)]
        )
        with pytest.raises(RuntimeError, match="infinite storage"):
            optimal_tree_object_placement(bt)
