"""Tests for repro.core.placement: value semantics and serving maps."""

import numpy as np
import pytest

from repro.core.instance import DataManagementInstance
from repro.core.placement import Placement, serving_nodes, update_tree_edges


class TestPlacement:
    def test_normalizes_sorted_unique(self):
        p = Placement(((3, 1, 1, 2),))
        assert p.copies(0) == (1, 2, 3)

    def test_rejects_empty_object(self):
        with pytest.raises(ValueError, match="at least one copy"):
            Placement(((),))

    def test_single_constructor(self):
        assert Placement.single([4, 0]).copies(0) == (0, 4)

    def test_from_sets(self):
        p = Placement.from_sets([{1}, {0, 2}])
        assert p.num_objects == 2
        assert p.copies(1) == (0, 2)

    def test_full_replication(self):
        p = Placement.full_replication(4, 3)
        assert p.num_objects == 3
        assert all(p.copies(i) == (0, 1, 2, 3) for i in range(3))

    def test_replication_degree(self):
        p = Placement.from_sets([{0}, {1, 2, 3}])
        assert p.replication_degree(0) == 1.0
        assert p.replication_degree(1) == 3.0
        assert p.replication_degree() == 2.0

    def test_total_copies(self):
        assert Placement.from_sets([{0}, {1, 2}]).total_copies() == 3

    def test_iter(self):
        p = Placement.from_sets([{0}, {1}])
        assert list(p) == [(0,), (1,)]

    def test_validate_against_instance(self, line_metric):
        inst = DataManagementInstance(
            line_metric, np.ones(5), np.ones((2, 5)), np.zeros((2, 5))
        )
        Placement.from_sets([{0}, {4}]).validate(inst)  # fine
        with pytest.raises(ValueError, match="objects"):
            Placement.from_sets([{0}]).validate(inst)
        with pytest.raises(ValueError, match="out of range"):
            Placement.from_sets([{0}, {5}]).validate(inst)

    def test_immutable(self):
        p = Placement.single([1])
        with pytest.raises(AttributeError):
            p.copy_sets = ((2,),)


class TestServingNodes:
    def test_nearest_assignment(self, line_metric):
        serve = serving_nodes(line_metric, [0, 4])
        assert list(serve) == [0, 0, 0, 4, 4]  # tie at node 2 -> smaller index

    def test_all_copies(self, line_metric):
        serve = serving_nodes(line_metric, range(5))
        assert list(serve) == [0, 1, 2, 3, 4]


class TestUpdateTree:
    def test_single_copy_no_edges(self, line_metric):
        assert update_tree_edges(line_metric, [2]) == []

    def test_chain_update_tree(self, line_metric):
        edges = update_tree_edges(line_metric, [0, 2, 4])
        assert len(edges) == 2
        total = sum(w for _, _, w in edges)
        assert total == pytest.approx(4.0)

    def test_duplicates_ignored(self, line_metric):
        assert update_tree_edges(line_metric, [1, 1, 3]) == update_tree_edges(
            line_metric, [1, 3]
        )
