"""Tests for repro.registry: the strategy protocol and the built-ins."""

import numpy as np
import pytest

from repro.api import PlanReport, Planner
from repro.baselines.heuristics import best_single_node, write_blind_placement
from repro.config import PlanConfig
from repro.core.approx import approximate_placement
from repro.core.costs import placement_cost
from repro.core.placement import Placement
from repro.graphs.metric import Metric
from repro.registry import (
    PlacementStrategy,
    Strategy,
    _STRATEGIES,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.workloads import make_instance, tree_network, www_content_provider

BUILTINS = {
    "krw", "single-median", "full-replication", "write-blind",
    "greedy-add", "local-search", "epoch-replan", "online",
}


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTINS <= set(available_strategies())

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="krw"):
            get_strategy("nope")

    def test_builtins_satisfy_protocol(self):
        for name in BUILTINS:
            assert isinstance(get_strategy(name), Strategy)

    def test_register_and_override_custom_strategy(self):
        @register_strategy
        class Cheapest(PlacementStrategy):
            name = "test-cheapest"

            def place(self, instance, config):
                v = int(np.argmin(instance.storage_costs))
                return Placement(
                    tuple((v,) for _ in range(instance.num_objects))
                )

        try:
            sc = tree_network(num_objects=2)
            report = Planner().plan(sc, "test-cheapest")
            cheapest = int(np.argmin(sc.instance.storage_costs))
            assert report.placement.copy_sets == ((cheapest,), (cheapest,))

            # a second registration under the taken name must be explicit
            with pytest.raises(ValueError, match="already registered"):
                register_strategy(Cheapest)
            register_strategy(Cheapest, override=True)
        finally:
            _STRATEGIES.pop("test-cheapest", None)

    def test_register_requires_name_and_plan(self):
        class Nameless(PlacementStrategy):
            name = ""

        with pytest.raises(ValueError, match="name"):
            register_strategy(Nameless)
        with pytest.raises(TypeError, match="plan"):
            register_strategy(object(), name="test-no-plan")


class TestBuiltinStrategies:
    def test_krw_equals_per_object_loop(self):
        sc = tree_network(num_objects=3)
        report = get_strategy("krw").plan(sc.instance)
        assert report.placement.copy_sets == \
            approximate_placement(sc.instance).copy_sets
        assert report.strategy == "krw"

    def test_reports_bill_with_placement_cost(self):
        sc = tree_network(num_objects=2)
        report = get_strategy("single-median").plan(sc.instance)
        bill = placement_cost(sc.instance, report.placement, policy="mst")
        assert report.cost.total == pytest.approx(bill.total)
        assert report.num_nodes == sc.instance.num_nodes
        assert report.num_objects == 2
        assert report.wall_time_s >= 0.0

    def test_single_median_and_write_blind_match_helpers(self):
        sc = www_content_provider(num_objects=3)
        inst = sc.instance
        median = get_strategy("single-median").plan(inst).placement
        blind = get_strategy("write-blind").plan(inst).placement
        for o in range(3):
            assert median.copies(o) == best_single_node(inst, o)
            assert blind.copies(o) == tuple(sorted(write_blind_placement(inst, o)))

    def test_full_replication_everywhere(self):
        sc = tree_network(num_objects=2)
        placement = get_strategy("full-replication").plan(sc.instance).placement
        assert placement.copies(0) == tuple(range(sc.instance.num_nodes))

    def test_epoch_replan_extras_record_migration(self):
        sc = tree_network(num_objects=3)
        report = get_strategy("epoch-replan").plan(sc.instance)
        krw = get_strategy("krw").plan(sc.instance)
        assert report.placement.copy_sets == krw.placement.copy_sets
        start = int(np.argmin(sc.instance.storage_costs))
        assert report.extras["initial_node"] == start
        # migration = transfers from the start copy to every other copy
        expected = sum(
            sc.instance.metric.d(start, v)
            for copies in report.placement.copy_sets
            for v in copies
            if v != start
        )
        assert report.extras["migration_cost"] == pytest.approx(expected)
        # the replan knobs travel as provenance
        assert report.extras["replan_mode"] == "full"
        assert report.extras["replan_tolerance"] == 0.0


class TestOnlineStrategyParity:
    def test_final_copies_match_hop_by_hop_simulation(self):
        """The registry's online strategy must land on exactly the copy
        sets the full hop-by-hop OnlineCountingStrategy reaches on the
        same event stream."""
        from repro.simulate.events import RequestLog
        from repro.simulate.online import OnlineCountingStrategy

        sc = tree_network(num_objects=3, write_fraction=0.3)
        inst = sc.instance
        for seed, threshold in ((1, 3), (2, 1), (3, 5)):
            config = PlanConfig(seed=seed, replication_threshold=threshold)
            report = get_strategy("online").plan(inst, config)
            log = RequestLog.from_frequencies(
                inst.read_freq, inst.write_freq, seed=seed
            )
            _, finals = OnlineCountingStrategy(
                sc.graph, inst, replication_threshold=threshold
            ).run(log)
            assert report.placement.copy_sets == tuple(
                tuple(sorted(s)) for s in finals
            )
            assert report.extras["events"] == len(log)

    def test_online_rejects_fractional_frequencies(self):
        rng = np.random.default_rng(0)
        metric = Metric.from_points(rng.uniform(size=(6, 2)))
        inst = make_instance(metric, seed=1, num_objects=1)
        frac = inst.read_freq.copy()
        frac[0, 0] += 0.5
        from repro.core.instance import DataManagementInstance

        bad = DataManagementInstance(
            metric, inst.storage_costs, frac, inst.write_freq
        )
        with pytest.raises(ValueError, match="integer"):
            get_strategy("online").plan(bad)


class TestAcceptanceSweep:
    def test_every_registered_strategy_through_planner_compare(self):
        sc = tree_network(num_objects=2)
        reports = Planner().compare(sc)
        assert [r.strategy for r in reports] == list(available_strategies())
        for r in reports:
            assert isinstance(r, PlanReport)
            assert r.placement.num_objects == 2
            assert r.cost.total > 0
