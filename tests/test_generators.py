"""Tests for repro.graphs.generators: shape, connectivity, determinism."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen


def _check_basic(g: nx.Graph, n_expected: int | None = None):
    """Common contract: 0..n-1 labels, connected, positive weights."""
    n = g.number_of_nodes()
    if n_expected is not None:
        assert n == n_expected
    assert set(g.nodes()) == set(range(n))
    assert nx.is_connected(g)
    for _, _, data in g.edges(data=True):
        assert data["weight"] > 0


class TestTrees:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 20])
    def test_random_tree_shape(self, n):
        g = gen.random_tree(n, seed=3)
        _check_basic(g, n)
        assert g.number_of_edges() == n - 1

    def test_random_tree_deterministic(self):
        a, b = gen.random_tree(12, seed=9), gen.random_tree(12, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())
        for u, v in a.edges():
            assert a[u][v]["weight"] == b[u][v]["weight"]

    def test_random_tree_seeds_differ(self):
        a, b = gen.random_tree(12, seed=1), gen.random_tree(12, seed=2)
        assert sorted(a.edges()) != sorted(b.edges()) or any(
            a[u][v]["weight"] != b[u][v]["weight"] for u, v in a.edges()
        )

    def test_random_tree_rejects_zero(self):
        with pytest.raises(ValueError):
            gen.random_tree(0, seed=1)

    def test_balanced_tree(self):
        g = gen.balanced_tree(3, 2, seed=4)
        _check_basic(g, 13)  # 1 + 3 + 9
        assert g.number_of_edges() == 12

    def test_path_graph_diameter(self):
        g = gen.path_graph(6, seed=1)
        _check_basic(g, 6)
        assert nx.diameter(g) == 5

    def test_star_graph_degree(self):
        g = gen.star_graph(8, seed=1)
        _check_basic(g, 8)
        degrees = sorted(dict(g.degree()).values())
        assert degrees == [1] * 7 + [7]

    def test_star_single_node(self):
        _check_basic(gen.star_graph(1, seed=0), 1)

    def test_caterpillar(self):
        g = gen.caterpillar_tree(4, 2, seed=2)
        _check_basic(g, 12)
        assert g.number_of_edges() == 11

    def test_caterpillar_no_legs_is_path(self):
        g = gen.caterpillar_tree(5, 0, seed=2)
        assert nx.diameter(g) == 4

    def test_caterpillar_invalid(self):
        with pytest.raises(ValueError):
            gen.caterpillar_tree(0, 1, seed=1)


class TestMeshes:
    def test_grid_shape(self):
        g = gen.grid_graph(3, 4, seed=1)
        _check_basic(g, 12)
        assert g.number_of_edges() == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols

    def test_torus_regular_degree(self):
        g = gen.torus_graph(4, 4, seed=1)
        _check_basic(g, 16)
        assert all(d == 4 for _, d in g.degree())


class TestRingsComplete:
    def test_ring(self):
        g = gen.ring_graph(6, seed=1)
        _check_basic(g, 6)
        assert all(d == 2 for _, d in g.degree())

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            gen.ring_graph(2, seed=1)

    def test_complete(self):
        g = gen.complete_graph(5, seed=1)
        _check_basic(g, 5)
        assert g.number_of_edges() == 10


class TestRandomGraphs:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_erdos_renyi_always_connected(self, seed):
        g = gen.erdos_renyi_graph(10, 0.15, seed=seed)
        _check_basic(g, 10)

    def test_erdos_renyi_p_validated(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi_graph(5, 1.5, seed=1)

    def test_erdos_renyi_sparse_gets_augmented(self):
        g = gen.erdos_renyi_graph(12, 0.0, seed=5)
        assert nx.is_connected(g)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_geometric_always_connected(self, seed):
        g = gen.random_geometric_graph(12, 0.3, seed=seed)
        _check_basic(g, 12)

    def test_geometric_weights_are_euclidean_scaled(self):
        g = gen.random_geometric_graph(15, 0.5, seed=7, scale=2.0)
        h = gen.random_geometric_graph(15, 0.5, seed=7, scale=1.0)
        shared = set(g.edges()) & set(h.edges())
        assert shared
        for u, v in shared:
            assert g[u][v]["weight"] == pytest.approx(2.0 * h[u][v]["weight"])


class TestTransitStub:
    def test_shape_and_connectivity(self):
        g = gen.transit_stub_graph(3, 2, 4, seed=1)
        _check_basic(g, 3 + 3 * 2 * 4)

    def test_backbone_links_are_expensive(self):
        g = gen.transit_stub_graph(4, 1, 3, seed=2, transit_weight=10.0, stub_weight=1.0)
        backbone = [
            d["weight"] for u, v, d in g.edges(data=True) if u < 4 and v < 4
        ]
        stub = [
            d["weight"] for u, v, d in g.edges(data=True) if u >= 4 and v >= 4
        ]
        assert min(backbone) > max(stub)

    def test_two_transit_no_duplicate_edge(self):
        g = gen.transit_stub_graph(2, 1, 2, seed=3)
        _check_basic(g)

    def test_single_transit(self):
        g = gen.transit_stub_graph(1, 2, 3, seed=4)
        _check_basic(g, 1 + 2 * 3)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            gen.transit_stub_graph(0, 1, 1, seed=1)


class TestWeights:
    def test_assign_random_weights_range(self):
        g = nx.path_graph(10)
        gen.assign_random_weights(g, seed=1, low=2.0, high=3.0)
        for _, _, d in g.edges(data=True):
            assert 2.0 <= d["weight"] < 3.0

    def test_assign_random_weights_invalid_range(self):
        with pytest.raises(ValueError):
            gen.assign_random_weights(nx.path_graph(3), seed=1, low=5.0, high=1.0)

    def test_weight_determinism(self):
        g1, g2 = nx.path_graph(6), nx.path_graph(6)
        gen.assign_random_weights(g1, seed=42)
        gen.assign_random_weights(g2, seed=42)
        for u, v in g1.edges():
            assert g1[u][v]["weight"] == g2[u][v]["weight"]
