"""Tests for repro.core.tree_dp_readonly: the literal Section 3.1 tuples.

The strongest evidence for Theorem 13 in this repository: two
structurally different implementations -- the paper-literal tuple
sequences here and the envelope-based general DP -- must agree with each
other, with brute force, and with an exact UFL MILP on every random tree.
"""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import brute_force_object
from repro.core.costs import object_cost
from repro.core.instance import DataManagementInstance
from repro.core.tree_binarize import binarize_tree
from repro.core.tree_dp import optimal_tree_placement
from repro.core.tree_dp_readonly import (
    optimal_tree_object_placement_readonly,
    optimal_tree_placement_readonly,
)
from repro.graphs.generators import (
    balanced_tree,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.metric import Metric


def _random_readonly(seed: int):
    rng = np.random.default_rng(seed + 31_000)
    n = int(rng.integers(2, 11))
    kind = seed % 4
    if kind == 0:
        g = random_tree(n, seed=seed)
    elif kind == 1:
        g = path_graph(n, seed=seed)
    elif kind == 2:
        g = star_graph(n, seed=seed)
    else:
        g = balanced_tree(3, 2, seed=seed)
        n = g.number_of_nodes()
    fr = rng.integers(0, 6, size=n).astype(float)
    cs = rng.uniform(0.0, 8.0, size=n)
    inst = DataManagementInstance.single_object(
        Metric.from_graph(g), cs, fr, np.zeros(n)
    )
    return g, inst


class TestAgainstGeneralDP:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_matches_general_dp(self, seed):
        g, inst = _random_readonly(seed)
        n = inst.num_nodes
        _, general = optimal_tree_placement(
            g, inst.storage_costs, inst.read_freq, np.zeros((1, n))
        )
        _, literal = optimal_tree_placement_readonly(
            g, inst.storage_costs, inst.read_freq
        )
        assert literal == pytest.approx(general, rel=1e-9, abs=1e-9)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_achieves_cost(self, seed):
        g, inst = _random_readonly(seed)
        placement, cost = optimal_tree_placement_readonly(
            g, inst.storage_costs, inst.read_freq
        )
        evaluated = object_cost(inst, 0, placement.copies(0), policy="steiner").total
        assert evaluated == pytest.approx(cost, rel=1e-9, abs=1e-9)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_matches_brute_force(self, seed):
        g, inst = _random_readonly(seed)
        if inst.num_nodes > 10:
            return
        _, cost = optimal_tree_placement_readonly(
            g, inst.storage_costs, inst.read_freq
        )
        _, opt = brute_force_object(inst, 0, policy="steiner")
        assert cost == pytest.approx(opt, rel=1e-9, abs=1e-9)


class TestHandCases:
    def test_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        placement, cost = optimal_tree_placement_readonly(
            g, np.array([1.5]), np.array([[2.0]])
        )
        assert placement.copies(0) == (0,)
        assert cost == pytest.approx(1.5)

    def test_leaf_threshold_semantics(self):
        """Two nodes: the far reader buys a copy exactly when its demand
        times the distance exceeds the storage price."""
        g = nx.Graph()
        g.add_edge(0, 1, weight=2.0)
        # demand 3 at node 1, storage 5: remote serving costs 6 > 5 -> copy
        placement, cost = optimal_tree_placement_readonly(
            g, np.array([0.5, 5.0]), np.array([[0.0, 3.0]])
        )
        assert 1 in placement.copies(0)
        # demand 2: remote costs 4 + 0.5 storage at node 0 = 4.5 < 5 -> no copy
        placement, cost = optimal_tree_placement_readonly(
            g, np.array([0.5, 5.0]), np.array([[0.0, 2.0]])
        )
        assert placement.copies(0) == (0,)
        assert cost == pytest.approx(0.5 + 4.0)

    def test_zero_demand_subtree_not_stocked(self):
        """The corner the paper's Claim 16 prose skips: a zero-demand
        branch must not be forced to hold a copy by the E-infinity
        terminal."""
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)  # demand at 0 only
        g.add_edge(1, 2, weight=1.0)  # node 2: zero demand, dirt-cheap storage
        placement, cost = optimal_tree_placement_readonly(
            g, np.array([1.0, 10.0, 0.01]), np.array([[5.0, 0.0, 0.0]])
        )
        assert placement.copies(0) == (0,)
        assert cost == pytest.approx(1.0)

    def test_rejects_writes(self):
        g = random_tree(4, seed=1)
        bt = binarize_tree(g, np.ones(4), np.ones(4), np.ones(4))
        with pytest.raises(ValueError, match="read-only"):
            optimal_tree_object_placement_readonly(bt)

    def test_all_infinite_storage_raises(self):
        from repro.core.tree_binarize import BinaryNode, BinaryTreeInstance

        bt = BinaryTreeInstance([BinaryNode(0, math.inf, 1.0, 0.0)])
        with pytest.raises(RuntimeError, match="infinite storage"):
            optimal_tree_object_placement_readonly(bt)


class TestInvariance:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_root_independence(self, seed):
        g, inst = _random_readonly(seed)
        n = inst.num_nodes
        costs = set()
        for root in range(min(n, 4)):
            _, cost = optimal_tree_placement_readonly(
                g, inst.storage_costs, inst.read_freq, root=root
            )
            costs.add(round(cost, 8))
        assert len(costs) == 1

    def test_multi_object(self):
        g = random_tree(7, seed=3)
        rng = np.random.default_rng(3)
        cs = rng.uniform(0.5, 4.0, size=7)
        fr = rng.integers(0, 5, size=(3, 7)).astype(float)
        placement, total = optimal_tree_placement_readonly(g, cs, fr)
        assert placement.num_objects == 3
        singles = sum(
            optimal_tree_placement_readonly(g, cs, fr[i : i + 1])[1] for i in range(3)
        )
        assert total == pytest.approx(singles)
