"""Property tests for the trial-config hash and sweep expansion.

The cache contract of :mod:`repro.bench` rests on :func:`config_hash`
being a pure function of the declared values: invariant under dict key
order and JSON round-trips, sensitive to every knob, and identical
across processes (no ``PYTHONHASHSEED``, ``id()`` or ``repr`` leakage).
"""

import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import SweepConfig, TrialConfig, config_hash

param_names = st.sampled_from(
    ["n", "seed", "drift", "epochs", "jobs", "scenario", "compare_loop",
     "sizes"]
)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)
values = st.one_of(scalars, st.lists(scalars, max_size=4))
param_dicts = st.dictionaries(param_names, values, max_size=8)


class TestConfigHash:
    @given(params=param_dicts)
    @settings(max_examples=50, deadline=None)
    def test_invariant_under_key_order(self, params):
        reordered = dict(reversed(list(params.items())))
        assert config_hash(params) == config_hash(reordered)
        assert (
            TrialConfig.make("E1", **params).hash
            == TrialConfig.make("E1", **reordered).hash
        )

    @given(params=param_dicts)
    @settings(max_examples=50, deadline=None)
    def test_invariant_under_json_round_trip(self, params):
        config = TrialConfig.make("E1", **params)
        revived = TrialConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert revived == config
        assert revived.hash == config.hash

    @given(params=param_dicts, extra=values)
    @settings(max_examples=50, deadline=None)
    def test_changes_when_a_knob_is_added(self, params, extra):
        base = TrialConfig.make("E1", **params)
        grown = TrialConfig.make("E1", _new_knob=extra, **params)
        assert grown.hash != base.hash

    def test_changes_when_any_knob_changes(self):
        base = dict(n=60, num_objects=48, chunk_size=16, jobs=[2],
                    compare_loop=True)
        perturbed = [
            dict(base, n=61),
            dict(base, num_objects=47),
            dict(base, chunk_size=8),
            dict(base, jobs=[2, 4]),
            dict(base, compare_loop=False),
        ]
        hashes = [TrialConfig.make("E14", **p).hash for p in [base, *perturbed]]
        assert len(set(hashes)) == len(hashes)
        # ...and the experiment id itself is a knob
        assert (
            TrialConfig.make("E14", **base).hash
            != TrialConfig.make("E15", **base).hash
        )

    def test_tuple_list_and_numpy_spellings_agree(self):
        plain = TrialConfig.make("E14", jobs=[2], n=60)
        assert TrialConfig.make("E14", jobs=(2,), n=60) == plain
        assert (
            TrialConfig.make("E14", jobs=[np.int64(2)], n=np.int32(60))
            == plain
        )
        assert TrialConfig.make("e14", jobs=[2], n=60) == plain

    def test_negative_zero_folds_onto_zero(self):
        assert (
            TrialConfig.make("E1", drift=-0.0).hash
            == TrialConfig.make("E1", drift=0.0).hash
        )

    def test_hash_is_short_hex(self):
        h = TrialConfig.make("E1", n=6).hash
        assert len(h) == 16
        int(h, 16)  # must be valid hex

    def test_stable_across_processes_and_hash_seeds(self):
        """The digest must not depend on the interpreter's hash seed --
        the classic way ``id()``/``repr``/set-order leakage shows up."""
        config = TrialConfig.make(
            "E16", n=40, drift=0.34, backends=["dense", "lazy"],
            scenarios=["drift"], tolerance=0.05,
        )
        snippet = (
            "from repro.bench import TrialConfig; "
            "print(TrialConfig.make('E16', n=40, drift=0.34, "
            "backends=['dense', 'lazy'], scenarios=['drift'], "
            "tolerance=0.05).hash)"
        )
        for hash_seed in ("0", "1", "424242"):
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": "src"},
            )
            assert proc.stdout.strip() == config.hash


class TestTrialConfig:
    def test_raw_constructor_enforces_canonical_form(self):
        with pytest.raises(ValueError, match="sorted"):
            TrialConfig("E1", params=(("b", 1), ("a", 2)))
        with pytest.raises(ValueError, match="duplicate"):
            TrialConfig("E1", params=(("a", 1), ("a", 2)))
        with pytest.raises(ValueError, match="canonical"):
            TrialConfig("E1", params=(("a", (1, 2)),))  # tuple, not list
        with pytest.raises(ValueError, match="experiment"):
            TrialConfig("")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown TrialConfig key"):
            TrialConfig.from_dict({"experiment": "E1", "paarms": {}})
        with pytest.raises(TypeError, match="experiment"):
            TrialConfig.from_dict({"params": {}})

    def test_label_names_experiment_and_hash(self):
        config = TrialConfig.make("E14", n=60)
        assert config.label() == f"E14[{config.hash}]"


class TestSweepConfig:
    SWEEP = {
        "name": "nightly",
        "experiments": [
            {
                "experiment": "E14",
                "params": {"n": 60, "compare_loop": True},
                "grid": {"num_objects": [48, 96], "chunk_size": [16, 32]},
            },
            {"experiment": "E1", "params": {"n": 6}},
        ],
    }

    def test_grid_expansion_is_deterministic(self):
        trials = SweepConfig.from_dict(self.SWEEP).trials()
        assert len(trials) == 5  # 2 x 2 grid + one fixed E1
        assert [t.experiment for t in trials] == ["E14"] * 4 + ["E1"]
        # grid keys sorted, values in declaration order
        assert [t.params_dict["chunk_size"] for t in trials[:4]] == \
            [16, 16, 32, 32]
        assert [t.params_dict["num_objects"] for t in trials[:4]] == \
            [48, 96, 48, 96]
        again = SweepConfig.from_dict(self.SWEEP).trials()
        assert [t.hash for t in again] == [t.hash for t in trials]

    def test_round_trips_through_to_dict(self):
        sweep = SweepConfig.from_dict(self.SWEEP)
        assert SweepConfig.from_dict(sweep.to_dict()) == sweep

    def test_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="unknown SweepConfig key"):
            SweepConfig.from_dict({"name": "x", "experiment": []})
        bad_entry = {
            "name": "x",
            "experiments": [{"experiment": "E1", "gird": {}}],
        }
        with pytest.raises(TypeError, match="unknown sweep entry key"):
            SweepConfig.from_dict(bad_entry)

    def test_rejects_param_grid_overlap_and_empty_grid(self):
        with pytest.raises(ValueError, match="both 'params' and 'grid'"):
            SweepConfig.from_dict({
                "name": "x",
                "experiments": [{
                    "experiment": "E1", "params": {"n": 6}, "grid": {"n": [6]},
                }],
            })
        with pytest.raises(ValueError, match="non-empty list"):
            SweepConfig.from_dict({
                "name": "x",
                "experiments": [{"experiment": "E1", "grid": {"n": []}}],
            })

    def test_from_file_json_and_toml(self, tmp_path):
        jpath = tmp_path / "sweep.json"
        jpath.write_text(json.dumps(self.SWEEP))
        from_json = SweepConfig.from_file(jpath)
        assert from_json == SweepConfig.from_dict(self.SWEEP)

        tpath = tmp_path / "sweep.toml"
        tpath.write_text(
            'name = "nightly"\n'
            "[[experiments]]\n"
            'experiment = "E14"\n'
            "[experiments.params]\n"
            "n = 60\ncompare_loop = true\n"
            "[experiments.grid]\n"
            "num_objects = [48, 96]\nchunk_size = [16, 32]\n"
            "[[experiments]]\n"
            'experiment = "E1"\n'
            "[experiments.params]\n"
            "n = 6\n"
        )
        assert SweepConfig.from_file(tpath) == from_json
