"""Tests for repro.core.tree_binarize: structure and distance preservation."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree_binarize import BinaryNode, BinaryTreeInstance, binarize_tree
from repro.graphs.generators import balanced_tree, random_tree, star_graph


def _data(n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(0.5, 3.0, size=n),
        rng.integers(0, 5, size=n).astype(float),
        rng.integers(0, 3, size=n).astype(float),
    )


def _bt_metric_between_real(bt: BinaryTreeInstance) -> dict[tuple[int, int], float]:
    """All-pairs distances between real nodes in the binarized tree."""
    g = nx.Graph()
    for i, node in enumerate(bt.nodes):
        for c, w in node.children:
            g.add_edge(i, c, weight=w)
    if bt.nodes and not g.nodes:
        g.add_node(0)
    dist = dict(nx.all_pairs_dijkstra_path_length(g, weight="weight"))
    out = {}
    real = {i: n.original for i, n in enumerate(bt.nodes) if n.original is not None}
    for i, oi in real.items():
        for j, oj in real.items():
            out[(oi, oj)] = dist[i][j]
    return out


class TestStructure:
    def test_binary_constraint_enforced(self):
        with pytest.raises(ValueError, match="two children"):
            BinaryTreeInstance(
                [BinaryNode(0, 1.0, 0, 0, children=[(1, 1.0), (2, 1.0), (3, 1.0)])]
                + [BinaryNode(i, 1.0, 0, 0) for i in (1, 2, 3)]
            )

    def test_star_gets_virtual_combiners(self):
        g = star_graph(6, seed=1)  # centre 0 with 5 leaves
        bt = binarize_tree(g, *_data(6))
        assert all(len(n.children) <= 2 for n in bt.nodes)
        virtual = [n for n in bt.nodes if n.original is None]
        assert virtual, "a degree-5 node needs combiner nodes"
        for v in virtual:
            assert math.isinf(v.cs)
            assert v.fr == 0 and v.fw == 0

    def test_virtual_edges_zero_weight(self):
        g = star_graph(7, seed=2)
        bt = binarize_tree(g, *_data(7))
        for i, node in enumerate(bt.nodes):
            for c, w in node.children:
                if bt.nodes[c].original is None:
                    assert w == 0.0

    def test_real_nodes_preserved_once(self):
        g = random_tree(12, seed=5)
        bt = binarize_tree(g, *_data(12))
        originals = [n.original for n in bt.nodes if n.original is not None]
        assert sorted(originals) == list(range(12))

    def test_node_data_carried(self):
        g = random_tree(8, seed=6)
        cs, fr, fw = _data(8, seed=6)
        bt = binarize_tree(g, cs, fr, fw)
        for node in bt.nodes:
            if node.original is not None:
                v = node.original
                assert node.cs == pytest.approx(cs[v])
                assert node.fr == pytest.approx(fr[v])
                assert node.fw == pytest.approx(fw[v])

    def test_postorder_children_first(self):
        g = random_tree(15, seed=7)
        bt = binarize_tree(g, *_data(15))
        pos = {v: i for i, v in enumerate(bt.postorder)}
        for i, node in enumerate(bt.nodes):
            for c, _ in node.children:
                assert pos[c] < pos[i]
        assert len(bt.postorder) == len(bt.nodes)

    def test_totals_match(self):
        g = random_tree(9, seed=8)
        cs, fr, fw = _data(9, seed=8)
        bt = binarize_tree(g, cs, fr, fw)
        assert bt.total_writes() == pytest.approx(fw.sum())
        assert bt.total_reads() == pytest.approx(fr.sum())
        assert bt.num_real_nodes() == 9

    def test_single_node_tree(self):
        g = nx.Graph()
        g.add_node(0)
        bt = binarize_tree(g, np.ones(1), np.ones(1), np.zeros(1))
        assert len(bt.nodes) == 1
        assert bt.nodes[0].children == []


class TestValidation:
    def test_rejects_cycle(self):
        g = nx.cycle_graph(4)
        with pytest.raises(ValueError, match="not a tree"):
            binarize_tree(g, *_data(4))

    def test_rejects_disconnected(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError, match="not a tree"):
            binarize_tree(g, *_data(4))

    def test_rejects_bad_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError, match="0..n-1"):
            binarize_tree(g, *_data(2))

    def test_rejects_bad_shapes(self):
        g = random_tree(4, seed=1)
        with pytest.raises(ValueError, match="shape"):
            binarize_tree(g, np.ones(3), np.ones(4), np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            binarize_tree(nx.Graph(), np.ones(0), np.ones(0), np.ones(0))


class TestDistancePreservation:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=25, deadline=None)
    def test_real_node_distances_unchanged(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        g = random_tree(n, seed=seed)
        bt = binarize_tree(g, *_data(n, seed=seed))
        bt_dist = _bt_metric_between_real(bt)
        orig = dict(nx.all_pairs_dijkstra_path_length(g, weight="weight"))
        for (u, v), d in bt_dist.items():
            assert d == pytest.approx(orig[u][v], abs=1e-9)

    def test_high_degree_distance_preserved(self):
        g = star_graph(20, seed=3)
        bt = binarize_tree(g, *_data(20, seed=3))
        bt_dist = _bt_metric_between_real(bt)
        orig = dict(nx.all_pairs_dijkstra_path_length(g, weight="weight"))
        for (u, v), d in bt_dist.items():
            assert d == pytest.approx(orig[u][v], abs=1e-9)

    def test_combiner_depth_logarithmic(self):
        """The balanced split keeps the virtual chain depth O(log deg)."""
        g = star_graph(65, seed=4)  # centre with 64 leaves
        bt = binarize_tree(g, *_data(65, seed=4))
        # depth of virtual chains from the root
        depth = {bt.root: 0}
        stack = [bt.root]
        max_virtual_run = 0
        while stack:
            v = stack.pop()
            node = bt.nodes[v]
            run = depth[v] if node.original is None else 0
            max_virtual_run = max(max_virtual_run, run)
            for c, _ in node.children:
                depth[c] = (depth[v] + 1) if bt.nodes[c].original is None else 0
                stack.append(c)
        assert max_virtual_run <= 2 * int(np.ceil(np.log2(64))) + 1
