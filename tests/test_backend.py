"""Distance-backend tests: LazyMetric vs dense Metric parity, cache
behaviour, candidate facility sets, and the large-instance memory bound.

The contract under test: both backends answer every
``DistanceBackend`` query with identical values on the same graph, and
the full Section 2 pipeline therefore produces identical placements --
while the lazy backend never materializes the ``O(n^2)`` closure.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approximate_object_placement
from repro.core.costs import object_cost, placement_cost
from repro.core.instance import DataManagementInstance
from repro.core.placement import Placement
from repro.core.radii import RequestProfile, radii_for_object
from repro.facility import facility_candidate_set, related_facility_problem
from repro.graphs import (
    DistanceBackend,
    LazyMetric,
    Metric,
    dense_distance_matrix,
    generators,
    lazy_metric_from_graph,
    metric_from_graph,
)
from repro.graphs.steiner import steiner_exact_cost
from repro.workloads import make_instance

seeds = st.integers(min_value=0, max_value=200)


def both_backends(graph):
    return Metric.from_graph(graph), LazyMetric.from_graph(graph)


def random_graph(seed: int, n: int = 20):
    family = seed % 3
    if family == 0:
        return generators.erdos_renyi_graph(n, 0.3, seed=seed)
    if family == 1:
        return generators.random_geometric_graph(n, 0.5, seed=seed)
    return generators.random_tree(n, seed=seed)


class TestProtocol:
    def test_both_backends_satisfy_protocol(self):
        g = generators.ring_graph(6, seed=0)
        dense, lazy = both_backends(g)
        assert isinstance(dense, DistanceBackend)
        assert isinstance(lazy, DistanceBackend)

    def test_index_maps_agree(self):
        g = generators.random_tree(9, seed=4)
        _, idx_d, nodes_d = metric_from_graph(g)
        _, idx_l, nodes_l = lazy_metric_from_graph(g)
        assert idx_d == idx_l and nodes_d == nodes_l

    def test_disconnected_graph_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(2, 3, weight=1.0)
        with pytest.raises(ValueError, match="connected"):
            lazy_metric_from_graph(g)
        with pytest.raises(ValueError, match="connected"):
            LazyMetric.from_graph(g)


class TestQueryParity:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_rows_and_single_distances(self, seed):
        g = random_graph(seed)
        dense, lazy = both_backends(g)
        n = dense.n
        rng = np.random.default_rng(seed)
        block = rng.choice(n, size=5, replace=False)
        assert np.allclose(dense.rows(block), lazy.rows(block))
        assert np.allclose(dense.pairwise(block), lazy.pairwise(block))
        u, v = int(block[0]), int(block[1])
        assert dense.d(u, v) == pytest.approx(lazy.d(u, v))
        assert np.allclose(dense.row(u), lazy.row(u))

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_set_queries(self, seed):
        g = random_graph(seed)
        dense, lazy = both_backends(g)
        n = dense.n
        rng = np.random.default_rng(seed + 1)
        targets = sorted(set(rng.integers(0, n, size=4).tolist()))
        assert np.allclose(dense.dist_to_set(targets), lazy.dist_to_set(targets))
        nd, dd = dense.nearest_in_set(targets)
        nl, dl = lazy.nearest_in_set(targets)
        assert np.array_equal(nd, nl)
        assert np.allclose(dd, dl)

    def test_large_target_set_uses_multi_source(self):
        # > _SMALL_TARGET_SET targets exercises the min_only Dijkstra path
        g = generators.erdos_renyi_graph(60, 0.15, seed=3)
        dense, lazy = both_backends(g)
        targets = list(range(0, 60, 1))[:40]
        assert np.allclose(dense.dist_to_set(targets), lazy.dist_to_set(targets))
        nd, dd = dense.nearest_in_set(targets)
        nl, dl = lazy.nearest_in_set(targets)
        assert np.allclose(dd, dl)
        # the chosen source must realize the distance even if ties differ
        assert np.allclose(
            [lazy.d(int(s), v) for v, s in enumerate(nl)], dl
        )

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_matvec(self, seed):
        g = random_graph(seed)
        dense, lazy = both_backends(g)
        rng = np.random.default_rng(seed + 2)
        w = rng.random(dense.n)
        assert np.allclose(dense.matvec(w), lazy.matvec(w))

    def test_empty_set_conventions(self):
        g = generators.ring_graph(5, seed=1)
        dense, lazy = both_backends(g)
        assert np.all(np.isinf(lazy.dist_to_set([])))
        assert np.all(np.isinf(dense.dist_to_set([])))
        with pytest.raises(ValueError):
            lazy.nearest_in_set([])


class TestCache:
    def test_lru_eviction_and_hits(self):
        g = generators.erdos_renyi_graph(30, 0.3, seed=5)
        lazy = LazyMetric.from_graph(g, cache_rows=4)
        for v in range(6):
            lazy.row(v)
        # validation row + 6 fetches, capacity 4
        assert len(lazy._cache) == 4
        before = lazy.rows_computed
        lazy.row(5)  # cached -> no recompute
        assert lazy.rows_computed == before
        assert lazy.cache_hits >= 1
        lazy.row(0)  # evicted -> recompute
        assert lazy.rows_computed == before + 1

    def test_cache_stats_reports_hit_rate(self):
        g = generators.erdos_renyi_graph(20, 0.3, seed=7)
        lazy = LazyMetric.from_graph(g, cache_rows=3)
        stats = lazy.cache_stats()
        assert stats["cache_rows"] == 3 and lazy.cache_rows == 3
        lazy.row(4)
        lazy.row(4)
        stats = lazy.cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] == lazy.cache_misses
        assert 0.0 < stats["hit_rate"] <= 1.0

    def test_cache_stats_hit_rate_zero_before_any_lookup(self):
        # 0.0, not None/NaN: per-shard aggregation sums hit rates without
        # special-casing backends that never served a lookup
        g = generators.random_tree(8, seed=8)
        adj = LazyMetric.from_graph(g).adjacency
        fresh = LazyMetric(adj, cache_rows=2, validate=False)
        assert fresh.cache_stats()["hit_rate"] == 0.0

    def test_precompute_pins_rows(self):
        g = generators.erdos_renyi_graph(30, 0.3, seed=6)
        lazy = LazyMetric.from_graph(g, cache_rows=2)
        lazy.precompute([7, 8, 9])
        computed = lazy.rows_computed
        for _ in range(3):
            for v in (7, 8, 9):
                lazy.row(v)
        assert lazy.rows_computed == computed  # pinned rows never evicted
        # pinning is idempotent
        lazy.precompute([7, 8, 9])
        assert lazy.rows_computed == computed

    def test_as_dense_roundtrip_and_guard(self):
        g = generators.random_tree(12, seed=7)
        dense, lazy = both_backends(g)
        assert np.allclose(lazy.as_dense().dist, dense.dist)
        with pytest.raises(ValueError, match="refusing"):
            lazy.as_dense(max_nodes=4)

    def test_dense_guard_error_names_caller(self):
        g = generators.random_tree(10, seed=8)
        lazy = LazyMetric.from_graph(g)
        with pytest.raises(ValueError, match="steiner_exact_cost"):
            dense_distance_matrix(lazy, max_nodes=4, context="steiner_exact_cost")

    def test_exact_steiner_works_on_small_lazy_metric(self):
        g = generators.random_tree(10, seed=8)
        dense, lazy = both_backends(g)
        terms = [0, 3, 7]
        assert steiner_exact_cost(lazy, terms) == pytest.approx(
            steiner_exact_cost(dense, terms)
        )


class TestPipelineParity:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_placement_parity(self, seed):
        g = random_graph(seed, n=18)
        dense, lazy = both_backends(g)
        inst_d = make_instance(dense, seed=seed + 50, num_objects=2)
        inst_l = make_instance(lazy, seed=seed + 50, num_objects=2)
        for obj in range(2):
            cd = approximate_object_placement(inst_d, obj)
            cl = approximate_object_placement(inst_l, obj)
            assert cd == cl
            pd = object_cost(inst_d, obj, cd, policy="mst")
            pl = object_cost(inst_l, obj, cl, policy="mst")
            assert pd.total == pytest.approx(pl.total)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_radii_parity(self, seed):
        g = random_graph(seed, n=16)
        dense, lazy = both_backends(g)
        inst = make_instance(dense, seed=seed + 60, num_objects=1)
        rw_d, rs_d, zs_d = radii_for_object(
            dense, inst.storage_costs, inst.read_freq[0], inst.write_freq[0]
        )
        rw_l, rs_l, zs_l = radii_for_object(
            lazy, inst.storage_costs, inst.read_freq[0], inst.write_freq[0],
            block_size=5,  # force multiple blocks
        )
        assert np.allclose(rw_d, rw_l)
        assert np.allclose(rs_d, rs_l)
        assert np.array_equal(zs_d, zs_l)

    def test_request_profile_matches_block_sweep(self):
        g = generators.random_geometric_graph(14, 0.6, seed=9)
        dense = Metric.from_graph(g)
        inst = make_instance(dense, seed=70, num_objects=1)
        weights = inst.demand(0)
        prof = RequestProfile(dense, weights)
        rw, rs, zs = radii_for_object(
            dense, inst.storage_costs, inst.read_freq[0], inst.write_freq[0]
        )
        W = inst.total_writes(0)
        for v in range(dense.n):
            assert prof.write_radius(v, W) == pytest.approx(rw[v])
            rs_v, zs_v = prof.storage_radius(v, float(inst.storage_costs[v]))
            assert rs_v == pytest.approx(rs[v])
            assert zs_v == zs[v]

    def test_batched_placement_cost_matches_per_object(self):
        g = generators.transit_stub_graph(2, 2, 4, seed=11)
        dense = Metric.from_graph(g)
        inst = make_instance(dense, seed=80, num_objects=3)
        placement = Placement(
            tuple(approximate_object_placement(inst, o) for o in range(3))
        )
        batched = placement_cost(inst, placement, policy="mst")
        manual = sum(
            (object_cost(inst, o, placement.copies(o), policy="mst").total
             for o in range(3)),
            0.0,
        )
        assert batched.total == pytest.approx(manual)

    def test_instance_from_graph_lazy_backend(self):
        g = generators.random_tree(10, seed=12)
        n = g.number_of_nodes()
        cs = np.ones(n)
        fr = np.ones((1, n))
        fw = np.zeros((1, n))
        inst = DataManagementInstance.from_graph(g, cs, fr, fw, backend="lazy")
        assert isinstance(inst.metric, LazyMetric)
        with pytest.raises(ValueError, match="backend"):
            DataManagementInstance.from_graph(g, cs, fr, fw, backend="sparse")


class TestFacilityCandidates:
    def test_small_instance_keeps_all_nodes(self):
        g = generators.random_tree(12, seed=13)
        dense = Metric.from_graph(g)
        inst = make_instance(dense, seed=90, num_objects=1)
        fl = related_facility_problem(inst, 0)
        assert fl.facility_nodes is None
        assert fl.num_facilities == dense.n

    def test_candidate_set_properties(self):
        g = generators.sized_transit_stub_graph(300, seed=14)
        dense, lazy = both_backends(g)
        inst = make_instance(dense, seed=91, num_objects=1)
        demand = inst.demand(0)
        k = 24
        cand_d = facility_candidate_set(dense, inst.storage_costs, demand, k)
        cand_l = facility_candidate_set(lazy, inst.storage_costs, demand, k)
        assert np.array_equal(cand_d, cand_l)  # backend-independent
        assert cand_d.size == k
        assert np.array_equal(cand_d, np.unique(cand_d))
        assert int(np.argmin(inst.storage_costs)) in cand_d

    def test_capped_problem_maps_back_to_nodes(self):
        g = generators.sized_transit_stub_graph(200, seed=15)
        dense = Metric.from_graph(g)
        inst = make_instance(dense, seed=92, num_objects=1)
        fl = related_facility_problem(inst, 0, max_facilities=16)
        assert fl.facility_nodes is not None and fl.num_facilities == 16
        nodes = fl.to_nodes([0, 3, 3, 5])
        assert nodes == sorted(set(nodes))
        assert all(v in fl.facility_nodes for v in nodes)

    def test_capped_placement_identical_across_backends(self):
        g = generators.sized_transit_stub_graph(250, seed=16)
        dense, lazy = both_backends(g)
        inst_d = make_instance(dense, seed=93, num_objects=1)
        inst_l = make_instance(lazy, seed=93, num_objects=1)
        cd = approximate_object_placement(inst_d, 0, facility_candidates=20)
        cl = approximate_object_placement(inst_l, 0, facility_candidates=20)
        assert cd == cl


class TestGenerators:
    def test_power_law_graph(self):
        import networkx as nx

        g = generators.power_law_graph(400, seed=17)
        assert g.number_of_nodes() == 400
        assert nx.is_connected(g)
        assert all(d["weight"] > 0 for _, _, d in g.edges(data=True))
        g2 = generators.power_law_graph(400, seed=17)
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_sized_transit_stub_graph(self):
        import networkx as nx

        for target in (100, 1000, 5000):
            g = generators.sized_transit_stub_graph(target, seed=18)
            n = g.number_of_nodes()
            assert abs(n - target) <= 0.2 * target + 50
            assert nx.is_connected(g)


class TestMemoryBound:
    def test_5k_instance_solves_without_dense_matrix(self):
        """A 5000-node placement must fit in a quarter of the dense
        closure's footprint (the tentpole acceptance bound, scaled down
        to test-suite runtime)."""
        g = generators.sized_transit_stub_graph(5000, seed=19)
        n = g.number_of_nodes()
        dense_bytes = 8 * n * n  # ~200 MB
        tracemalloc.start()
        lazy, _, _ = lazy_metric_from_graph(g)
        inst = make_instance(
            lazy, seed=94, num_objects=1, storage_price=max(1.0, n / 100.0)
        )
        copies = approximate_object_placement(inst, 0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(copies) >= 1
        assert peak < 0.25 * dense_bytes, (
            f"peak {peak / 1e6:.1f} MB exceeds 25% of the "
            f"{dense_bytes / 1e6:.0f} MB dense closure"
        )
        # the oracle must never have computed anywhere close to n^2 entries
        assert lazy.rows_computed <= 3 * n
