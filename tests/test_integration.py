"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro import (
    approximate_placement,
    optimal_tree_placement,
    placement_cost,
)
from repro.baselines import (
    best_single_node,
    brute_force_placement,
    full_replication,
    write_blind_placement,
)
from repro.core.costs import object_cost
from repro.core.restricted import restrict_placement
from repro.workloads import (
    distributed_file_system,
    tree_network,
    virtual_shared_memory,
    www_content_provider,
)


class TestScenarioPipelines:
    @pytest.mark.parametrize(
        "factory", [www_content_provider, distributed_file_system, virtual_shared_memory]
    )
    def test_scenario_end_to_end(self, factory):
        sc = factory()
        placement = approximate_placement(sc.instance)
        cost = placement_cost(sc.instance, placement, policy="mst")
        assert cost.total > 0
        assert placement.num_objects == sc.instance.num_objects
        # sanity: beat the trivial strategies on at least one axis
        for obj in range(sc.instance.num_objects):
            assert len(placement.copies(obj)) >= 1

    def test_www_read_heavy_replicates_popular_objects(self):
        sc = www_content_provider()
        placement = approximate_placement(sc.instance)
        degrees = [len(placement.copies(o)) for o in range(sc.instance.num_objects)]
        # read-heavy: popular (first) objects should be replicated at least
        # as widely as unpopular ones, on average
        first_half = np.mean(degrees[: len(degrees) // 2])
        second_half = np.mean(degrees[len(degrees) // 2 :])
        assert first_half >= second_half - 1.0

    def test_vsm_write_heavy_keeps_few_copies(self):
        sc = virtual_shared_memory()
        placement = approximate_placement(sc.instance)
        mean_degree = placement.replication_degree()
        assert mean_degree <= sc.instance.num_nodes / 2

    def test_tree_scenario_dp_beats_approx(self):
        sc = tree_network()
        dp_placement, dp_cost = optimal_tree_placement(
            sc.graph,
            sc.instance.storage_costs,
            sc.instance.read_freq,
            sc.instance.write_freq,
        )
        approx = approximate_placement(sc.instance)
        approx_cost = placement_cost(sc.instance, approx, policy="steiner_mst").total
        assert dp_cost <= approx_cost + 1e-9


class TestStrategyOrdering:
    def test_krw_vs_baselines_on_small_instances(self):
        """The approximation should be competitive with, and the brute
        force never worse than, every baseline."""
        from tests.conftest import make_random_instance

        for seed in range(10):
            inst = make_random_instance(seed, n=8)
            _, opt = brute_force_placement(inst, policy="mst")
            candidates = {
                "krw": approximate_placement(inst).copies(0),
                "median": best_single_node(inst, 0),
                "replicate": full_replication(inst, 0),
                "blind": write_blind_placement(inst, 0),
            }
            costs = {
                name: object_cost(inst, 0, c, policy="mst").total
                for name, c in candidates.items()
            }
            for name, cost in costs.items():
                assert opt <= cost + 1e-9, name
            # headline sanity: KRW within 4x of optimal on these instances
            assert costs["krw"] <= 4.0 * opt + 1e-9

    def test_restriction_of_krw_placement_stays_sane(self):
        from tests.conftest import make_random_instance

        for seed in range(8):
            inst = make_random_instance(seed, n=8)
            copies = approximate_placement(inst).copies(0)
            restricted = restrict_placement(inst, 0, copies)
            cost_r = object_cost(inst, 0, restricted, policy="mst").total
            # the restricted version exists and is a valid placement
            assert len(restricted) >= 1
            assert np.isfinite(cost_r)


class TestMultiObjectIndependence:
    def test_objects_placed_independently(self):
        """Per the paper, objects are independent: placing them jointly or
        separately must give identical results."""
        from repro.core.instance import DataManagementInstance
        from tests.conftest import make_random_instance

        base = make_random_instance(33, n=9)
        rng = np.random.default_rng(34)
        fr = rng.integers(0, 5, size=(3, 9)).astype(float)
        fw = rng.integers(0, 3, size=(3, 9)).astype(float)
        inst = DataManagementInstance(base.metric, base.storage_costs, fr, fw)
        joint = approximate_placement(inst)
        for obj in range(3):
            single = DataManagementInstance(
                base.metric, base.storage_costs, fr[obj : obj + 1], fw[obj : obj + 1]
            )
            alone = approximate_placement(single)
            assert joint.copies(obj) == alone.copies(0)
