"""Tests for repro.baselines: exhaustive optima and heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import (
    SteinerOracle,
    brute_force_object,
    brute_force_placement,
    object_cost_steiner_oracle,
)
from repro.baselines.heuristics import (
    best_single_node,
    full_replication,
    greedy_add_placement,
    local_search_placement,
    random_placement,
    write_blind_placement,
)
from repro.baselines.ilp import exact_read_only_object, exact_read_only_placement
from repro.core.costs import object_cost
from repro.core.instance import DataManagementInstance
from repro.graphs.metric import Metric
from repro.graphs.steiner import steiner_exact_cost
from tests.conftest import make_random_instance


class TestSteinerOracle:
    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=25, deadline=None)
    def test_matches_direct_dreyfus_wagner(self, seed):
        inst = make_random_instance(seed, n=7)
        oracle = SteinerOracle(inst.metric)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            k = int(rng.integers(1, 7))
            terms = sorted(rng.choice(7, size=k, replace=False).tolist())
            assert oracle.steiner_cost(terms) == pytest.approx(
                steiner_exact_cost(inst.metric, terms), rel=1e-9, abs=1e-9
            )

    def test_size_guard(self):
        m = Metric(np.zeros((15, 15)))
        with pytest.raises(ValueError, match="exponential"):
            SteinerOracle(m)

    def test_oracle_cost_matches_policy_cost(self):
        inst = make_random_instance(8, n=7)
        oracle = SteinerOracle(inst.metric)
        copies = [0, 3, 5]
        a = object_cost_steiner_oracle(inst, 0, copies, oracle)
        b = object_cost(inst, 0, copies, policy="steiner")
        assert a.total == pytest.approx(b.total, rel=1e-9)
        assert a.update == pytest.approx(b.update, rel=1e-9)


class TestBruteForce:
    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_optimum_no_worse_than_any_candidate(self, seed):
        inst = make_random_instance(seed, n=6)
        _, opt = brute_force_object(inst, 0, policy="mst")
        rng = np.random.default_rng(seed)
        for _ in range(8):
            k = int(rng.integers(1, 7))
            copies = sorted(rng.choice(6, size=k, replace=False).tolist())
            assert opt <= object_cost(inst, 0, copies, policy="mst").total + 1e-9

    def test_returned_set_achieves_returned_cost(self):
        for seed in range(10):
            inst = make_random_instance(seed, n=7)
            copies, opt = brute_force_object(inst, 0, policy="mst")
            assert object_cost(inst, 0, copies, policy="mst").total == pytest.approx(opt)
            copies, opt = brute_force_object(inst, 0, policy="steiner")
            assert object_cost(inst, 0, copies, policy="steiner").total == pytest.approx(
                opt
            )

    def test_restricted_filter_is_superset_cost(self):
        inst = make_random_instance(21, n=7)
        _, unconstrained = brute_force_object(inst, 0, policy="mst")
        _, restricted = brute_force_object(inst, 0, policy="mst", require_restricted=True)
        assert restricted >= unconstrained - 1e-9

    def test_size_guard(self):
        m = Metric(np.zeros((19, 19)))
        inst = DataManagementInstance.single_object(
            m, np.ones(19), np.ones(19), np.zeros(19)
        )
        with pytest.raises(ValueError, match="refused"):
            brute_force_object(inst, 0)

    def test_unknown_policy(self):
        inst = make_random_instance(1, n=5)
        with pytest.raises(ValueError, match="policy"):
            brute_force_object(inst, 0, policy="bogus")

    def test_placement_level_sums_objects(self, line_metric):
        inst = DataManagementInstance(
            line_metric,
            np.ones(5),
            np.array([[2.0, 0, 0, 0, 0], [0, 0, 0, 0, 2.0]]),
            np.zeros((2, 5)),
        )
        placement, total = brute_force_placement(inst, policy="mst")
        a = brute_force_object(inst, 0, policy="mst")[1]
        b = brute_force_object(inst, 1, policy="mst")[1]
        assert total == pytest.approx(a + b)
        assert placement.num_objects == 2


class TestHeuristics:
    def test_best_single_node_is_optimal_single(self):
        for seed in range(10):
            inst = make_random_instance(seed, n=7)
            (v,) = best_single_node(inst, 0)
            cost_v = object_cost(inst, 0, [v], policy="mst").total
            for u in range(7):
                assert cost_v <= object_cost(inst, 0, [u], policy="mst").total + 1e-9

    def test_full_replication(self):
        inst = make_random_instance(3, n=6)
        assert full_replication(inst, 0) == tuple(range(6))

    def test_write_blind_nonempty(self):
        inst = make_random_instance(4, n=8)
        copies = write_blind_placement(inst, 0)
        assert len(copies) >= 1

    def test_write_blind_zero_demand(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric, np.array([2.0, 1.0, 3.0, 4.0, 5.0]), np.zeros(5), np.zeros(5)
        )
        assert write_blind_placement(inst, 0) == (1,)

    @given(st.integers(min_value=0, max_value=150))
    @settings(max_examples=20, deadline=None)
    def test_greedy_add_no_worse_than_single(self, seed):
        inst = make_random_instance(seed, n=7)
        single = object_cost(inst, 0, best_single_node(inst, 0), policy="mst").total
        greedy = object_cost(inst, 0, greedy_add_placement(inst, 0), policy="mst").total
        assert greedy <= single + 1e-9

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=12, deadline=None)
    def test_local_search_no_worse_than_greedy_start(self, seed):
        inst = make_random_instance(seed, n=7)
        single = object_cost(inst, 0, best_single_node(inst, 0), policy="mst").total
        local = object_cost(
            inst, 0, local_search_placement(inst, 0), policy="mst"
        ).total
        assert local <= single + 1e-9

    def test_local_search_is_local_optimum(self):
        inst = make_random_instance(17, n=6)
        copies = set(local_search_placement(inst, 0))
        cost = object_cost(inst, 0, copies, policy="mst").total
        for v in range(6):
            if v not in copies:
                assert (
                    object_cost(inst, 0, copies | {v}, policy="mst").total
                    >= cost - 1e-9
                )

    def test_random_placement_contract(self):
        inst = make_random_instance(5, n=8)
        copies = random_placement(inst, 0, seed=3, k=4)
        assert len(copies) == 4
        assert all(0 <= v < 8 for v in copies)
        assert random_placement(inst, 0, seed=3, k=4) == copies

    def test_random_placement_k_validated(self):
        inst = make_random_instance(5, n=8)
        with pytest.raises(ValueError):
            random_placement(inst, 0, seed=1, k=0)
        with pytest.raises(ValueError):
            random_placement(inst, 0, seed=1, k=9)


class TestReadOnlyILP:
    def test_matches_brute_force_read_only(self):
        for seed in range(8):
            inst = make_random_instance(seed, n=7, max_write=0)
            copies = exact_read_only_object(inst, 0)
            cost = object_cost(inst, 0, copies, policy="mst").total
            _, opt = brute_force_object(inst, 0, policy="mst")
            assert cost == pytest.approx(opt, rel=1e-9)

    def test_rejects_instances_with_writes(self):
        inst = make_random_instance(9, n=6, max_write=3)
        if inst.total_writes(0) > 0:
            with pytest.raises(ValueError, match="writes"):
                exact_read_only_object(inst, 0)

    def test_placement_level(self, line_metric):
        inst = DataManagementInstance(
            line_metric,
            np.ones(5),
            np.array([[3.0, 0, 0, 0, 0], [0, 0, 0, 0, 3.0]]),
            np.zeros((2, 5)),
        )
        placement = exact_read_only_placement(inst)
        assert placement.num_objects == 2
        assert 0 in placement.copies(0)
        assert 4 in placement.copies(1)
