"""Tests for repro.config: validation, serialization, engine hand-off."""

import json

import pytest

from repro.config import BACKEND_CHOICES, PlanConfig
from repro.engine import DEFAULT_CHUNK_SIZE, PlacementEngine


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = PlanConfig()
        assert cfg.backend == "auto"
        assert cfg.chunk_size == DEFAULT_CHUNK_SIZE
        assert cfg.jobs == 1

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(backend="sparse"), "backend"),
            (dict(fl_solver="nope"), "fl_solver"),
            (dict(cost_policy="cheapest"), "cost_policy"),
            (dict(chunk_size=0), "chunk_size"),
            (dict(jobs=0), "jobs"),
            (dict(radii_block=0), "radii_block"),
            (dict(replication_threshold=0), "replication_threshold"),
            (dict(facility_candidates=0), "facility_candidates"),
            (dict(replan_mode="partial"), "replan_mode"),
            (dict(replan_tolerance=-0.1), "replan_tolerance"),
            (dict(replan_tolerance=float("nan")), "replan_tolerance"),
            (dict(kernels="fortran"), "kernels"),
            (dict(cache_rows=0), "cache_rows"),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            PlanConfig(**kwargs)

    def test_replace_revalidates(self):
        cfg = PlanConfig()
        assert cfg.replace(jobs=4).jobs == 4
        with pytest.raises(ValueError, match="jobs"):
            cfg.replace(jobs=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PlanConfig().jobs = 2

    def test_backend_choices_exported(self):
        assert set(BACKEND_CHOICES) == {"auto", "dense", "lazy"}

    def test_replan_knobs(self):
        from repro.config import REPLAN_MODES

        assert set(REPLAN_MODES) == {"full", "incremental"}
        cfg = PlanConfig(replan_mode="incremental", replan_tolerance=0.25)
        assert cfg.replan_mode == "incremental"
        assert cfg.replan_tolerance == 0.25
        assert PlanConfig().replan_mode == "full"  # full re-solve by default
        # the replan knobs steer the replanner, never the engine
        assert "replan_mode" not in cfg.engine_kwargs()

    def test_serve_knobs(self):
        from repro.config import SERVE_TRIGGERS

        assert set(SERVE_TRIGGERS) == {"drift", "every-epoch"}
        cfg = PlanConfig(serve_trigger="every-epoch",
                         serve_checkpoint_every=3, serve_max_lag=2)
        assert cfg.serve_trigger == "every-epoch"
        assert cfg.serve_checkpoint_every == 3
        assert cfg.serve_max_lag == 2
        defaults = PlanConfig()
        assert defaults.serve_trigger == "drift"
        assert defaults.serve_checkpoint_every == 0  # shutdown-only
        assert defaults.serve_max_lag == 4
        # the serve knobs steer the daemon, never the engine
        assert "serve_trigger" not in cfg.engine_kwargs()
        with pytest.raises(ValueError, match="serve_trigger"):
            PlanConfig(serve_trigger="sometimes")
        with pytest.raises(ValueError, match="serve_checkpoint_every"):
            PlanConfig(serve_checkpoint_every=-1)
        with pytest.raises(ValueError, match="serve_max_lag"):
            PlanConfig(serve_max_lag=0)
        # the knobs ride the dict/file round trip like every other field
        assert PlanConfig.from_dict(cfg.to_dict()) == cfg

    def test_transport_and_kernel_knobs(self):
        from repro.config import KERNEL_MODES
        from repro.graphs.backend import DEFAULT_CACHE_ROWS

        assert set(KERNEL_MODES) == {"auto", "numpy", "numba"}
        cfg = PlanConfig(shared_memory=False, kernels="numpy", cache_rows=7)
        assert cfg.engine_kwargs()["shared_memory"] is False
        assert cfg.engine_kwargs()["kernels"] == "numpy"
        # cache_rows sizes the LazyMetric the *planner* builds; the
        # engine never resizes an instance's own backend
        assert "cache_rows" not in cfg.engine_kwargs()
        defaults = PlanConfig()
        assert defaults.shared_memory is True
        assert defaults.kernels == "auto"
        assert defaults.cache_rows == DEFAULT_CACHE_ROWS


class TestSerialization:
    def test_dict_round_trip(self):
        cfg = PlanConfig(fl_solver="greedy", jobs=3, seed=11,
                         facility_candidates=7, replan_mode="incremental",
                         replan_tolerance=0.1, shared_memory=False,
                         kernels="numpy", cache_rows=17)
        assert PlanConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TypeError, match="chunk_sze"):
            PlanConfig.from_dict({"chunk_sze": 4})

    def test_json_file_round_trip(self, tmp_path):
        cfg = PlanConfig(chunk_size=32, phase3=False)
        path = tmp_path / "cfg.json"
        cfg.to_file(path)
        assert PlanConfig.from_file(path) == cfg

    def test_partial_json_file_uses_defaults(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"jobs": 2}))
        cfg = PlanConfig.from_file(path)
        assert cfg.jobs == 2 and cfg.fl_solver == "local_search"

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "cfg.toml"
        path.write_text('fl_solver = "greedy"\njobs = 2\nphase2 = false\n')
        cfg = PlanConfig.from_file(path)
        assert cfg == PlanConfig(fl_solver="greedy", jobs=2, phase2=False)

    def test_non_mapping_file_rejected(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TypeError, match="mapping"):
            PlanConfig.from_file(path)


class TestEngineHandOff:
    def test_engine_kwargs_accepted_by_engine(self, line_metric):
        import numpy as np

        from repro.core.instance import DataManagementInstance

        inst = DataManagementInstance(
            line_metric, np.ones(5), np.ones((2, 5)), np.zeros((2, 5))
        )
        cfg = PlanConfig(fl_solver="greedy", chunk_size=2, radii_block=16)
        engine = PlacementEngine(inst, **cfg.engine_kwargs())
        assert engine.fl_solver == "greedy"
        assert engine.chunk_size == 2
        assert PlacementEngine.from_config(inst, cfg).place().copy_sets \
            == engine.place().copy_sets

    def test_engine_config_round_trip(self, line_metric):
        import numpy as np

        from repro.core.instance import DataManagementInstance

        inst = DataManagementInstance(
            line_metric, np.ones(5), np.ones((1, 5)), np.zeros((1, 5))
        )
        cfg = PlanConfig(fl_solver="greedy", chunk_size=3, jobs=2)
        engine = PlacementEngine.from_config(inst, cfg)
        # the engine's config property reflects exactly the engine knobs
        assert engine.config.engine_kwargs() == cfg.engine_kwargs()
        # for_instance preserves the configuration
        clone = engine.for_instance(inst)
        assert clone.config.engine_kwargs() == cfg.engine_kwargs()
