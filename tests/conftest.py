"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.instance import DataManagementInstance
from repro.graphs.metric import Metric


def make_random_instance(
    seed: int,
    *,
    n: int | None = None,
    kind: str = "mixed",
    max_read: int = 6,
    max_write: int = 3,
    cs_high: float = 6.0,
) -> DataManagementInstance:
    """Small random single-object instance over a random connected graph.

    ``kind``: ``"tree"``, ``"graph"`` or ``"mixed"`` (seed-dependent).
    Deterministic in ``seed``.
    """
    from repro.graphs.generators import erdos_renyi_graph, random_tree

    rng = np.random.default_rng(seed)
    if n is None:
        n = int(rng.integers(3, 11))
    if kind == "tree" or (kind == "mixed" and seed % 2 == 0):
        g = random_tree(n, seed=seed)
    else:
        g = erdos_renyi_graph(n, 0.4, seed=seed)
    metric = Metric.from_graph(g)
    fr = rng.integers(0, max_read + 1, size=n).astype(float)
    fw = rng.integers(0, max_write + 1, size=n).astype(float)
    if fr.sum() + fw.sum() == 0:
        fr[int(rng.integers(0, n))] = 1.0
    cs = rng.uniform(0.1, cs_high, size=n)
    return DataManagementInstance.single_object(metric, cs, fr, fw)


def make_random_tree_instance(
    seed: int, *, n: int | None = None, **kwargs
) -> tuple[nx.Graph, DataManagementInstance]:
    """Random tree plus matching instance (graph needed for the tree DP)."""
    from repro.graphs.generators import random_tree

    rng = np.random.default_rng(seed)
    if n is None:
        n = int(rng.integers(2, 10))
    g = random_tree(n, seed=seed)
    metric = Metric.from_graph(g)
    fr = rng.integers(0, kwargs.get("max_read", 6) + 1, size=n).astype(float)
    fw = rng.integers(0, kwargs.get("max_write", 3) + 1, size=n).astype(float)
    cs = rng.uniform(0.1, kwargs.get("cs_high", 6.0), size=n)
    return g, DataManagementInstance.single_object(metric, cs, fr, fw)


@pytest.fixture
def line_metric() -> Metric:
    """Five nodes on a line with unit spacing: distances are |i - j|."""
    n = 5
    dist = np.abs(np.subtract.outer(np.arange(n, dtype=float), np.arange(n, dtype=float)))
    return Metric(dist)


@pytest.fixture
def triangle_metric() -> Metric:
    """Three nodes, pairwise distances 3-4-5."""
    dist = np.array(
        [
            [0.0, 3.0, 4.0],
            [3.0, 0.0, 5.0],
            [4.0, 5.0, 0.0],
        ]
    )
    return Metric(dist)
