"""Sharded solve stack: PortalMetric routing, engine dispatch, the
krw-sharded strategy and its degenerate-path guarantee."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Planner
from repro.config import PlanConfig
from repro.core.costs import placement_cost
from repro.core.instance import DataManagementInstance
from repro.engine import PlacementEngine
from repro.graphs import (
    Partition,
    PortalMetric,
    partition_graph,
    partition_instance,
)
from repro.graphs.backend import DistanceBackend, LazyMetric
from repro.graphs.generators import sized_transit_stub_graph, transit_stub_graph
from repro.graphs.metric import Metric
from repro.workloads import make_instance


def _setup(seed: int, *, n_hint: int = 160, num_objects: int = 6,
           backend: str = "dense"):
    g = sized_transit_stub_graph(n_hint, seed=seed)
    metric = Metric.from_graph(g) if backend == "dense" else LazyMetric.from_graph(g)
    inst = make_instance(
        metric, seed=seed + 100, num_objects=num_objects, write_fraction=0.2
    )
    return g, inst


class TestPortalMetric:
    def test_implements_backend_protocol(self):
        g, inst = _setup(3)
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        pm = PortalMetric(inst.metric, part)
        assert isinstance(pm, DistanceBackend)
        assert len(pm) == inst.num_nodes

    def test_intra_shard_distances_exact(self):
        g, inst = _setup(5)
        part = partition_graph(g, num_shards=4, portals_per_shard=2)
        pm = PortalMetric(inst.metric, part)
        D = inst.metric.dist
        for s in range(part.num_shards):
            members = part.shard_array(s)[:8]
            for v in members:
                row = pm.row(int(v))
                assert np.array_equal(row[members], D[v][members])

    def test_inter_shard_routing_admissible_and_symmetric(self):
        g, inst = _setup(7)
        part = partition_graph(g, num_shards=4, portals_per_shard=2)
        pm = PortalMetric(inst.metric, part)
        n = inst.num_nodes
        R = pm.rows(np.arange(n))
        assert (R - inst.metric.dist).min() >= -1e-9  # never undercuts
        assert np.allclose(R, R.T)                    # symmetric routing
        assert np.allclose(np.diag(R), 0.0)

    def test_full_boundary_portals_route_exactly(self):
        # with every boundary node a portal, portal routing introduces
        # no detour: the portal metric equals the true metric
        g, inst = _setup(9, n_hint=100)
        part = partition_graph(g, num_shards=3, portals_per_shard=10**9)
        pm = PortalMetric(inst.metric, part)
        R = pm.rows(np.arange(inst.num_nodes))
        assert np.allclose(R, inst.metric.dist)

    def test_reductions_match_routed_rows(self):
        g, inst = _setup(11)
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        pm = PortalMetric(inst.metric, part)
        n = inst.num_nodes
        R = pm.rows(np.arange(n))
        targets = [1, n // 2, n - 3]
        assert np.allclose(pm.dist_to_set(targets), R[:, targets].min(axis=1))
        nearest, ndist = pm.nearest_in_set(targets)
        expected = np.asarray(targets)[np.argmin(R[:, targets], axis=1)]
        assert np.array_equal(nearest, expected)
        assert np.allclose(ndist, R[:, targets].min(axis=1))
        w = np.linspace(0.5, 2.0, n)
        assert np.allclose(pm.matvec(w), R @ w)
        sub = pm.pairwise([0, 5, n - 1])
        assert np.allclose(sub, R[np.ix_([0, 5, n - 1], [0, 5, n - 1])])

    def test_single_shard_portal_metric_is_base(self):
        g, inst = _setup(13)
        pm = PortalMetric(inst.metric, Partition.trivial(inst.num_nodes))
        assert np.array_equal(
            pm.rows(np.arange(inst.num_nodes)), inst.metric.dist
        )

    def test_size_mismatch_rejected(self):
        g, inst = _setup(15)
        with pytest.raises(ValueError, match="nodes"):
            PortalMetric(inst.metric, Partition.trivial(inst.num_nodes + 1))


class TestShardedEngine:
    def test_sharded_placement_cost_near_global(self):
        g, inst = _setup(17, n_hint=200, num_objects=10)
        part = partition_graph(g, num_shards=4, portals_per_shard=3)
        engine = PlacementEngine(inst)
        global_p = engine.place()
        sharded_p, info = engine.place_sharded(part)
        ratio = (placement_cost(inst, sharded_p).total
                 / placement_cost(inst, global_p).total)
        # tiny instances pay proportionally more for shard-local facility
        # decisions; the 1.25 bound at headline sizes is enforced by the
        # E18 bench gate against the committed artifact
        assert ratio <= 1.35
        assert info["num_shards"] == 4
        assert sum(info["shard_sizes"]) == inst.num_nodes

    def test_jobs_do_not_change_sharded_placement(self):
        g, inst = _setup(19, n_hint=160, num_objects=8)
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        serial, _ = PlacementEngine(inst, chunk_size=3).place_sharded(part)
        pooled, _ = PlacementEngine(
            inst, chunk_size=3, jobs=2
        ).place_sharded(part)
        assert pooled.copy_sets == serial.copy_sets

    def test_pickle_transport_matches_shm(self):
        g, inst = _setup(21, n_hint=120, num_objects=6)
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        shm, _ = PlacementEngine(inst, chunk_size=2, jobs=2).place_sharded(part)
        pickled, _ = PlacementEngine(
            inst, chunk_size=2, jobs=2, shared_memory=False
        ).place_sharded(part)
        assert pickled.copy_sets == shm.copy_sets

    def test_trivial_partition_short_circuits_to_global(self):
        g, inst = _setup(23)
        engine = PlacementEngine(inst)
        sharded, info = engine.place_sharded(Partition.trivial(inst.num_nodes))
        assert sharded.copy_sets == engine.place().copy_sets
        assert info["num_shards"] == 1 and info["spanning_objects"] == 0

    def test_lazy_backend_sharded_solve(self):
        g, inst = _setup(25, backend="lazy", num_objects=6)
        part = partition_instance(inst, num_shards=3, portals_per_shard=2)
        sharded, info = PlacementEngine(inst).place_sharded(part)
        assert len(sharded.copy_sets) == inst.num_objects
        assert all(cs for cs in sharded.copy_sets)
        assert "row_cache" in info  # lazy stats aggregate into the info

    def test_zero_demand_objects_take_cheapest_node(self):
        g, _ = _setup(27, n_hint=100)
        metric = Metric.from_graph(g)
        n = metric.n
        rng = np.random.default_rng(0)
        fr = rng.integers(0, 4, (3, n)).astype(float)
        fr[1] = 0.0  # object 1 has no demand anywhere
        fw = np.zeros((3, n))
        cs = rng.uniform(1.0, 5.0, n)
        inst = DataManagementInstance(metric, cs, fr, fw)
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        sharded, _ = PlacementEngine(inst).place_sharded(part)
        assert sharded.copy_sets[1] == (int(np.argmin(cs)),)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_num_shards_one_bit_identical_dense_and_lazy(seed):
    """Degenerate-path guarantee: the krw-sharded strategy at
    num_shards=1 (and partition='none') reproduces the global solve
    bit-for-bit on both backends."""
    g = transit_stub_graph(2, 2, 4, seed=seed)
    for backend in (Metric, LazyMetric):
        metric = backend.from_graph(g)
        inst = make_instance(
            metric, seed=seed + 1, num_objects=3, write_fraction=0.25
        )
        global_report = Planner().plan(inst, "krw")
        for config in (
            PlanConfig(num_shards=1, portals_per_shard=7),
            PlanConfig(partition="none", num_shards=5),
        ):
            sharded_report = Planner(config).plan(inst, "krw-sharded")
            assert (sharded_report.placement.copy_sets
                    == global_report.placement.copy_sets)
            assert sharded_report.extras["sharded"]["degenerate"] is True


class TestKRWShardedStrategy:
    def test_planner_runs_sharded_with_extras(self):
        g, inst = _setup(31, n_hint=160, num_objects=8)
        config = PlanConfig(num_shards=4, portals_per_shard=2)
        report = Planner(config).plan(inst, "krw-sharded")
        sharded = report.extras["sharded"]
        assert sharded["num_shards"] == 4 and sharded["degenerate"] is False
        assert sharded["partition"] == "auto"
        assert "kernels" in report.extras
        global_report = Planner().plan(inst, "krw")
        assert report.cost.total <= 1.25 * global_report.cost.total

    def test_lazy_strategy_reports_row_cache(self):
        g, inst = _setup(33, backend="lazy", num_objects=4)
        config = PlanConfig(num_shards=3, portals_per_shard=2)
        report = Planner(config).plan(inst, "krw-sharded")
        assert report.extras["row_cache"]["hit_rate"] is not None


class TestConfigKnobs:
    def test_defaults_are_degenerate(self):
        config = PlanConfig()
        assert config.num_shards == 1
        assert config.portals_per_shard == 4
        assert config.partition == "auto"

    def test_num_shards_validation_error_names_the_knob(self):
        with pytest.raises(ValueError, match="num_shards must be >= 1"):
            PlanConfig(num_shards=0)
        with pytest.raises(ValueError, match="num_shards must be >= 1"):
            PlanConfig(num_shards=-3)

    def test_portals_validation_error_names_the_knob(self):
        with pytest.raises(ValueError, match="portals_per_shard must be >= 1"):
            PlanConfig(portals_per_shard=0)

    def test_unknown_partition_method_rejected(self):
        with pytest.raises(ValueError, match="unknown partition method"):
            PlanConfig(partition="metis")

    def test_round_trip_keeps_shard_knobs(self):
        config = PlanConfig(partition="bfs", num_shards=6, portals_per_shard=2)
        back = PlanConfig.from_dict(config.to_dict())
        assert back == config


class TestPartitionSerialization:
    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_round_trip(self, tmp_path, suffix):
        from repro.serialize import load_partition, save_partition

        g, _ = _setup(35)
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        path = tmp_path / f"part{suffix}"
        save_partition(part, path)
        back = load_partition(path)
        assert back.shards == part.shards
        assert back.portals == part.portals
        assert np.array_equal(back.quotient, part.quotient)

    def test_trivial_round_trip(self, tmp_path):
        from repro.serialize import load_partition, save_partition

        part = Partition.trivial(9)
        path = tmp_path / "triv.json"
        save_partition(part, path)
        back = load_partition(path)
        assert back.shards == part.shards and back.quotient.shape == (0, 0)

    def test_wrong_format_rejected(self, tmp_path):
        from repro.serialize import load_partition

        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a serialized Partition"):
            load_partition(path)

    def test_reloaded_partition_drives_the_same_sharded_solve(self, tmp_path):
        from repro.serialize import load_partition, save_partition

        g, inst = _setup(37, num_objects=5)
        part = partition_graph(g, num_shards=3, portals_per_shard=2)
        path = tmp_path / "part.npz"
        save_partition(part, path)
        engine = PlacementEngine(inst)
        direct, _ = engine.place_sharded(part)
        reloaded, _ = engine.place_sharded(load_partition(path))
        assert reloaded.copy_sets == direct.copy_sets
