"""Tests for repro.analysis: tables, ratios and (tiny) experiment runs."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ExperimentResult,
    format_series,
    format_table,
    ratio,
    run_e1_approx_ratio,
    run_e3_restricted_gap,
    run_e4_proper_invariants,
    run_e5_phase_ablation,
    run_e6_baselines,
    run_e7_storage_sweep,
    run_e9_load_model,
    summarize_ratios,
)


class TestTables:
    def test_basic_render(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "2.5" in lines[2]
        assert lines[3].endswith("-")

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678], [float("inf")], [float("nan")], [True]])
        assert "1235" in text
        assert "inf" in text
        assert "nan" in text
        assert "yes" in text

    def test_series_alias(self):
        text = format_series("x", ["y"], [[1, 2]])
        assert "x" in text and "y" in text


class TestRatios:
    def test_ratio_basic(self):
        assert ratio(2.0, 1.0) == 2.0

    def test_ratio_zero_optimum(self):
        assert ratio(0.0, 0.0) == 1.0
        assert math.isinf(ratio(1.0, 0.0))

    def test_ratio_negative_rejected(self):
        with pytest.raises(ValueError):
            ratio(-1.0, 1.0)

    def test_summarize(self):
        stats = summarize_ratios([1.0, 1.5, 2.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(1.5)
        assert stats.max == 2.0
        assert stats.p50 == pytest.approx(1.5)

    def test_summarize_rejects_sub_one(self):
        with pytest.raises(ValueError, match="not optimal"):
            summarize_ratios([0.5])

    def test_summarize_clamps_float_slack(self):
        stats = summarize_ratios([1.0 - 1e-12])
        assert stats.min if hasattr(stats, "min") else stats.mean >= 1.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ratios([])


class TestExperimentResultJSON:
    def _result(self):
        return ExperimentResult(
            "E0", "a deterministic table",
            ("name", "value", "flag"),
            rows=[["x", np.float64(-0.0), np.bool_(True)],
                  ["y", 1.5, False]],
            notes="notes",
        )

    def test_save_json_is_byte_deterministic(self, tmp_path):
        """Two saves of the same result are identical files: sorted keys,
        canonical float text, no timestamps unless the caller injects one."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._result().save_json(a)
        self._result().save_json(b)
        assert a.read_bytes() == b.read_bytes()
        text = a.read_text()
        assert '"generated_at"' not in text
        # numpy scalars land as plain JSON; -0.0 folds onto 0.0
        assert "-0.0" not in text and "true" in text

    def test_save_json_sorts_keys(self, tmp_path):
        import json

        path = tmp_path / "r.json"
        self._result().save_json(path)
        data = json.loads(path.read_text())
        assert list(data) == sorted(data)
        assert data["rows"][0] == ["x", 0.0, True]

    def test_generated_at_is_caller_injected(self, tmp_path):
        import json

        path = tmp_path / "r.json"
        self._result().save_json(path, generated_at="2026-08-08T00:00:00Z")
        data = json.loads(path.read_text())
        assert data["generated_at"] == "2026-08-08T00:00:00Z"


class TestExperimentRunners:
    """Tiny-scale versions of the benchmark experiments; shapes plus the
    headline assertions each experiment exists to check."""

    def test_e1_ratios_reasonable(self):
        res = run_e1_approx_ratio(families=("tree",), n=7, seeds=(0, 1, 2))
        assert isinstance(res, ExperimentResult)
        assert len(res.rows) == 1
        row = res.rows[0]
        # mean ratio vs restricted optimum stays within the proven regime
        assert 1.0 <= row[3] <= 5.0
        assert res.render().startswith("[E1]")

    def test_e3_gap_bound_holds(self):
        res = run_e3_restricted_gap(families=("tree",), n=6, seeds=(0, 1, 2))
        for row in res.rows:
            assert row[-1] is True or row[-1] == True  # noqa: E712
            assert row[4] <= 4.0 + 1e-9

    def test_e4_all_proper(self):
        res = run_e4_proper_invariants(families=("er",), n=8, seeds=(0, 1, 2))
        for row in res.rows:
            assert row[-1]

    def test_e5_full_no_worse_than_phase1_on_average(self):
        res = run_e5_phase_ablation(
            family="tree", n=8, seeds=(0, 1, 2), write_fractions=(0.5,)
        )
        (row,) = res.rows
        full, fl_only = row[1], row[4]
        assert full <= fl_only + 0.5  # ablation should not dramatically help

    def test_e6_krw_tracks_best_baseline(self):
        res = run_e6_baselines(
            family="tree", n=8, seeds=(0, 1), write_fractions=(0.0, 0.8)
        )
        for row in res.rows:
            krw = row[1]
            best = min(row[2], row[3])
            assert krw <= 3.0 * best + 1e-9

    def test_e7_replication_degree_monotone(self):
        res = run_e7_storage_sweep(
            family="tree", n=10, seeds=(0, 1), prices=(0.1, 5.0, 50.0)
        )
        degrees = [row[1] for row in res.rows]
        assert degrees[0] >= degrees[-1]

    def test_e9_dp_never_beaten(self):
        res = run_e9_load_model(sizes=(8,), seeds=(0, 1))
        for row in res.rows:
            assert row[-1]  # DP never beaten
            assert row[2] >= 1.0  # KRW / DP ratio


class TestRemainingRunnersSmoke:
    """Tiny-scale smoke runs of the runners not covered above, with their
    headline invariants asserted."""

    def test_e2_exactness_rows(self):
        from repro.analysis import run_e2_tree_dp

        res = run_e2_tree_dp(check_sizes=(5,), timing_sizes=(20,), seeds=(0, 1))
        exact_rows = [r for r in res.rows if r[0] == "exactness"]
        assert exact_rows and all(abs(r[4] - 1.0) < 1e-9 for r in exact_rows)
        timing_rows = [r for r in res.rows if r[0] == "timing"]
        assert all(r[5] > 0 for r in timing_rows)

    def test_e8_all_solvers_within_factors(self):
        from repro.analysis import run_e8_facility_choice

        res = run_e8_facility_choice(family="tree", n=8, seeds=(0, 1))
        names = {row[0] for row in res.rows}
        assert names == {"local_search", "greedy", "lp_rounding", "exact"}
        for row in res.rows:
            assert row[1] >= 1.0 - 1e-9  # UFL cost at least the LP bound

    def test_e10_rows_cover_both_algorithms(self):
        from repro.analysis import run_e10_scalability

        res = run_e10_scalability(approx_sizes=(30,), tree_sizes=(40,))
        algos = {row[0] for row in res.rows}
        assert algos == {"KRW approx", "tree DP"}
        assert all(row[3] > 0 for row in res.rows)

    def test_e11_simulation_matches_model(self):
        from repro.analysis import run_e11_simulation_agreement

        res = run_e11_simulation_agreement(families=("tree",), n=9, seeds=(0, 1))
        for row in res.rows:
            assert row[3] < 1e-9
            assert 0.0 < row[5] <= 1.0  # load share is a share

    def test_e12_ratios_positive(self):
        from repro.analysis import run_e12_online_vs_static

        res = run_e12_online_vs_static(sizes=(8,), seeds=(0, 1), write_fractions=(0.2,))
        for row in res.rows:
            assert row[3] > 0

    def test_e13_feasible_and_costlier_when_tight(self):
        from repro.analysis import run_e13_capacity_price

        res = run_e13_capacity_price(
            family="tree", n=9, num_objects=3, seeds=(0, 1), caps=(3, 1)
        )
        assert all(row[-1] for row in res.rows)
        loose, tight = res.rows[0], res.rows[-1]
        assert tight[4] >= loose[4]  # tighter caps move at least as many copies

    def test_e14_engine_parity_and_speed_columns(self):
        from repro.analysis import run_e14_catalog_throughput

        res = run_e14_catalog_throughput(
            num_objects=24, n=40, chunk_size=8, jobs=(2,), compare_loop=True
        )
        modes = [row[0] for row in res.rows]
        assert modes == ["per-object loop", "engine serial", "engine jobs=2"]
        # identical copy sets across every mode
        assert all(row[-1] is True for row in res.rows)
        # one total-copies value for all modes
        assert len({row[6] for row in res.rows}) == 1
        assert all(row[3] > 0 for row in res.rows)

    def test_e14_without_loop_baseline(self):
        from repro.analysis import run_e14_catalog_throughput

        res = run_e14_catalog_throughput(
            num_objects=12, n=30, chunk_size=4, jobs=(), compare_loop=False
        )
        assert [row[0] for row in res.rows] == ["engine serial"]
        assert res.rows[0][5] == "--"
