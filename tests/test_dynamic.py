"""Tests for the dynamic layer: time-evolving workloads, the epoch
replanner's migration accounting (full and incremental), and the
E15/E16 runners."""

import numpy as np
import pytest

from repro.config import PlanConfig
from repro.engine import PlacementEngine
from repro.graphs.backend import LazyMetric
from repro.graphs.generators import sized_transit_stub_graph, transit_stub_graph
from repro.graphs.metric import Metric
from repro.simulate import EpochReplanner, NetworkSimulator
from repro.workloads import DynamicWorkload, drifting_zipf_catalog, flash_crowd


def _network(seed: int = 3, size: int = 30):
    g = transit_stub_graph(2, 2, max(size // 6, 1), seed=seed)
    return g, Metric.from_graph(g)


class TestDynamicWorkload:
    def test_shapes_and_validation(self):
        wl = DynamicWorkload(np.ones((3, 2, 5)), np.zeros((3, 2, 5)))
        assert (wl.num_epochs, wl.num_objects, wl.num_nodes) == (3, 2, 5)
        assert wl.total_events == 30  # a property, like its num_* siblings
        with pytest.raises(ValueError, match="equal-shaped"):
            DynamicWorkload(np.ones((3, 2, 5)), np.zeros((3, 2, 4)))
        with pytest.raises(ValueError, match="non-negative"):
            DynamicWorkload(np.full((1, 1, 2), -1.0), np.zeros((1, 1, 2)))

    def test_aggregate_sums_epochs(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 6, epochs=4, seed=1, requests_per_epoch=200
        )
        cs = np.ones(metric.n)
        agg = wl.aggregate_instance(metric, cs)
        assert np.array_equal(agg.read_freq, wl.read_freqs.sum(axis=0))
        assert np.array_equal(agg.write_freq, wl.write_freqs.sum(axis=0))
        e0 = wl.epoch_instance(metric, cs, 0)
        assert np.array_equal(e0.read_freq, wl.read_freqs[0])

    def test_epoch_and_full_logs(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 5, epochs=3, seed=2, requests_per_epoch=150
        )
        per_epoch = [len(wl.epoch_log(e)) for e in range(3)]
        assert per_epoch == [150, 150, 150]  # fixed budget per epoch
        full = wl.full_log(seed=7)
        assert len(full) == 450
        # epoch boundaries preserved: first epoch's slice realizes epoch 0
        head = full[:150]
        r, w = head.counts(wl.num_objects, wl.num_nodes)
        assert np.array_equal(r + w, wl.read_freqs[0] + wl.write_freqs[0])


class TestGenerators:
    def test_drift_changes_popularity(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 12, epochs=4, seed=5, drift=0.5, requests_per_epoch=600
        )
        per_obj = (wl.read_freqs + wl.write_freqs).sum(axis=2)  # (E, m)
        # popularity ranking must differ somewhere across epochs
        assert any(
            not np.array_equal(
                np.argsort(-per_obj[0]), np.argsort(-per_obj[e])
            )
            for e in range(1, 4)
        )

    def test_zero_drift_keeps_budget_and_shape(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 8, epochs=3, seed=6, drift=0.0, requests_per_epoch=400
        )
        totals = (wl.read_freqs + wl.write_freqs).sum(axis=(1, 2))
        assert np.all(totals == 400)

    def test_flash_crowd_spikes_tail_objects(self):
        g, metric = _network()
        m, epochs = 10, 5
        wl = flash_crowd(
            metric.n, m, epochs=epochs, seed=7, crowd_epoch=2,
            crowd_objects=2, crowd_multiplier=30.0, requests_per_epoch=500,
        )
        per_obj = (wl.read_freqs + wl.write_freqs).sum(axis=2)  # (E, m)
        tail = per_obj[:, -2:].sum(axis=1)
        baseline = np.delete(tail, 2).max()
        assert tail[2] > 3 * max(baseline, 1.0)  # the burst epoch stands out
        # bursts are pure reads: tail writes stay at baseline scale
        assert wl.write_freqs[2, -2:].sum() < 0.1 * wl.read_freqs[2, -2:].sum()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            drifting_zipf_catalog(5, 3, epochs=0, seed=1)
        with pytest.raises(ValueError, match="drift"):
            drifting_zipf_catalog(5, 3, epochs=2, seed=1, drift=1.5)
        with pytest.raises(ValueError, match="crowd_epoch"):
            flash_crowd(5, 3, epochs=2, seed=1, crowd_epoch=5)


class TestEpochReplanner:
    def test_static_workload_migrates_once(self):
        """Identical epochs re-solve to identical placements: all
        migration happens into epoch 0 (from the zero-knowledge start)."""
        g, metric = _network(seed=9)
        cs = np.full(metric.n, 4.0)
        fr = np.tile(
            drifting_zipf_catalog(
                metric.n, 4, epochs=1, seed=11, requests_per_epoch=300,
                write_fraction=0.2,
            ).read_freqs[0],
            (3, 1, 1),
        )
        fw = np.zeros_like(fr)
        wl = DynamicWorkload(fr, fw)
        result = EpochReplanner(g, metric, cs).run(wl)
        assert len(result.epochs) == 3
        assert result.epochs[1].migration_cost == 0.0
        assert result.epochs[2].migration_cost == 0.0
        assert result.epochs[1].placement.copy_sets == result.epochs[0].placement.copy_sets
        # epoch 0 pays transfers from the cheapest-storage start node
        start = int(np.argmin(cs))
        expected = sum(
            metric.d(start, v)
            for obj in range(4)
            for v in result.epochs[0].placement.copies(obj)
            if v != start
        )
        assert result.epochs[0].migration_cost == pytest.approx(expected)

    def test_totals_decompose(self):
        g, metric = _network(seed=13)
        cs = np.full(metric.n, 3.0)
        wl = drifting_zipf_catalog(
            metric.n, 5, epochs=3, seed=14, drift=0.4, requests_per_epoch=250,
            write_fraction=0.1,
        )
        result = EpochReplanner(g, metric, cs).run(wl, log_seed=1)
        assert result.total_cost == pytest.approx(
            result.serve_cost + result.migration_cost
        )
        assert result.final_placement.num_objects == 5
        # each epoch's serving bill equals an independent simulator replay
        for e, er in enumerate(result.epochs):
            inst = wl.epoch_instance(metric, cs, e)
            sim = NetworkSimulator(g, inst)
            ref = sim.run(er.placement, wl.epoch_log(e, seed=1 + e))
            assert er.report.total_cost == pytest.approx(ref.total_cost, rel=1e-9)

    def test_replanner_matches_engine_per_epoch(self):
        g, metric = _network(seed=15)
        cs = np.full(metric.n, 5.0)
        wl = drifting_zipf_catalog(
            metric.n, 3, epochs=2, seed=16, requests_per_epoch=200
        )
        result = EpochReplanner(g, metric, cs, fl_solver="greedy").run(wl)
        for e, er in enumerate(result.epochs):
            inst = wl.epoch_instance(metric, cs, e)
            expected = PlacementEngine(inst, fl_solver="greedy").place()
            assert er.placement.copy_sets == expected.copy_sets


class TestE15Runner:
    def test_smoke_parity_and_sections(self):
        from repro.analysis import run_e15_dynamic_replay

        res = run_e15_dynamic_replay(
            n=40, num_objects=6, epochs=3, requests_per_epoch=200, seed=3
        )
        by_label = {row[1]: row for row in res.rows}
        assert by_label["vectorized"][-1] is True  # bills agree
        assert by_label["clairvoyant-static"][6] == pytest.approx(1.0)
        assert {"hop-by-hop", "epoch-replan", "online-counting"} <= set(by_label)

    def test_flash_scenario_and_unknown_scenario(self):
        from repro.analysis import run_e15_dynamic_replay

        res = run_e15_dynamic_replay(
            n=30, num_objects=5, epochs=2, requests_per_epoch=120,
            scenario="flash", seed=4, compare_loop=False,
        )
        assert any(row[1] == "vectorized" for row in res.rows)
        with pytest.raises(ValueError, match="scenario"):
            run_e15_dynamic_replay(n=20, num_objects=3, epochs=2, scenario="nope")

    def test_incremental_mode_defaults_to_sparse_drift_workload(self):
        """dynamic --incremental must run on a redraw='changed' workload
        by default -- full resampling would mark everything dirty and the
        incremental mode could never skip an object."""
        from repro.analysis import run_e15_dynamic_replay

        res = run_e15_dynamic_replay(
            n=30, num_objects=5, epochs=2, requests_per_epoch=120,
            seed=6, compare_loop=False, replan_mode="incremental",
        )
        assert any(row[1] == "epoch-replan" for row in res.rows)
        with pytest.raises(ValueError, match="redraw"):
            run_e15_dynamic_replay(
                n=20, num_objects=3, epochs=2, redraw="some",
            )


class TestDriftDetection:
    def _workload(self):
        fr = np.zeros((3, 3, 4))
        fw = np.zeros((3, 3, 4))
        fr[0] = [[4, 0, 0, 0], [0, 10, 0, 0], [1, 1, 1, 1]]
        fr[1] = fr[0]
        fr[1, 0] = [0, 4, 0, 0]       # object 0 moves all 4 reads
        fr[2] = fr[1]
        fw[2, 1, 2] = 1.0             # object 1 gains one write
        return DynamicWorkload(fr, fw)

    def test_epoch_zero_everything_is_dirty(self):
        wl = self._workload()
        assert wl.drifted_objects(0).tolist() == [0, 1, 2]

    def test_tolerance_zero_is_exact_row_change(self):
        wl = self._workload()
        assert wl.drifted_objects(1).tolist() == [0]
        assert wl.drifted_objects(2).tolist() == [1]

    def test_delta_normalization(self):
        wl = self._workload()
        delta = wl.demand_delta(1)
        # object 0: L1 = 8 over max(4, 4) demand -> 2.0 (all mass moved)
        assert delta[0] == pytest.approx(2.0)
        assert delta[1] == 0.0 and delta[2] == 0.0
        # object 1 into epoch 2: one new write over max(10, 11)
        assert wl.demand_delta(2)[1] == pytest.approx(1.0 / 11.0)

    def test_positive_tolerance_keeps_small_drifts(self):
        wl = self._workload()
        assert wl.drifted_objects(2, tolerance=0.5).tolist() == []
        assert wl.drifted_objects(2, tolerance=0.01).tolist() == [1]

    def test_validation(self):
        wl = self._workload()
        with pytest.raises(ValueError, match="tolerance"):
            wl.drifted_objects(1, tolerance=-0.1)
        with pytest.raises(ValueError, match="epoch"):
            wl.drifted_objects(3)
        with pytest.raises(ValueError, match="epoch"):
            wl.demand_delta(0)

    def test_zero_demand_pair_scores_zero(self):
        wl = DynamicWorkload(np.zeros((2, 2, 3)), np.zeros((2, 2, 3)))
        assert wl.demand_delta(1).tolist() == [0.0, 0.0]
        assert wl.drifted_objects(1).size == 0


class TestSparseDriftGenerators:
    def test_changed_mode_touches_exact_fraction(self):
        n, m, drift = 12, 20, 0.15
        wl = drifting_zipf_catalog(
            n, m, epochs=4, seed=3, drift=drift, requests_per_epoch=2000,
            redraw="changed",
        )
        expected = int(round(drift * m))
        for e in range(1, 4):
            assert len(wl.drifted_objects(e)) == expected
            # untouched rows carry forward bit-identically
            clean = np.setdiff1d(np.arange(m), wl.drifted_objects(e))
            assert np.array_equal(wl.read_freqs[e][clean], wl.read_freqs[e - 1][clean])
            assert np.array_equal(wl.write_freqs[e][clean], wl.write_freqs[e - 1][clean])

    def test_changed_mode_tiny_drift_freezes_catalog(self):
        wl = drifting_zipf_catalog(
            8, 10, epochs=3, seed=4, drift=0.05, requests_per_epoch=500,
            redraw="changed",
        )  # round(0.05 * 10) = 0 touched objects: epochs never change
        for e in range(1, 3):
            assert wl.drifted_objects(e).size == 0

    def test_changed_mode_single_object_still_churns(self):
        """round(drift * m) == 1 cannot rotate ranks (needs a pair) but
        must still redraw exactly that one object's demand."""
        m = 10
        wl = drifting_zipf_catalog(
            8, m, epochs=4, seed=6, drift=0.1, requests_per_epoch=800,
            redraw="changed",
        )
        churned = 0
        for e in range(1, 4):
            dirty = wl.drifted_objects(e)
            assert dirty.size <= 1  # never more than the one touched object
            churned += dirty.size
            clean = np.setdiff1d(np.arange(m), dirty)
            assert np.array_equal(wl.read_freqs[e][clean], wl.read_freqs[e - 1][clean])
        assert churned > 0  # the catalog is not silently frozen

    def test_flash_changed_mode_only_burst_objects_drift(self):
        m, epochs = 12, 5
        wl = flash_crowd(
            10, m, epochs=epochs, seed=5, crowd_epoch=2, crowd_objects=2,
            requests_per_epoch=600, redraw="changed",
        )
        assert wl.drifted_objects(1).size == 0          # quiet epoch
        assert wl.drifted_objects(2).tolist() == [10, 11]  # burst in
        assert wl.drifted_objects(3).tolist() == [10, 11]  # burst reverts
        assert wl.drifted_objects(4).size == 0
        # the revert restores the baseline bit-identically
        assert np.array_equal(wl.read_freqs[3], wl.read_freqs[1])

    def test_redraw_validation(self):
        with pytest.raises(ValueError, match="redraw"):
            drifting_zipf_catalog(5, 3, epochs=2, seed=1, redraw="some")
        with pytest.raises(ValueError, match="redraw"):
            flash_crowd(5, 3, epochs=2, seed=1, redraw="some")


class TestIncrementalReplanner:
    @pytest.mark.parametrize("backend", ["dense", "lazy"])
    @pytest.mark.parametrize("scenario", ["drift", "flash"])
    def test_tolerance_zero_bit_identical_to_full(self, backend, scenario):
        g, metric = _network(seed=21)
        if backend == "lazy":
            metric = LazyMetric.from_graph(g)
        cs = np.full(metric.n, 6.0)
        if scenario == "drift":
            wl = drifting_zipf_catalog(
                metric.n, 8, epochs=3, seed=22, drift=0.25,
                requests_per_epoch=400, write_fraction=0.1, redraw="changed",
            )
        else:
            wl = flash_crowd(
                metric.n, 8, epochs=3, seed=23, crowd_epoch=1,
                requests_per_epoch=400, redraw="changed",
            )
        full = EpochReplanner(
            g, metric, cs, config=PlanConfig(replan_mode="full")
        ).run(wl, log_seed=2)
        incr = EpochReplanner(
            g, metric, cs,
            config=PlanConfig(replan_mode="incremental", replan_tolerance=0.0),
        ).run(wl, log_seed=2)
        for f, i in zip(full.epochs, incr.epochs):
            assert f.placement.copy_sets == i.placement.copy_sets
            assert i.migration_cost == pytest.approx(f.migration_cost, rel=1e-12)
            assert i.report.total_cost == pytest.approx(
                f.report.total_cost, rel=1e-12
            )
        assert incr.total_cost == pytest.approx(full.total_cost, rel=1e-9)

    def test_incremental_replaces_only_the_dirty_subset(self):
        g, metric = _network(seed=25)
        cs = np.full(metric.n, 5.0)
        wl = drifting_zipf_catalog(
            metric.n, 10, epochs=3, seed=26, drift=0.2,
            requests_per_epoch=500, redraw="changed",
        )
        res = EpochReplanner(
            g, metric, cs, config=PlanConfig(replan_mode="incremental")
        ).run(wl)
        assert res.epochs[0].replaced_objects == 10  # cold start: full solve
        for e in (1, 2):
            assert res.epochs[e].replaced_objects == len(wl.drifted_objects(e))
            assert res.epochs[e].solve_time_s > 0.0
        assert res.replaced_objects == sum(e.replaced_objects for e in res.epochs)

    def test_positive_tolerance_carries_near_static_objects(self):
        """Under resampled demand every row changes a little; a loose
        tolerance must carry all of it, tolerance 0 none of it."""
        g, metric = _network(seed=27)
        cs = np.full(metric.n, 5.0)
        wl = drifting_zipf_catalog(
            metric.n, 6, epochs=3, seed=28, drift=0.0, requests_per_epoch=400
        )  # redraw="all": sampling noise touches every object
        exact = EpochReplanner(
            g, metric, cs, config=PlanConfig(replan_mode="incremental")
        ).run(wl)
        loose = EpochReplanner(
            g, metric, cs,
            config=PlanConfig(replan_mode="incremental", replan_tolerance=2.0),
        ).run(wl)
        assert all(e.replaced_objects == 6 for e in exact.epochs)
        assert all(e.replaced_objects == 0 for e in loose.epochs[1:])
        # carried placements simply freeze epoch 0's solution
        assert (
            loose.final_placement.copy_sets
            == loose.epochs[0].placement.copy_sets
        )
        assert loose.epochs[1].migration_cost == 0.0

    def test_tolerance_drift_accumulates_since_last_replace(self):
        """A slow drift whose per-epoch delta stays under the tolerance
        must still trigger a re-place once the *cumulative* shift since
        the object's last re-place crosses it -- the replanner anchors
        detection at the last-solved snapshot, not at epoch - 1."""
        g, metric = _network(seed=35)
        n = metric.n
        epochs, m = 5, 2
        fr = np.zeros((epochs, m, n))
        fw = np.zeros((epochs, m, n))
        # object 0: 10 reads migrate from node 0 to node 1, one per epoch
        # -> consecutive delta 0.2/epoch, cumulative 0.2 * epochs-since-solve
        for e in range(epochs):
            fr[e, 0, 0] = 10 - e
            fr[e, 0, 1] = e
            fr[e, 1, 2] = 8.0  # object 1 never moves
        wl = DynamicWorkload(fr, fw)
        cs = np.full(n, 3.0)
        res = EpochReplanner(
            g, metric, cs,
            config=PlanConfig(replan_mode="incremental", replan_tolerance=0.3),
        ).run(wl)
        # per-epoch deltas (0.2) never cross 0.3; cumulative drift does at
        # epochs 2 and 4 (0.4 vs the epoch-0 / epoch-2 baselines)
        assert [e.replaced_objects for e in res.epochs] == [2, 0, 1, 0, 1]
        # the consecutive-epoch detector alone would never fire
        for e in range(1, epochs):
            assert wl.drifted_objects(e, tolerance=0.3).size == 0

    def test_batched_migration_matches_per_object_reference(self):
        g, metric = _network(seed=31)
        cs = np.full(metric.n, 4.0)
        wl = drifting_zipf_catalog(
            metric.n, 7, epochs=3, seed=32, drift=0.5, requests_per_epoch=350,
            write_fraction=0.15,
        )
        replanner = EpochReplanner(g, metric, cs)
        res = replanner.run(wl)
        prev = [(int(np.argmin(cs)),) for _ in range(wl.num_objects)]
        for er in res.epochs:
            new = er.placement.copy_sets
            ref_cost = ref_added = ref_dropped = 0
            for obj in range(wl.num_objects):
                c, a, d = replanner._migration(prev[obj], new[obj])
                ref_cost += c
                ref_added += a
                ref_dropped += d
            assert er.migration_cost == pytest.approx(ref_cost, rel=1e-12)
            assert (er.copies_added, er.copies_dropped) == (ref_added, ref_dropped)
            prev = list(new)

    @pytest.mark.parametrize("mode", ["full", "incremental"])
    def test_zero_demand_epoch_end_to_end(self, mode):
        """An all-zero epoch must replan and bill cleanly (nothing guards
        this upstream: empty logs, zero-demand placements, no traffic)."""
        g, metric = _network(seed=33)
        n = metric.n
        fr = np.zeros((3, 2, n))
        fw = np.zeros((3, 2, n))
        fr[0, 0, 0] = 5.0
        fr[2, 1, 1] = 3.0  # epoch 1 is entirely demand-free
        wl = DynamicWorkload(fr, fw)
        cs = np.full(n, 2.0)
        res = EpochReplanner(
            g, metric, cs, config=PlanConfig(replan_mode=mode)
        ).run(wl, log_seed=5)
        assert len(res.epochs) == 3
        quiet = res.epochs[1]
        assert quiet.report.transmission_cost == 0.0
        assert quiet.report.messages == 0
        assert quiet.report.storage_cost > 0.0  # copies still pay rent
        assert len(wl.epoch_log(1)) == 0
        assert res.total_cost == pytest.approx(
            res.serve_cost + res.migration_cost
        )

    def test_zero_demand_horizon_full_log_is_empty(self):
        wl = DynamicWorkload(np.zeros((2, 2, 4)), np.zeros((2, 2, 4)))
        log = wl.full_log(seed=3)
        assert len(log) == 0
        assert log.kind.dtype == np.uint8
        assert log.node.dtype == np.int64 and log.obj.dtype == np.int64


class TestE16Runner:
    def test_smoke_identity_and_columns(self):
        from repro.analysis import run_e16_incremental_replan

        res = run_e16_incremental_replan(
            n=30, num_objects=6, epochs=3, requests_per_epoch=240,
            drift=0.34, seed=7, backends=("dense",), scenarios=("drift",),
        )
        modes = {(row[2], row[3]) for row in res.rows}
        assert ("full", "--") in modes and ("incremental", 0) in modes
        for row in res.rows:
            if row[2] == "incremental" and row[3] == 0:
                assert row[-1] is True      # bit-identical to full
                assert row[8] == pytest.approx(1.0)  # cost ratio vs full

    def test_rejects_bad_arguments(self):
        from repro.analysis import run_e16_incremental_replan

        with pytest.raises(ValueError, match="backend"):
            run_e16_incremental_replan(backends=("sparse",))
        with pytest.raises(ValueError, match="scenario"):
            run_e16_incremental_replan(scenarios=("nope",))
        with pytest.raises(ValueError, match="epochs"):
            run_e16_incremental_replan(epochs=1)
