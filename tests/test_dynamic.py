"""Tests for the dynamic layer: time-evolving workloads, the epoch
replanner's migration accounting, and the E15 runner."""

import numpy as np
import pytest

from repro.engine import PlacementEngine
from repro.graphs.generators import sized_transit_stub_graph, transit_stub_graph
from repro.graphs.metric import Metric
from repro.simulate import EpochReplanner, NetworkSimulator
from repro.workloads import DynamicWorkload, drifting_zipf_catalog, flash_crowd


def _network(seed: int = 3, size: int = 30):
    g = transit_stub_graph(2, 2, max(size // 6, 1), seed=seed)
    return g, Metric.from_graph(g)


class TestDynamicWorkload:
    def test_shapes_and_validation(self):
        wl = DynamicWorkload(np.ones((3, 2, 5)), np.zeros((3, 2, 5)))
        assert (wl.num_epochs, wl.num_objects, wl.num_nodes) == (3, 2, 5)
        assert wl.total_events() == 30
        with pytest.raises(ValueError, match="equal-shaped"):
            DynamicWorkload(np.ones((3, 2, 5)), np.zeros((3, 2, 4)))
        with pytest.raises(ValueError, match="non-negative"):
            DynamicWorkload(np.full((1, 1, 2), -1.0), np.zeros((1, 1, 2)))

    def test_aggregate_sums_epochs(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 6, epochs=4, seed=1, requests_per_epoch=200
        )
        cs = np.ones(metric.n)
        agg = wl.aggregate_instance(metric, cs)
        assert np.array_equal(agg.read_freq, wl.read_freqs.sum(axis=0))
        assert np.array_equal(agg.write_freq, wl.write_freqs.sum(axis=0))
        e0 = wl.epoch_instance(metric, cs, 0)
        assert np.array_equal(e0.read_freq, wl.read_freqs[0])

    def test_epoch_and_full_logs(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 5, epochs=3, seed=2, requests_per_epoch=150
        )
        per_epoch = [len(wl.epoch_log(e)) for e in range(3)]
        assert per_epoch == [150, 150, 150]  # fixed budget per epoch
        full = wl.full_log(seed=7)
        assert len(full) == 450
        # epoch boundaries preserved: first epoch's slice realizes epoch 0
        head = full[:150]
        r, w = head.counts(wl.num_objects, wl.num_nodes)
        assert np.array_equal(r + w, wl.read_freqs[0] + wl.write_freqs[0])


class TestGenerators:
    def test_drift_changes_popularity(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 12, epochs=4, seed=5, drift=0.5, requests_per_epoch=600
        )
        per_obj = (wl.read_freqs + wl.write_freqs).sum(axis=2)  # (E, m)
        # popularity ranking must differ somewhere across epochs
        assert any(
            not np.array_equal(
                np.argsort(-per_obj[0]), np.argsort(-per_obj[e])
            )
            for e in range(1, 4)
        )

    def test_zero_drift_keeps_budget_and_shape(self):
        g, metric = _network()
        wl = drifting_zipf_catalog(
            metric.n, 8, epochs=3, seed=6, drift=0.0, requests_per_epoch=400
        )
        totals = (wl.read_freqs + wl.write_freqs).sum(axis=(1, 2))
        assert np.all(totals == 400)

    def test_flash_crowd_spikes_tail_objects(self):
        g, metric = _network()
        m, epochs = 10, 5
        wl = flash_crowd(
            metric.n, m, epochs=epochs, seed=7, crowd_epoch=2,
            crowd_objects=2, crowd_multiplier=30.0, requests_per_epoch=500,
        )
        per_obj = (wl.read_freqs + wl.write_freqs).sum(axis=2)  # (E, m)
        tail = per_obj[:, -2:].sum(axis=1)
        baseline = np.delete(tail, 2).max()
        assert tail[2] > 3 * max(baseline, 1.0)  # the burst epoch stands out
        # bursts are pure reads: tail writes stay at baseline scale
        assert wl.write_freqs[2, -2:].sum() < 0.1 * wl.read_freqs[2, -2:].sum()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            drifting_zipf_catalog(5, 3, epochs=0, seed=1)
        with pytest.raises(ValueError, match="drift"):
            drifting_zipf_catalog(5, 3, epochs=2, seed=1, drift=1.5)
        with pytest.raises(ValueError, match="crowd_epoch"):
            flash_crowd(5, 3, epochs=2, seed=1, crowd_epoch=5)


class TestEpochReplanner:
    def test_static_workload_migrates_once(self):
        """Identical epochs re-solve to identical placements: all
        migration happens into epoch 0 (from the zero-knowledge start)."""
        g, metric = _network(seed=9)
        cs = np.full(metric.n, 4.0)
        fr = np.tile(
            drifting_zipf_catalog(
                metric.n, 4, epochs=1, seed=11, requests_per_epoch=300,
                write_fraction=0.2,
            ).read_freqs[0],
            (3, 1, 1),
        )
        fw = np.zeros_like(fr)
        wl = DynamicWorkload(fr, fw)
        result = EpochReplanner(g, metric, cs).run(wl)
        assert len(result.epochs) == 3
        assert result.epochs[1].migration_cost == 0.0
        assert result.epochs[2].migration_cost == 0.0
        assert result.epochs[1].placement.copy_sets == result.epochs[0].placement.copy_sets
        # epoch 0 pays transfers from the cheapest-storage start node
        start = int(np.argmin(cs))
        expected = sum(
            metric.d(start, v)
            for obj in range(4)
            for v in result.epochs[0].placement.copies(obj)
            if v != start
        )
        assert result.epochs[0].migration_cost == pytest.approx(expected)

    def test_totals_decompose(self):
        g, metric = _network(seed=13)
        cs = np.full(metric.n, 3.0)
        wl = drifting_zipf_catalog(
            metric.n, 5, epochs=3, seed=14, drift=0.4, requests_per_epoch=250,
            write_fraction=0.1,
        )
        result = EpochReplanner(g, metric, cs).run(wl, log_seed=1)
        assert result.total_cost == pytest.approx(
            result.serve_cost + result.migration_cost
        )
        assert result.final_placement.num_objects == 5
        # each epoch's serving bill equals an independent simulator replay
        for e, er in enumerate(result.epochs):
            inst = wl.epoch_instance(metric, cs, e)
            sim = NetworkSimulator(g, inst)
            ref = sim.run(er.placement, wl.epoch_log(e, seed=1 + e))
            assert er.report.total_cost == pytest.approx(ref.total_cost, rel=1e-9)

    def test_replanner_matches_engine_per_epoch(self):
        g, metric = _network(seed=15)
        cs = np.full(metric.n, 5.0)
        wl = drifting_zipf_catalog(
            metric.n, 3, epochs=2, seed=16, requests_per_epoch=200
        )
        result = EpochReplanner(g, metric, cs, fl_solver="greedy").run(wl)
        for e, er in enumerate(result.epochs):
            inst = wl.epoch_instance(metric, cs, e)
            expected = PlacementEngine(inst, fl_solver="greedy").place()
            assert er.placement.copy_sets == expected.copy_sets


class TestE15Runner:
    def test_smoke_parity_and_sections(self):
        from repro.analysis import run_e15_dynamic_replay

        res = run_e15_dynamic_replay(
            n=40, num_objects=6, epochs=3, requests_per_epoch=200, seed=3
        )
        by_label = {row[1]: row for row in res.rows}
        assert by_label["vectorized"][-1] is True  # bills agree
        assert by_label["clairvoyant-static"][6] == pytest.approx(1.0)
        assert {"hop-by-hop", "epoch-replan", "online-counting"} <= set(by_label)

    def test_flash_scenario_and_unknown_scenario(self):
        from repro.analysis import run_e15_dynamic_replay

        res = run_e15_dynamic_replay(
            n=30, num_objects=5, epochs=2, requests_per_epoch=120,
            scenario="flash", seed=4, compare_loop=False,
        )
        assert any(row[1] == "vectorized" for row in res.rows)
        with pytest.raises(ValueError, match="scenario"):
            run_e15_dynamic_replay(n=20, num_objects=3, epochs=2, scenario="nope")
