"""Tests for repro.core.capacity: the capacitated-memory repair pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import approximate_placement
from repro.core.capacity import capacity_violations, enforce_capacities
from repro.core.costs import placement_cost
from repro.core.instance import DataManagementInstance
from repro.core.placement import Placement
from repro.graphs.metric import Metric
from tests.conftest import make_random_instance


def _multi_object_instance(seed: int, n: int = 8, m: int = 3):
    rng = np.random.default_rng(seed)
    base = make_random_instance(seed, n=n)
    fr = rng.integers(0, 5, size=(m, n)).astype(float)
    fw = rng.integers(0, 2, size=(m, n)).astype(float)
    return DataManagementInstance(base.metric, base.storage_costs, fr, fw)


class TestViolations:
    def test_no_violation(self):
        p = Placement.from_sets([{0}, {1}])
        assert capacity_violations(p, np.array([1, 1, 1])) == {}

    def test_detects_overflow(self):
        p = Placement.from_sets([{0}, {0}, {0, 1}])
        assert capacity_violations(p, np.array([2, 1])) == {0: 1}

    def test_zero_capacity_node(self):
        p = Placement.from_sets([{0}])
        assert capacity_violations(p, np.array([0, 5])) == {0: 1}


class TestEnforce:
    def test_noop_when_feasible(self):
        inst = _multi_object_instance(1)
        p = approximate_placement(inst)
        caps = np.full(inst.num_nodes, inst.num_objects)  # loose
        repaired = enforce_capacities(inst, p, caps)
        assert repaired.copy_sets == p.copy_sets

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_result_respects_capacities(self, seed):
        inst = _multi_object_instance(seed)
        p = approximate_placement(inst)
        caps = np.ones(inst.num_nodes, dtype=int)  # tight: one object/node
        repaired = enforce_capacities(inst, p, caps)
        assert capacity_violations(repaired, caps) == {}
        assert repaired.num_objects == inst.num_objects
        for obj in range(inst.num_objects):
            assert len(repaired.copies(obj)) >= 1

    def test_infeasible_total_capacity(self):
        inst = _multi_object_instance(2, n=4, m=3)
        p = approximate_placement(inst)
        with pytest.raises(ValueError, match="infeasible"):
            enforce_capacities(inst, p, np.array([1, 1, 0, 0]))

    def test_bad_shape(self):
        inst = _multi_object_instance(3)
        p = approximate_placement(inst)
        with pytest.raises(ValueError, match="shape"):
            enforce_capacities(inst, p, np.ones(3))

    def test_negative_capacity(self):
        inst = _multi_object_instance(4)
        p = approximate_placement(inst)
        with pytest.raises(ValueError, match="non-negative"):
            enforce_capacities(inst, p, -np.ones(inst.num_nodes, dtype=int))

    def test_zero_capacity_nodes_emptied(self):
        inst = _multi_object_instance(5)
        p = approximate_placement(inst)
        caps = np.full(inst.num_nodes, inst.num_objects)
        caps[0] = 0
        repaired = enforce_capacities(inst, p, caps)
        for copies in repaired:
            assert 0 not in copies

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=8, deadline=None)
    def test_repaired_cost_bounded_below_by_unconstrained_optimum(self, seed):
        """Capacities can only restrict the feasible set, so any repaired
        placement costs at least the unconstrained optimum.  (Note the
        repair itself may *improve* a non-locally-optimal input: its
        delete moves accept negative deltas.)"""
        from repro.baselines.exhaustive import brute_force_object

        inst = _multi_object_instance(seed, n=7)
        p = approximate_placement(inst)
        tight = enforce_capacities(inst, p, np.ones(inst.num_nodes, dtype=int))
        c_tight = placement_cost(inst, tight, policy="mst").total
        unconstrained = sum(
            brute_force_object(inst, obj, policy="mst")[1]
            for obj in range(inst.num_objects)
        )
        assert c_tight >= unconstrained - 1e-9

    def test_deterministic(self):
        inst = _multi_object_instance(7)
        p = approximate_placement(inst)
        caps = np.ones(inst.num_nodes, dtype=int)
        a = enforce_capacities(inst, p, caps)
        b = enforce_capacities(inst, p, caps)
        assert a.copy_sets == b.copy_sets

    def test_relocation_preferred_over_costly_delete(self, line_metric):
        """A last... second copy serving heavy demand should relocate to a
        free neighbour rather than vanish, when relocation is cheaper."""
        inst = DataManagementInstance(
            line_metric,
            np.ones(5),
            np.array([[20.0, 0, 0, 0, 20.0]]),
            np.zeros((1, 5)),
        )
        p = Placement.from_sets([{0, 4}])
        caps = np.array([1, 1, 1, 1, 0])  # node 4 can hold nothing
        repaired = enforce_capacities(inst, p, caps)
        # the evicted copy moves to node 3 (nearest to the demand at 4)
        assert repaired.copies(0) == (0, 3)
