"""Round-trip property tests for repro.serialize and PlanReport.

The contract: persistence is exact.  A reloaded instance answers every
distance query like the original (dense matrix or CSR adjacency stored
verbatim), so re-running the engine gives bit-identical copy sets; a
reloaded PlanReport compares equal to the saved one, field for field.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PlanReport, Planner
from repro.config import PlanConfig
from repro.core.instance import DataManagementInstance
from repro.core.placement import Placement
from repro.engine import PlacementEngine
from repro.graphs import generators
from repro.graphs.backend import LazyMetric
from repro.graphs.metric import Metric
from repro.serialize import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    placement_from_arrays,
    placement_to_arrays,
    save_instance,
)
from repro.workloads.request_models import make_instance

seeds = st.integers(min_value=0, max_value=120)


def _instance(seed: int, backend: str) -> DataManagementInstance:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 24))
    g = generators.erdos_renyi_graph(n, 0.4, seed=seed)
    metric = Metric.from_graph(g) if backend == "dense" else LazyMetric.from_graph(g)
    return make_instance(
        metric,
        seed=seed + 1,
        num_objects=int(rng.integers(1, 5)),
        demand_model=["uniform", "zipf", "hotspot"][seed % 3],
        write_fraction=float(rng.choice([0.0, 0.2, 0.5])),
    )


class TestInstanceRoundTrip:
    @given(seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_npz_round_trip_places_identically_dense(self, seed, tmp_path_factory):
        self._check(seed, "dense", ".npz", tmp_path_factory)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_npz_round_trip_places_identically_lazy(self, seed, tmp_path_factory):
        self._check(seed, "lazy", ".npz", tmp_path_factory)

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_json_round_trip_places_identically(self, seed, tmp_path_factory):
        self._check(seed, ["dense", "lazy"][seed % 2], ".json", tmp_path_factory)

    def _check(self, seed, backend, suffix, tmp_path_factory):
        inst = _instance(seed, backend)
        path = tmp_path_factory.mktemp("ser") / f"inst{suffix}"
        save_instance(inst, path)
        clone = load_instance(path)
        # the backend kind survives
        assert type(clone.metric) is type(inst.metric)
        # problem data survives bit for bit
        assert np.array_equal(clone.storage_costs, inst.storage_costs)
        assert np.array_equal(clone.read_freq, inst.read_freq)
        assert np.array_equal(clone.write_freq, inst.write_freq)
        assert clone.object_names == inst.object_names
        # and so does the engine's decision sequence
        assert PlacementEngine(clone, chunk_size=3).place().copy_sets == \
            PlacementEngine(inst, chunk_size=3).place().copy_sets

    def test_dict_round_trip_preserves_metadata(self):
        inst = _instance(3, "dense")
        named = DataManagementInstance(
            inst.metric, inst.storage_costs, inst.read_freq, inst.write_freq,
            object_names=tuple(f"page-{i}" for i in range(inst.num_objects)),
            object_sizes=np.linspace(1.0, 2.0, inst.num_objects),
        )
        clone = instance_from_dict(instance_to_dict(named))
        assert clone.object_names == named.object_names
        assert np.array_equal(clone.object_sizes, named.object_sizes)

    def test_load_rejects_foreign_payload(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="serialized"):
            load_instance(path)


class TestPlacementArrays:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_arrays_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        m, n = int(rng.integers(1, 8)), int(rng.integers(2, 20))
        sets = tuple(
            tuple(sorted(rng.choice(n, size=int(rng.integers(1, n + 1)),
                                    replace=False).tolist()))
            for _ in range(m)
        )
        placement = Placement(sets)
        nodes, offsets = placement_to_arrays(placement)
        assert placement_from_arrays(nodes, offsets) == placement


class TestPlanReportRoundTrip:
    @given(seed=seeds,
           strategy=st.sampled_from(["krw", "online", "epoch-replan"]),
           suffix=st.sampled_from([".json", ".npz"]))
    @settings(max_examples=10, deadline=None)
    def test_report_load_equals_saved(self, seed, strategy, suffix,
                                      tmp_path_factory):
        inst = _instance(seed, "dense")
        config = PlanConfig(seed=seed % 5, chunk_size=2)
        report = Planner(config).plan(inst, strategy)
        path = tmp_path_factory.mktemp("rep") / f"r{suffix}"
        report.save(path)
        loaded = PlanReport.load(path)
        assert loaded == report
        # strategy extras (migration bills, event counts) survive exactly
        assert loaded.extras == report.extras
        assert loaded.config == config


class TestCanonicalPayload:
    """canonical_payload / canonical_json_dumps: the byte-determinism
    layer under save_json and the bench trial cache."""

    def test_sorts_keys_and_unwraps_numpy(self):
        from repro.serialize import canonical_json_dumps, canonical_payload

        payload = canonical_payload({
            "b": np.int64(2), "a": np.float64(1.5),
            "c": (np.bool_(True), [np.int32(3)]),
        })
        assert payload == {"a": 1.5, "b": 2, "c": [True, [3]]}
        assert type(payload["b"]) is int
        assert type(payload["c"][0]) is bool
        text = canonical_json_dumps({"b": 1, "a": 2}, indent=None)
        assert text == '{"a": 2, "b": 1}'

    def test_negative_zero_folds_onto_zero(self):
        from repro.serialize import canonical_json_dumps

        assert canonical_json_dumps(-0.0) == canonical_json_dumps(0.0)
        assert canonical_json_dumps([np.float64("-0.0")], indent=None) == "[0.0]"

    def test_rejects_non_json_values(self):
        from repro.serialize import canonical_payload

        with pytest.raises(TypeError, match="no canonical JSON form"):
            canonical_payload({"x": object()})
        with pytest.raises(ValueError, match="duplicate canonical key"):
            canonical_payload({1: "a", "1": "b"})

    def test_ndarray_collapses_onto_lists(self):
        from repro.serialize import canonical_payload

        assert canonical_payload(np.arange(3)) == [0, 1, 2]
        assert canonical_payload({"m": np.eye(2)}) == {"m": [[1.0, 0.0], [0.0, 1.0]]}
