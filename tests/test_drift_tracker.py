"""Tests for the shared drift-anchor bookkeeping (DriftTracker) and the
thread-safety of the hot lookup caches it serves alongside (LazyMetric's
row cache, the simulator's PathCache)."""

import threading

import numpy as np
import pytest

from repro.graphs.backend import LazyMetric
from repro.graphs.generators import transit_stub_graph
from repro.graphs.metric import Metric
from repro.simulate.paths import PathCache
from repro.workloads import DriftTracker, drifted_rows


def _demand(seed: int, m: int = 4, n: int = 6):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 8, (m, n)).astype(float),
        rng.integers(0, 3, (m, n)).astype(float),
    )


class TestDriftTracker:
    def test_unprimed_tracker_refuses_queries(self):
        t = DriftTracker()
        assert t.primed is False
        fr, fw = _demand(0)
        with pytest.raises(ValueError, match="prime"):
            t.drifted(fr, fw)
        with pytest.raises(ValueError, match="prime"):
            t.rebase([0], fr, fw)
        with pytest.raises(ValueError, match="prime"):
            t.anchors

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            DriftTracker(tolerance=-0.1)
        with pytest.raises(ValueError, match="tolerance"):
            DriftTracker(tolerance=float("nan"))

    def test_prime_copies_its_inputs(self):
        fr, fw = _demand(1)
        t = DriftTracker()
        t.prime(fr, fw)
        fr[0, 0] += 99.0  # caller mutation must not move the anchor
        assert t.drifted(fr, fw).tolist() == [0]
        base_fr, _ = t.anchors
        base_fr[:] = -1.0  # returned anchors are copies too
        assert t.drifted(fr, fw).tolist() == [0]

    def test_matches_drifted_rows_semantics(self):
        base_fr, base_fw = _demand(2)
        fr, fw = _demand(3)
        for tol in (0.0, 0.3):
            t = DriftTracker(tolerance=tol)
            t.prime(base_fr, base_fw)
            expected = drifted_rows(base_fr, base_fw, fr, fw, tolerance=tol)
            assert np.array_equal(t.drifted(fr, fw), expected)

    def test_rebase_moves_only_the_given_rows(self):
        base_fr, base_fw = _demand(4)
        t = DriftTracker()
        t.prime(base_fr, base_fw)
        fr = base_fr.copy()
        fr[[1, 3]] += 1.0
        dirty = t.drifted(fr, base_fw)
        assert dirty.tolist() == [1, 3]
        t.rebase(dirty, fr, base_fw)
        assert t.drifted(fr, base_fw).size == 0
        # the untouched rows still accumulate against the old anchor
        fr2 = fr.copy()
        fr2[0] += 1.0
        assert t.drifted(fr2, base_fw).tolist() == [0]

    def test_rebase_empty_is_a_no_op(self):
        fr, fw = _demand(5)
        t = DriftTracker()
        t.prime(fr, fw)
        t.rebase(np.array([], dtype=int), fr + 7.0, fw)
        assert t.drifted(fr, fw).size == 0

    def test_accumulated_drift_crosses_a_positive_tolerance(self):
        """Anchors sit at the last re-place, not the previous epoch: a
        slow per-epoch creep must eventually trip the tolerance."""
        fr = np.full((1, 4), 10.0)
        fw = np.zeros((1, 4))
        t = DriftTracker(tolerance=0.25)
        t.prime(fr, fw)
        step = fr.copy()
        tripped_at = None
        for epoch in range(1, 10):
            step = step + 1.0  # ~2.5% of the anchor volume per epoch
            if t.drifted(step, fw).size:
                tripped_at = epoch
                break
        assert tripped_at is not None and tripped_at > 1

    def test_shape_mismatch_rejected(self):
        t = DriftTracker()
        with pytest.raises(ValueError, match="matching"):
            t.prime(np.ones((2, 3)), np.ones((3, 2)))


class TestConcurrentCaches:
    """The daemon answers lookups from arbitrary threads while the
    background worker solves -- the shared caches must not corrupt."""

    def _graph(self):
        return transit_stub_graph(2, 2, 3, seed=8)

    def test_lazy_metric_rows_under_contention(self):
        g = self._graph()
        lazy = LazyMetric.from_graph(g, cache_rows=4)  # forced eviction
        dense = Metric.from_graph(g)
        n = lazy.n
        failures: list[str] = []

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(150):
                idx = rng.choice(n, size=3, replace=False)
                got = lazy.rows(idx)
                if not np.allclose(got, dense.rows(idx)):
                    failures.append(f"rows {idx.tolist()}")
                    return
                targets = rng.choice(n, size=2, replace=False)
                near, dist = lazy.nearest_in_set(targets)
                ref_near, ref_dist = dense.nearest_in_set(targets)
                if not np.allclose(dist, ref_dist):
                    failures.append(f"nearest {targets.tolist()}")
                    return

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_path_cache_under_contention(self):
        g = self._graph()
        cache = PathCache(g, max_sources=4)
        n = g.number_of_nodes()
        reference = PathCache(g)
        failures: list[str] = []

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(200):
                src = int(rng.integers(0, n))
                dst = int(rng.integers(0, n))
                if cache.path(src, dst) != reference.path(src, dst):
                    failures.append(f"{src}->{dst}")
                    return

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert cache.sources_computed >= 1
