"""Tests for repro.workloads: generators and scenarios."""

import numpy as np
import pytest

from repro.graphs.generators import random_tree
from repro.graphs.metric import Metric
from repro.workloads import (
    distributed_file_system,
    heterogeneous_storage_costs,
    hotspot_requests,
    make_instance,
    split_read_write,
    tree_network,
    uniform_requests,
    uniform_storage_costs,
    virtual_shared_memory,
    www_content_provider,
    zipf_object_popularity,
)


@pytest.fixture
def metric():
    return Metric.from_graph(random_tree(10, seed=1))


class TestStorageCosts:
    def test_uniform(self):
        cs = uniform_storage_costs(5, 2.5)
        assert np.allclose(cs, 2.5)

    def test_uniform_negative_rejected(self):
        with pytest.raises(ValueError):
            uniform_storage_costs(5, -1.0)

    def test_heterogeneous_range_and_determinism(self):
        a = heterogeneous_storage_costs(20, seed=3, low=1.0, high=2.0)
        b = heterogeneous_storage_costs(20, seed=3, low=1.0, high=2.0)
        assert np.array_equal(a, b)
        assert np.all((a >= 1.0) & (a < 2.0))


class TestRequestGenerators:
    def test_uniform_shape_and_nonneg(self):
        r = uniform_requests(10, 3, seed=1)
        assert r.shape == (3, 10)
        assert np.all(r >= 0)
        assert np.allclose(r, np.round(r))  # integer counts

    def test_zipf_popularity_decreasing(self):
        r = zipf_object_popularity(20, 6, seed=2, total_per_object=50.0)
        totals = r.sum(axis=1)
        assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))

    def test_hotspot_concentration(self):
        r = hotspot_requests(
            50, 1, seed=3, hot_fraction=0.1, hot_share=0.9, total_per_object=1000
        )
        row = np.sort(r[0])[::-1]
        # the top 10% of nodes should hold clearly more than half the mass
        assert row[:5].sum() > 0.5 * row.sum()

    def test_hotspot_param_validation(self):
        with pytest.raises(ValueError):
            hotspot_requests(10, 1, seed=1, hot_fraction=0.0)

    def test_split_read_write_partitions(self):
        demand = uniform_requests(10, 2, seed=4)
        reads, writes = split_read_write(demand, write_fraction=0.4, seed=5)
        assert np.allclose(reads + writes, demand)
        assert np.all(reads >= 0) and np.all(writes >= 0)

    def test_split_extremes(self):
        demand = uniform_requests(8, 1, seed=6)
        reads, writes = split_read_write(demand, write_fraction=0.0, seed=7)
        assert writes.sum() == 0
        reads, writes = split_read_write(demand, write_fraction=1.0, seed=8)
        assert reads.sum() == 0

    def test_split_fraction_validated(self):
        with pytest.raises(ValueError):
            split_read_write(np.ones((1, 3)), write_fraction=1.5, seed=1)


class TestMakeInstance:
    @pytest.mark.parametrize("model", ["uniform", "zipf", "hotspot"])
    def test_models(self, metric, model):
        inst = make_instance(metric, seed=9, num_objects=3, demand_model=model)
        assert inst.num_objects == 3
        assert inst.num_nodes == 10

    def test_unknown_model(self, metric):
        with pytest.raises(ValueError, match="demand model"):
            make_instance(metric, seed=1, demand_model="nope")

    def test_fixed_storage_price(self, metric):
        inst = make_instance(metric, seed=1, storage_price=3.0)
        assert np.allclose(inst.storage_costs, 3.0)

    def test_deterministic(self, metric):
        a = make_instance(metric, seed=12, num_objects=2)
        b = make_instance(metric, seed=12, num_objects=2)
        assert np.array_equal(a.read_freq, b.read_freq)
        assert np.array_equal(a.write_freq, b.write_freq)
        assert np.array_equal(a.storage_costs, b.storage_costs)


class TestScenarios:
    @pytest.mark.parametrize(
        "factory",
        [
            www_content_provider,
            distributed_file_system,
            virtual_shared_memory,
            tree_network,
        ],
    )
    def test_scenarios_build_consistent_instances(self, factory):
        sc = factory()
        assert sc.instance.num_nodes == sc.graph.number_of_nodes()
        assert sc.instance.num_objects >= 1
        assert sc.name

    def test_www_is_read_heavy(self):
        sc = www_content_provider()
        total_r = sc.instance.read_freq.sum()
        total_w = sc.instance.write_freq.sum()
        assert total_w < 0.2 * total_r

    def test_vsm_is_write_heavy(self):
        sc = virtual_shared_memory()
        total_r = sc.instance.read_freq.sum()
        total_w = sc.instance.write_freq.sum()
        assert total_w > 0.5 * total_r

    def test_tree_scenario_graph_is_tree(self):
        sc = tree_network()
        assert sc.graph.number_of_edges() == sc.graph.number_of_nodes() - 1


class TestZipfCatalog:
    def test_budget_and_shape(self):
        from repro.workloads import zipf_catalog

        d = zipf_catalog(20, 500, seed=3, total_requests=5000)
        assert d.shape == (500, 20)
        assert d.sum() == 5000
        assert np.all(d >= 0) and np.all(d == np.floor(d))

    def test_popularity_is_zipf_ordered(self):
        from repro.workloads import zipf_catalog

        d = zipf_catalog(30, 200, seed=4)
        totals = d.sum(axis=1)
        # head objects receive (statistically) far more than tail objects
        assert totals[:10].mean() > 5 * totals[-50:].mean()

    def test_deterministic(self):
        from repro.workloads import zipf_catalog

        assert np.array_equal(
            zipf_catalog(15, 100, seed=9), zipf_catalog(15, 100, seed=9)
        )

    def test_hotspot_node_probs(self):
        from repro.workloads import hotspot_node_probs, zipf_catalog

        probs = hotspot_node_probs(40, seed=5)
        assert probs.shape == (40,)
        assert probs.sum() == pytest.approx(1.0)
        d = zipf_catalog(40, 300, seed=6, node_probs=probs)
        hot = np.argsort(probs)[-8:]
        share = d.sum(axis=0)[hot].sum() / d.sum()
        assert share > 0.5  # hot nodes issue most requests

    def test_make_instance_catalog_models(self, metric):
        inst = make_instance(metric, seed=7, num_objects=300,
                             demand_model="catalog", total_requests=3000)
        assert inst.num_objects == 300
        assert inst.read_freq.sum() + inst.write_freq.sum() == 3000
        inst2 = make_instance(metric, seed=7, num_objects=50,
                              demand_model="catalog_hotspot")
        assert inst2.num_objects == 50


class TestScenarioCatalogs:
    def test_scenarios_accept_num_objects(self):
        from repro.workloads import (
            distributed_file_system,
            tree_network,
            virtual_shared_memory,
            www_content_provider,
        )

        for fn in (www_content_provider, distributed_file_system,
                   virtual_shared_memory, tree_network):
            sc = fn(num_objects=5)
            assert sc.instance.num_objects == 5

    def test_catalog_auto_threshold(self):
        from repro.workloads import CATALOG_AUTO_THRESHOLD, www_content_provider

        big = www_content_provider(num_objects=CATALOG_AUTO_THRESHOLD)
        assert big.instance.num_objects == CATALOG_AUTO_THRESHOLD
        # explicit opt-out keeps the per-object zipf generator
        small = www_content_provider(num_objects=CATALOG_AUTO_THRESHOLD, catalog=False)
        assert small.instance.num_objects == CATALOG_AUTO_THRESHOLD
        assert not np.array_equal(big.instance.read_freq, small.instance.read_freq)
