"""Tests for repro.core.radii: the Section 2.1 defining inequalities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.radii import RequestProfile, radii_for_object
from repro.graphs.metric import Metric
from tests.conftest import make_random_instance


@pytest.fixture
def profile(line_metric):
    # weights: node i issues i requests (node 0 none)
    return RequestProfile(line_metric, np.array([0.0, 1.0, 2.0, 3.0, 4.0]))


class TestPrefix:
    def test_zero_z(self, profile):
        assert profile.prefix(0, 0) == 0.0
        assert profile.avg_dist(0, 0) == 0.0

    def test_prefix_at_node_zero(self, profile):
        # from node 0, sorted request distances: 1 (x1), 2,2 (x2), 3^3, 4^4
        assert profile.prefix(0, 1) == pytest.approx(1.0)
        assert profile.prefix(0, 3) == pytest.approx(1 + 2 + 2)
        assert profile.prefix(0, 6) == pytest.approx(1 + 4 + 9)

    def test_prefix_fractional(self, profile):
        # halfway into the second request (distance 2): 1 + 0.5*2
        assert profile.prefix(0, 1.5) == pytest.approx(2.0)

    def test_prefix_clamps_to_total(self, profile):
        assert profile.prefix(0, 100) == pytest.approx(profile.prefix(0, 10))

    def test_avg_dist_is_prefix_over_z(self, profile):
        z = 4.0
        assert profile.avg_dist(0, z) == pytest.approx(profile.prefix(0, z) / z)

    def test_own_requests_at_distance_zero(self, profile):
        # node 4 has 4 requests at distance 0
        assert profile.prefix(4, 4) == 0.0
        assert profile.avg_dist(4, 4) == 0.0

    def test_weights_shape_validated(self, line_metric):
        with pytest.raises(ValueError):
            RequestProfile(line_metric, np.ones(3))

    def test_negative_weights_rejected(self, line_metric):
        with pytest.raises(ValueError):
            RequestProfile(line_metric, np.array([1.0, -1.0, 0, 0, 0]))

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_prefix_monotone_and_avg_monotone(self, seed):
        inst = make_random_instance(seed, n=7)
        prof = RequestProfile(inst.metric, inst.demand(0))
        v = seed % 7
        zs = np.linspace(0.1, prof.total, 12)
        prefixes = [prof.prefix(v, z) for z in zs]
        avgs = [prof.avg_dist(v, z) for z in zs]
        assert all(a <= b + 1e-9 for a, b in zip(prefixes, prefixes[1:]))
        assert all(a <= b + 1e-9 for a, b in zip(avgs, avgs[1:]))


class TestWriteRadius:
    def test_zero_writes_gives_zero(self, profile):
        assert profile.write_radius(2, 0.0) == 0.0

    def test_equals_avg_dist_at_w(self, profile):
        assert profile.write_radius(1, 3.0) == pytest.approx(profile.avg_dist(1, 3.0))

    def test_radius_grows_with_w(self, profile):
        assert profile.write_radius(0, 2.0) <= profile.write_radius(0, 8.0) + 1e-12


class TestStorageRadius:
    def test_defining_inequalities_hold(self):
        """The paper's two chains: (zs-1) rs <= cs < zs rs and
        d(v, zs-1) <= rs <= d(v, zs)."""
        for seed in range(40):
            inst = make_random_instance(seed, n=8)
            prof = RequestProfile(inst.metric, inst.demand(0))
            for v in range(8):
                cs = float(inst.storage_costs[v])
                rs, zs = prof.storage_radius(v, cs)
                if math.isinf(rs):
                    # degenerate: storage never amortizes
                    assert prof.prefix(v, prof.total) <= cs + 1e-9
                    continue
                assert (zs - 1) * rs <= cs + 1e-9
                assert cs < zs * rs + 1e-9
                assert prof.avg_dist(v, zs - 1) <= rs + 1e-9
                assert rs <= prof.avg_dist(v, zs) + 1e-9

    def test_zs_is_first_prefix_exceeding_cs(self):
        for seed in range(20):
            inst = make_random_instance(seed, n=6)
            prof = RequestProfile(inst.metric, inst.demand(0))
            for v in range(6):
                cs = float(inst.storage_costs[v])
                rs, zs = prof.storage_radius(v, cs)
                if math.isinf(rs):
                    continue
                assert prof.prefix(v, zs) > cs - 1e-9
                if zs > 1:
                    assert prof.prefix(v, zs - 1) <= cs + 1e-9

    def test_zero_storage_cost(self, profile):
        # cs = 0: zs is the first z with positive prefix
        rs, zs = profile.storage_radius(0, 0.0)
        assert zs == 1
        assert 0.0 <= rs <= profile.avg_dist(0, 1)

    def test_huge_storage_cost_gives_infinite_radius(self, profile):
        rs, zs = profile.storage_radius(0, 1e9)
        assert math.isinf(rs)

    def test_no_requests_gives_infinite_radius(self, line_metric):
        prof = RequestProfile(line_metric, np.zeros(5))
        rs, _ = prof.storage_radius(2, 1.0)
        assert math.isinf(rs)

    def test_negative_cost_rejected(self, profile):
        with pytest.raises(ValueError):
            profile.storage_radius(0, -1.0)


class TestRadiiForObject:
    def test_shapes(self):
        inst = make_random_instance(3, n=7)
        rw, rs, zs = radii_for_object(
            inst.metric, inst.storage_costs, inst.read_freq[0], inst.write_freq[0]
        )
        assert rw.shape == rs.shape == zs.shape == (7,)
        assert np.all(rw >= 0)

    def test_read_only_write_radius_zero(self):
        inst = make_random_instance(5, n=6, max_write=0)
        rw, _, _ = radii_for_object(
            inst.metric, inst.storage_costs, inst.read_freq[0], inst.write_freq[0]
        )
        assert np.allclose(rw, 0.0)

    def test_node_with_local_mass_has_small_write_radius(self, line_metric):
        # all writes at node 0 -> rw(0) = 0, rw(4) = 4
        rw, _, _ = radii_for_object(
            line_metric,
            np.ones(5),
            np.zeros(5),
            np.array([3.0, 0.0, 0.0, 0.0, 0.0]),
        )
        assert rw[0] == 0.0
        assert rw[4] == pytest.approx(4.0)
