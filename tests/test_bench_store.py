"""Trial store + sweep runner: atomic cache, bit-identical resume."""

import pytest

from repro.bench import TrialConfig, TrialStore, run_sweep, run_trial
from repro.bench.runner import EXPERIMENT_RUNNERS
from repro.bench.store import TrialRecord

# Three tiny, fully-seeded (deterministic) trials.
TRIALS = [
    TrialConfig.make("E1", families=["tree"], n=6, seeds=[0, 1]),
    TrialConfig.make("E1", families=["er"], n=6, seeds=[0, 1]),
    TrialConfig.make("E4", families=["tree"], n=8, seeds=[3]),
]


def result_bytes(outcomes):
    return [o.record.result_bytes for o in outcomes]


class TestTrialStore:
    def test_save_load_round_trip(self, tmp_path):
        store = TrialStore(tmp_path / "cache")
        config = TRIALS[0]
        assert store.load(config) is None
        assert config not in store

        record = TrialRecord(
            config=config,
            result=run_trial(config).to_json(),
            elapsed_s=0.5,
            generated_at="2026-08-08T00:00:00Z",
        )
        path = store.save(record)
        assert path.name == f"{config.hash}.json"
        assert config in store and len(store) == 1

        loaded = store.load(config)
        assert loaded.config == config
        assert loaded.result_bytes == record.result_bytes
        assert loaded.elapsed_s == 0.5
        assert loaded.generated_at == "2026-08-08T00:00:00Z"
        # the rendered table survives the round trip
        assert (
            loaded.to_experiment_result().render()
            == record.to_experiment_result().render()
        )

    def test_failed_save_leaves_no_file_behind(self, tmp_path):
        store = TrialStore(tmp_path / "cache")
        record = TrialRecord(
            config=TRIALS[0], result={"bad": object()}, elapsed_s=0.0
        )
        with pytest.raises(TypeError):
            store.save(record)
        assert len(store) == 0
        assert list((tmp_path / "cache").glob("*.tmp")) == []

    def test_tampered_record_is_rejected(self, tmp_path):
        store = TrialStore(tmp_path / "cache")
        config = TRIALS[0]
        record = TrialRecord(
            config=config, result=run_trial(config).to_json(), elapsed_s=0.1
        )
        path = store.save(record)

        # a record copied under another config's filename is caught
        other = TRIALS[1]
        store.path_for(other).write_text(path.read_text())
        with pytest.raises(ValueError, match="corrupt"):
            store.load(other)

        # an edited config no longer hashes to its recorded digest
        edited = path.read_text().replace('"n": 6', '"n": 7')
        path.write_text(edited)
        with pytest.raises(ValueError, match="edited or corrupted"):
            store.load(config)

        # arbitrary JSON in the store is not silently trusted
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a repro-bench-trial"):
            store.load(config)


class TestRunSweep:
    def test_limit_resumes_bit_identically(self, tmp_path):
        """An interrupted sweep (limit-budgeted) resumed later completes
        only the remaining trials, and every cached result comes back
        byte-for-byte equal to an uninterrupted run's."""
        reference = run_sweep(TRIALS, TrialStore(tmp_path / "full"))
        assert [o.status for o in reference] == ["ran"] * 3

        store = TrialStore(tmp_path / "resumed")
        first = run_sweep(TRIALS, store, limit=1)
        assert [o.status for o in first] == ["ran", "pending", "pending"]
        assert len(store) == 1

        second = run_sweep(TRIALS, store, limit=1)
        assert [o.status for o in second] == ["cached", "ran", "pending"]

        third = run_sweep(TRIALS, store)
        assert [o.status for o in third] == ["cached", "cached", "ran"]
        assert result_bytes(third) == result_bytes(reference)

    def test_kill_mid_sweep_then_resume(self, tmp_path, monkeypatch):
        """A sweep killed between trials keeps every finished trial;
        the rerun loads them bit-identically and runs only the rest."""
        reference = run_sweep(TRIALS, TrialStore(tmp_path / "full"))

        real_e1 = EXPERIMENT_RUNNERS["E1"]
        bomb_params = TRIALS[1].params_dict

        def exploding_e1(**kwargs):
            if kwargs == bomb_params:
                raise KeyboardInterrupt
            return real_e1(**kwargs)

        store = TrialStore(tmp_path / "killed")
        monkeypatch.setitem(EXPERIMENT_RUNNERS, "E1", exploding_e1)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(TRIALS, store)
        assert len(store) == 1  # only the trial that finished before the kill

        monkeypatch.setitem(EXPERIMENT_RUNNERS, "E1", real_e1)
        resumed = run_sweep(TRIALS, store)
        assert [o.status for o in resumed] == ["cached", "ran", "ran"]
        assert result_bytes(resumed) == result_bytes(reference)

    def test_cached_trials_do_not_consume_the_limit(self, tmp_path):
        store = TrialStore(tmp_path / "cache")
        run_sweep(TRIALS[:1], store)
        outcomes = run_sweep(TRIALS, store, limit=1)
        assert [o.status for o in outcomes] == ["cached", "ran", "pending"]

    def test_parallel_run_matches_serial(self, tmp_path):
        serial = run_sweep(TRIALS, TrialStore(tmp_path / "serial"))
        parallel = run_sweep(TRIALS, TrialStore(tmp_path / "pool"), jobs=2)
        assert [o.status for o in parallel] == ["ran"] * 3
        assert result_bytes(parallel) == result_bytes(serial)

    def test_rejects_bad_budgets(self, tmp_path):
        store = TrialStore(tmp_path / "cache")
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(TRIALS, store, jobs=0)
        with pytest.raises(ValueError, match="limit"):
            run_sweep(TRIALS, store, limit=-1)

    def test_unknown_experiment_names_itself(self, tmp_path):
        store = TrialStore(tmp_path / "cache")
        with pytest.raises(ValueError, match="unknown experiment 'E99'"):
            run_sweep([TrialConfig.make("E99", n=4)], store)
