"""Tests for the serving subsystem: daemon-vs-replanner parity, lookup
consistency under live background replans, warm restarts, checkpoints,
spool files and the CLI/registry surfaces."""

import io
import json
import sys
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.config import PlanConfig
from repro.graphs.backend import LazyMetric
from repro.graphs.generators import transit_stub_graph
from repro.graphs.metric import Metric
from repro.registry import get_strategy
from repro.serve import (
    DaemonCheckpoint,
    PlacementDaemon,
    compare_with_replanner,
    load_checkpoint,
    read_spool_file,
    replay_workload,
    spool_files,
    write_spool_file,
)
from repro.simulate import EpochReplanner
from repro.simulate.events import RequestLog
from repro.workloads import drifting_zipf_catalog, make_instance


def _network(seed: int = 3):
    g = transit_stub_graph(2, 2, 3, seed=seed)
    return g, Metric.from_graph(g)


def _workload(n: int, m: int = 5, epochs: int = 4, seed: int = 11):
    return drifting_zipf_catalog(
        n, m, epochs=epochs, seed=seed, drift=0.4,
        requests_per_epoch=60 * m, redraw="changed",
    )


def _costs(n: int) -> np.ndarray:
    return np.full(n, 30.0)


# ----------------------------------------------------------------------
# tolerance-0 parity with the epoch replanner (the E19 contract)
# ----------------------------------------------------------------------
class TestReplannerParity:
    @pytest.mark.parametrize("backend", ["dense", "lazy"])
    @pytest.mark.parametrize("mode", ["full", "incremental"])
    def test_bit_identical_at_tolerance_zero(self, backend, mode):
        g, metric = _network()
        if backend == "lazy":
            metric = LazyMetric.from_graph(g)
        wl = _workload(metric.n)
        config = PlanConfig(replan_mode=mode, replan_tolerance=0.0)
        verdict = compare_with_replanner(
            g, metric, _costs(metric.n), wl, config
        )
        assert verdict["identical"] is True
        for epoch in verdict["epochs"]:
            assert epoch["placements_match"] is True
        assert verdict["cost_ratio"] == pytest.approx(1.0, rel=1e-12)

    def test_per_epoch_bills_bit_identical(self):
        """Not just the totals: every epoch's serve + migration bill is
        the replanner's, bit for bit."""
        g, metric = _network()
        wl = _workload(metric.n)
        config = PlanConfig(replan_mode="incremental", replan_tolerance=0.0)
        daemon = PlacementDaemon(
            _costs(metric.n), wl.num_objects, metric=metric, graph=g,
            config=config, keep_history=True,
        )
        try:
            records = replay_workload(daemon, wl)
        finally:
            daemon.close()
        result = EpochReplanner(g, metric, _costs(metric.n), config=config).run(wl)
        assert len(records) == wl.num_epochs
        for rec, rep in zip(records, result.epochs):
            assert rec["serve_cost"] == rep.report.total_cost
            assert rec["migration_cost"] == rep.migration_cost
            assert rec["replaced"] == rep.replaced_objects

    def test_registry_daemon_strategy_matches_krw(self):
        g, metric = _network()
        inst = make_instance(metric, seed=5, num_objects=4)
        config = PlanConfig()
        report = get_strategy("daemon").plan(inst, config)
        krw = get_strategy("krw").plan(inst, config)
        assert report.placement.copy_sets == krw.placement.copy_sets
        assert report.extras["generation"] == 1


# ----------------------------------------------------------------------
# lookups racing live background replans
# ----------------------------------------------------------------------
class TestLookupConsistency:
    def test_threaded_lookups_never_mix_generations(self):
        g, metric = _network()
        wl = _workload(metric.n, epochs=6, seed=17)
        daemon = PlacementDaemon(
            _costs(metric.n), wl.num_objects, metric=metric, graph=g,
            config=PlanConfig(replan_mode="incremental"), keep_history=True,
        )
        stop = threading.Event()
        failures: list[str] = []
        lookups = [0]

        def reader(seed: int) -> None:
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                obj = int(rng.integers(0, wl.num_objects))
                r = daemon.lookup(obj, int(rng.integers(0, metric.n)))
                expected = daemon.generation_placement(r.generation)[obj]
                if r.copies != expected or r.replica not in r.copies:
                    failures.append(
                        f"gen {r.generation}: {r.copies} != {expected}"
                    )
                lookups[0] += 1

        threads = [
            threading.Thread(target=reader, args=(s,)) for s in (1, 2, 3)
        ]
        try:
            for t in threads:
                t.start()
            for e in range(wl.num_epochs):
                daemon.ingest_counts(wl.read_freqs[e], wl.write_freqs[e])
                daemon.end_epoch(wait=False)
            daemon.drain()
        finally:
            stop.set()
            for t in threads:
                t.join()
            daemon.close()
        assert not failures
        assert lookups[0] > 0
        assert daemon.snapshot().generation == wl.num_epochs

    def test_snapshot_is_internally_consistent(self):
        g, metric = _network()
        wl = _workload(metric.n)
        with PlacementDaemon(
            _costs(metric.n), wl.num_objects, metric=metric, graph=g
        ) as daemon:
            replay_workload(daemon, wl)
            state = daemon.snapshot()
            assert state.generation == wl.num_epochs
            for obj in range(wl.num_objects):
                node, dist = state.nearest_replica(obj, 0)
                assert node in state.placement(obj)
                assert dist == metric.rows([0])[0][node]


# ----------------------------------------------------------------------
# warm restarts: kill, resume, bit-identical continuation
# ----------------------------------------------------------------------
class TestWarmRestart:
    def test_kill_mid_stream_then_resume_bit_identically(self, tmp_path):
        """A daemon checkpointed after two epochs plus half an ingested
        window, abandoned without close(), and restored in a fresh
        process-alike must finish with the uninterrupted run's final
        placement and cumulative bill, bit for bit."""
        g, metric = _network(seed=9)
        wl = _workload(metric.n, epochs=5, seed=23)
        cs = _costs(metric.n)
        config = PlanConfig(replan_mode="incremental", replan_tolerance=0.0)

        reference = PlacementDaemon(
            cs, wl.num_objects, metric=metric, graph=g, config=config
        )
        try:
            replay_workload(reference, wl)
            ref_state = reference.snapshot()
        finally:
            reference.close()

        # epoch 2's demand split into two half-windows: the kill lands
        # between them
        fr, fw = wl.read_freqs[2], wl.write_freqs[2]
        half_fr, half_fw = fr / 2.0, fw / 2.0

        path = tmp_path / "warm.npz"
        killed = PlacementDaemon(
            cs, wl.num_objects, metric=metric, graph=g, config=config
        )
        for e in range(2):
            killed.ingest_counts(wl.read_freqs[e], wl.write_freqs[e])
            killed.end_epoch(wait=True)
        killed.ingest_counts(half_fr, half_fw)
        killed.checkpoint_now(path)
        del killed  # the "kill": no close(), no final checkpoint

        resumed = PlacementDaemon.restore(
            path, storage_costs=cs, metric=metric, graph=g
        )
        try:
            assert resumed.config.replan_mode == "incremental"
            resumed.ingest_counts(fr - half_fr, fw - half_fw)
            resumed.end_epoch(wait=True)
            for e in range(3, wl.num_epochs):
                resumed.ingest_counts(wl.read_freqs[e], wl.write_freqs[e])
                resumed.end_epoch(wait=True)
            state = resumed.snapshot()
            assert state.copy_sets == ref_state.copy_sets
            assert state.cumulative_cost == ref_state.cumulative_cost
            assert state.generation == ref_state.generation
        finally:
            resumed.close()

    def test_close_writes_final_checkpoint(self, tmp_path):
        g, metric = _network()
        wl = _workload(metric.n, epochs=2)
        path = tmp_path / "final.npz"
        daemon = PlacementDaemon(
            _costs(metric.n), wl.num_objects, metric=metric, graph=g,
            checkpoint_path=path,
        )
        replay_workload(daemon, wl)
        expected = daemon.stats()
        daemon.close()
        cp = load_checkpoint(path)
        assert cp.generation == expected["generation"]
        assert cp.serve_cost == expected["serve_cost"]
        with pytest.raises(RuntimeError, match="closed"):
            daemon.end_epoch()

    def test_sigterm_checkpoints_and_exits(self, tmp_path):
        g, metric = _network()
        path = tmp_path / "sig.npz"
        daemon = PlacementDaemon(
            _costs(metric.n), 3, metric=metric, graph=g,
            checkpoint_path=path,
        )
        assert daemon.install_signal_handlers() is True
        daemon.ingest_counts(
            np.ones((3, metric.n)), np.zeros((3, metric.n))
        )
        daemon.end_epoch(wait=True)
        with pytest.raises(SystemExit):
            daemon._handle_sigterm()
        assert load_checkpoint(path).generation == 1


# ----------------------------------------------------------------------
# checkpoint files
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_round_trip_preserves_every_field(self, tmp_path):
        g, metric = _network()
        wl = _workload(metric.n, epochs=2)
        daemon = PlacementDaemon(
            _costs(metric.n), wl.num_objects, metric=metric, graph=g,
            config=PlanConfig(replan_mode="incremental"),
        )
        try:
            replay_workload(daemon, wl)
            daemon.ingest_counts(wl.read_freqs[0], wl.write_freqs[0])
            cp = daemon.checkpoint_now(tmp_path / "cp.npz")
        finally:
            daemon.close()
        loaded = load_checkpoint(tmp_path / "cp.npz")
        assert isinstance(loaded, DaemonCheckpoint)
        assert loaded.copy_sets == cp.copy_sets
        assert loaded.generation == cp.generation
        assert loaded.serve_cost == cp.serve_cost
        assert loaded.migration_cost == cp.migration_cost
        assert np.array_equal(loaded.base_fr, cp.base_fr)
        assert np.array_equal(loaded.pending_fr, cp.pending_fr)
        assert np.array_equal(loaded.totals_read, cp.totals_read)
        assert loaded.plan_config() == daemon.config

    def test_cadence_checkpoints_between_epochs(self, tmp_path):
        g, metric = _network()
        wl = _workload(metric.n, epochs=4)
        path = tmp_path / "cadence.npz"
        daemon = PlacementDaemon(
            _costs(metric.n), wl.num_objects, metric=metric, graph=g,
            config=PlanConfig(serve_checkpoint_every=2),
            checkpoint_path=path,
        )
        try:
            for e in range(2):
                daemon.ingest_counts(wl.read_freqs[e], wl.write_freqs[e])
                daemon.end_epoch(wait=True)
            assert load_checkpoint(path).epochs_published == 2
        finally:
            daemon.close()

    def test_node_count_mismatch_rejected(self, tmp_path):
        g, metric = _network()
        daemon = PlacementDaemon(
            _costs(metric.n), 2, metric=metric, graph=g
        )
        try:
            cp_path = tmp_path / "cp.npz"
            daemon.checkpoint_now(cp_path)
        finally:
            daemon.close()
        other = transit_stub_graph(2, 2, 2, seed=4)
        small = Metric.from_graph(other)
        with pytest.raises(ValueError, match="node"):
            PlacementDaemon.restore(
                cp_path,
                storage_costs=np.ones(small.n),
                metric=small,
            )


# ----------------------------------------------------------------------
# spool files
# ----------------------------------------------------------------------
class TestSpool:
    def _log(self, seed: int = 0, events: int = 40) -> RequestLog:
        rng = np.random.default_rng(seed)
        return RequestLog(
            kind=rng.integers(0, 2, events),
            node=rng.integers(0, 10, events),
            obj=rng.integers(0, 4, events),
        )

    @pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
    def test_round_trip(self, tmp_path, suffix):
        log = self._log()
        path = tmp_path / f"batch{suffix}"
        write_spool_file(log, path)
        back = read_spool_file(path)
        assert np.array_equal(back.kind, log.kind)
        assert np.array_equal(back.node, log.node)
        assert np.array_equal(back.obj, log.obj)

    def test_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "read", "node": 0, "obj": 1}\n'
            '{"kind": "steal", "node": 0, "obj": 1}\n'
        )
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_spool_file(path)

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="spool files are"):
            write_spool_file(self._log(), tmp_path / "batch.csv")

    def test_spool_files_sorted(self, tmp_path):
        for name in ("b.jsonl", "a.npz", "c.jsonl", "notes.txt"):
            if name.endswith(".txt"):
                (tmp_path / name).write_text("ignored")
            else:
                write_spool_file(self._log(), tmp_path / name)
        names = [p.name for p in spool_files(tmp_path)]
        assert names == ["a.npz", "b.jsonl", "c.jsonl"]

    def test_daemon_ingest_from_spool_matches_counts(self, tmp_path):
        g, metric = _network()
        log = RequestLog(
            kind=np.array([0, 0, 1, 0]),
            node=np.array([1, 2, 3, 1]),
            obj=np.array([0, 1, 0, 0]),
        )
        path = tmp_path / "batch.jsonl"
        write_spool_file(log, path)
        with PlacementDaemon(
            _costs(metric.n), 2, metric=metric, graph=g
        ) as daemon:
            receipt = daemon.ingest(read_spool_file(path))
            assert receipt["events"] == 4
            stats = daemon.stats()
            assert stats["reads"] == 3 and stats["writes"] == 1


# ----------------------------------------------------------------------
# ingest validation + failure propagation
# ----------------------------------------------------------------------
class TestIngestContract:
    def test_shape_and_sign_validation(self):
        g, metric = _network()
        with PlacementDaemon(
            _costs(metric.n), 2, metric=metric
        ) as daemon:
            with pytest.raises(ValueError, match="shape"):
                daemon.ingest_counts(np.ones((3, metric.n)), np.ones((3, metric.n)))
            bad = np.zeros((2, metric.n))
            bad[0, 0] = -1.0
            with pytest.raises(ValueError, match="non-negative"):
                daemon.ingest_counts(bad, np.zeros((2, metric.n)))
            with pytest.raises(ValueError):
                daemon.ingest(
                    RequestLog(kind=[0], node=[0], obj=[5])  # obj out of range
                )

    def test_background_failure_surfaces_in_drain(self, monkeypatch):
        g, metric = _network()
        daemon = PlacementDaemon(_costs(metric.n), 2, metric=metric, graph=g)
        monkeypatch.setattr(
            daemon, "_process_epoch",
            lambda *a: (_ for _ in ()).throw(ValueError("boom")),
        )
        daemon.ingest_counts(np.ones((2, metric.n)), np.zeros((2, metric.n)))
        with pytest.raises(RuntimeError, match="background replan failed"):
            daemon.end_epoch(wait=True)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCli:
    def test_replay_compare_smoke(self):
        out = io.StringIO()
        code = main(
            ["serve", "replay", "--scenario", "drift", "--nodes", "24",
             "--num-objects", "4", "--epochs", "2",
             "--requests-per-epoch", "120", "--drift", "0.5",
             "--incremental", "--tolerance", "0", "--compare"],
            out=out,
        )
        assert code == 0
        assert "identical" in out.getvalue()

    def test_replay_writes_checkpoint_and_json(self, tmp_path):
        out = io.StringIO()
        ck = tmp_path / "warm.npz"
        report = tmp_path / "replay.json"
        code = main(
            ["serve", "replay", "--nodes", "24", "--num-objects", "4",
             "--epochs", "2", "--requests-per-epoch", "120",
             "--checkpoint", str(ck), "--out", str(report)],
            out=out,
        )
        assert code == 0
        assert load_checkpoint(ck).epochs_published == 2
        payload = json.loads(report.read_text())
        assert len(payload["epochs"]) == 2
        assert payload["stats"]["generation"] == 2

    def test_run_command_loop(self, tmp_path, monkeypatch):
        from repro.serialize import save_instance

        g, metric = _network()
        inst = make_instance(metric, seed=2, num_objects=3)
        inst_path = tmp_path / "inst.npz"
        save_instance(inst, inst_path)
        spool = tmp_path / "spool"
        spool.mkdir()
        write_spool_file(
            RequestLog(kind=[0, 0, 1], node=[1, 2, 3], obj=[0, 1, 2]),
            spool / "b0.jsonl",
        )
        monkeypatch.setattr(
            sys, "stdin", io.StringIO("placement 0\nstats\nquit\n")
        )
        out = io.StringIO()
        code = main(
            ["serve", "run", "--instance", str(inst_path),
             "--spool", str(spool), "--epoch-per-file"],
            out=out,
        )
        assert code == 0
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        assert all(line["ok"] for line in lines)
        assert lines[1]["events_ingested"] == 3
        assert lines[1]["generation"] == 1
