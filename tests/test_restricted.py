"""Tests for repro.core.restricted: the Lemma 1 machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import brute_force_object
from repro.core.instance import DataManagementInstance
from repro.core.restricted import (
    is_restricted,
    requests_served_per_copy,
    restrict_placement,
)
from tests.conftest import make_random_instance


class TestServedCounts:
    def test_counts_sum_to_total_demand(self):
        inst = make_random_instance(3, n=8)
        served = requests_served_per_copy(inst, 0, [0, 4, 7])
        assert sum(served.values()) == pytest.approx(inst.total_requests(0))

    def test_single_copy_serves_everything(self):
        inst = make_random_instance(4, n=6)
        served = requests_served_per_copy(inst, 0, [2])
        assert served[2] == pytest.approx(inst.total_requests(0))

    def test_tie_breaking_toward_smaller_index(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric, np.ones(5), np.array([0.0, 0, 5.0, 0, 0]), np.zeros(5)
        )
        served = requests_served_per_copy(inst, 0, [0, 4])
        assert served[0] == 5.0 and served[4] == 0.0


class TestIsRestricted:
    def test_read_only_always_restricted(self):
        inst = make_random_instance(5, n=7, max_write=0)
        assert is_restricted(inst, 0, [0, 3, 6])

    def test_single_copy_always_restricted(self):
        inst = make_random_instance(6, n=7)
        assert is_restricted(inst, 0, [1])

    def test_detects_underused_copy(self, line_metric):
        # all demand at node 0, a stray copy at node 4 serves nothing < W
        inst = DataManagementInstance.single_object(
            line_metric,
            np.ones(5),
            np.array([5.0, 0, 0, 0, 0]),
            np.array([2.0, 0, 0, 0, 0]),
        )
        assert not is_restricted(inst, 0, [0, 4])
        assert is_restricted(inst, 0, [0])


class TestRestrictPlacement:
    def test_output_is_restricted(self):
        for seed in range(30):
            inst = make_random_instance(seed, n=8)
            rng = np.random.default_rng(seed)
            k = int(rng.integers(1, 8))
            copies = sorted(rng.choice(8, size=k, replace=False).tolist())
            restricted = restrict_placement(inst, 0, copies)
            assert is_restricted(inst, 0, restricted)

    def test_subset_of_input(self):
        for seed in range(20):
            inst = make_random_instance(seed, n=8)
            copies = [0, 2, 4, 6]
            restricted = restrict_placement(inst, 0, copies)
            assert set(restricted) <= set(copies)
            assert len(restricted) >= 1

    def test_read_only_unchanged(self):
        inst = make_random_instance(7, n=7, max_write=0)
        copies = (0, 3, 5)
        assert restrict_placement(inst, 0, copies) == copies

    def test_already_restricted_unchanged(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric,
            np.ones(5),
            np.array([5.0, 0, 0, 0, 5.0]),
            np.array([1.0, 0, 0, 0, 1.0]),
        )
        # both end copies serve >= W = 2 requests
        assert restrict_placement(inst, 0, (0, 4)) == (0, 4)

    def test_concentrated_demand_collapses_to_one_copy(self, line_metric):
        inst = DataManagementInstance.single_object(
            line_metric,
            np.ones(5),
            np.zeros(5),
            np.array([3.0, 0, 0, 0, 0]),
        )
        restricted = restrict_placement(inst, 0, [0, 2, 3, 4])
        assert restricted == (0,)


class TestLemma1Bound:
    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=20, deadline=None)
    def test_restricted_optimum_within_4x_of_true_optimum(self, seed):
        """Lemma 1: C^OPT_W <= 4 C^OPT, with OPT_W enumerated under the MST
        policy + serving constraint and OPT under the exact Steiner policy."""
        inst = make_random_instance(seed, n=7)
        _, opt_true = brute_force_object(inst, 0, policy="steiner")
        _, opt_restricted = brute_force_object(
            inst, 0, policy="mst", require_restricted=True
        )
        assert opt_restricted <= 4.0 * opt_true + 1e-9

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=20, deadline=None)
    def test_restricted_optimum_at_least_true_optimum(self, seed):
        inst = make_random_instance(seed, n=7)
        _, opt_true = brute_force_object(inst, 0, policy="steiner")
        _, opt_restricted = brute_force_object(
            inst, 0, policy="mst", require_restricted=True
        )
        assert opt_restricted >= opt_true - 1e-9
