"""Golden tests for the BENCH regression gate.

Every committed ``benchmarks/BENCH_*.json`` artifact must satisfy its
gate spec (schema + tolerance-banded checks), and the gate must *fail*
-- loudly, with an expected-vs-actual diff -- on a perturbed copy of the
same artifact.  A gate that cannot catch the regression it was written
for is just a slow no-op.
"""

import json
import shutil

import pytest

from repro.bench import (
    EXIT_MISSING_ARTIFACT,
    EXIT_OK,
    EXIT_REGRESSION,
    GATES,
    TrialStore,
    check_payload,
    run_gate,
    validate_schema,
)
from repro.bench.gate import DEFAULT_ARTIFACT_DIR, mutate_payload

GATE_IDS = sorted(GATES)


def load_artifact(spec):
    return json.loads((DEFAULT_ARTIFACT_DIR / spec.artifact).read_text())


#: op -> a value guaranteed to violate the check (schema-legal numbers /
#: bools, so only the metric check fails, never the schema).
BAD_VALUES = {
    "is_true": False,
    "approx": 123456.0,
    "ge": -1e18,
    "le": 1e18,
    "gt": -1e18,
    "min_le": 1e18,
}


def perturb(spec, payload, check):
    """Payload with every cell the check selects forced to a bad value."""
    col = spec.headers.index(check.column)
    where = [(spec.headers.index(h), v) for h, v in check.where]
    bad = BAD_VALUES[check.op]
    mutated = payload
    hits = 0
    for r, row in enumerate(payload["rows"]):
        if all(row[i] == v for i, v in where) and row[col] != "--":
            mutated = mutate_payload(mutated, r, col, bad)
            hits += 1
    assert hits, f"check {check.label!r} selected no cell to perturb"
    return mutated


class TestCommittedArtifacts:
    @pytest.mark.parametrize("name", GATE_IDS)
    def test_artifact_passes_its_gate(self, name):
        spec = GATES[name]
        findings = check_payload(spec, load_artifact(spec), "artifact")
        assert all(f.ok for f in findings), [
            (f.label, f.detail) for f in findings if not f.ok
        ]
        # schema plus every artifact-tier check actually ran
        expected = 1 + sum(1 for c in spec.checks if "artifact" in c.tiers)
        assert len(findings) == expected

    @pytest.mark.parametrize("name", GATE_IDS)
    def test_artifact_schema_validates(self, name):
        spec = GATES[name]
        validate_schema(spec, load_artifact(spec))  # must not raise

    @pytest.mark.parametrize("name", GATE_IDS)
    def test_every_check_fails_on_a_perturbed_copy(self, name):
        spec = GATES[name]
        payload = load_artifact(spec)
        for check in spec.checks:
            if "artifact" not in check.tiers:
                continue
            mutated = perturb(spec, payload, check)
            findings = check_payload(spec, mutated, "artifact")
            bad = [f for f in findings if not f.ok]
            assert [f.label for f in bad] == [check.label]
            assert bad[0].detail  # a readable expected-vs-actual diff

    @pytest.mark.parametrize("name", GATE_IDS)
    def test_schema_catches_shape_drift(self, name):
        spec = GATES[name]
        payload = load_artifact(spec)

        missing = {k: v for k, v in payload.items() if k != "rows"}
        with pytest.raises(ValueError, match="missing key"):
            validate_schema(spec, missing)

        renamed = dict(payload, headers=["x"] + list(payload["headers"][1:]))
        with pytest.raises(ValueError, match="headers"):
            validate_schema(spec, renamed)

        # a numeric column holding a string is a dtype violation
        str_cols = {spec.headers.index(h)
                    for h, kind in spec.columns.items() if "str" in kind}
        col = next(i for i in range(len(spec.headers)) if i not in str_cols)
        retyped = mutate_payload(payload, 0, col, "oops")
        findings = check_payload(spec, retyped, "artifact")
        assert len(findings) == 1 and not findings[0].ok
        assert "is not" in findings[0].detail

        with pytest.raises(ValueError, match="non-empty"):
            validate_schema(spec, dict(payload, rows=[]))

    def test_empty_selection_fails_instead_of_passing(self):
        """A where-filter that matches nothing must fail the check --
        the gate may never silently check zero cells."""
        spec = GATES["E16"]
        payload = load_artifact(spec)
        gutted = dict(
            payload,
            rows=[r for r in payload["rows"] if r[2] != "incremental"],
        )
        findings = check_payload(spec, gutted, "artifact")
        bad = [f for f in findings if not f.ok]
        assert bad and all("no usable" in f.detail for f in bad)


class TestRunGate:
    def test_artifact_tier_passes_on_the_committed_tree(self):
        report = run_gate(tier="artifact")
        assert report.passed and report.exit_code == EXIT_OK
        assert "all checks passed" in report.render()

    def test_missing_artifact_is_a_distinct_exit_code(self, tmp_path):
        report = run_gate(tier="artifact", artifact_dir=tmp_path)
        assert not report.passed
        assert report.exit_code == EXIT_MISSING_ARTIFACT
        assert "missing" in report.render()

    def test_regression_exits_nonzero_with_a_readable_diff(self, tmp_path):
        for spec in GATES.values():
            shutil.copy(DEFAULT_ARTIFACT_DIR / spec.artifact, tmp_path)
        spec = GATES["E14"]
        payload = load_artifact(spec)
        check = next(c for c in spec.checks if c.op == "ge")
        (tmp_path / spec.artifact).write_text(
            json.dumps(perturb(spec, payload, check))
        )
        report = run_gate(tier="artifact", artifact_dir=tmp_path)
        assert report.exit_code == EXIT_REGRESSION
        text = report.render()
        assert "FAIL" in text and "expected >=" in text
        # the untouched experiments still pass in the same report
        assert "[E16] ok" in text

    def test_unparseable_artifact_fails_not_crashes(self, tmp_path):
        for spec in GATES.values():
            shutil.copy(DEFAULT_ARTIFACT_DIR / spec.artifact, tmp_path)
        (tmp_path / GATES["E15"].artifact).write_text("{not json")
        report = run_gate(tier="artifact", artifact_dir=tmp_path)
        assert report.exit_code == EXIT_REGRESSION
        assert any("parses" in f.label for f in report.failures)

    def test_only_and_tier_are_validated(self):
        with pytest.raises(ValueError, match="no gate for"):
            run_gate(tier="artifact", only=["E99"])
        with pytest.raises(ValueError, match="unknown gate tier"):
            run_gate(tier="nightly")

    def test_smoke_tier_runs_and_caches_the_trial(self, tmp_path):
        store = TrialStore(tmp_path / "cache")
        report = run_gate(tier="smoke", only=["E15"], store=store,
                          generated_at="t0")
        assert report.passed, [f.detail for f in report.failures]
        assert {f.tier for f in report.findings} == {"artifact", "smoke"}
        assert len(store) == 1

        # the second run re-checks from cache: no new trial, same verdict
        again = run_gate(tier="smoke", only=["E15"], store=store)
        assert again.passed and len(store) == 1
