"""Tests for repro.graphs.metric: construction, axioms, queries."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import erdos_renyi_graph, random_tree
from repro.graphs.metric import Metric, metric_from_graph


class TestConstruction:
    def test_identity_diagonal(self, line_metric):
        assert np.allclose(np.diag(line_metric.dist), 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            Metric(np.zeros((2, 3)))

    def test_rejects_negative(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            Metric(d)

    def test_rejects_nonzero_diagonal(self):
        d = np.array([[1.0, 2.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            Metric(d)

    def test_rejects_asymmetric(self):
        d = np.array([[0.0, 2.0], [3.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            Metric(d)

    def test_rejects_triangle_violation(self):
        d = np.array(
            [
                [0.0, 1.0, 5.0],
                [1.0, 0.0, 1.0],
                [5.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(ValueError, match="triangle"):
            Metric(d)

    def test_rejects_infinite(self):
        d = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(ValueError, match="non-finite"):
            Metric(d)

    def test_validate_can_be_skipped(self):
        # deliberately broken matrix accepted without validation
        d = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]])
        m = Metric(d, validate=False)
        assert m.d(0, 2) == 5.0

    def test_single_node(self):
        m = Metric(np.zeros((1, 1)))
        assert m.n == 1
        assert m.diameter() == 0.0

    def test_from_points_euclidean(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        m = Metric.from_points(pts)
        assert m.d(0, 1) == pytest.approx(5.0)


class TestGraphClosure:
    def test_path_distances(self):
        g = nx.path_graph(4)
        for u, v in g.edges():
            g[u][v]["weight"] = 2.0
        m = Metric.from_graph(g)
        assert m.d(0, 3) == pytest.approx(6.0)
        assert m.d(1, 2) == pytest.approx(2.0)

    def test_shortcut_beats_direct_edge(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=10.0)
        g.add_edge(0, 2, weight=1.0)
        g.add_edge(2, 1, weight=1.0)
        m = Metric.from_graph(g)
        assert m.d(0, 1) == pytest.approx(2.0)

    def test_default_weight_is_one(self):
        g = nx.path_graph(3)
        m = Metric.from_graph(g)
        assert m.d(0, 2) == pytest.approx(2.0)

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        with pytest.raises(ValueError, match="connected"):
            Metric.from_graph(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="no nodes"):
            Metric.from_graph(nx.Graph())

    def test_negative_weight_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=-1.0)
        with pytest.raises(ValueError, match="negative"):
            Metric.from_graph(g)

    def test_metric_from_graph_returns_maps(self):
        g = nx.Graph()
        g.add_edge("b", "a", weight=1.0)
        metric, index, nodes = metric_from_graph(g)
        assert nodes == ["a", "b"]
        assert index == {"a": 0, "b": 1}
        assert metric.d(0, 1) == pytest.approx(1.0)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_closure_satisfies_metric_axioms(self, seed):
        g = erdos_renyi_graph(7, 0.4, seed=seed)
        m = Metric.from_graph(g)
        m._validate()  # raises on any axiom violation

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_tree_closure_is_additive_along_paths(self, seed):
        g = random_tree(7, seed=seed)
        m = Metric.from_graph(g)
        # in a tree, d(u, w) = d(u, v) + d(v, w) whenever v is on the u-w path
        path = nx.shortest_path(g, 0, 6)
        for v in path[1:-1]:
            assert m.d(0, 6) == pytest.approx(m.d(0, v) + m.d(v, 6))


class TestQueries:
    def test_dist_to_set(self, line_metric):
        d = line_metric.dist_to_set([0, 4])
        assert np.allclose(d, [0.0, 1.0, 2.0, 1.0, 0.0])

    def test_dist_to_empty_set_is_inf(self, line_metric):
        assert np.all(np.isinf(line_metric.dist_to_set([])))

    def test_nearest_in_set_tie_breaks_to_smallest_index(self, line_metric):
        nearest, dist = line_metric.nearest_in_set([0, 4])
        assert nearest[2] == 0  # node 2 is equidistant; picks index 0
        assert dist[2] == pytest.approx(2.0)

    def test_nearest_in_set_empty_raises(self, line_metric):
        with pytest.raises(ValueError):
            line_metric.nearest_in_set([])

    def test_nearest_in_set_members_map_to_self(self, line_metric):
        nearest, dist = line_metric.nearest_in_set([1, 3])
        assert nearest[1] == 1 and nearest[3] == 3
        assert dist[1] == 0.0 and dist[3] == 0.0

    def test_rows(self, line_metric):
        rows = line_metric.rows([2])
        assert rows.shape == (1, 5)
        assert np.allclose(rows[0], [2, 1, 0, 1, 2])

    def test_eccentricity_and_diameter(self, line_metric):
        assert line_metric.eccentricity(0) == pytest.approx(4.0)
        assert line_metric.eccentricity(2) == pytest.approx(2.0)
        assert line_metric.diameter() == pytest.approx(4.0)

    def test_submetric(self, line_metric):
        sub = line_metric.submetric([0, 2, 4])
        assert sub.n == 3
        assert sub.d(0, 2) == pytest.approx(4.0)  # old nodes 0 and 4

    def test_len(self, line_metric):
        assert len(line_metric) == 5
