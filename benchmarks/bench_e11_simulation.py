"""E11: event-level simulation agrees with the closed-form cost model."""

from repro.analysis import run_e11_simulation_agreement

from .conftest import emit


def test_e11_simulation_agreement(benchmark):
    result = benchmark.pedantic(
        run_e11_simulation_agreement,
        kwargs=dict(
            families=("tree", "transit_stub", "geometric"),
            n=14,
            seeds=tuple(range(5)),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        assert row[3] < 1e-9  # simulated bill == analytic cost
