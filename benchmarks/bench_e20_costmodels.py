"""E20: the pluggable cost-model seam -- krw parity, admission, broadcast.

Headline configuration: a 12-object catalog on a ~60-node transit-stub
network, billed through :mod:`repro.costmodel` on the dense *and* lazy
distance backends.  The artifact records:

* ``parity`` -- the default ``krw`` model is invisible: ``Planner.plan``
  bills through the seam bit-identical to the legacy
  :func:`~repro.core.costs.placement_cost` per backend, the seam-billed
  vectorized simulator matches the hop-by-hop replay, and the batched
  ``bill_migration`` matches the per-object reference (including the
  empty zero-drift transition),
* ``admission`` -- per-timeslot capacity accounting: uncapped it equals
  the krw request bill; capped it rejects some reads, still serves
  others, and never bills more; end-to-end (``cost_model="admission"``)
  the placement is unchanged and the accepted/rejected split lands in
  the report's cost detail,
* ``broadcast`` -- one multicast propagation charge per period: never
  above the krw bill end-to-end, exactly equal on read-only demand.

Every claim here is environment-independent, so the whole table is
gated.
"""

from repro.bench import TrialConfig, run_trial

from .conftest import emit, emit_artifact

#: The headline configuration the committed artifact was generated from.
HEADLINE = TrialConfig.make(
    "E20",
    n=60, num_objects=12, slots=4, capacity_frac=0.4,
    backends=["dense", "lazy"],
)


def test_e20_costmodels(benchmark):
    result = benchmark.pedantic(
        run_trial, args=(HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    emit_artifact(result, "e20_costmodels")
    parity = [r for r in result.rows if r[0] == "parity"]
    assert {r[1] for r in parity} >= {"plan dense", "plan lazy",
                                      "simulate", "migration"}
    for row in parity:
        assert abs(row[7] - 1.0) <= 1e-9        # seam total == legacy total
        if row[-1] != "--":
            assert row[-1] is True              # component bits identical
    capped = next(r for r in result.rows if r[1] == "capped")
    assert capped[9] > 0 and capped[8] > 0      # rejects some, serves some
    assert capped[7] <= 1.0 + 1e-9              # never above krw
    uncapped = next(r for r in result.rows if r[1] == "uncapped")
    assert uncapped[9] == 0                     # no capacity, no rejection
    for row in (r for r in result.rows if r[0] == "broadcast"):
        assert row[7] <= 1.0 + 1e-9             # broadcast never above krw
        assert row[-1] is True                  # placements / bills line up
