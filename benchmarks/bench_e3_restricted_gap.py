"""E3: restricted vs true optimum (Lemma 1: factor <= 4)."""

from repro.analysis import run_e3_restricted_gap

from .conftest import emit


def test_e3_restricted_gap(benchmark):
    result = benchmark.pedantic(
        run_e3_restricted_gap,
        kwargs=dict(
            families=("tree", "er", "geometric"),
            n=9,
            seeds=tuple(range(6)),
            write_fraction=0.4,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        assert row[-1]  # the 4x bound holds on every instance
