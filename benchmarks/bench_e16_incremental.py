"""E16: incremental epoch re-placement -- solve only the drifted objects.

Headline configuration: 48-object catalogs over a ~200-node transit-stub
network, 5 epochs, sparse-drift workloads (``redraw="changed"``: only
churned objects' frequency rows differ between epochs).  The artifact
records, for ``drifting_zipf_catalog`` (drift 0.15) and ``flash_crowd``
on the dense *and* lazy distance backends:

* the per-epoch re-placement speedup of ``replan_mode="incremental"``
  over the full per-epoch re-solve -- must be >= 5x at ``tolerance=0``
  on the drifting workload, and
* cost identity -- at ``tolerance=0`` the incremental placements and
  total bills must be bit-identical to the full re-solve (costs within
  1e-9 relative), plus a ``tolerance>0`` row showing the documented
  speed-for-bounded-billing-error trade.
"""

from repro.bench import TrialConfig, run_trial

from .conftest import emit, emit_artifact

#: The headline configuration the committed artifact was generated from.
HEADLINE = TrialConfig.make(
    "E16",
    n=200, num_objects=48, epochs=5, drift=0.15, tolerance=0.05,
    backends=["dense", "lazy"], scenarios=["drift", "flash"],
)


def test_e16_incremental_replan(benchmark):
    result = benchmark.pedantic(
        run_trial, args=(HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    emit_artifact(result, "e16_incremental")
    rows = {(r[0], r[1], r[2], r[3]): r for r in result.rows}
    for backend in ("dense", "lazy"):
        exact = rows[("drifting_zipf", backend, "incremental", 0.0)]
        assert exact[6] >= 5.0      # >= 5x per-epoch solve speedup
        assert exact[-1] is True    # bit-identical placements and bills
        assert abs(exact[8] - 1.0) <= 1e-9  # total cost ratio vs full
        flash = rows[("flash_crowd", backend, "incremental", 0.0)]
        assert flash[-1] is True
        assert flash[6] >= 5.0      # quiet epochs replan almost nothing
