"""Benchmark package: E1--E13 experiment regenerations (see
docs/EXPERIMENTS.md).  Run with::

    python -m pytest benchmarks -o python_files='bench_*.py' -s
"""
