"""E19: the serving daemon -- replanner parity, lookup consistency, lag.

Headline configuration: 48-object catalogs over a ~200-node transit-stub
network, 5 epochs of sparse-drift Zipf churn (drift 0.15), on the dense
*and* lazy distance backends.  The artifact records:

* ``parity`` -- a tolerance-0 :class:`~repro.serve.PlacementDaemon` fed
  the workload epoch-by-epoch reproduces the
  :class:`~repro.simulate.replanner.EpochReplanner`'s per-epoch
  placements and cumulative bill bit-identically (incremental mode per
  backend, plus one full-mode anchor row),
* ``latency`` -- foreground lookups issued while background replans run
  always answer from exactly one published generation (never a mix),
* ``lag`` -- a drift-rate sweep at the working tolerance keeps
  triggering incremental replans without re-solving the whole catalog.

Only the environment-independent claims (parity bits, cost identity,
consistency, replan counts) are gated; lookup wall time is recorded for
context but never checked.
"""

from repro.bench import TrialConfig, run_trial

from .conftest import emit, emit_artifact

#: The headline configuration the committed artifact was generated from.
HEADLINE = TrialConfig.make(
    "E19",
    n=200, num_objects=48, epochs=5, drift=0.15, tolerance=0.05,
    backends=["dense", "lazy"], lag_drifts=[0.15, 0.4], lookups=200,
)


def test_e19_daemon(benchmark):
    result = benchmark.pedantic(
        run_trial, args=(HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    emit_artifact(result, "e19_daemon")
    parity = [r for r in result.rows if r[0] == "parity"]
    assert {r[2] for r in parity} == {"dense", "lazy"}
    for row in parity:
        assert row[-2] is True              # placements bit-identical
        assert abs(row[9] - 1.0) <= 1e-9    # bill identity vs replanner
    latency = [r for r in result.rows if r[0] == "latency"]
    assert {r[2] for r in latency} == {"dense", "lazy"}
    for row in latency:
        assert row[6] > 0                   # verdict rests on real lookups
        assert row[-1] is True              # never a mixed generation
    for row in (r for r in result.rows if r[0] == "lag"):
        assert row[4] > 0                   # drift keeps triggering replans
