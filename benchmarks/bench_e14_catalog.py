"""E14: catalog placement throughput of the batched engine (this repo's
multi-object scaling extension).

Headline configuration: a 10k-object Zipf catalog on a ~1k-node
transit-stub network, placed by the per-object loop, the serial engine
and the 2-worker engine; the artifact records wall times, speedups and
copy-set parity (all modes must place identical copy sets).  Parallel
speedup requires > 1 free core -- on a single-CPU host the ``jobs=2`` row
measures pool overhead, not parallelism.
"""

from repro.bench import TrialConfig, run_trial

from .conftest import emit, emit_artifact

#: The headline configuration the committed artifact was generated from;
#: ``repro bench run --experiment E14 --params '{...}'`` with the same
#: knobs hits the same trial hash.
HEADLINE = TrialConfig.make(
    "E14",
    num_objects=10_000, n=1100, chunk_size=512, jobs=[2], compare_loop=True,
)


def test_e14_catalog_throughput(benchmark):
    result = benchmark.pedantic(
        run_trial, args=(HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    emit_artifact(result, "e14_catalog")
    by_mode = {row[0]: row for row in result.rows}
    for label, row in by_mode.items():
        if label != "per-object loop":
            assert row[-1] is True  # copy sets identical to the loop
    assert by_mode["engine serial"][5] >= 5.0  # >= 5x over the loop
