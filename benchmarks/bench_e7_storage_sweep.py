"""E7: storage-price sweep -> replication degree (figure)."""

from repro.analysis import run_e7_storage_sweep

from .conftest import emit


def test_e7_storage_sweep(benchmark):
    result = benchmark.pedantic(
        run_e7_storage_sweep,
        kwargs=dict(
            family="geometric",
            n=20,
            seeds=tuple(range(5)),
            prices=(0.1, 0.5, 2.0, 8.0, 32.0),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    degrees = [row[1] for row in result.rows]
    assert degrees[0] >= degrees[-1]  # dearer storage -> fewer copies
