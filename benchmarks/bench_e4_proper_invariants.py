"""E4: proper-placement invariants of computed placements (Lemma 8)."""

from repro.analysis import run_e4_proper_invariants

from .conftest import emit


def test_e4_proper_invariants(benchmark):
    result = benchmark.pedantic(
        run_e4_proper_invariants,
        kwargs=dict(
            families=("tree", "er", "geometric", "grid"),
            n=16,
            seeds=tuple(range(8)),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        assert row[-1]  # every placement satisfies k1=29 / k2=2
