"""E18: hierarchical sharded placement -- approximation loss + wall clock.

Headline configuration: 32-object Zipf catalogs on transit-stub networks
from ~1.1k to ~5.2k nodes, each solved globally, sharded (8 shards, 4
portals per shard) and through the degenerate ``num_shards=1`` path, on
the lazy backend (plus the dense backend at the smallest size, which
exercises the metric k-center partitioner).  One ~10.8k-node size runs
sharded-only -- past where the global solve is worth waiting for.  The
artifact records the environment-independent claims the gate re-checks:
the sharded/global cost ratio (the measured approximation loss of portal
summaries), exact parity bits for the degenerate path, and sampled
portal-routing admissibility; wall times are provenance only.
"""

from repro.bench import TrialConfig, run_trial

from .conftest import emit, emit_artifact

#: The headline configuration the committed artifact was generated from;
#: ``repro bench run --experiment E18 --params '{...}'`` with the same
#: knobs hits the same trial hash.
HEADLINE = TrialConfig.make(
    "E18",
    sizes=[1100, 2400, 5200], sharded_only_sizes=[10800],
    num_objects=32, num_shards=8, portals_per_shard=4,
)


def test_e18_sharded(benchmark):
    result = benchmark.pedantic(
        run_trial, args=(HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    emit_artifact(result, "e18_sharded")
    by_mode = {}
    for row in result.rows:
        by_mode.setdefault(row[2], []).append(row)
    # the degenerate path is the global solve, bit for bit and on the bill
    for row in by_mode["sharded k=1"]:
        assert row[8] is True and row[7] == 1.0
    # portal routing never undercuts the metric; the measured loss of
    # solving against portal summaries stays within the committed bound
    for row in by_mode["sharded"]:
        assert row[9] is True
        if row[7] != "--":
            assert row[7] <= 1.25
    # the sweep really reaches past the global solve: at least one
    # sharded-only size (no global baseline) at >= 10k nodes
    assert any(row[7] == "--" and row[0] >= 10000 for row in by_mode["sharded"])
