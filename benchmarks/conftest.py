"""Benchmark harness configuration.

Each ``bench_e*.py`` regenerates one experiment; docs/EXPERIMENTS.md maps
every file to the paper result it validates and records how to run the
suite.  The benchmark times the core computation while the rendered result
table is printed to stdout (run with ``-s`` to see it); sweeps that
measure scaling additionally persist a machine-readable ``BENCH_*.json``
artifact next to this file via ``ExperimentResult.save_json``.
"""

from __future__ import annotations

from pathlib import Path

#: Where BENCH_*.json artifacts land (the benchmarks directory itself).
ARTIFACT_DIR = Path(__file__).resolve().parent


def emit(result) -> None:
    """Print an ExperimentResult table under the benchmark output."""
    print()
    print(result.render())
    print()


def emit_json(result, name: str) -> Path:
    """Persist an ExperimentResult as ``BENCH_<name>.json``; returns path."""
    path = ARTIFACT_DIR / f"BENCH_{name}.json"
    result.save_json(path)
    return path
