"""Benchmark harness configuration.

Each ``bench_e*.py`` regenerates one experiment from DESIGN.md section 3:
the benchmark times the core computation while the rendered result table
is printed to stdout (run with ``-s`` to see it; EXPERIMENTS.md records
the reference output).
"""

from __future__ import annotations


def emit(result) -> None:
    """Print an ExperimentResult table under the benchmark output."""
    print()
    print(result.render())
    print()
