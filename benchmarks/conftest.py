"""Benchmark harness configuration.

Each ``bench_e*.py`` regenerates one experiment; docs/EXPERIMENTS.md maps
every file to the paper result it validates and records how to run the
suite.  The gated headline configurations (E10b/E14/E15/E16) are declared
as frozen :class:`repro.bench.TrialConfig` objects and executed through
:func:`repro.bench.run_trial` -- the same entry point ``repro bench run``
uses -- so the committed artifact and a harness sweep of the identical
config are the same computation.  The benchmark times the core
computation while the rendered result table is printed to stdout (run
with ``-s`` to see it); sweeps that measure scaling additionally persist
a machine-readable ``BENCH_*.json`` artifact next to this file via
:func:`emit_artifact`, which schema-validates against the gate spec
before writing.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import GATES, validate_schema

#: Where BENCH_*.json artifacts land (the benchmarks directory itself).
ARTIFACT_DIR = Path(__file__).resolve().parent


def emit(result) -> None:
    """Print an ExperimentResult table under the benchmark output."""
    print()
    print(result.render())
    print()


def emit_json(result, name: str) -> Path:
    """Persist an ExperimentResult as ``BENCH_<name>.json``; returns path."""
    path = ARTIFACT_DIR / f"BENCH_{name}.json"
    result.save_json(path)
    return path


def emit_artifact(result, name: str) -> Path:
    """Schema-validate against the gate spec, then persist the artifact.

    Refreshing a gated ``BENCH_*.json`` goes through here so a result
    whose table shape drifted from the :data:`repro.bench.GATES` spec
    fails loudly at generation time instead of at the next gate run.
    """
    artifact = f"BENCH_{name}.json"
    for spec in GATES.values():
        if spec.artifact == artifact:
            validate_schema(spec, result.to_json())
            break
    else:
        raise ValueError(f"{artifact} has no gate spec; use emit_json")
    return emit_json(result, name)
