"""E6: strategy comparison across the read/write mix (crossover figure)."""

from repro.analysis import run_e6_baselines

from .conftest import emit


def test_e6_baselines(benchmark):
    result = benchmark.pedantic(
        run_e6_baselines,
        kwargs=dict(
            family="transit_stub",
            n=18,
            seeds=tuple(range(5)),
            write_fractions=(0.0, 0.05, 0.2, 0.5, 0.9),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # crossover shape: replication only competitive while writes are rare
    first, last = result.rows[0], result.rows[-1]
    assert first[3] <= 2.0 * first[1]   # replication ok with no writes
    assert last[3] >= last[1]           # replication loses when write-heavy
