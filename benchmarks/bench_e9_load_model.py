"""E9: total-communication-load specialization on trees (Section 1)."""

from repro.analysis import run_e9_load_model

from .conftest import emit


def test_e9_load_model(benchmark):
    result = benchmark.pedantic(
        run_e9_load_model,
        kwargs=dict(sizes=(12, 20, 30), seeds=tuple(range(4))),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        assert row[-1]  # tree DP never beaten in the load model
