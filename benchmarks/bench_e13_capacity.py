"""E13: the price of memory capacity constraints (related-work extension)."""

from repro.analysis import run_e13_capacity_price

from .conftest import emit


def test_e13_capacity_price(benchmark):
    result = benchmark.pedantic(
        run_e13_capacity_price,
        kwargs=dict(
            family="geometric", n=14, num_objects=6,
            seeds=tuple(range(4)), caps=(6, 3, 2, 1),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        assert row[-1]  # repair always reaches feasibility
