"""E1: approximation ratio of the Section 2 algorithm (Theorem 7).

Regenerates the E1 table: KRW cost / exact optimum across graph families,
under both the restricted (MST) and the true (Steiner) update policy.
"""

from repro.analysis import run_e1_approx_ratio

from .conftest import emit


def test_e1_approx_ratio(benchmark):
    result = benchmark.pedantic(
        run_e1_approx_ratio,
        kwargs=dict(
            families=("tree", "er", "geometric", "grid"),
            n=10,
            seeds=tuple(range(6)),
            write_fraction=0.25,
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # shape assertion: well below the proven constant everywhere
    for row in result.rows:
        assert row[4] <= 5.0  # max ratio vs restricted optimum
