"""E10: runtime scaling of the two headline algorithms, plus the
dense-vs-lazy distance-backend sweep (E10b) with its BENCH JSON artifact."""

from repro.analysis import run_e10_scalability
from repro.bench import TrialConfig, run_trial

from .conftest import emit, emit_artifact

#: E10b headline configuration the committed artifact was generated from.
E10B_HEADLINE = TrialConfig.make(
    "E10B", sizes=[500, 1500, 4000], dense_limit=4000,
)


def test_e10_scalability(benchmark):
    result = benchmark.pedantic(
        run_e10_scalability,
        kwargs=dict(
            approx_sizes=(50, 100, 200),
            tree_sizes=(100, 300, 1000),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)


def test_e10_backend_sweep(benchmark):
    """Dense vs lazy backend: wall time + peak RSS-style (tracemalloc)
    memory, persisted as BENCH_e10_backend_sweep.json."""
    result = benchmark.pedantic(
        run_trial, args=(E10B_HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    path = emit_artifact(result, "e10_backend_sweep")
    print(f"artifact: {path}")
