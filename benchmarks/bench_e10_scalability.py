"""E10: runtime scaling of the two headline algorithms."""

from repro.analysis import run_e10_scalability

from .conftest import emit


def test_e10_scalability(benchmark):
    result = benchmark.pedantic(
        run_e10_scalability,
        kwargs=dict(
            approx_sizes=(50, 100, 200),
            tree_sizes=(100, 300, 1000),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
