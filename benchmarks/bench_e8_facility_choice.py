"""E8: phase-1 facility-location solver choice (Lemma 9 carry-through)."""

from repro.analysis import run_e8_facility_choice

from .conftest import emit


def test_e8_facility_choice(benchmark):
    result = benchmark.pedantic(
        run_e8_facility_choice,
        kwargs=dict(family="geometric", n=12, seeds=tuple(range(5))),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        assert row[2] <= 5.0 + 1e-6  # every solver within its proven factor
