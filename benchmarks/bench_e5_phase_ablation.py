"""E5: ablation of phases 2 and 3 across the read/write mix."""

from repro.analysis import run_e5_phase_ablation

from .conftest import emit


def test_e5_phase_ablation(benchmark):
    result = benchmark.pedantic(
        run_e5_phase_ablation,
        kwargs=dict(
            family="geometric",
            n=11,
            seeds=tuple(range(6)),
            write_fractions=(0.0, 0.1, 0.3, 0.6),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
