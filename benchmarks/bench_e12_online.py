"""E12: online dynamic strategy vs the clairvoyant static optimum."""

from repro.analysis import run_e12_online_vs_static

from .conftest import emit


def test_e12_online_vs_static(benchmark):
    result = benchmark.pedantic(
        run_e12_online_vs_static,
        kwargs=dict(
            sizes=(10, 14),
            seeds=tuple(range(5)),
            write_fractions=(0.0, 0.1, 0.4),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    # the online heuristic should stay within an order of magnitude
    for row in result.rows:
        assert row[4] < 20.0
