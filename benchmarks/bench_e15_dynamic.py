"""E15: the dynamic layer at scale (this repo's epoch-replanning bridge
between the paper's static optimum and the online setting).

Headline configuration: a drifting-Zipf catalog over a ~1k-node
transit-stub network, 5 epochs x 2500 requests (12.5k events).  The
artifact records (a) the vectorized replay's speedup over routing every
event hop by hop -- must be >= 10x with an identical bill -- and (b) the
strategy comparison: clairvoyant-static vs epoch-replanned (with
migration) vs the count-based online strategy on the same stream.
"""

from repro.bench import TrialConfig, run_trial

from .conftest import emit, emit_artifact

#: The headline configuration the committed artifact was generated from.
HEADLINE = TrialConfig.make(
    "E15",
    n=1000, num_objects=60, epochs=5, requests_per_epoch=2500,
    scenario="drift", compare_loop=True,
)


def test_e15_dynamic_replay(benchmark):
    result = benchmark.pedantic(
        run_trial, args=(HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    emit_artifact(result, "e15_dynamic")
    by_label = {row[1]: row for row in result.rows}
    vec = by_label["vectorized"]
    assert vec[-1] is True  # vectorized bill == hop-by-hop bill
    assert vec[2] >= 10_000  # >= 10k events replayed
    assert vec[4] >= 10.0  # >= 10x over the per-event loop
    assert by_label["clairvoyant-static"][6] == 1.0
    for label in ("epoch-replan", "online-counting"):
        assert by_label[label][5] > 0
