"""E2: tree DP exactness and runtime scaling (Theorem 13)."""

from repro.analysis import run_e2_tree_dp

from .conftest import emit


def test_e2_tree_dp(benchmark):
    result = benchmark.pedantic(
        run_e2_tree_dp,
        kwargs=dict(
            check_sizes=(4, 6, 8, 10),
            timing_sizes=(50, 100, 200),
            seeds=tuple(range(5)),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    for row in result.rows:
        if row[0] == "exactness":
            assert abs(row[4] - 1.0) < 1e-6  # DP is exactly optimal
