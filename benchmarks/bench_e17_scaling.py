"""E17: zero-copy worker transport + compiled kernel dispatch (this
repo's scaling extension of the batched engine).

Headline configuration: a 1.5k-object Zipf catalog on a ~1k-node
transit-stub network, placed serially and with ``jobs=2`` under both
worker transports (pickled instance vs shared-memory handle), plus a
micro-benchmark of every :data:`repro.kernels.KERNEL_NAMES` hot loop
against its numpy reference.  The artifact records wall times, the
per-worker payload sizes (the O(n^2) -> O(1) transport claim) and exact
parity bits.  Parallel speedup requires > 1 free core and kernel speedup
requires numba -- on a single-CPU, numba-less host the jobs=2 rows
measure pool + transport overhead and the kernel rows report ``--``
speedups; the artifact notes record the measuring host either way.
"""

from repro.bench import TrialConfig, run_trial
from repro.kernels import numba_available

from .conftest import emit, emit_artifact

#: The headline configuration the committed artifact was generated from;
#: ``repro bench run --experiment E17 --params '{...}'`` with the same
#: knobs hits the same trial hash.
HEADLINE = TrialConfig.make(
    "E17",
    num_objects=1500, n=1100, chunk_size=512, jobs=[2],
    micro_rows=256, micro_repeats=3,
)


def test_e17_scaling(benchmark):
    result = benchmark.pedantic(
        run_trial, args=(HEADLINE,), rounds=1, iterations=1,
    )
    emit(result)
    emit_artifact(result, "e17_scaling")
    placement = [r for r in result.rows if r[0] == "placement"]
    kernel = [r for r in result.rows if r[0] == "kernel"]
    for row in placement:
        if row[1] != "serial":
            assert row[-1] is True  # copy sets identical to serial
    shm_row = next(r for r in placement if r[1] == "jobs=2 shm")
    pickle_row = next(r for r in placement if r[1] == "jobs=2 pickle")
    assert shm_row[2] == "shm" and shm_row[5] < pickle_row[5]
    for row in kernel:
        assert row[-1] is True  # dispatch bit-identical to the reference
    if numba_available():
        # environment-dependent claim, asserted only where it can hold:
        # the compiled sweeps beat the numpy reference at headline scale.
        speedups = [r[4] for r in kernel if r[2] == "numba"]
        assert speedups and max(speedups) >= 2.0
