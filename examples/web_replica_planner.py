"""Replica budgeting: how storage prices shape a replication strategy.

A planning study on a random geographic network: sweep the per-object
storage rent across three orders of magnitude and watch the optimal
trade-off move from "replicate aggressively" to "one central copy" --
with the total bill decomposed into storage / read-traffic / update-
traffic so the crossover economics are visible.  Also reports the
marginal value of each successive replica at one chosen price point
(useful for answering "is a 4th replica worth it?").

Run:  python examples/web_replica_planner.py
"""

import numpy as np

from repro import DataManagementInstance, approximate_object_placement, object_cost
from repro.baselines import greedy_add_placement
from repro.graphs import Metric, random_geometric_graph
from repro.workloads import split_read_write, uniform_requests


def main() -> None:
    g = random_geometric_graph(24, 0.4, seed=21, scale=10.0)
    metric = Metric.from_graph(g)
    n = metric.n
    demand = uniform_requests(n, 1, seed=22, mean=5.0)
    fr, fw = split_read_write(demand, write_fraction=0.1, seed=23)
    print(f"network: {n} nodes; workload: {fr.sum():.0f} reads, "
          f"{fw.sum():.0f} writes\n")

    print("--- price sweep ------------------------------------------------")
    print(f"{'rent':>7}  {'replicas':>8}  {'storage':>8}  {'reads':>8}  "
          f"{'updates':>8}  {'total':>8}")
    for rent in (0.2, 1.0, 5.0, 25.0, 125.0):
        inst = DataManagementInstance.single_object(
            metric, np.full(n, rent), fr[0], fw[0]
        )
        copies = approximate_object_placement(inst, 0)
        c = object_cost(inst, 0, copies, policy="mst")
        print(f"{rent:>7.1f}  {len(copies):>8}  {c.storage:>8.1f}  "
              f"{c.read:>8.1f}  {c.update:>8.1f}  {c.total:>8.1f}")

    print("\n--- marginal value of each replica at rent 5.0 ------------------")
    inst = DataManagementInstance.single_object(metric, np.full(n, 5.0), fr[0], fw[0])
    # grow the placement greedily and report each replica's net saving
    from repro.baselines import best_single_node

    current = set(best_single_node(inst, 0))
    cost = object_cost(inst, 0, current, policy="mst").total
    print(f"{'replicas':>8}  {'total cost':>10}  {'marginal saving':>15}")
    print(f"{1:>8}  {cost:>10.1f}  {'-':>15}")
    for k in range(2, 7):
        best_gain, best_v = 0.0, None
        for v in range(n):
            if v in current:
                continue
            cand = object_cost(inst, 0, current | {v}, policy="mst").total
            if cost - cand > best_gain:
                best_gain, best_v = cost - cand, v
        if best_v is None:
            print(f"{k:>8}  {'(no replica pays for itself)':>26}")
            break
        current.add(best_v)
        cost -= best_gain
        print(f"{k:>8}  {cost:>10.1f}  {best_gain:>15.2f}")

    final = greedy_add_placement(inst, 0)
    print(f"\ngreedy stopping point: {len(final)} replicas "
          "(diminishing returns set in)")


if __name__ == "__main__":
    main()
