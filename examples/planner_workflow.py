"""The front-door workflow: config file -> planner -> saved artifact.

Declares a planning configuration, writes it to disk (the shape a
deployment would check into its repo), plans a WWW content-provider
scenario with the paper's approximation, persists the resulting
PlanReport, reloads it, and verifies the reloaded artifact reproduces
the placement exactly.  Finishes with a registry-wide bake-off.

Run:  python examples/planner_workflow.py
"""

import tempfile
from pathlib import Path

from repro import Planner, PlanConfig, PlanReport, workloads
from repro.api import compare_table

workdir = Path(tempfile.mkdtemp(prefix="repro-planner-"))

# 1. the declaration: every knob typed, validated and persistable
config = PlanConfig(fl_solver="local_search", chunk_size=64, seed=7)
config_path = workdir / "plan.json"
config.to_file(config_path)
print(f"config -> {config_path}")

# 2. plan: scenario + strategy name -> PlanReport artifact
scenario = workloads.www_content_provider(num_objects=12)
planner = Planner(PlanConfig.from_file(config_path))
report = planner.plan(scenario, "krw")
print(report.render())

# 3. persist and reload; the artifact carries its provenance config
artifact = workdir / "www_plan.npz"
report.save(artifact)
reloaded = PlanReport.load(artifact)
assert reloaded == report
assert reloaded.config == config
print(f"artifact round-trip ok -> {artifact}")

# 4. the registry bake-off: every strategy, one table
reports = planner.compare(scenario)
print()
print(compare_table(reports))
best = min(reports, key=lambda r: r.cost.total)
print(f"\ncheapest strategy: {best.strategy} at {best.cost.total:.1f}")
