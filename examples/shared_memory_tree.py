"""Virtual shared memory on a fat-tree: the exact Section 3 optimum.

Models cache lines shared by processors at the leaves of a fat-tree (the
interconnect of many parallel machines; trees are where the paper gives
an *optimal* polynomial algorithm).  Sweeps the write intensity of a
cache line from read-only to write-dominated and shows how the optimal
replication contracts from "a copy in every subtree" down to a single
home node -- computed exactly by the tree DP, with the constant-factor
approximation shown for comparison.

Run:  python examples/shared_memory_tree.py
"""

import numpy as np

from repro import DataManagementInstance, approximate_object_placement, object_cost
from repro.core import optimal_tree_placement
from repro.graphs import Metric, balanced_tree


def main() -> None:
    # fat-tree: binary tree of height 4 -> 16 leaf processors; links get
    # cheaper towards the leaves (classic fat-tree fee structure)
    g = balanced_tree(2, 4, seed=3, low=1.0, high=1.0)
    for u, v in g.edges():
        depth = _depth(g, u, v)
        g[u][v]["weight"] = 8.0 / (2**depth)  # root links 8x leaf links
    n = g.number_of_nodes()
    metric = Metric.from_graph(g)
    leaves = [v for v in g.nodes if g.degree(v) == 1]
    print(f"fat-tree: {n} nodes, {len(leaves)} leaf processors\n")

    total_requests = 64
    cs = np.full(n, 2.0)  # uniform memory rent
    rng = np.random.default_rng(9)

    print(f"{'write %':>8}  {'optimal copies':>14}  {'opt cost':>9}  "
          f"{'KRW cost':>9}  {'KRW/opt':>8}")
    for write_pct in (0, 5, 20, 50, 80, 100):
        # leaves issue all traffic; writes drawn per leaf
        demand = np.zeros(n)
        demand[leaves] = rng.multinomial(total_requests,
                                         np.full(len(leaves), 1 / len(leaves)))
        fw = np.floor(demand * write_pct / 100.0)
        fr = demand - fw

        placement, opt_cost = optimal_tree_placement(
            g, cs, fr.reshape(1, -1), fw.reshape(1, -1)
        )
        inst = DataManagementInstance.single_object(metric, cs, fr, fw)
        krw = approximate_object_placement(inst, 0)
        krw_cost = object_cost(inst, 0, krw, policy="steiner_mst").total

        copies = placement.copies(0)
        print(f"{write_pct:>7}%  {len(copies):>14}  {opt_cost:>9.1f}  "
              f"{krw_cost:>9.1f}  {krw_cost / opt_cost:>8.3f}")

    print("\nshape: replication degree collapses as the write share grows;")
    print("the tree DP is exact (Theorem 13), KRW stays within its constant.")


def _depth(g, u, v) -> int:
    """Edge depth = distance of the deeper endpoint from the root (node 0)."""
    import networkx as nx

    return max(
        nx.shortest_path_length(g, 0, u), nx.shortest_path_length(g, 0, v)
    )


if __name__ == "__main__":
    main()
