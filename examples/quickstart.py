"""Quickstart: place one shared object on a small commercial network.

Builds a 14-node transit-stub network with per-link transmission fees and
per-node storage rents, generates a mixed read/write workload, runs the
paper's constant-factor approximation, and prints the placement with its
cost breakdown next to the exact optimum (the network is small enough to
brute-force).

Run:  python examples/quickstart.py
"""

from repro import DataManagementInstance, approximate_object_placement, object_cost
from repro.baselines import brute_force_object
from repro.core.approx import proper_placement_margins
from repro.graphs import Metric, transit_stub_graph
from repro.workloads import make_instance


def main() -> None:
    # --- network: 2 backbone routers, 2 stub clusters each -------------
    graph = transit_stub_graph(2, 2, 3, seed=7)
    metric = Metric.from_graph(graph)
    print(f"network: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} links, diameter {metric.diameter():.2f}")

    # --- workload: one object, mixed reads and writes ------------------
    inst = make_instance(
        metric, seed=11, num_objects=1, demand_model="hotspot",
        write_fraction=0.2, storage_price=4.0,
    )
    print(f"workload: {inst.total_reads(0):.0f} reads, "
          f"{inst.total_writes(0):.0f} writes, storage rent 4.0/object")

    # --- the paper's algorithm -----------------------------------------
    copies = approximate_object_placement(inst, 0)
    cost = object_cost(inst, 0, copies, policy="mst")
    print(f"\nKRW placement: copies on nodes {list(copies)}")
    print(f"  storage {cost.storage:.2f} + read {cost.read:.2f} "
          f"+ update {cost.update:.2f} = total {cost.total:.2f}")

    margins = proper_placement_margins(inst, 0, copies)
    print(f"  proper-placement margins: coverage {margins['coverage']:.2f}, "
          f"separation {margins['separation']:.2f} (both must be >= 0)")

    # --- ground truth ----------------------------------------------------
    opt_copies, opt_cost = brute_force_object(inst, 0, policy="mst")
    print(f"\nexact optimum: copies on {list(opt_copies)}, cost {opt_cost:.2f}")
    print(f"approximation ratio: {cost.total / opt_cost:.3f} "
          f"(Theorem 7 guarantees a constant)")


if __name__ == "__main__":
    main()
