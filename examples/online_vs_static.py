"""Online vs static placement: replaying a request stream event by event.

The paper solves the *static* problem (frequencies known up front); its
related work studies the *dynamic* one (requests arrive online).  This
example replays the same shuffled request stream twice on a tree network:

* against the clairvoyant static optimum (Section 3 tree DP), billed by
  the event-level simulator -- every read routed hop by hop, every write
  multicast along the copy MST, per-link fees accrued;
* against a count-based online strategy that starts with one copy and
  buys/invalidates replicas as the stream unfolds.

It prints the bill decomposition, the empirical competitive ratio, and
the busiest links -- connecting the commercial cost model back to the
total-communication-load view the paper generalizes.

Run:  python examples/online_vs_static.py
"""

from repro.core import optimal_tree_placement
from repro.graphs import Metric, random_tree
from repro.simulate import (
    NetworkSimulator,
    OnlineCountingStrategy,
    request_log_from_instance,
)
from repro.workloads import make_instance


def main() -> None:
    g = random_tree(20, seed=4)
    metric = Metric.from_graph(g)
    inst = make_instance(metric, seed=41, num_objects=2, write_fraction=0.15,
                         demand_model="hotspot")
    log = request_log_from_instance(inst, seed=42)
    print(f"tree network: {g.number_of_nodes()} nodes; "
          f"stream: {len(log)} requests across {inst.num_objects} objects\n")

    # clairvoyant static optimum, executed event by event
    placement, analytic = optimal_tree_placement(
        g, inst.storage_costs, inst.read_freq, inst.write_freq
    )
    sim = NetworkSimulator(g, inst, update_policy="mst")
    # hop-by-hop replay (track_edge_load) so per-link loads are attributed
    static_bill = sim.run(placement, log, track_edge_load=True)
    print("static optimum (tree DP), simulated:")
    print(f"  storage {static_bill.storage_cost:8.1f}   "
          f"read traffic {static_bill.read_traffic_cost:8.1f}   "
          f"write traffic {static_bill.write_traffic_cost:8.1f}")
    print(f"  total {static_bill.total_cost:8.1f}   "
          f"messages {static_bill.messages}")

    # online strategy on the identical stream
    print("\nonline count-based strategy (threshold = 3):")
    online = OnlineCountingStrategy(g, inst, replication_threshold=3)
    online_bill, final_sets = online.run(log)
    print(f"  storage {online_bill.storage_cost:8.1f}   "
          f"read traffic {online_bill.read_traffic_cost:8.1f}   "
          f"write traffic {online_bill.write_traffic_cost:8.1f}")
    print(f"  total {online_bill.total_cost:8.1f}   "
          f"messages {online_bill.messages}")
    print(f"  final copy sets: "
          f"{[sorted(s) for s in final_sets]}")

    ratio = online_bill.total_cost / static_bill.total_cost
    print(f"\nempirical competitive ratio: {ratio:.2f} "
          "(the dynamic literature proves O(log n) is achievable)")

    top = sorted(static_bill.edge_load.items(), key=lambda kv: -kv[1])[:3]
    print("\nbusiest links under the static optimum (fee-weighted load):")
    for (u, v), load in top:
        share = load / static_bill.total_load()
        print(f"  link {u}-{v}: {load:8.1f}  ({share:5.1%} of all traffic)")


if __name__ == "__main__":
    main()
