"""CDN planning for a WWW content provider (the paper's Section 1 story).

A content provider rents bandwidth (per-byte link fees) and storage
(per-byte memory fees) on an Internet-like transit-stub network and must
decide, per page, how many replicas to buy and where.  Pages follow a
Zipf popularity curve; most traffic is reads, but pages are occasionally
updated and every replica must receive the update.

The script compares four purchasing strategies across the object
catalogue and reports the provider's total bill, then breaks the winning
placement down by page to show the policy structure the algorithm found
(popular pages replicated near readers, cold pages centralized).

Run:  python examples/cdn_content_provider.py
"""

from collections import Counter

from repro import approximate_placement, placement_cost
from repro.baselines import best_single_node, full_replication, write_blind_placement
from repro.core.placement import Placement
from repro.workloads import www_content_provider


def main() -> None:
    sc = www_content_provider(
        seed=5, transit=4, stubs_per_transit=2, stub_size=4,
        num_objects=10, write_fraction=0.04, storage_price=8.0,
    )
    inst = sc.instance
    n, m = inst.num_nodes, inst.num_objects
    print(f"network: {n} nodes (4 backbone + 8 stub clusters)")
    print(f"catalogue: {m} pages, Zipf popularity, ~4% of requests are updates\n")

    strategies = {
        "KRW approximation": approximate_placement(inst),
        "single best site": Placement(
            tuple(best_single_node(inst, o) for o in range(m))
        ),
        "replicate everywhere": Placement(
            tuple(full_replication(inst, o) for o in range(m))
        ),
        "write-blind facility location": Placement(
            tuple(write_blind_placement(inst, o) for o in range(m))
        ),
    }

    print(f"{'strategy':>32}  {'storage':>9}  {'reads':>9}  {'updates':>9}  {'total':>9}")
    best_name, best_total = None, float("inf")
    for name, placement in strategies.items():
        cost = placement_cost(inst, placement, policy="mst")
        print(f"{name:>32}  {cost.storage:9.1f}  {cost.read:9.1f}  "
              f"{cost.update:9.1f}  {cost.total:9.1f}")
        if cost.total < best_total:
            best_name, best_total = name, cost.total

    print(f"\ncheapest bill: {best_name} at {best_total:.1f}\n")

    krw = strategies["KRW approximation"]
    print("per-page replica counts under the KRW placement")
    print(f"{'page':>6}  {'requests':>9}  {'writes':>7}  {'replicas':>8}")
    for o in range(m):
        print(f"{inst.object_names[o]:>6}  {inst.total_requests(o):9.0f}  "
              f"{inst.total_writes(o):7.0f}  {len(krw.copies(o)):8d}")

    degree_by_rank = [len(krw.copies(o)) for o in range(m)]
    hot = sum(degree_by_rank[: m // 2]) / (m // 2)
    cold = sum(degree_by_rank[m // 2 :]) / (m - m // 2)
    print(f"\nmean replicas: hot half {hot:.1f} vs cold half {cold:.1f} "
          "(popular pages replicate wider)")

    placement_sites = Counter()
    for o in range(m):
        placement_sites.update(krw.copies(o))
    top = placement_sites.most_common(3)
    print("busiest replica sites:", ", ".join(f"node {v} ({c} pages)" for v, c in top))


if __name__ == "__main__":
    main()
