"""Typed, validated, persistable planning configuration.

Every knob of the placement pipeline -- distance backend, phase-1 solver,
phase toggles, engine chunking/parallelism, the seed for order-sensitive
strategies -- lives in one frozen :class:`PlanConfig`.  The config is the
*provenance record* of a plan: :class:`~repro.api.PlanReport` embeds the
exact config that produced it, and ``to_dict`` / ``from_dict`` /
``from_file`` round-trip it through JSON (and read-only TOML), so a
placement artifact can always be traced back to -- and re-run from -- the
declaration that produced it.

Consumers:

* :meth:`repro.engine.PlacementEngine.from_config` /
  :func:`repro.engine.place_catalog` consume the engine knobs,
* :class:`repro.simulate.replanner.EpochReplanner` shares one config
  across its per-epoch solves,
* every :mod:`repro.registry` strategy receives the config through
  ``plan(instance, config)``,
* ``python -m repro plan/compare --config FILE`` loads one from disk.

Unknown keys are a hard :class:`TypeError` -- a typo in a config file
must not silently fall back to a default.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, fields
from pathlib import Path

from .core.radii import DEFAULT_RADII_BLOCK
from .costmodel import available_cost_models
from .engine import DEFAULT_CHUNK_SIZE
from .facility import FL_SOLVERS
from .graphs.backend import DEFAULT_CACHE_ROWS
from .graphs.partition import PARTITION_METHODS
from .kernels import KERNEL_MODES

__all__ = [
    "PlanConfig",
    "BACKEND_CHOICES",
    "COST_POLICIES",
    "REPLAN_MODES",
    "SERVE_TRIGGERS",
    "KERNEL_MODES",
    "PARTITION_METHODS",
    "load_mapping",
]


def load_mapping(path) -> dict:
    """Load a ``*.json`` / ``*.toml`` config file as a plain mapping.

    The one declarative-config loader of the package:
    :meth:`PlanConfig.from_file` and
    :meth:`repro.bench.trials.SweepConfig.from_file` both ride it, so
    every config surface accepts the same two formats with the same
    errors.  TOML is read-only (JSON is the write format throughout).
    """
    path = Path(path)
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            try:
                import tomli as tomllib  # type: ignore[no-redef]
            except ImportError as exc:  # pragma: no cover - env-dependent
                raise RuntimeError(
                    "reading TOML configs needs tomllib (Python >= 3.11) "
                    "or the tomli package; use a .json config instead"
                ) from exc
        data = tomllib.loads(path.read_text())
    else:
        data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise TypeError(f"config file {path} must hold a mapping")
    return data

#: Distance-backend request: ``"auto"`` keeps whatever the instance was
#: built with (dense below, lazy above the materialization threshold when
#: the planner builds the metric itself).
BACKEND_CHOICES = ("auto", "dense", "lazy")

#: Billing policies understood by :func:`repro.core.costs.placement_cost`.
COST_POLICIES = ("mst", "steiner", "steiner_mst")

#: Epoch re-placement modes of the dynamic layer
#: (:class:`repro.simulate.replanner.EpochReplanner`): ``"full"`` re-solves
#: the whole catalog every epoch, ``"incremental"`` re-solves only the
#: objects whose demand drifted beyond ``replan_tolerance``.
REPLAN_MODES = ("full", "incremental")

#: Replan trigger modes of the serving daemon
#: (:class:`repro.serve.PlacementDaemon`): ``"drift"`` re-places only
#: when some object's demand drifted beyond ``replan_tolerance`` since
#: its last re-place, ``"every-epoch"`` runs the configured re-solve for
#: every sealed batch window regardless.
SERVE_TRIGGERS = ("drift", "every-epoch")


@dataclass(frozen=True)
class PlanConfig:
    """The complete, validated knob set of one planning run.

    Attributes
    ----------
    backend:
        Distance-backend choice for metrics the planner builds itself
        (``"auto"`` | ``"dense"`` | ``"lazy"``).  Instances that already
        carry a metric are used as-is.
    fl_solver:
        Phase-1 facility-location algorithm
        (:data:`repro.facility.FL_SOLVERS`).
    phase2 / phase3:
        The Section 2 ablation toggles; the approximation guarantee
        requires both.
    facility_candidates:
        Cap on the phase-1 candidate facility set (``None``: automatic).
    chunk_size / jobs / radii_block:
        :class:`~repro.engine.PlacementEngine` batching and parallelism.
    shared_memory:
        Zero-copy worker transport: with ``jobs > 1`` the engine
        publishes the instance into shared memory (:mod:`repro.shm`)
        and workers attach read-only views; disabled or unavailable,
        the pickle path is used.  Never affects results.
    kernels:
        Hot-loop dispatch (:data:`repro.kernels.KERNEL_MODES`):
        ``"auto"`` | ``"numpy"`` | ``"numba"``.  The numba twins are
        bit-identical to the numpy reference; an explicit ``"numba"``
        without numba installed degrades to numpy with a provenance
        note.
    cache_rows:
        LRU row-cache capacity of a
        :class:`~repro.graphs.backend.LazyMetric` the planner builds
        itself (scenario instances, replans); instances that already
        carry a metric keep their own setting.
    cost_policy:
        Update-billing policy for report costs (``"mst"`` is the paper's
        restricted policy).
    cost_model:
        Registered accounting model billing the plan
        (:func:`repro.costmodel.available_cost_models`): ``"krw"``
        (default, the paper's bill -- bit-identical to the pre-seam
        inline accounting), ``"admission"`` (per-timeslot capacity with
        accepted/rejected splits) or ``"broadcast-write"`` (one
        multicast propagation charge per period).  Placement search is
        unchanged; the model decides how the resulting placement is
        billed.
    seed:
        Event-order seed for order-sensitive strategies (``online``);
        recorded as provenance either way.
    replication_threshold:
        The ``online`` strategy's ski-rental read count.
    replan_mode:
        Dynamic-layer epoch re-placement mode (``"full"`` |
        ``"incremental"``): whether
        :class:`~repro.simulate.replanner.EpochReplanner` re-solves the
        whole catalog each epoch or only the objects whose demand
        drifted.
    partition / num_shards / portals_per_shard:
        Sharded-solve knobs consumed by the ``krw-sharded`` strategy:
        the partition method (:data:`repro.graphs.partition.PARTITION_METHODS`;
        ``"none"`` forces the global solve), the shard count, and the
        per-shard boundary-portal cap.  ``num_shards=1`` degenerates to
        the global solve bit-for-bit; other strategies record the knobs
        as provenance and ignore them.
    replan_tolerance:
        Normalized per-object L1 demand-drift threshold below which an
        incremental replan carries an object's copy set forward
        unchanged; drift is measured against the object's demand at its
        last re-place, so slow drift accumulates instead of hiding
        under a per-epoch threshold.  ``0.0`` (default) re-places
        exactly the objects whose frequency rows changed at all --
        bit-identical to a full re-solve; larger values trade a bounded
        billing error for fewer re-solves.
    serve_trigger:
        When the serving daemon (:class:`repro.serve.PlacementDaemon`)
        schedules a background replan for a sealed batch window
        (:data:`SERVE_TRIGGERS`): ``"drift"`` (default) only when the
        accumulated drift since the last re-place crosses
        ``replan_tolerance``, ``"every-epoch"`` unconditionally.
    serve_checkpoint_every:
        Warm-state checkpoint cadence of the daemon, in published
        epochs: ``k > 0`` writes the checkpoint after every ``k``-th
        publish (when a checkpoint path is configured); ``0`` (default)
        checkpoints only on shutdown / SIGTERM.
    serve_max_lag:
        Bound on the daemon's background-replan pipeline: at most this
        many sealed-but-unpublished epochs may be queued before
        ``end_epoch`` blocks the ingest side (backpressure instead of
        unbounded queueing).
    """

    backend: str = "auto"
    fl_solver: str = "local_search"
    phase2: bool = True
    phase3: bool = True
    facility_candidates: int | None = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    jobs: int = 1
    radii_block: int = DEFAULT_RADII_BLOCK
    shared_memory: bool = True
    kernels: str = "auto"
    cache_rows: int = DEFAULT_CACHE_ROWS
    cost_policy: str = "mst"
    cost_model: str = "krw"
    seed: int | None = None
    replication_threshold: int = 3
    replan_mode: str = "full"
    replan_tolerance: float = 0.0
    partition: str = "auto"
    num_shards: int = 1
    portals_per_shard: int = 4
    serve_trigger: str = "drift"
    serve_checkpoint_every: int = 0
    serve_max_lag: int = 4

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKEND_CHOICES}"
            )
        if self.fl_solver not in FL_SOLVERS:
            raise ValueError(
                f"unknown fl_solver {self.fl_solver!r}; "
                f"choose from {sorted(FL_SOLVERS)}"
            )
        if self.cost_policy not in COST_POLICIES:
            raise ValueError(
                f"unknown cost_policy {self.cost_policy!r}; "
                f"choose from {COST_POLICIES}"
            )
        if self.cost_model not in available_cost_models():
            raise ValueError(
                f"unknown cost_model {self.cost_model!r}; "
                f"choose from {available_cost_models()}"
            )
        if self.cost_model != "krw" and self.cost_policy != "mst":
            raise ValueError(
                f"cost_model {self.cost_model!r} only bills the 'mst' "
                f"cost_policy, not {self.cost_policy!r}"
            )
        if self.kernels not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernels mode {self.kernels!r}; "
                f"choose from {KERNEL_MODES}"
            )
        for knob in (
            "chunk_size", "jobs", "radii_block", "cache_rows",
            "replication_threshold",
        ):
            if int(getattr(self, knob)) < 1:
                raise ValueError(f"{knob} must be positive")
        if self.facility_candidates is not None and self.facility_candidates < 1:
            raise ValueError("facility_candidates must be positive (or None)")
        if self.replan_mode not in REPLAN_MODES:
            raise ValueError(
                f"unknown replan_mode {self.replan_mode!r}; "
                f"choose from {REPLAN_MODES}"
            )
        tol = float(self.replan_tolerance)
        if not (math.isfinite(tol) and tol >= 0.0):
            raise ValueError("replan_tolerance must be a finite non-negative number")
        if self.partition not in PARTITION_METHODS:
            raise ValueError(
                f"unknown partition method {self.partition!r}; "
                f"choose from {PARTITION_METHODS}"
            )
        if int(self.num_shards) < 1:
            raise ValueError(
                "num_shards must be >= 1 (1 solves globally; more splits "
                "the network into that many shards)"
            )
        if int(self.portals_per_shard) < 1:
            raise ValueError(
                "portals_per_shard must be >= 1 (each shard needs at least "
                "one boundary portal to route inter-shard distances)"
            )
        if self.serve_trigger not in SERVE_TRIGGERS:
            raise ValueError(
                f"unknown serve_trigger {self.serve_trigger!r}; "
                f"choose from {SERVE_TRIGGERS}"
            )
        if int(self.serve_checkpoint_every) < 0:
            raise ValueError(
                "serve_checkpoint_every must be >= 0 (0 checkpoints only "
                "on shutdown)"
            )
        if int(self.serve_max_lag) < 1:
            raise ValueError(
                "serve_max_lag must be >= 1 (at least one sealed epoch "
                "must be allowed in flight)"
            )

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def engine_kwargs(self) -> dict:
        """The subset :class:`~repro.engine.PlacementEngine` consumes."""
        return dict(
            fl_solver=self.fl_solver,
            phase2=self.phase2,
            phase3=self.phase3,
            facility_candidates=self.facility_candidates,
            chunk_size=self.chunk_size,
            jobs=self.jobs,
            radii_block=self.radii_block,
            shared_memory=self.shared_memory,
            kernels=self.kernels,
        )

    def replace(self, **changes) -> "PlanConfig":
        """A copy with the given knobs changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PlanConfig":
        """Build from a plain dict; unknown keys raise ``TypeError``.

        The explicit check turns a config-file typo into a named error
        instead of a silently ignored knob.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise TypeError(
                f"unknown PlanConfig knob(s) {unknown}; known knobs: "
                f"{sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_file(cls, path) -> "PlanConfig":
        """Load from ``*.json`` or ``*.toml`` (chosen by suffix)."""
        return cls.from_dict(load_mapping(path))

    def to_file(self, path) -> None:
        """Persist as JSON (the write format; TOML is read-only)."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")
