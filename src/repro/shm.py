"""Zero-copy instance sharing for worker pools via POSIX shared memory.

:class:`repro.engine.PlacementEngine` historically shipped the whole
:class:`~repro.core.instance.DataManagementInstance` to every worker
through the ``ProcessPoolExecutor`` initializer pickle -- ``O(n^2)``
bytes per worker for a dense metric, re-deserialized per process.  On
catalogs where the per-chunk compute is modest, that start-up cost is
exactly why E14 measured ``jobs=2 ≈ serial``.

This module publishes the instance's arrays **once** into
:mod:`multiprocessing.shared_memory` blocks:

* the metric payload -- the dense closure matrix, or the lazy backend's
  CSR adjacency (``data`` / ``indices`` / ``indptr``),
* the workload arrays -- storage costs, read/write frequency matrices,
  object sizes.

Workers then receive a compact picklable :class:`SharedInstanceHandle`
(block names, shapes, dtypes -- a few hundred bytes regardless of
instance size) and attach **read-only, zero-copy** numpy views onto the
same physical pages.

Ownership
---------
::

    owner (engine)                      workers (pool initializer)
    ---------------                     --------------------------
    SharedInstance.publish(instance)
      |-- handle --------------------->  handle.attach()
      |                                   `- read-only views, no copy
      `-- close()  [unlink]  <---------  close() at worker exit [unmap]

The **owner** (the process that published) is the only one that ever
``unlink``\\ s the blocks; it does so in ``close()``, which the engine
calls after the pool shuts down (and which is registered with
``atexit`` as a crash guard -- ``close()`` is idempotent).  Attachers
only ever unmap.  Unlinking while attachments exist is safe on POSIX:
the pages live until the last unmap.

Pool workers share the parent's ``resource_tracker`` (both fork and
spawn children inherit its fd), so their attachments do not create
extra tracker registrations and no untracking workaround is needed;
an **unrelated** process attaching a handle (its own tracker) should
pass ``attach(untrack=True)`` so its tracker does not unlink blocks it
does not own at exit (CPython < 3.13 registers attachments too).

Fallback
--------
:func:`publish_instance` returns ``None`` -- and the engine keeps
today's pickle path -- whenever shared memory is unavailable
(``/dev/shm`` missing or full, platform without POSIX shm) or the
metric type is not shareable.  Degradation is silent and lossless:
results are identical either way, only the per-worker start-up cost
differs.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import shared_memory as _shm

import numpy as np

from .core.instance import DataManagementInstance
from .graphs.backend import LazyMetric
from .graphs.metric import Metric

__all__ = [
    "SharedInstance",
    "SharedInstanceHandle",
    "AttachedInstance",
    "publish_instance",
    "shm_available",
]


def shm_available() -> bool:
    """True when a shared-memory block can actually be created here."""
    try:
        probe = _shm.SharedMemory(create=True, size=1)
    except Exception:
        return False
    probe.close()
    try:
        probe.unlink()
    except Exception:
        pass
    return True


def _untrack(seg: _shm.SharedMemory) -> None:
    """Deregister an attachment from this process's resource tracker.

    CPython < 3.13 registers *attachments* with the tracker as if they
    were owned, so an unrelated attacher's tracker would unlink blocks
    it does not own when that process exits.  Best-effort by design.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


@dataclass(frozen=True)
class _ArraySpec:
    """Locator of one published array: block name, shape, dtype string."""

    name: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class SharedInstanceHandle:
    """The compact picklable locator of a published instance.

    Carries only names/shapes/dtypes (plus object names), never array
    data -- pickling one costs a few hundred bytes whatever the instance
    size, which is the whole point of the shm worker path.
    """

    metric_kind: str  # "dense" | "lazy"
    n: int
    cache_rows: int | None
    arrays: tuple[tuple[str, _ArraySpec], ...]
    object_names: tuple[str, ...]

    def attach(self, *, untrack: bool = False) -> "AttachedInstance":
        """Rebuild the instance over read-only zero-copy views.

        Opens every block and wraps it in a non-writeable
        ``np.ndarray`` view; nothing is copied.  ``untrack=True`` is for
        attachers outside the publishing process family (see module
        docstring).  Close the returned object (or let the publishing
        owner outlive it) -- it keeps the segments mapped.
        """
        segments: list[_shm.SharedMemory] = []
        views: dict[str, np.ndarray] = {}
        try:
            for field, spec in self.arrays:
                seg = _shm.SharedMemory(name=spec.name)
                segments.append(seg)
                if untrack:
                    _untrack(seg)
                view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
                view.flags.writeable = False
                views[field] = view
        except Exception:
            for seg in segments:
                seg.close()
            raise

        if self.metric_kind == "dense":
            metric = Metric(views["dist"], validate=False)
        else:
            from scipy.sparse import csr_matrix

            adj = csr_matrix(
                (views["adj_data"], views["adj_indices"], views["adj_indptr"]),
                shape=(self.n, self.n),
            )
            metric = LazyMetric(adj, cache_rows=self.cache_rows or 128, validate=False)
        instance = DataManagementInstance(
            metric,
            views["storage_costs"],
            views["read_freq"],
            views["write_freq"],
            object_names=self.object_names,
            object_sizes=views["object_sizes"],
        )
        return AttachedInstance(instance, segments)


class AttachedInstance:
    """A worker-side attachment: the rebuilt instance plus the segment
    handles keeping its pages mapped.  ``close()`` unmaps (never
    unlinks); idempotent, also runs on garbage collection."""

    def __init__(self, instance: DataManagementInstance, segments: list) -> None:
        self.instance = instance
        self._segments = segments

    def close(self) -> None:
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass

    def __enter__(self) -> "AttachedInstance":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()


class SharedInstance:
    """Owner side of a published instance.

    Create via :meth:`publish`; hand ``.handle`` to workers; ``close()``
    when the pool is done.  ``close()`` unlinks every block exactly once
    and is registered with ``atexit`` as a crash guard.
    """

    def __init__(self, handle: SharedInstanceHandle, segments: list) -> None:
        self.handle = handle
        self._segments = segments
        atexit.register(self.close)

    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, instance: DataManagementInstance) -> "SharedInstance":
        """Copy the instance's arrays into fresh shared-memory blocks.

        Raises ``TypeError`` for metric types without a shareable array
        form and ``OSError`` when the platform cannot allocate; callers
        wanting silent fallback use :func:`publish_instance`.
        """
        segments: list[_shm.SharedMemory] = []
        specs: list[tuple[str, _ArraySpec]] = []

        def share(field: str, arr: np.ndarray) -> None:
            arr = np.ascontiguousarray(arr)
            seg = _shm.SharedMemory(create=True, size=max(arr.nbytes, 1))
            segments.append(seg)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
            specs.append((field, _ArraySpec(seg.name, arr.shape, arr.dtype.str)))

        metric = instance.metric
        try:
            if isinstance(metric, Metric):
                kind, cache_rows = "dense", None
                share("dist", metric.dist)
            elif isinstance(metric, LazyMetric):
                kind = "lazy"
                cache_rows = metric._cache_rows
                adj = metric.adjacency
                share("adj_data", adj.data)
                share("adj_indices", adj.indices)
                share("adj_indptr", adj.indptr)
            else:
                raise TypeError(
                    f"cannot publish a {type(metric).__name__} metric to "
                    "shared memory (dense Metric or LazyMetric required)"
                )
            share("storage_costs", instance.storage_costs)
            share("read_freq", instance.read_freq)
            share("write_freq", instance.write_freq)
            share("object_sizes", instance.object_sizes)
        except BaseException:
            for seg in segments:
                try:
                    seg.close()
                    seg.unlink()
                except Exception:
                    pass
            raise

        handle = SharedInstanceHandle(
            metric_kind=kind,
            n=metric.n,
            cache_rows=cache_rows,
            arrays=tuple(specs),
            object_names=tuple(instance.object_names),
        )
        return cls(handle, segments)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap and unlink every block (idempotent)."""
        segments, self._segments = self._segments, []
        for seg in segments:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass

    def __enter__(self) -> "SharedInstance":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()


def publish_instance(instance: DataManagementInstance) -> SharedInstance | None:
    """Publish with graceful fallback: ``None`` when shared memory is
    unavailable or the metric is not shareable -- the engine then keeps
    the pickle path, bit-identical results either way."""
    if not shm_available():
        return None
    try:
        return SharedInstance.publish(instance)
    except (OSError, ValueError, TypeError, MemoryError):
        return None
