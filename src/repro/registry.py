"""Plug-in strategy registry: every placement policy behind one protocol.

The library grew one placement policy at a time -- the Section 2
approximation, the baselines of Experiment E6, the dynamic strategies of
E15 -- each with its own calling convention.  This module unifies them:
a *strategy* is anything with a ``name`` and a
``plan(instance, config) -> PlanReport`` method, registered under a
stable string name with :func:`register_strategy`::

    from repro.registry import register_strategy, PlacementStrategy

    @register_strategy
    class Cheapest(PlacementStrategy):
        name = "cheapest-node"

        def place(self, instance, config):
            v = int(np.argmin(instance.storage_costs))
            return Placement(tuple((v,) for _ in range(instance.num_objects)))

    Planner().plan(instance, "cheapest-node")

Built-in strategies (the names ``python -m repro list`` prints):

``krw``
    The paper's constant-factor approximation, batched through
    :class:`~repro.engine.PlacementEngine` (identical copy sets to the
    per-object loop).
``krw-sharded``
    The same approximation run hierarchically: the network is
    partitioned into shards with boundary portals
    (:mod:`repro.graphs.partition`), each object solves only on its
    demand-supporting shards against the portal-summarized metric, and
    cross-shard copy sets are stitched on the real metric.
    ``num_shards=1`` degenerates to ``krw`` exactly.
``single-median`` / ``full-replication`` / ``write-blind`` /
``greedy-add`` / ``local-search``
    The E6 baseline family (:mod:`repro.baselines.heuristics`).
``epoch-replan``
    The ``krw`` placement viewed as one epoch of
    :class:`~repro.simulate.replanner.EpochReplanner`: same copy sets,
    plus the migration bill from the zero-knowledge start (one copy on
    the cheapest node) recorded in ``extras["migration_cost"]``.
``online``
    The count-based dynamic strategy
    (:class:`~repro.simulate.online.OnlineCountingStrategy`) replayed
    over the instance's own request log (``config.seed`` orders the
    events); the *final* copy sets become the placement.  The decision
    trajectory depends only on metric distances and event order, never
    on per-link routing, so the copy sets match the hop-by-hop
    simulation exactly (property-tested).

:class:`PlacementStrategy` is the convenience base: subclasses implement
``place(instance, config) -> Placement`` (optionally returning
``(Placement, extras)``) and inherit timing, billing under
``config.cost_policy``, and :class:`~repro.api.PlanReport` assembly.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

import numpy as np

from .api import PlanReport
from .baselines.heuristics import (
    best_single_node,
    full_replication,
    greedy_add_placement,
    local_search_placement,
    write_blind_placement,
)
from .config import PlanConfig
from .core.instance import DataManagementInstance
from .core.placement import Placement
from .costmodel import get_cost_model
from .engine import PlacementEngine
from .simulate.events import RequestLog

__all__ = [
    "Strategy",
    "PlacementStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
]


@runtime_checkable
class Strategy(Protocol):
    """What the planner requires of a registered strategy."""

    name: str

    def plan(
        self, instance: DataManagementInstance, config: PlanConfig | None = None
    ) -> PlanReport: ...


class PlacementStrategy:
    """Base class handling timing, billing and report assembly.

    Subclasses implement :meth:`place`; ``plan`` wraps it with a wall
    clock, bills the placement through ``config.cost_model`` (under
    ``config.cost_policy``), records the billing model in
    ``extras["cost_model"]`` and returns the full
    :class:`~repro.api.PlanReport`.
    """

    name: str = ""

    def place(self, instance: DataManagementInstance, config: PlanConfig):
        """Return a :class:`Placement` or ``(Placement, extras dict)``."""
        raise NotImplementedError

    def plan(
        self, instance: DataManagementInstance, config: PlanConfig | None = None
    ) -> PlanReport:
        config = PlanConfig() if config is None else config
        t0 = time.perf_counter()
        result = self.place(instance, config)
        wall = time.perf_counter() - t0
        placement, extras = result if isinstance(result, tuple) else (result, {})
        model = get_cost_model(config.cost_model)
        cost = model.bill_placement(instance, placement, policy=config.cost_policy)
        extras.setdefault("cost_model", model.name)
        return PlanReport(
            strategy=self.name,
            placement=placement,
            cost=cost,
            wall_time_s=wall,
            config=config,
            num_nodes=instance.num_nodes,
            num_objects=instance.num_objects,
            extras=extras,
        )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_STRATEGIES: dict[str, Strategy] = {}


def register_strategy(obj=None, *, name: str | None = None, override: bool = False):
    """Register a strategy class (instantiated) or instance.

    Usable bare (``@register_strategy``, taking the strategy's ``name``
    attribute) or parameterized
    (``@register_strategy(name="mine", override=True)``).  Registering a
    taken name without ``override=True`` is an error -- two plug-ins
    silently fighting over one name would make configs ambiguous.
    """
    if obj is None:
        def deco(inner):
            return register_strategy(inner, name=name, override=override)
        return deco

    strategy: Strategy = obj() if isinstance(obj, type) else obj
    key = name or getattr(strategy, "name", "")
    if not key:
        raise ValueError("a strategy needs a non-empty name")
    if not callable(getattr(strategy, "plan", None)):
        raise TypeError(f"strategy {key!r} has no plan() method")
    if key in _STRATEGIES and not override:
        raise ValueError(
            f"strategy name {key!r} is already registered; pass override=True "
            "to replace it"
        )
    strategy.name = key
    _STRATEGIES[key] = strategy
    return obj


def get_strategy(name: str) -> Strategy:
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; registered: "
            f"{', '.join(available_strategies())}"
        ) from None


def available_strategies() -> tuple[str, ...]:
    """Registered names, in registration order (built-ins first)."""
    return tuple(_STRATEGIES)


# ----------------------------------------------------------------------
# built-in strategies
# ----------------------------------------------------------------------
@register_strategy
class KRWStrategy(PlacementStrategy):
    """The Section 2 approximation via the batched catalog engine.

    ``extras`` records run provenance: the kernel dispatch report
    (:func:`repro.kernels.kernel_provenance` under the config's
    ``kernels`` mode), whether the parallel path shipped the instance
    via shared memory, and -- on a lazy backend -- the row-cache
    hit-rate statistics, so ``cache_rows`` sizing is observable from
    plan output.
    """

    name = "krw"

    def place(self, instance, config):
        from .graphs.backend import LazyMetric
        from .kernels import kernel_provenance

        engine = PlacementEngine.from_config(instance, config)
        placement = engine.place()
        extras = {
            "kernels": kernel_provenance(config.kernels),
            "shared_memory": {
                "requested": config.shared_memory,
                "used": engine.used_shared_memory,
            },
        }
        if isinstance(instance.metric, LazyMetric):
            extras["row_cache"] = instance.metric.cache_stats()
        return placement, extras


@register_strategy
class KRWShardedStrategy(PlacementStrategy):
    """Hierarchical sharded solve: partition -> portal shard solves -> stitch.

    The network is decomposed by :func:`repro.graphs.partition_instance`
    under the config's ``partition`` / ``num_shards`` /
    ``portals_per_shard`` knobs; each object is then solved only on the
    shards carrying its demand, against the portal-summarized metric,
    and cross-shard copy sets are stitched with one global phase-3 pass
    on the real metric.  ``partition="none"`` or ``num_shards=1``
    degenerates to the global ``krw`` solve bit-for-bit (property-tested).

    ``extras`` carries the ``krw`` provenance plus a ``sharded`` block:
    shard sizes, per-shard object counts, spanning objects, copies
    dropped by the stitch, and aggregated backend cache stats.
    """

    name = "krw-sharded"

    def place(self, instance, config):
        from .graphs.backend import LazyMetric
        from .graphs.partition import partition_instance
        from .kernels import kernel_provenance

        engine = PlacementEngine.from_config(instance, config)
        extras = {
            "kernels": kernel_provenance(config.kernels),
            "shared_memory": {
                "requested": config.shared_memory,
                "used": engine.used_shared_memory,
            },
        }
        if config.partition == "none" or config.num_shards == 1:
            placement = engine.place()
            extras["sharded"] = {
                "num_shards": 1,
                "partition": config.partition,
                "degenerate": True,
            }
        else:
            part = partition_instance(
                instance,
                num_shards=config.num_shards,
                portals_per_shard=config.portals_per_shard,
                method=config.partition,
            )
            placement, info = engine.place_sharded(part)
            info["partition"] = config.partition
            info["degenerate"] = False
            extras["sharded"] = info
        extras["shared_memory"]["used"] = engine.used_shared_memory
        if isinstance(instance.metric, LazyMetric):
            extras["row_cache"] = instance.metric.cache_stats()
        return placement, extras


def _per_object(instance, fn) -> Placement:
    return Placement(tuple(fn(obj) for obj in range(instance.num_objects)))


@register_strategy
class SingleMedianStrategy(PlacementStrategy):
    """One copy per object at its cost-weighted 1-median."""

    name = "single-median"

    def place(self, instance, config):
        return _per_object(instance, lambda o: best_single_node(instance, o))


@register_strategy
class FullReplicationStrategy(PlacementStrategy):
    """A copy of every object on every node."""

    name = "full-replication"

    def place(self, instance, config):
        return _per_object(instance, lambda o: full_replication(instance, o))


@register_strategy
class WriteBlindStrategy(PlacementStrategy):
    """Phase 1 only: the related facility-location solution as-is."""

    name = "write-blind"

    def place(self, instance, config):
        return _per_object(
            instance,
            lambda o: write_blind_placement(instance, o, fl_solver=config.fl_solver),
        )


@register_strategy
class GreedyAddStrategy(PlacementStrategy):
    """Greedy copy addition on the true objective."""

    name = "greedy-add"

    def place(self, instance, config):
        return _per_object(
            instance,
            lambda o: greedy_add_placement(instance, o, policy=config.cost_policy),
        )


@register_strategy
class LocalSearchStrategy(PlacementStrategy):
    """Add/drop/swap local search on the true objective (no guarantee)."""

    name = "local-search"

    def place(self, instance, config):
        return _per_object(
            instance,
            lambda o: local_search_placement(instance, o, policy=config.cost_policy),
        )


@register_strategy
class EpochReplanStrategy(PlacementStrategy):
    """One epoch of the replanner: ``krw`` copy sets + the migration bill.

    The placement equals ``krw``'s; ``extras`` records what
    :class:`~repro.simulate.replanner.EpochReplanner` would charge to
    reach it from the zero-knowledge start (every object one copy on the
    cheapest storage node): each new copy transfers from the nearest old
    one, dropping is free.  The config's ``replan_mode`` /
    ``replan_tolerance`` knobs are recorded as provenance -- a single
    static instance is one all-dirty epoch, so full and incremental
    re-placement coincide here (multi-epoch horizons go through
    :meth:`repro.api.Planner.replan`).
    """

    name = "epoch-replan"

    def place(self, instance, config):
        placement = PlacementEngine.from_config(instance, config).place()
        start = int(np.argmin(instance.storage_costs))
        from_start = instance.metric.row(start)
        migration = 0.0
        for copies in placement.copy_sets:
            gained = [v for v in copies if v != start]
            if gained:
                migration += float(from_start[np.asarray(gained, dtype=int)].sum())
        return placement, {
            "migration_cost": migration,
            "initial_node": start,
            "replan_mode": config.replan_mode,
            "replan_tolerance": config.replan_tolerance,
        }


@register_strategy
class DaemonStrategy(PlacementStrategy):
    """The serving daemon, driven offline on one static instance.

    Spins up a metric-only :class:`~repro.serve.PlacementDaemon`, feeds
    it the instance's demand as a single batch window, seals one epoch
    and reads the published generation back -- so the live subsystem is
    comparable against every batch strategy through the same
    ``plan(instance, config)`` protocol.  The placement equals ``krw``'s
    (one sealed epoch is one full solve); ``extras`` records the
    daemon's publish metadata and its migration bill from the
    zero-knowledge start, which matches ``epoch-replan``'s accounting.
    """

    name = "daemon"

    def place(self, instance, config):
        from .serve import PlacementDaemon

        daemon = PlacementDaemon(
            instance.storage_costs,
            instance.num_objects,
            metric=instance.metric,
            config=config,
        )
        try:
            daemon.ingest_counts(instance.read_freq, instance.write_freq)
            daemon.end_epoch(wait=True)
            state = daemon.snapshot()
            record = daemon.epoch_records[-1]
        finally:
            daemon.close()
        return state.as_placement(), {
            "generation": state.generation,
            "migration_cost": record["migration_cost"],
            "replaced_objects": record["replaced"],
            "serve_trigger": config.serve_trigger,
            "replan_mode": config.replan_mode,
            "replan_tolerance": config.replan_tolerance,
        }


@register_strategy
class OnlineStrategy(PlacementStrategy):
    """Final copy sets of the count-based online strategy.

    Replays the instance's own request log (integer frequencies expanded
    in canonical order, shuffled by ``config.seed``) through the exact
    decision rules of
    :class:`~repro.simulate.online.OnlineCountingStrategy`: reads count
    per node since the last write, a node buys a copy at
    ``config.replication_threshold``, a write invalidates down to the
    copy nearest the writer.  Decisions depend only on metric distances
    and event order -- not on hop-by-hop routing -- so the final copy
    sets equal the full simulation's.
    """

    name = "online"

    def place(self, instance, config):
        log = RequestLog.from_frequencies(
            instance.read_freq, instance.write_freq, seed=config.seed
        )
        metric = instance.metric
        start = int(np.argmin(instance.storage_costs))
        copies: list[set[int]] = [{start} for _ in range(instance.num_objects)]
        counts: list[dict[int, int]] = [{} for _ in range(instance.num_objects)]
        bought = 0
        for is_write, node, obj in log.iter_events():
            held = copies[obj]
            if not is_write:
                if node not in held:
                    count = counts[obj].get(node, 0) + 1
                    counts[obj][node] = count
                    if count >= config.replication_threshold:
                        held.add(node)
                        counts[obj][node] = 0
                        bought += 1
            else:
                # only writes need the serving copy: they invalidate down
                # to the copy nearest the writer
                serving = min(held, key=lambda c: (metric.d(node, c), c))
                copies[obj] = {serving}
                counts[obj].clear()
        return (
            Placement(tuple(tuple(sorted(s)) for s in copies)),
            {"events": len(log), "copies_bought": bought, "initial_node": start},
        )
