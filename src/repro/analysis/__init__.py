"""Analysis: experiment runners, ratio statistics, table formatting."""

from .experiments import (
    GRAPH_FAMILIES,
    ExperimentResult,
    run_e1_approx_ratio,
    run_e2_tree_dp,
    run_e3_restricted_gap,
    run_e4_proper_invariants,
    run_e5_phase_ablation,
    run_e6_baselines,
    run_e7_storage_sweep,
    run_e8_facility_choice,
    run_e9_load_model,
    run_e10_scalability,
    run_e10_backend_sweep,
    run_e11_simulation_agreement,
    run_e12_online_vs_static,
    run_e13_capacity_price,
    run_e14_catalog_throughput,
)
from .ratios import RatioStats, ratio, summarize_ratios
from .tables import format_series, format_table

__all__ = [
    "ExperimentResult",
    "GRAPH_FAMILIES",
    "run_e1_approx_ratio",
    "run_e2_tree_dp",
    "run_e3_restricted_gap",
    "run_e4_proper_invariants",
    "run_e5_phase_ablation",
    "run_e6_baselines",
    "run_e7_storage_sweep",
    "run_e8_facility_choice",
    "run_e9_load_model",
    "run_e10_scalability",
    "run_e10_backend_sweep",
    "run_e11_simulation_agreement",
    "run_e12_online_vs_static",
    "run_e13_capacity_price",
    "run_e14_catalog_throughput",
    "RatioStats",
    "ratio",
    "summarize_ratios",
    "format_table",
    "format_series",
]
