"""ASCII table rendering for the experiment harness.

The paper has no numeric tables of its own; the evaluation suite prints
its validation tables in a stable, diff-friendly format recorded in
EXPERIMENTS.md.  Values render with 4 significant digits; strings pass
through; ``None`` renders as ``-``.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], *, title: str | None = None
) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(
    x_name: str, y_names: Sequence[str], points: Sequence[Sequence[Any]], *, title: str | None = None
) -> str:
    """Render a figure-as-table: one x column, several y series."""
    return format_table([x_name, *y_names], points, title=title)
