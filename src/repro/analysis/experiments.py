"""Experiment runners E1--E13 (mapped to the paper in docs/EXPERIMENTS.md).

The paper proves theorems instead of reporting measurements, so the
reproduction's "tables and figures" are executable validations of each
theorem/lemma.  Every runner returns an :class:`ExperimentResult` whose
rendered table is what the corresponding benchmark prints and what
docs/EXPERIMENTS.md records.  Runners accept size knobs so the test suite
can exercise them at tiny scale while benchmarks run the full
configuration; results can be persisted as machine-readable JSON via
:meth:`ExperimentResult.save_json` (the ``BENCH_*.json`` artifacts).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Sequence

import networkx as nx
import numpy as np

from ..baselines.exhaustive import brute_force_object
from ..baselines.heuristics import best_single_node
from ..config import PlanConfig
from ..core.approx import approximate_object_placement, proper_placement_margins
from ..core.costs import CostBreakdown, object_cost, placement_cost
from ..core.instance import DataManagementInstance
from ..core.tree_dp import optimal_tree_placement
from ..facility import FL_SOLVERS, related_facility_problem, solve_ufl_lp
from ..graphs import generators
from ..graphs.backend import LazyMetric
from ..graphs.metric import Metric
from ..workloads.request_models import make_instance, uniform_storage_costs
from .ratios import ratio, summarize_ratios
from .tables import format_table

__all__ = [
    "ExperimentResult",
    "run_e1_approx_ratio",
    "run_e2_tree_dp",
    "run_e3_restricted_gap",
    "run_e4_proper_invariants",
    "run_e5_phase_ablation",
    "run_e6_baselines",
    "run_e7_storage_sweep",
    "run_e8_facility_choice",
    "run_e9_load_model",
    "run_e10_scalability",
    "run_e10_backend_sweep",
    "run_e11_simulation_agreement",
    "run_e12_online_vs_static",
    "run_e13_capacity_price",
    "run_e14_catalog_throughput",
    "run_e15_dynamic_replay",
    "run_e16_incremental_replan",
    "run_e17_scaling",
    "run_e18_sharded",
    "run_e19_daemon",
    "run_e20_costmodels",
    "GRAPH_FAMILIES",
]


@dataclass
class ExperimentResult:
    """A rendered-table experiment outcome plus machine-readable rows."""

    exp_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_json(self) -> dict:
        """Machine-readable form (plain python types, numpy coerced)."""
        from ..serialize import canonical_payload

        return canonical_payload(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "notes": self.notes,
            }
        )

    def save_json(self, path, *, generated_at: str | None = None) -> None:
        """Write the ``BENCH_*.json``-style artifact for this experiment.

        The bytes are deterministic -- sorted keys, canonical float
        ``repr``, no wall-clock reads -- so identical results produce
        identical artifacts the regression gate can diff.  A timestamp
        is recorded only when the *caller* injects one via
        ``generated_at`` (e.g. an ISO-8601 string); the writer itself
        never consults the clock.
        """
        from ..serialize import canonical_json_dumps

        payload = self.to_json()
        if generated_at is not None:
            payload["generated_at"] = str(generated_at)
        with open(path, "w") as fh:
            fh.write(canonical_json_dumps(payload) + "\n")


def _graph_family(name: str, n: int, seed: int) -> nx.Graph:
    if name == "tree":
        return generators.random_tree(n, seed=seed)
    if name == "er":
        return generators.erdos_renyi_graph(n, 0.35, seed=seed)
    if name == "geometric":
        return generators.random_geometric_graph(n, 0.45, seed=seed)
    if name == "grid":
        rows = max(2, int(np.floor(np.sqrt(n))))
        cols = max(2, int(np.ceil(n / rows)))
        return generators.grid_graph(rows, cols, seed=seed)
    if name == "ring":
        return generators.ring_graph(max(n, 3), seed=seed)
    if name == "transit_stub":
        stub = max((n - 2) // 4, 1)
        return generators.transit_stub_graph(2, 2, stub, seed=seed)
    raise ValueError(f"unknown graph family {name!r}")


GRAPH_FAMILIES = ("tree", "er", "geometric", "grid", "ring", "transit_stub")


def _instances(
    family: str,
    n: int,
    seeds: Sequence[int],
    *,
    write_fraction: float = 0.2,
    demand_model: str = "uniform",
    storage_price: float | None = None,
) -> list[DataManagementInstance]:
    out = []
    for seed in seeds:
        g = _graph_family(family, n, seed)
        metric = Metric.from_graph(g)
        out.append(
            make_instance(
                metric,
                seed=seed + 1000,
                num_objects=1,
                demand_model=demand_model,
                write_fraction=write_fraction,
                storage_price=storage_price,
            )
        )
    return out


# ----------------------------------------------------------------------
# E1: approximation ratio of the Section 2 algorithm vs exact optima
# ----------------------------------------------------------------------
def run_e1_approx_ratio(
    *,
    families: Sequence[str] = ("tree", "er", "geometric", "grid"),
    n: int = 10,
    seeds: Sequence[int] = tuple(range(8)),
    write_fraction: float = 0.25,
) -> ExperimentResult:
    """Theorem 7 check: KRW cost / exact optimum per graph family.

    Ratios are reported against both the restricted (MST-policy) optimum
    the analysis compares to and the true (Steiner-policy) optimum.
    """
    result = ExperimentResult(
        "E1",
        "approximation ratio of the combinatorial algorithm (Theorem 7)",
        ("family", "n", "runs", "vs restricted-opt (mean)", "(max)",
         "vs true-opt (mean)", "(max)"),
        notes="Proven bound is a large constant; observed ratios should sit near 1.",
    )
    for family in families:
        r_mst, r_true = [], []
        for inst in _instances(family, n, seeds, write_fraction=write_fraction):
            copies = approximate_object_placement(inst, 0)
            cost_mst = object_cost(inst, 0, copies, policy="mst").total
            cost_true = object_cost(inst, 0, copies, policy="steiner").total
            _, opt_mst = brute_force_object(inst, 0, policy="mst")
            _, opt_true = brute_force_object(inst, 0, policy="steiner")
            r_mst.append(ratio(cost_mst, opt_mst))
            r_true.append(ratio(cost_true, opt_true))
        s_mst, s_true = summarize_ratios(r_mst), summarize_ratios(r_true)
        result.rows.append(
            [family, n, s_mst.count, s_mst.mean, s_mst.max, s_true.mean, s_true.max]
        )
    return result


# ----------------------------------------------------------------------
# E2: tree DP optimality and runtime scaling (Theorem 13)
# ----------------------------------------------------------------------
def run_e2_tree_dp(
    *,
    check_sizes: Sequence[int] = (4, 6, 8, 10),
    timing_sizes: Sequence[int] = (50, 100, 200, 400),
    seeds: Sequence[int] = tuple(range(6)),
    write_fraction: float = 0.3,
) -> ExperimentResult:
    """Optimality vs brute force on small trees + runtime vs size/shape."""
    result = ExperimentResult(
        "E2",
        "optimal tree algorithm: exactness and scaling (Theorem 13)",
        ("phase", "shape", "n", "runs", "max ratio vs brute force", "mean time (ms)"),
    )
    for n in check_sizes:
        ratios = []
        times = []
        for seed in seeds:
            g = generators.random_tree(n, seed=seed)
            metric = Metric.from_graph(g)
            inst = make_instance(
                metric, seed=seed + 500, num_objects=1, write_fraction=write_fraction
            )
            t0 = time.perf_counter()
            placement, cost = optimal_tree_placement(
                g, inst.storage_costs, inst.read_freq, inst.write_freq
            )
            times.append(time.perf_counter() - t0)
            _, opt = brute_force_object(inst, 0, policy="steiner")
            ratios.append(ratio(cost, opt))
        result.rows.append(
            ["exactness", "random", n, len(seeds), max(ratios), 1e3 * float(np.mean(times))]
        )

    rng_seed = 97
    for shape, builder in (
        ("path", lambda n, s: generators.path_graph(n, seed=s)),
        ("random", lambda n, s: generators.random_tree(n, seed=s)),
        ("star", lambda n, s: generators.star_graph(n, seed=s)),
    ):
        for n in timing_sizes:
            g = builder(n, rng_seed)
            metric = Metric.from_graph(g)
            inst = make_instance(
                metric, seed=rng_seed + n, num_objects=1, write_fraction=write_fraction
            )
            t0 = time.perf_counter()
            optimal_tree_placement(g, inst.storage_costs, inst.read_freq, inst.write_freq)
            dt = time.perf_counter() - t0
            result.rows.append(["timing", shape, n, 1, None, 1e3 * dt])
    return result


# ----------------------------------------------------------------------
# E3: restricted-placement gap (Lemma 1)
# ----------------------------------------------------------------------
def run_e3_restricted_gap(
    *,
    families: Sequence[str] = ("tree", "er", "geometric"),
    n: int = 9,
    seeds: Sequence[int] = tuple(range(8)),
    write_fraction: float = 0.4,
) -> ExperimentResult:
    """Lemma 1 check: restricted optimum within 4x of the true optimum."""
    result = ExperimentResult(
        "E3",
        "restricted vs true optimum (Lemma 1: factor <= 4)",
        ("family", "n", "runs", "gap mean", "gap max", "bound holds"),
    )
    for family in families:
        gaps = []
        for inst in _instances(family, n, seeds, write_fraction=write_fraction):
            _, opt_true = brute_force_object(inst, 0, policy="steiner")
            _, opt_restricted = brute_force_object(
                inst, 0, policy="mst", require_restricted=True
            )
            gaps.append(ratio(opt_restricted, opt_true))
        stats = summarize_ratios(gaps)
        result.rows.append(
            [family, n, stats.count, stats.mean, stats.max, stats.max <= 4.0 + 1e-9]
        )
    return result


# ----------------------------------------------------------------------
# E4: proper-placement invariants (Lemma 8, Claims 6/10)
# ----------------------------------------------------------------------
def run_e4_proper_invariants(
    *,
    families: Sequence[str] = ("tree", "er", "geometric", "grid"),
    n: int = 16,
    seeds: Sequence[int] = tuple(range(10)),
    write_fraction: float = 0.3,
) -> ExperimentResult:
    """Lemma 8 margins: coverage (k1=29) and separation (k2=2) >= 0."""
    result = ExperimentResult(
        "E4",
        "proper placement invariants of the computed placements (Lemma 8)",
        ("family", "n", "runs", "min coverage margin", "min separation margin",
         "all proper"),
    )
    for family in families:
        cov, sep = [], []
        for inst in _instances(family, n, seeds, write_fraction=write_fraction):
            copies = approximate_object_placement(inst, 0)
            margins = proper_placement_margins(inst, 0, copies)
            cov.append(margins["coverage"])
            sep.append(margins["separation"])
        ok = min(cov) >= -1e-9 and min(sep) >= -1e-9
        result.rows.append([family, n, len(seeds), min(cov), min(sep), ok])
    return result


# ----------------------------------------------------------------------
# E5: phase ablation
# ----------------------------------------------------------------------
def run_e5_phase_ablation(
    *,
    family: str = "geometric",
    n: int = 12,
    seeds: Sequence[int] = tuple(range(8)),
    write_fractions: Sequence[float] = (0.0, 0.1, 0.3, 0.6),
) -> ExperimentResult:
    """Cost of dropping phase 2 and/or phase 3, relative to the optimum."""
    result = ExperimentResult(
        "E5",
        "phase ablation: mean cost / optimum (MST policy)",
        ("write fraction", "full algorithm", "no phase 2", "no phase 3",
         "phase 1 only"),
        notes="Phase 3 prunes redundant copies: matters as writes grow; "
        "phase 2 guards read outliers: matters for skewed storage prices.",
    )
    variants = {
        "full": dict(phase2=True, phase3=True),
        "no2": dict(phase2=False, phase3=True),
        "no3": dict(phase2=True, phase3=False),
        "fl": dict(phase2=False, phase3=False),
    }
    for wf in write_fractions:
        sums = {k: [] for k in variants}
        for inst in _instances(family, n, seeds, write_fraction=wf):
            _, opt = brute_force_object(inst, 0, policy="mst")
            for key, kw in variants.items():
                copies = approximate_object_placement(inst, 0, **kw)
                sums[key].append(
                    ratio(object_cost(inst, 0, copies, policy="mst").total, opt)
                )
        result.rows.append(
            [wf] + [float(np.mean(sums[k])) for k in ("full", "no2", "no3", "fl")]
        )
    return result


# ----------------------------------------------------------------------
# E6: baseline comparison across the read/write mix
# ----------------------------------------------------------------------
def run_e6_baselines(
    *,
    family: str = "transit_stub",
    n: int = 18,
    seeds: Sequence[int] = tuple(range(6)),
    write_fractions: Sequence[float] = (0.0, 0.05, 0.2, 0.5, 0.9),
) -> ExperimentResult:
    """Mean total cost (MST policy) per strategy as writes increase."""
    result = ExperimentResult(
        "E6",
        "strategy comparison across read/write mix (mean cost, MST policy)",
        ("write fraction", "KRW approx", "single median", "full replication",
         "write-blind FL", "greedy add", "local search"),
        notes="Expected shape: full replication wins only at write fraction 0; "
        "single median wins at write-heavy extremes; KRW tracks the best.",
    )
    # the baseline family lives in the strategy registry; E6 is just a
    # sweep over it (the table column order is the historical one).
    # Deferred import: the registry's strategies return PlanReports, so
    # repro.registry -> repro.api -> (on demand) repro.analysis.
    from ..registry import get_strategy

    strategies = ("krw", "single-median", "full-replication", "write-blind",
                  "greedy-add", "local-search")
    for wf in write_fractions:
        sums: dict[str, list[float]] = {k: [] for k in strategies}
        for inst in _instances(family, n, seeds, write_fraction=wf):
            for name in strategies:
                sums[name].append(get_strategy(name).plan(inst).cost.total)
        result.rows.append([wf] + [float(np.mean(sums[k])) for k in strategies])
    return result


# ----------------------------------------------------------------------
# E7: storage price sweep -> replication degree
# ----------------------------------------------------------------------
def run_e7_storage_sweep(
    *,
    family: str = "geometric",
    n: int = 20,
    seeds: Sequence[int] = tuple(range(6)),
    prices: Sequence[float] = (0.1, 0.5, 2.0, 8.0, 32.0),
    write_fraction: float = 0.1,
) -> ExperimentResult:
    """Copies per object and cost split as the storage price scales."""
    result = ExperimentResult(
        "E7",
        "storage price sweep: replication degree and cost split (KRW)",
        ("storage price", "mean copies", "storage cost", "read cost",
         "update cost"),
        notes="Replication degree should fall monotonically as storage "
        "gets dearer; read cost rises to compensate.",
    )
    for price in prices:
        degrees, stor, read, upd = [], [], [], []
        for inst in _instances(
            family, n, seeds, write_fraction=write_fraction, storage_price=price
        ):
            copies = approximate_object_placement(inst, 0)
            degrees.append(len(copies))
            cost = object_cost(inst, 0, copies, policy="mst")
            stor.append(cost.storage)
            read.append(cost.read)
            upd.append(cost.update)
        result.rows.append(
            [price, float(np.mean(degrees)), float(np.mean(stor)),
             float(np.mean(read)), float(np.mean(upd))]
        )
    return result


# ----------------------------------------------------------------------
# E8: facility-location phase-1 choices
# ----------------------------------------------------------------------
def run_e8_facility_choice(
    *,
    family: str = "geometric",
    n: int = 14,
    seeds: Sequence[int] = tuple(range(6)),
    write_fraction: float = 0.2,
) -> ExperimentResult:
    """Standalone UFL quality vs the LP bound, and end-to-end KRW cost, per
    phase-1 solver (Lemma 9 carries the UFL factor through)."""
    result = ExperimentResult(
        "E8",
        "phase-1 solver choice: UFL quality and end-to-end cost",
        ("fl solver", "UFL cost / LP bound (mean)", "(max)",
         "end-to-end cost / optimum (mean)", "(max)"),
    )
    per_solver: dict[str, tuple[list[float], list[float]]] = {
        name: ([], []) for name in FL_SOLVERS
    }
    for inst in _instances(family, n, seeds, write_fraction=write_fraction):
        fl = related_facility_problem(inst, 0)
        lp_bound, _, _ = solve_ufl_lp(fl)
        _, opt = brute_force_object(inst, 0, policy="mst")
        for name, solver in FL_SOLVERS.items():
            open_set = solver(fl)
            ufl_ratio = fl.cost(open_set) / max(lp_bound, 1e-12)
            copies = approximate_object_placement(inst, 0, fl_solver=name)
            end_ratio = ratio(object_cost(inst, 0, copies, policy="mst").total, opt)
            per_solver[name][0].append(ufl_ratio)
            per_solver[name][1].append(end_ratio)
    for name, (ufl_ratios, end_ratios) in per_solver.items():
        result.rows.append(
            [name, float(np.mean(ufl_ratios)), float(np.max(ufl_ratios)),
             float(np.mean(end_ratios)), float(np.max(end_ratios))]
        )
    return result


# ----------------------------------------------------------------------
# E9: total-communication-load specialization on trees
# ----------------------------------------------------------------------
def run_e9_load_model(
    *,
    sizes: Sequence[int] = (12, 20, 30),
    seeds: Sequence[int] = tuple(range(5)),
    write_fraction: float = 0.25,
) -> ExperimentResult:
    """Section 1's reduction: with cs = 0 and ct = 1/bandwidth the model
    minimizes total communication load; the tree DP is then load-optimal
    and must beat/match every other strategy."""
    result = ExperimentResult(
        "E9",
        "total-load model on trees: tree DP optimal, KRW within constant",
        ("n", "runs", "KRW / tree-DP (mean)", "(max)",
         "median / tree-DP (mean)", "DP never beaten"),
    )
    for n in sizes:
        r_krw, r_med = [], []
        never_beaten = True
        for seed in seeds:
            g = generators.random_tree(n, seed=seed)
            # bandwidths in [1, 4); fee = 1 / bandwidth (Section 1 reduction)
            rng = np.random.default_rng(seed + 77)
            for u, v in g.edges():
                g[u][v]["weight"] = 1.0 / rng.uniform(1.0, 4.0)
            metric = Metric.from_graph(g)
            inst = make_instance(
                metric, seed=seed + 31, num_objects=1,
                write_fraction=write_fraction, storage_price=0.0,
            )
            _, dp_cost = optimal_tree_placement(
                g, inst.storage_costs, inst.read_freq, inst.write_freq
            )
            krw = approximate_object_placement(inst, 0)
            krw_cost = object_cost(inst, 0, krw, policy="steiner_mst").total
            med_cost = object_cost(
                inst, 0, best_single_node(inst, 0), policy="steiner_mst"
            ).total
            r_krw.append(ratio(max(krw_cost, dp_cost), dp_cost))
            r_med.append(ratio(max(med_cost, dp_cost), dp_cost))
            if min(krw_cost, med_cost) < dp_cost - 1e-9:
                never_beaten = False
        result.rows.append(
            [n, len(seeds), float(np.mean(r_krw)), float(np.max(r_krw)),
             float(np.mean(r_med)), never_beaten]
        )
    return result


# ----------------------------------------------------------------------
# E10: scalability
# ----------------------------------------------------------------------
def run_e10_scalability(
    *,
    approx_sizes: Sequence[int] = (50, 100, 200, 400),
    tree_sizes: Sequence[int] = (100, 300, 1000),
    write_fraction: float = 0.2,
    seed: int = 3,
) -> ExperimentResult:
    """Wall-clock scaling of the two headline algorithms."""
    result = ExperimentResult(
        "E10",
        "scalability: runtime vs network size",
        ("algorithm", "topology", "n", "time (ms)", "copies"),
    )
    for n in approx_sizes:
        g = generators.random_geometric_graph(n, max(0.15, 2.5 / np.sqrt(n)), seed=seed)
        metric = Metric.from_graph(g)
        inst = make_instance(metric, seed=seed + n, num_objects=1,
                             write_fraction=write_fraction)
        t0 = time.perf_counter()
        copies = approximate_object_placement(inst, 0)
        dt = time.perf_counter() - t0
        result.rows.append(["KRW approx", "geometric", n, 1e3 * dt, len(copies)])
    for n in tree_sizes:
        g = generators.random_tree(n, seed=seed)
        metric = Metric.from_graph(g)
        inst = make_instance(metric, seed=seed + n, num_objects=1,
                             write_fraction=write_fraction)
        t0 = time.perf_counter()
        placement, _ = optimal_tree_placement(
            g, inst.storage_costs, inst.read_freq, inst.write_freq
        )
        dt = time.perf_counter() - t0
        result.rows.append(
            ["tree DP", "random tree", n, 1e3 * dt, len(placement.copies(0))]
        )
    return result


# ----------------------------------------------------------------------
# E10b: dense vs lazy distance backend at scale
# ----------------------------------------------------------------------
def run_e10_backend_sweep(
    *,
    sizes: Sequence[int] = (500, 1500, 4000),
    topology: str = "transit_stub",
    write_fraction: float = 0.2,
    seed: int = 7,
    dense_limit: int = 4000,
    storage_price: float | None = None,
) -> ExperimentResult:
    """Dense vs lazy backend: wall time, peak memory, and result parity.

    For each network size the full pipeline (metric construction +
    instance + Section 2 placement) runs once per backend under
    ``tracemalloc``; the dense backend is skipped when the *requested*
    size exceeds ``dense_limit`` (generators may land a few percent off
    the request, and the parity column must not silently disappear when
    they overshoot the limit).
    ``peak / dense-matrix`` is the headline column: the lazy backend must
    stay well below 1 for the scaling story to hold.

    ``topology`` is ``"transit_stub"`` or ``"power_law"``;
    ``storage_price=None`` scales the uniform storage price with the
    request volume (``~ n / 100``) so replication degrees stay
    size-independent instead of drifting towards full replication as the
    request volume grows with ``n``.
    """
    if topology == "transit_stub":
        build = lambda n: generators.sized_transit_stub_graph(n, seed=seed)
    elif topology == "power_law":
        build = lambda n: generators.power_law_graph(n, seed=seed)
    else:
        raise ValueError(f"unknown topology {topology!r}")

    result = ExperimentResult(
        "E10b",
        "distance backends at scale: dense closure vs lazy Dijkstra",
        ("topology", "n", "backend", "time (s)", "peak MB",
         "dense matrix MB", "peak / dense matrix", "copies", "matches dense"),
        notes="'matches dense' compares the placed copy sets; '--' when the "
        "dense run was skipped (n > dense_limit) or not comparable.",
    )
    for size in sizes:
        g = build(size)
        n = g.number_of_nodes()
        price = storage_price if storage_price is not None else max(1.0, n / 100.0)
        dense_bytes = 8.0 * n * n
        per_backend: dict[str, tuple[float, ...]] = {}
        backends = (["dense"] if size <= dense_limit else []) + ["lazy"]
        for backend in backends:
            tracemalloc.start()
            t0 = time.perf_counter()
            if backend == "dense":
                metric = Metric.from_graph(g)
            else:
                metric = LazyMetric.from_graph(g)
            inst = make_instance(
                metric, seed=seed + n, num_objects=1,
                write_fraction=write_fraction, storage_price=price,
            )
            copies = approximate_object_placement(inst, 0)
            elapsed = time.perf_counter() - t0
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            per_backend[backend] = (elapsed, peak, copies)
        for backend in backends:
            elapsed, peak, copies = per_backend[backend]
            if backend == "lazy" and "dense" in per_backend:
                matches = copies == per_backend["dense"][2]
            else:
                matches = "--"
            result.rows.append(
                [topology, n, backend, elapsed, peak / 1e6, dense_bytes / 1e6,
                 peak / dense_bytes, len(copies), matches]
            )
    return result


# ----------------------------------------------------------------------
# E11: executed bill vs closed-form cost model
# ----------------------------------------------------------------------
def run_e11_simulation_agreement(
    *,
    families: Sequence[str] = ("tree", "transit_stub", "geometric"),
    n: int = 14,
    seeds: Sequence[int] = tuple(range(5)),
    write_fraction: float = 0.25,
) -> "ExperimentResult":
    """Replay every instance's full request log through the event-level
    simulator and compare the accrued bill with the analytic cost; also
    report the per-link load statistics the commercial model hides."""
    from ..core.approx import approximate_placement
    from ..simulate import NetworkSimulator, request_log_from_instance

    result = ExperimentResult(
        "E11",
        "event-level simulation vs closed-form cost model",
        ("family", "n", "runs", "max |sim - model| / model", "mean messages",
         "mean max-link load share"),
        notes="The simulated bill must equal the analytic cost to float "
        "precision; load share = busiest link / total traffic.",
    )
    for family in families:
        errs, msgs, shares = [], [], []
        for seed in seeds:
            g = _graph_family(family, n, seed)
            metric = Metric.from_graph(g)
            inst = make_instance(
                metric, seed=seed + 400, num_objects=2,
                write_fraction=write_fraction,
            )
            placement = approximate_placement(inst)
            sim = NetworkSimulator(g, inst, update_policy="mst")
            # hop-by-hop on purpose: E11's claim is that *routing every
            # event* reproduces the closed form (and it needs link loads)
            report = sim.run(
                placement, request_log_from_instance(inst, seed=seed),
                track_edge_load=True,
            )
            from ..core.costs import placement_cost

            analytic = placement_cost(inst, placement, policy="mst").total
            errs.append(abs(report.total_cost - analytic) / max(analytic, 1e-12))
            msgs.append(report.messages)
            total = report.total_load()
            shares.append(report.max_edge_load() / total if total > 0 else 0.0)
        result.rows.append(
            [family, g.number_of_nodes(), len(seeds), float(np.max(errs)),
             float(np.mean(msgs)), float(np.mean(shares))]
        )
    return result


# ----------------------------------------------------------------------
# E12: online dynamic strategy vs clairvoyant static optimum
# ----------------------------------------------------------------------
def run_e12_online_vs_static(
    *,
    sizes: Sequence[int] = (10, 14),
    seeds: Sequence[int] = tuple(range(5)),
    write_fractions: Sequence[float] = (0.0, 0.1, 0.4),
    threshold: int = 3,
) -> "ExperimentResult":
    """Empirical competitive ratio of the count-based online strategy
    against the hindsight-optimal *static* placement (tree DP) on the same
    shuffled request stream.  Online can win (it adapts between phases)
    and lose (write thrashing); both regimes should appear."""
    from ..simulate import (
        NetworkSimulator,
        OnlineCountingStrategy,
        request_log_from_instance,
    )
    from ..core.placement import Placement

    result = ExperimentResult(
        "E12",
        "online count-based strategy vs static optimum (trees)",
        ("write fraction", "n", "runs", "online/static mean", "(max)", "(min)"),
        notes="Ratios below 1 are legal: an adaptive strategy can beat any "
        "single static placement in hindsight.",
    )
    for wf in write_fractions:
        for n in sizes:
            ratios = []
            for seed in seeds:
                g = generators.random_tree(n, seed=seed)
                metric = Metric.from_graph(g)
                inst = make_instance(
                    metric, seed=seed + 600, num_objects=1, write_fraction=wf
                )
                placement, _ = optimal_tree_placement(
                    g, inst.storage_costs, inst.read_freq, inst.write_freq
                )
                log = request_log_from_instance(inst, seed=seed + 1)
                sim = NetworkSimulator(g, inst, update_policy="mst")
                static_bill = sim.run(placement, log).total_cost
                online = OnlineCountingStrategy(
                    g, inst, replication_threshold=threshold
                )
                online_bill, _ = online.run(log)
                ratios.append(online_bill.total_cost / max(static_bill, 1e-12))
            result.rows.append(
                [wf, n, len(seeds), float(np.mean(ratios)), float(np.max(ratios)),
                 float(np.min(ratios))]
            )
    return result


# ----------------------------------------------------------------------
# E13: the price of memory capacity constraints
# ----------------------------------------------------------------------
def run_e13_capacity_price(
    *,
    family: str = "geometric",
    n: int = 14,
    num_objects: int = 6,
    seeds: Sequence[int] = tuple(range(5)),
    caps: Sequence[int] = (6, 3, 2, 1),
    write_fraction: float = 0.15,
) -> "ExperimentResult":
    """Capacitated memories (Baev--Rajaraman / Meyer auf der Heide et al.):
    repair the uncapacitated KRW placement down to ``cap`` objects per node
    and measure the relative cost increase and the copy migration volume."""
    from ..core.approx import approximate_placement
    from ..core.capacity import capacity_violations, enforce_capacities
    from ..core.costs import placement_cost

    result = ExperimentResult(
        "E13",
        "price of memory capacity: cost vs per-node object limit",
        ("cap per node", "runs", "cost / uncapacitated (mean)", "(max)",
         "mean copies moved or dropped", "all feasible"),
        notes="cap = num_objects is the uncapacitated baseline; the "
        "problem couples objects only through capacities.",
    )
    for cap in caps:
        ratios, moved_all, feasible = [], [], True
        for seed in seeds:
            g = _graph_family(family, n, seed)
            metric = Metric.from_graph(g)
            inst = make_instance(
                metric, seed=seed + 800, num_objects=num_objects,
                write_fraction=write_fraction,
            )
            base = approximate_placement(inst)
            base_cost = placement_cost(inst, base, policy="mst").total
            cap_vec = np.full(inst.num_nodes, cap, dtype=int)
            repaired = enforce_capacities(inst, base, cap_vec)
            if capacity_violations(repaired, cap_vec):
                feasible = False
            ratios.append(
                placement_cost(inst, repaired, policy="mst").total
                / max(base_cost, 1e-12)
            )
            before = {(o, v) for o in range(num_objects) for v in base.copies(o)}
            after = {(o, v) for o in range(num_objects) for v in repaired.copies(o)}
            moved_all.append(len(before - after))
        result.rows.append(
            [cap, len(seeds), float(np.mean(ratios)), float(np.max(ratios)),
             float(np.mean(moved_all)), feasible]
        )
    return result


# ----------------------------------------------------------------------
# E14: catalog throughput of the batched placement engine
# ----------------------------------------------------------------------
def run_e14_catalog_throughput(
    *,
    num_objects: int = 2000,
    n: int = 1100,
    seed: int = 23,
    write_fraction: float = 0.05,
    storage_price: float | None = None,
    total_requests: float | None = None,
    chunk_size: int = 512,
    jobs: Sequence[int] = (2,),
    compare_loop: bool = True,
    fl_solver: str = "local_search",
) -> "ExperimentResult":
    """Catalog placement throughput: per-object loop vs the batched engine.

    Builds one WWW-style Zipf catalog (columnar generator, request budget
    ``total_requests``) on a sized transit-stub network and places it with

    * the paper-literal per-object loop (``approximate_placement``),
    * the batched engine, serial (``jobs = 1``), and
    * the engine with each requested worker count,

    timing each full pass and asserting copy-set parity between every
    mode.  ``storage_price=None`` scales a uniform price to half the mean
    per-object request volume, which lands replication around ~5 copies
    per object -- the regime a content provider actually buys (phase-1
    work grows with the copy count, so wildly over-replicated catalogs
    measure the UFL solver, not the catalog machinery).  The default
    ``n`` sits just above :data:`repro.facility.FACILITY_AUTO_THRESHOLD`
    so the candidate-capped phase 1 -- the documented catalog-scale
    configuration -- is what both paths run.  ``compare_loop=False``
    skips the (slow) loop baseline; speedups then report ``--``.
    """
    from ..engine import PlacementEngine
    from ..workloads.request_models import make_instance as _mk

    g = generators.sized_transit_stub_graph(n, seed=seed)
    metric = Metric.from_graph(g)
    n_real = metric.n
    if total_requests is None:
        total_requests = 100.0 * num_objects
    if storage_price is None:
        storage_price = max(2.0, 0.5 * total_requests / num_objects)
    inst = _mk(
        metric, seed=seed + 1, num_objects=num_objects, demand_model="catalog",
        write_fraction=write_fraction, storage_price=storage_price,
        total_requests=total_requests,
    )

    result = ExperimentResult(
        "E14",
        "catalog throughput: per-object loop vs batched engine",
        ("mode", "objects", "n", "time (s)", "objects/s",
         "speedup vs loop", "total copies", "matches loop"),
        notes="All modes must place identical copy sets; 'matches loop' "
        "compares against the per-object loop ('--' when the loop was "
        "skipped, in which case engine modes are compared to engine serial).",
    )

    timings: dict[str, tuple[float, Any]] = {}

    def run_mode(label: str, fn) -> None:
        t0 = time.perf_counter()
        placement = fn()
        timings[label] = (time.perf_counter() - t0, placement)

    if compare_loop:
        from ..core.approx import approximate_placement as _loop

        run_mode("per-object loop", lambda: _loop(inst, fl_solver=fl_solver))
    run_mode(
        "engine serial",
        lambda: PlacementEngine(
            inst, fl_solver=fl_solver, chunk_size=chunk_size, jobs=1
        ).place(),
    )
    for j in jobs:
        if j <= 1:
            continue
        run_mode(
            f"engine jobs={j}",
            lambda j=j: PlacementEngine(
                inst, fl_solver=fl_solver, chunk_size=chunk_size, jobs=j
            ).place(),
        )

    reference = ("per-object loop" if compare_loop else "engine serial")
    ref_time, ref_placement = timings[reference]
    for label, (elapsed, placement) in timings.items():
        matches: Any = placement.copy_sets == ref_placement.copy_sets
        if label == reference and not compare_loop:
            matches = "--"
        speedup: Any = ref_time / elapsed if compare_loop else "--"
        result.rows.append(
            [label, num_objects, n_real, elapsed, num_objects / elapsed,
             speedup, placement.total_copies(), matches]
        )
    return result


# ----------------------------------------------------------------------
# E15: dynamic workloads -- vectorized replay + epoch re-placement
# ----------------------------------------------------------------------
def run_e15_dynamic_replay(
    *,
    n: int = 1000,
    num_objects: int = 60,
    epochs: int = 5,
    requests_per_epoch: int = 2500,
    scenario: str = "drift",
    drift: float = 0.2,
    write_fraction: float = 0.1,
    threshold: int = 3,
    storage_price: float | None = None,
    seed: int = 29,
    fl_solver: str = "local_search",
    chunk_size: int = 512,
    jobs: int = 1,
    compare_loop: bool = True,
    replan_mode: str = "full",
    replan_tolerance: float = 0.0,
    redraw: str | None = None,
) -> "ExperimentResult":
    """Dynamic layer at scale: replay throughput + strategy comparison.

    Builds an epoch-structured workload (``scenario="drift"``: Zipf
    popularity churn; ``"flash"``: a one-epoch flash crowd) on a sized
    transit-stub network, then reports two sections:

    ``replay``
        The clairvoyant-static placement's full log replayed through the
        vectorized fast path and (``compare_loop=True``) the per-event
        hop-by-hop loop; the two bills must agree to float precision and
        message counts exactly, and the speedup column is the headline
        (``BENCH_e15_dynamic.json`` records >= 10x at 1k nodes / 10k+
        events).

    ``strategy``
        Total cost of (a) *clairvoyant-static*: one placement optimized
        for the summed horizon, billed per epoch; (b) *epoch-replan*:
        :class:`~repro.simulate.replanner.EpochReplanner`, re-solving
        each epoch and paying migration transfers from the nearest old
        copies; (c) *online-counting*: the count-based dynamic strategy
        over the same stream.  All three pay storage per epoch-or-
        materialization and the same per-link fees; 'vs static' is the
        ratio to (a).

    ``storage_price=None`` scales a uniform price to half the mean
    per-object epoch volume (the E14 regime: moderate replication).
    ``replan_mode``/``replan_tolerance`` configure the epoch-replan
    strategy (``"incremental"`` re-places only drifted objects per
    epoch; see Experiment E16 for the dedicated full-vs-incremental
    comparison).  ``redraw=None`` picks the workload's resampling mode
    to match: ``"changed"`` (only churned objects' rows differ between
    epochs) under incremental replanning -- full multinomial resampling
    would mark every object dirty at tolerance 0 and the incremental
    mode could never skip anything -- and the historical ``"all"``
    otherwise; pass an explicit mode to override.
    """
    from ..engine import PlacementEngine
    from ..simulate import EpochReplanner, NetworkSimulator, OnlineCountingStrategy
    from ..simulate.paths import PathCache
    from ..workloads.dynamic import drifting_zipf_catalog, flash_crowd
    from ..workloads.request_models import uniform_storage_costs

    g = generators.sized_transit_stub_graph(n, seed=seed)
    n_real = g.number_of_nodes()
    metric = (
        Metric.from_graph(g) if n_real <= 4096 else LazyMetric.from_graph(g)
    )
    if storage_price is None:
        storage_price = max(2.0, 0.5 * requests_per_epoch / num_objects)
    cs = uniform_storage_costs(n_real, storage_price)

    if redraw is None:
        redraw = "changed" if replan_mode == "incremental" else "all"
    if scenario == "drift":
        workload = drifting_zipf_catalog(
            n_real, num_objects, epochs=epochs, seed=seed + 1, drift=drift,
            requests_per_epoch=requests_per_epoch,
            write_fraction=write_fraction, redraw=redraw,
        )
    elif scenario == "flash":
        workload = flash_crowd(
            n_real, num_objects, epochs=epochs, seed=seed + 1,
            requests_per_epoch=requests_per_epoch,
            write_fraction=write_fraction, redraw=redraw,
        )
    else:
        raise ValueError(f"unknown scenario {scenario!r}; use 'drift' or 'flash'")

    result = ExperimentResult(
        "E15",
        f"dynamic layer: vectorized replay + epoch re-placement ({workload.name})",
        ("section", "label", "events", "time (s)", "speedup", "total cost",
         "vs static", "agrees"),
        notes="replay: one static placement's full log, vectorized vs "
        "hop-by-hop ('agrees' = bills within 1e-9, messages exactly equal). "
        "strategy: storage billed per epoch (online: per materialization); "
        "epoch-replan pays migration transfers from the nearest old copy.",
    )

    plan_config = PlanConfig(
        fl_solver=fl_solver, chunk_size=chunk_size, jobs=jobs,
        replan_mode=replan_mode, replan_tolerance=replan_tolerance,
    )
    shared_paths = PathCache(g)
    log_seed = seed + 2
    full_log = workload.full_log(seed=log_seed)
    events = len(full_log)

    # -- replay section: vectorized fast path vs per-event loop ---------
    aggregate = workload.aggregate_instance(metric, cs)
    t0 = time.perf_counter()
    static_placement = PlacementEngine.from_config(aggregate, plan_config).place()
    t_place = time.perf_counter() - t0

    sim_agg = NetworkSimulator(g, aggregate, path_cache=shared_paths)
    t0 = time.perf_counter()
    fast = sim_agg.run(static_placement, full_log)
    t_fast = time.perf_counter() - t0
    if compare_loop:
        t0 = time.perf_counter()
        slow = sim_agg.run(static_placement, full_log, track_edge_load=True)
        t_slow = time.perf_counter() - t0
        agrees = (
            abs(fast.total_cost - slow.total_cost)
            <= 1e-9 * max(abs(slow.total_cost), 1e-12)
            and fast.messages == slow.messages
        )
        result.rows.append(
            ["replay", "hop-by-hop", events, t_slow, 1.0, slow.total_cost,
             "--", "--"]
        )
        result.rows.append(
            ["replay", "vectorized", events, t_fast, t_slow / t_fast,
             fast.total_cost, "--", agrees]
        )
    else:
        result.rows.append(
            ["replay", "vectorized", events, t_fast, "--", fast.total_cost,
             "--", "--"]
        )

    # -- strategy section ----------------------------------------------
    t0 = time.perf_counter()
    static_total = 0.0
    for e in range(epochs):
        inst_e = workload.epoch_instance(metric, cs, e)
        sim_e = NetworkSimulator(g, inst_e, path_cache=shared_paths)
        static_total += sim_e.run(
            static_placement, workload.epoch_log(e, seed=log_seed + e)
        ).total_cost
    t_static = time.perf_counter() - t0 + t_place

    t0 = time.perf_counter()
    replan = EpochReplanner(g, metric, cs, config=plan_config).run(
        workload, log_seed=log_seed
    )
    t_replan = time.perf_counter() - t0

    t0 = time.perf_counter()
    online = OnlineCountingStrategy(
        g, aggregate, replication_threshold=threshold, path_cache=shared_paths
    )
    online_report, _ = online.run(full_log)
    t_online = time.perf_counter() - t0

    for label, elapsed, total in (
        ("clairvoyant-static", t_static, static_total),
        ("epoch-replan", t_replan, replan.total_cost),
        ("online-counting", t_online, online_report.total_cost),
    ):
        result.rows.append(
            ["strategy", label, events, elapsed, "--", total,
             total / max(static_total, 1e-12), "--"]
        )
    result.rows.append(
        ["strategy", "epoch-replan migration share", events, "--", "--",
         replan.migration_cost,
         replan.migration_cost / max(replan.total_cost, 1e-12), "--"]
    )
    return result


# ----------------------------------------------------------------------
# E16: incremental epoch re-placement -- solve only the drifted objects
# ----------------------------------------------------------------------
def run_e16_incremental_replan(
    *,
    n: int = 200,
    num_objects: int = 48,
    epochs: int = 5,
    requests_per_epoch: int | None = None,
    drift: float = 0.15,
    write_fraction: float = 0.05,
    tolerance: float = 0.05,
    storage_price: float | None = None,
    seed: int = 33,
    fl_solver: str = "local_search",
    chunk_size: int = 512,
    jobs: int = 1,
    backends: Sequence[str] = ("dense", "lazy"),
    scenarios: Sequence[str] = ("drift", "flash"),
) -> "ExperimentResult":
    """Full vs incremental epoch re-placement on sparse-drift workloads.

    Theorem 7 places objects independently, so an epoch transition only
    invalidates the placements of objects whose demand changed.  This
    experiment builds the two churn shapes in their sparse-drift form
    (``redraw="changed"``: only the churned objects' frequency rows
    differ between epochs) and replans each horizon twice per backend:

    * ``full`` -- :class:`~repro.simulate.replanner.EpochReplanner`
      re-solving the whole catalog every epoch (the E15 behavior), and
    * ``incremental`` at ``tolerance=0`` -- re-solving only
      :meth:`~repro.workloads.dynamic.DynamicWorkload.drifted_objects`,
      which must reproduce the full re-solve's placements, serving
      bills and migration bills **bit-identically** ("identical"
      column; total costs within 1e-9 relative), plus
    * ``incremental`` at ``tolerance > 0`` -- the documented
      speed-for-bounded-billing-error trade, whose cost delta the
      "vs full" column records.

    The headline column is the per-epoch solve speedup: mean wall time
    of one epoch's re-placement (placement + batched migration diff)
    over epochs after the first (epoch 0 is a full solve in every mode),
    full over incremental.  The committed artifact
    ``benchmarks/BENCH_e16_incremental.json`` records >= 5x at
    ``drift=0.15`` / ``tolerance=0`` on both backends.

    ``storage_price=None`` scales a uniform price to half the mean
    per-object epoch volume (the E14/E15 regime: moderate replication).
    """
    from ..simulate import EpochReplanner
    from ..workloads.dynamic import drifting_zipf_catalog, flash_crowd
    from ..workloads.request_models import uniform_storage_costs

    if epochs < 2:
        raise ValueError("epochs must be >= 2 (epoch 0 is always a full solve)")
    for b in backends:
        if b not in ("dense", "lazy"):
            raise ValueError(f"unknown backend {b!r}; use 'dense' and/or 'lazy'")
    for s in scenarios:
        if s not in ("drift", "flash"):
            raise ValueError(f"unknown scenario {s!r}; use 'drift' and/or 'flash'")

    g = generators.sized_transit_stub_graph(n, seed=seed)
    n_real = g.number_of_nodes()
    if requests_per_epoch is None:
        requests_per_epoch = 100 * num_objects
    if storage_price is None:
        storage_price = max(2.0, 0.5 * requests_per_epoch / num_objects)
    cs = uniform_storage_costs(n_real, storage_price)

    workloads = {}
    if "drift" in scenarios:
        workloads["drift"] = drifting_zipf_catalog(
            n_real, num_objects, epochs=epochs, seed=seed + 1, drift=drift,
            requests_per_epoch=requests_per_epoch,
            write_fraction=write_fraction, redraw="changed",
        )
    if "flash" in scenarios:
        workloads["flash"] = flash_crowd(
            n_real, num_objects, epochs=epochs, seed=seed + 2,
            requests_per_epoch=requests_per_epoch,
            write_fraction=write_fraction, redraw="changed",
        )

    result = ExperimentResult(
        "E16",
        f"incremental epoch re-placement (drift={drift}, m={num_objects})",
        ("workload", "backend", "mode", "tolerance", "replaced/epoch",
         "epoch solve (s)", "speedup", "total cost", "vs full", "identical"),
        notes="'epoch solve (s)' is the mean per-epoch re-placement time "
        "(placement + batched migration diff) over epochs after the first; "
        "'speedup' is full/incremental on that quantity.  'identical' "
        "checks bit-equal copy sets every epoch and total costs within "
        "1e-9 relative -- required at tolerance 0, best-effort above it.  "
        "Workloads use redraw='changed' (only churned objects' rows "
        "differ between epochs).",
    )

    modes = [("full", None), ("incremental", 0.0)]
    if tolerance > 0:
        modes.append(("incremental", float(tolerance)))

    metrics = {
        backend: (
            Metric.from_graph(g) if backend == "dense"
            else LazyMetric.from_graph(g)
        )
        for backend in dict.fromkeys(backends)
    }
    for wl_name, workload in workloads.items():
        for backend in backends:
            metric = metrics[backend]
            runs = {}
            for mode, tol in modes:
                config = PlanConfig(
                    fl_solver=fl_solver, chunk_size=chunk_size, jobs=jobs,
                    replan_mode=mode, replan_tolerance=tol or 0.0,
                )
                replanner = EpochReplanner(g, metric, cs, config=config)
                runs[(mode, tol)] = replanner.run(workload, log_seed=seed + 3)

            full = runs[("full", None)]
            full_solve = sum(e.solve_time_s for e in full.epochs[1:])
            for (mode, tol), res in runs.items():
                solve = sum(e.solve_time_s for e in res.epochs[1:])
                per_epoch = solve / (epochs - 1)
                replaced = sum(e.replaced_objects for e in res.epochs[1:]) / (
                    epochs - 1
                )
                identical = all(
                    f.placement.copy_sets == r.placement.copy_sets
                    for f, r in zip(full.epochs, res.epochs)
                ) and abs(res.total_cost - full.total_cost) <= 1e-9 * max(
                    abs(full.total_cost), 1e-12
                )
                result.rows.append([
                    workload.name, backend, mode,
                    "--" if tol is None else tol,
                    replaced, per_epoch,
                    full_solve / solve if solve > 0 else float("inf"),
                    res.total_cost,
                    res.total_cost / max(full.total_cost, 1e-12),
                    identical,
                ])
    return result


# ----------------------------------------------------------------------
# E17: worker transport + kernel dispatch scaling
# ----------------------------------------------------------------------
def run_e17_scaling(
    *,
    num_objects: int = 1500,
    n: int = 1100,
    seed: int = 37,
    write_fraction: float = 0.05,
    storage_price: float | None = None,
    total_requests: float | None = None,
    chunk_size: int = 512,
    jobs: Sequence[int] = (2,),
    micro_rows: int = 256,
    micro_repeats: int = 3,
    kernels: str = "auto",
    fl_solver: str = "local_search",
) -> "ExperimentResult":
    """Zero-copy worker transport and compiled-kernel dispatch, measured.

    Two sections over one E14-style WWW catalog on a sized transit-stub
    network (dense backend):

    ``placement``
        The batched engine serial, then with each requested worker count
        twice -- ``shared_memory=False`` (workers unpickle the whole
        instance) and ``shared_memory=True`` (workers attach read-only
        views of one published :class:`~repro.shm.SharedInstance`).  The
        'payload KB' column records what each worker actually receives:
        the pickled instance vs the pickled
        :class:`~repro.shm.SharedInstanceHandle` -- the O(n^2) -> O(1)
        transport claim in one number.  Every mode must reproduce the
        serial copy sets exactly.

    ``kernel``
        Each :data:`repro.kernels.KERNEL_NAMES` hot loop micro-benched
        on real instance data (sorted radii state, phase-2/3 sweep
        inputs, row-block reductions): the dispatch-active
        implementation under the ``kernels`` mode vs the numpy
        reference, with 'matches' asserting **bit-identical** outputs
        (exact array equality, mutated buffers included).  When the
        active implementation *is* the reference (numba absent), the
        speedup column reports ``--``.

    On single-CPU hosts ``jobs > 1`` measures pool + transport overhead
    rather than scaling -- the committed artifact's notes record the
    measuring host's CPU count and numba availability for exactly that
    reason.  ``storage_price=None`` follows the E14 sizing (moderate
    replication).
    """
    import os
    import pickle

    from ..engine import PlacementEngine
    from ..kernels import (
        KERNEL_NAMES,
        active_impl,
        dispatch,
        kernel_mode,
        numba_available,
    )
    from ..shm import publish_instance, shm_available
    from ..workloads.request_models import make_instance as _mk

    g = generators.sized_transit_stub_graph(n, seed=seed)
    metric = Metric.from_graph(g)
    n_real = metric.n
    if total_requests is None:
        total_requests = 100.0 * num_objects
    if storage_price is None:
        storage_price = max(2.0, 0.5 * total_requests / num_objects)
    inst = _mk(
        metric, seed=seed + 1, num_objects=num_objects, demand_model="catalog",
        write_fraction=write_fraction, storage_price=storage_price,
        total_requests=total_requests,
    )

    result = ExperimentResult(
        "E17",
        "worker transport (shm vs pickle) + kernel dispatch scaling",
        ("section", "label", "impl", "time (s)", "speedup", "payload KB",
         "matches"),
        notes=(
            "placement: 'payload KB' is what each worker receives (pickled "
            "instance vs pickled shm handle); 'matches' compares copy sets "
            "to engine serial.  kernel: dispatch-active impl vs the numpy "
            "reference on real instance data; 'matches' is exact array "
            "equality ('--' speedup when the active impl is the reference). "
            f"Measured with os.cpu_count()={os.cpu_count()}, "
            f"numba available: {numba_available()}, "
            f"shared memory available: {shm_available()}; on single-CPU "
            "hosts jobs>1 measures pool+transport overhead, not scaling."
        ),
    )

    # ---------------- placement section ----------------
    def place(j: int, shm: bool):
        engine = PlacementEngine(
            inst, fl_solver=fl_solver, chunk_size=chunk_size, jobs=j,
            shared_memory=shm, kernels=kernels,
        )
        t0 = time.perf_counter()
        placement = engine.place()
        return time.perf_counter() - t0, placement, engine

    serial_time, serial_placement, _ = place(1, False)
    result.rows.append(
        ["placement", "serial", "in-process", serial_time, "--", "--", "--"]
    )

    inst_kb = len(pickle.dumps(inst)) / 1024.0
    shared = publish_instance(inst)
    if shared is not None:
        handle_kb: Any = len(pickle.dumps(shared.handle)) / 1024.0
        shared.close()
    else:
        handle_kb = "--"

    for j in jobs:
        if j <= 1:
            continue
        for shm in (False, True):
            elapsed, placement, engine = place(j, shm)
            used = bool(engine.used_shared_memory)
            impl = "shm" if used else "pickle"
            payload = handle_kb if used else inst_kb
            result.rows.append([
                "placement", f"jobs={j} {'shm' if shm else 'pickle'}", impl,
                elapsed, serial_time / elapsed, payload,
                placement.copy_sets == serial_placement.copy_sets,
            ])

    # ---------------- kernel section ----------------
    D = metric.dist
    b = min(micro_rows, n_real)
    w = (inst.read_freq[0] + inst.write_freq[0]).astype(float)
    total_w = float(w.sum())
    SD = np.empty((b, n_real))
    SW = np.empty((b, n_real))
    for r in range(b):
        order = np.argsort(D[r], kind="stable")
        SD[r] = D[r][order]
        SW[r] = w[order]
    CW, CWD = dispatch("radii_cums", "numpy")(SD.copy(), SW.copy())
    z = np.full(b, 0.5 * total_w)
    costs = np.ascontiguousarray(inst.storage_costs[:b], dtype=float)

    rs2 = 0.2 * D.mean(axis=1)
    h = min(48, n_real)
    rows3 = np.ascontiguousarray(D[:h, :h])
    live3 = np.arange(h, dtype=np.int64)
    ub3 = 0.25 * rows3.mean(axis=0)
    k_sub = min(8, n_real)
    sub = np.ascontiguousarray(D[:k_sub])
    idx = np.arange(k_sub, dtype=np.int64)

    # (make_args, extract): fresh buffers per call for the in-place
    # kernels; extract folds mutated inputs into the parity comparison.
    micro = {
        "radii_cums": (lambda: (SD.copy(), SW.copy()), lambda a, ret: ret),
        "radii_prefix": (
            lambda: (SD, CW, CWD, z.copy(), total_w), lambda a, ret: (ret,)
        ),
        "radii_storage": (
            lambda: (SD, CW, CWD, costs, total_w), lambda a, ret: ret
        ),
        "phase2_sweep": (
            lambda: (D[0].copy(), rs2, D), lambda a, ret: (ret, a[0])
        ),
        "phase3_sweep": (
            lambda: (rows3, live3, ub3, np.ones(h, dtype=bool)),
            lambda a, ret: (a[3],),
        ),
        "nearest_reduce": (lambda: (sub, idx), lambda a, ret: ret),
        "dist_reduce": (lambda: (sub,), lambda a, ret: (ret,)),
    }

    def bench(fn, make_args, extract):
        fn(*make_args())  # warm-up: JIT compile / cache touch, untimed
        best, out = float("inf"), None
        for _ in range(max(1, micro_repeats)):
            args = make_args()
            t0 = time.perf_counter()
            ret = fn(*args)
            dt = time.perf_counter() - t0
            if dt < best:
                best, out = dt, extract(args, ret)
        return best, out

    with kernel_mode(kernels):
        for name in KERNEL_NAMES:
            make_args, extract = micro[name]
            t_ref, out_ref = bench(dispatch(name, "numpy"), make_args, extract)
            impl = active_impl(name)
            if impl == "numpy":
                t_act, out_act, speedup = t_ref, out_ref, "--"
            else:
                t_act, out_act = bench(dispatch(name), make_args, extract)
                speedup = t_ref / t_act
            matches = all(
                np.array_equal(x, y) for x, y in zip(out_ref, out_act)
            )
            result.rows.append(
                ["kernel", name, impl, t_act, speedup, "--", matches]
            )
    return result


def run_e18_sharded(
    *,
    sizes: Sequence[int] = (1100, 2400, 5200),
    sharded_only_sizes: Sequence[int] = (10800,),
    num_objects: int = 32,
    num_shards: int = 8,
    portals_per_shard: int = 4,
    seed: int = 43,
    write_fraction: float = 0.1,
    jobs: int = 1,
    fl_solver: str = "local_search",
    admissibility_sample: int = 48,
) -> "ExperimentResult":
    """Hierarchical sharded placement vs the global solve, measured.

    For each size in ``sizes`` a transit-stub catalog instance is solved
    three ways on the lazy backend (and, at the smallest size, on the
    dense backend too, exercising the metric k-center partitioner):

    ``global``
        The whole-network :class:`~repro.engine.PlacementEngine` solve --
        the cost baseline.
    ``sharded``
        :func:`repro.graphs.partition_instance` under the experiment's
        ``num_shards`` / ``portals_per_shard``, then
        :meth:`~repro.engine.PlacementEngine.place_sharded` (timing
        includes the partitioning).  'vs global' is the total-cost ratio
        -- the measured approximation loss of solving against portal
        summaries; 'admissible' samples portal-routed rows against true
        distances and asserts routing never undercuts the metric.
    ``sharded k=1``
        The degenerate single-shard path; 'identical' asserts bit-equal
        copy sets against the global solve, and its cost ratio must be
        exactly 1.

    ``sharded_only_sizes`` extends the sweep past where the global solve
    is worth waiting for: only the sharded wall clock and admissibility
    are recorded ('vs global' is ``--``).  Cost ratios and parity bits
    are environment-independent; times are provenance only.
    """
    from ..engine import PlacementEngine
    from ..graphs.backend import PortalMetric
    from ..graphs.partition import Partition, partition_instance
    from ..core.costs import placement_cost

    def admissible(metric, partition) -> bool:
        rng = np.random.default_rng(seed + 5)
        k = min(admissibility_sample, partition.n)
        sample = np.sort(rng.choice(partition.n, size=k, replace=False))
        routed = np.asarray(PortalMetric(metric, partition).rows(sample))
        true = np.asarray(metric.rows(sample), dtype=float)
        return bool(float((routed - true).min()) >= -1e-9)

    def build(n_target: int, backend: str):
        g = generators.sized_transit_stub_graph(n_target, seed=seed)
        metric = (
            Metric.from_graph(g) if backend == "dense"
            else LazyMetric.from_graph(g)
        )
        total = 100.0 * num_objects
        return make_instance(
            metric, seed=seed + 1, num_objects=num_objects,
            demand_model="catalog", write_fraction=write_fraction,
            storage_price=max(2.0, 0.5 * total / num_objects),
            total_requests=total,
        )

    result = ExperimentResult(
        "E18",
        "hierarchical sharded placement: approximation loss + wall clock",
        ("n", "backend", "mode", "shards", "portals", "time (s)",
         "total cost", "vs global", "identical", "admissible"),
        notes=(
            "'vs global' is total sharded cost / total global cost under "
            "the mst policy (the measured loss of solving each object on "
            "its demand shards against portal summaries); 'identical' "
            "asserts the num_shards=1 degenerate path reproduces the "
            "global copy sets bit-for-bit; 'admissible' samples "
            f"{admissibility_sample} portal-routed rows and asserts they "
            "never undercut true distances.  Sizes beyond the global "
            "solve record sharded wall clock only ('vs global' is --). "
            "sharded timings include the partitioning itself."
        ),
    )

    def engine_for(inst):
        return PlacementEngine(inst, fl_solver=fl_solver, jobs=jobs)

    for i, n_target in enumerate(sorted(int(s) for s in sizes)):
        backends = ("dense", "lazy") if i == 0 else ("lazy",)
        for backend in backends:
            inst = build(n_target, backend)
            n_real = inst.num_nodes
            engine = engine_for(inst)

            t0 = time.perf_counter()
            global_placement = engine.place()
            t_global = time.perf_counter() - t0
            global_cost = placement_cost(inst, global_placement).total
            result.rows.append([
                n_real, backend, "global", "--", "--", t_global,
                global_cost, "--", "--", "--",
            ])

            t0 = time.perf_counter()
            part = partition_instance(
                inst, num_shards=num_shards,
                portals_per_shard=portals_per_shard,
            )
            sharded_placement, _ = engine.place_sharded(part)
            t_sharded = time.perf_counter() - t0
            sharded_cost = placement_cost(inst, sharded_placement).total
            result.rows.append([
                n_real, backend, "sharded", part.num_shards,
                portals_per_shard, t_sharded, sharded_cost,
                sharded_cost / global_cost, "--",
                admissible(inst.metric, part),
            ])

            t0 = time.perf_counter()
            one_placement, _ = engine.place_sharded(Partition.trivial(n_real))
            t_one = time.perf_counter() - t0
            one_cost = placement_cost(inst, one_placement).total
            result.rows.append([
                n_real, backend, "sharded k=1", 1, portals_per_shard, t_one,
                one_cost, one_cost / global_cost,
                one_placement.copy_sets == global_placement.copy_sets, "--",
            ])

    for n_target in sorted(int(s) for s in sharded_only_sizes):
        inst = build(n_target, "lazy")
        engine = engine_for(inst)
        t0 = time.perf_counter()
        part = partition_instance(
            inst, num_shards=num_shards, portals_per_shard=portals_per_shard,
        )
        sharded_placement, _ = engine.place_sharded(part)
        t_sharded = time.perf_counter() - t0
        result.rows.append([
            inst.num_nodes, "lazy", "sharded", part.num_shards,
            portals_per_shard, t_sharded,
            placement_cost(inst, sharded_placement).total,
            "--", "--", admissible(inst.metric, part),
        ])
    return result


# ----------------------------------------------------------------------
# E19: the serving daemon -- parity, lookup consistency, replan lag
# ----------------------------------------------------------------------
def run_e19_daemon(
    *,
    n: int = 200,
    num_objects: int = 48,
    epochs: int = 5,
    requests_per_epoch: int | None = None,
    drift: float = 0.15,
    write_fraction: float = 0.05,
    tolerance: float = 0.05,
    storage_price: float | None = None,
    seed: int = 41,
    fl_solver: str = "local_search",
    chunk_size: int = 512,
    jobs: int = 1,
    backends: Sequence[str] = ("dense", "lazy"),
    lag_drifts: Sequence[float] = (0.15, 0.4),
    lookups: int = 200,
) -> "ExperimentResult":
    """The :class:`~repro.serve.PlacementDaemon` serving loop, measured.

    Three sections:

    * ``parity`` -- a tolerance-0 daemon fed a
      :class:`~repro.workloads.dynamic.DynamicWorkload` epoch-by-epoch
      must reproduce the :class:`~repro.simulate.replanner.EpochReplanner`'s
      per-epoch placements and cumulative bill bit-identically
      ("identical" column; "vs replanner" within 1e-9 relative), per
      backend in incremental mode plus one full-mode row.  This is the
      daemon's correctness anchor: live serving costs nothing in
      placement quality.
    * ``latency`` -- foreground lookups issued *while* background
      replans run (``end_epoch(wait=False)``).  Every lookup's copy set
      must match the placement of the generation it reports
      ("consistent" column: a reader never observes a mix of two
      generations), and the mean lookup wall time is recorded
      (informational -- never gated).
    * ``lag`` -- drift-rate sweep at the working ``tolerance``: how many
      epochs actually triggered a replan and how many objects each
      re-placed.  Faster drift must keep triggering replans
      (``replans > 0``) while the tolerance keeps per-epoch work below
      the full catalog.

    The committed artifact is ``benchmarks/BENCH_e19_daemon.json``;
    only environment-independent claims (parity, consistency, replan
    counts) are gated.
    """
    from ..serve import PlacementDaemon, compare_with_replanner
    from ..workloads.dynamic import drifting_zipf_catalog

    if epochs < 2:
        raise ValueError("epochs must be >= 2 (epoch 0 is always a full solve)")
    for b in backends:
        if b not in ("dense", "lazy"):
            raise ValueError(f"unknown backend {b!r}; use 'dense' and/or 'lazy'")
    if lookups < 1:
        raise ValueError("lookups must be positive")

    g = generators.sized_transit_stub_graph(n, seed=seed)
    n_real = g.number_of_nodes()
    if requests_per_epoch is None:
        requests_per_epoch = 100 * num_objects
    if storage_price is None:
        storage_price = max(2.0, 0.5 * requests_per_epoch / num_objects)
    cs = uniform_storage_costs(n_real, storage_price)

    def make_workload(drift_rate: float, wl_seed: int):
        return drifting_zipf_catalog(
            n_real, num_objects, epochs=epochs, seed=wl_seed,
            drift=drift_rate, requests_per_epoch=requests_per_epoch,
            write_fraction=write_fraction, redraw="changed",
        )

    def make_metric(backend: str):
        return (Metric.from_graph(g) if backend == "dense"
                else LazyMetric.from_graph(g))

    def make_config(mode: str, tol: float) -> PlanConfig:
        return PlanConfig(
            fl_solver=fl_solver, chunk_size=chunk_size, jobs=jobs,
            replan_mode=mode, replan_tolerance=tol,
        )

    result = ExperimentResult(
        "E19",
        f"serving daemon: parity + consistency (drift={drift}, "
        f"m={num_objects})",
        ("section", "label", "backend", "epochs", "replans",
         "replaced/epoch", "lookups", "mean lookup (ms)", "total cost",
         "vs replanner", "identical", "consistent"),
        notes="'parity': tolerance-0 daemon vs EpochReplanner, per-epoch "
        "placements and bills bit-identical.  'latency': lookups during "
        "live background replans; 'consistent' means every lookup's copy "
        "set matched its reported generation's placement (never a mix); "
        "lookup wall time is informational.  'lag': drift sweep at the "
        "working tolerance -- 'replans' counts epochs that re-placed "
        "anything.",
    )

    workload = make_workload(drift, seed + 1)

    # -- parity: the daemon must be invisible in the bill
    parity_modes = [("incremental", 0.0)]
    for backend in backends:
        for mode, tol in parity_modes:
            verdict = compare_with_replanner(
                g, make_metric(backend), cs, workload,
                make_config(mode, tol),
            )
            replaced = [e["replaced"] for e in verdict["records"]]
            result.rows.append([
                "parity", f"{mode} t=0", backend, epochs, len(replaced),
                sum(replaced) / len(replaced), "--", "--",
                verdict["daemon_total"], verdict["cost_ratio"],
                verdict["identical"], "--",
            ])
    # one full-mode anchor on the first backend
    verdict = compare_with_replanner(
        g, make_metric(backends[0]), cs, workload,
        make_config("full", 0.0),
    )
    replaced = [e["replaced"] for e in verdict["records"]]
    result.rows.append([
        "parity", "full t=0", backends[0], epochs, len(replaced),
        sum(replaced) / len(replaced), "--", "--",
        verdict["daemon_total"], verdict["cost_ratio"],
        verdict["identical"], "--",
    ])

    # -- latency: lookups racing live background replans
    rng = np.random.default_rng(seed + 5)
    probe_objs = rng.integers(0, num_objects, size=lookups)
    probe_nodes = rng.integers(0, n_real, size=lookups)
    for backend in backends:
        daemon = PlacementDaemon(
            cs, num_objects, metric=make_metric(backend), graph=g,
            config=make_config("incremental", 0.0), keep_history=True,
        )
        try:
            consistent = True
            times = []
            per_epoch = max(1, lookups // epochs)
            done = 0
            for e in range(epochs):
                daemon.ingest_counts(
                    workload.read_freqs[e], workload.write_freqs[e]
                )
                daemon.end_epoch(wait=False)
                budget = per_epoch if e < epochs - 1 else lookups - done
                for i in range(done, done + budget):
                    obj = int(probe_objs[i])
                    t0 = time.perf_counter()
                    r = daemon.lookup(obj, int(probe_nodes[i]))
                    times.append(time.perf_counter() - t0)
                    expected = daemon.generation_placement(r.generation)[obj]
                    if r.copies != expected or r.replica not in r.copies:
                        consistent = False
                done += budget
            daemon.drain()
            records = daemon.epoch_records
            total = daemon.snapshot().cumulative_cost
        finally:
            daemon.close()
        replaced = [rec["replaced"] for rec in records]
        result.rows.append([
            "latency", f"drift={drift}", backend, epochs, len(records),
            sum(replaced) / len(replaced), done,
            1e3 * sum(times) / len(times), total, "--", "--",
            consistent,
        ])

    # -- lag: drift sweep at the working tolerance
    metric = make_metric(backends[0])
    for drift_rate in lag_drifts:
        wl = make_workload(float(drift_rate), seed + 7)
        daemon = PlacementDaemon(
            cs, num_objects, metric=metric, graph=g,
            config=make_config("incremental", tolerance),
        )
        try:
            for e in range(epochs):
                daemon.ingest_counts(wl.read_freqs[e], wl.write_freqs[e])
                daemon.end_epoch(wait=True)
            records = daemon.epoch_records
            total = daemon.snapshot().cumulative_cost
        finally:
            daemon.close()
        replans = sum(1 for rec in records if rec["replaced"] > 0)
        replaced = [rec["replaced"] for rec in records]
        result.rows.append([
            "lag", f"drift={float(drift_rate)}", backends[0], epochs,
            replans, sum(replaced) / len(replaced), "--", "--",
            total, "--", "--", "--",
        ])
    return result


def run_e20_costmodels(
    *,
    n: int = 60,
    num_objects: int = 12,
    storage_price: float = 4.0,
    slots: int = 4,
    capacity_frac: float = 0.4,
    seed: int = 23,
    fl_solver: str = "local_search",
    backends: Sequence[str] = ("dense", "lazy"),
) -> "ExperimentResult":
    """The pluggable accounting seam (:mod:`repro.costmodel`), validated.

    Three sections:

    * ``parity`` -- the default ``krw`` model must be invisible: a
      ``Planner.plan`` bill through the seam equals the legacy
      :func:`~repro.core.costs.placement_cost` bit-for-bit per backend
      ("identical" column), the vectorized simulator bill (now routed
      through ``bill_requests``) matches the hop-by-hop replay within
      float precision, and the batched ``bill_migration`` matches the
      per-object reference ``EpochReplanner._migration`` -- including an
      empty (zero-drift) transition billing exactly zero.
    * ``admission`` -- the per-timeslot capacity model: uncapped it
      reproduces the ``krw`` request bill; under capacity pressure it
      rejects some reads (``rejected > 0``), still serves others, and
      never bills more than ``krw``; end-to-end through ``Planner.plan``
      (``cost_model="admission"``) the placement is unchanged and the
      accepted/rejected split lands in the report's cost detail.
    * ``broadcast`` -- the multicast propagation model: end-to-end its
      bill never exceeds ``krw``'s (one MST charge per period instead of
      per write), and on read-only demand it equals ``krw`` exactly.

    The committed artifact is ``benchmarks/BENCH_e20_costmodels.json``.
    """
    from ..api import Planner
    from ..costmodel import AdmissionCostModel, get_cost_model
    from ..simulate.events import RequestLog
    from ..simulate.replanner import EpochReplanner
    from ..simulate.simulator import NetworkSimulator

    if slots < 1:
        raise ValueError("slots must be >= 1")
    if not (0.0 < capacity_frac < 1.0):
        raise ValueError("capacity_frac must lie in (0, 1) to force rejections")
    for b in backends:
        if b not in ("dense", "lazy"):
            raise ValueError(f"unknown backend {b!r}; use 'dense' and/or 'lazy'")

    g = generators.sized_transit_stub_graph(n, seed=seed)
    n_real = g.number_of_nodes()
    cs = uniform_storage_costs(n_real, storage_price)

    def make_metric(backend: str):
        return (Metric.from_graph(g) if backend == "dense"
                else LazyMetric.from_graph(g))

    def make_config(model: str) -> PlanConfig:
        return PlanConfig(fl_solver=fl_solver, cost_model=model)

    def _ratio(a: float, b: float) -> float:
        return 1.0 if a == b else a / b

    def bill_row(section, label, model, bill, vs, accepted, rejected,
                 identical):
        return [section, label, model, bill.total, bill.storage, bill.read,
                bill.update, vs, accepted, rejected, identical]

    result = ExperimentResult(
        "E20",
        f"cost-model seam: krw parity + admission + broadcast "
        f"(m={num_objects}, slots={slots})",
        ("section", "label", "model", "total cost", "storage", "read",
         "update", "vs krw", "accepted", "rejected", "identical"),
        notes="'parity': the krw model through the seam vs the legacy "
        "inline accounting -- plan bills bit-identical per backend, "
        "simulator and migration bills within float precision.  "
        "'admission': per-timeslot capacity accounting -- uncapped equals "
        "krw, capped rejects reads and never bills more.  'broadcast': "
        "one multicast propagation charge per period -- never above krw, "
        "equal on read-only demand.  'vs krw' is this row's total over "
        "the matching krw total.",
    )

    krw = get_cost_model("krw")

    # -- parity: the seam must be invisible under the default model
    dense_inst = None
    dense_report = None
    for backend in backends:
        metric = make_metric(backend)
        inst = make_instance(
            metric, seed=seed + 1, num_objects=num_objects,
            storage_price=storage_price,
        )
        report = Planner(make_config("krw")).plan(inst, "krw")
        legacy = placement_cost(inst, report.placement, policy="mst")
        identical = (
            report.cost.storage == legacy.storage
            and report.cost.read == legacy.read
            and report.cost.update == legacy.update
        )
        result.rows.append(bill_row(
            "parity", f"plan {backend}", "krw", report.cost,
            _ratio(report.cost.total, legacy.total), "--", "--", identical,
        ))
        if backend == "dense" or dense_inst is None:
            dense_inst, dense_report = inst, report

    inst, report = dense_inst, dense_report
    placement = report.placement

    # seam-billed vectorized replay vs the hop-by-hop routed bill
    sim = NetworkSimulator(g, inst)
    log = RequestLog.from_frequencies(inst.read_freq, inst.write_freq)
    vec = sim.run(placement, log)
    routed = sim.run(placement, log, track_edge_load=True)
    vec_bill = CostBreakdown(
        vec.storage_cost, vec.read_traffic_cost, vec.write_traffic_cost
    )
    result.rows.append(bill_row(
        "parity", "simulate", "krw", vec_bill,
        _ratio(vec.total_cost, routed.total_cost), "--", "--", "--",
    ))

    # batched bill_migration vs the per-object reference _migration
    replanner = EpochReplanner(g, inst.metric, cs, make_config("krw"))
    start = int(np.argmin(cs))
    prev = [(start,) for _ in range(num_objects)]
    batched = krw.bill_migration(inst.metric, prev, placement.copy_sets)
    ref_cost, ref_added, ref_dropped = 0.0, 0, 0
    for old, new in zip(prev, placement.copy_sets):
        c, a, d = replanner._migration(old, new)
        ref_cost += c
        ref_added += a
        ref_dropped += d
    mig_bill = CostBreakdown(0.0, 0.0, batched.cost)
    result.rows.append(bill_row(
        "parity", "migration", "krw", mig_bill,
        _ratio(batched.cost, ref_cost), "--", "--",
        batched.added == ref_added and batched.dropped == ref_dropped,
    ))
    # empty (zero-drift) transition: exactly zero on both paths
    empty = krw.bill_migration(inst.metric, list(placement.copy_sets),
                               placement.copy_sets)
    result.rows.append(bill_row(
        "parity", "migration empty", "krw",
        CostBreakdown(0.0, 0.0, empty.cost), _ratio(empty.cost, 0.0),
        "--", "--", tuple(empty) == (0.0, 0, 0),
    ))

    # -- admission: capacity-controlled timeslot accounting
    fr, fw = inst.read_freq, inst.write_freq
    krw_req = krw.bill_requests(inst, placement, fr, fw)
    uncapped = AdmissionCostModel(slots=slots).bill_requests(
        inst, placement, fr, fw
    )
    result.rows.append(bill_row(
        "admission", "uncapped", "admission", uncapped,
        _ratio(uncapped.total, krw_req.total),
        uncapped.detail["accepted"], uncapped.detail["rejected"], "--",
    ))

    # cap below the busiest object's per-slot per-copy read demand
    per_copy_demand = max(
        float(fr[obj].sum()) / slots / len(placement.copies(obj))
        for obj in range(num_objects)
    )
    cap = capacity_frac * per_copy_demand
    capped = AdmissionCostModel(
        slots=slots, capacity_per_copy=cap
    ).bill_requests(inst, placement, fr, fw)
    result.rows.append(bill_row(
        "admission", "capped", "admission", capped,
        _ratio(capped.total, krw_req.total),
        capped.detail["accepted"], capped.detail["rejected"], "--",
    ))

    adm_report = Planner(make_config("admission")).plan(inst, "krw")
    result.rows.append(bill_row(
        "admission", "plan admission", "admission", adm_report.cost,
        _ratio(adm_report.cost.total, report.cost.total),
        adm_report.cost.detail["accepted"],
        adm_report.cost.detail["rejected"],
        adm_report.placement.copy_sets == placement.copy_sets,
    ))

    # -- broadcast: one propagation charge per period
    bc_report = Planner(make_config("broadcast-write")).plan(inst, "krw")
    result.rows.append(bill_row(
        "broadcast", "plan broadcast", "broadcast-write", bc_report.cost,
        _ratio(bc_report.cost.total, report.cost.total), "--", "--",
        bc_report.placement.copy_sets == placement.copy_sets,
    ))

    ro_inst = make_instance(
        inst.metric, seed=seed + 2, num_objects=num_objects,
        write_fraction=0.0, storage_price=storage_price,
    )
    ro_placement = Planner(make_config("krw")).plan(ro_inst, "krw").placement
    ro_krw = placement_cost(ro_inst, ro_placement, policy="mst")
    ro_bc = get_cost_model("broadcast-write").bill_placement(
        ro_inst, ro_placement
    )
    result.rows.append(bill_row(
        "broadcast", "read-only", "broadcast-write", ro_bc,
        _ratio(ro_bc.total, ro_krw.total), "--", "--",
        (ro_bc.storage, ro_bc.read, ro_bc.update)
        == (ro_krw.storage, ro_krw.read, ro_krw.update),
    ))
    return result
