"""Approximation-ratio statistics.

Small, well-tested helpers for the quantity every experiment reports:
``cost(algorithm) / cost(optimum)``, aggregated over instance collections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["RatioStats", "ratio", "summarize_ratios"]


def ratio(cost: float, optimum: float) -> float:
    """``cost / optimum`` with the 0/0 convention = 1 (both free)."""
    if optimum < 0 or cost < 0:
        raise ValueError("costs must be non-negative")
    if optimum == 0:
        return 1.0 if cost == 0 else float("inf")
    return cost / optimum


@dataclass(frozen=True)
class RatioStats:
    """Aggregate of a collection of approximation ratios."""

    count: int
    mean: float
    geo_mean: float
    p50: float
    p95: float
    max: float

    def as_row(self) -> list[float]:
        return [self.count, self.mean, self.geo_mean, self.p50, self.p95, self.max]

    HEADERS = ("runs", "mean", "geomean", "median", "p95", "max")


def summarize_ratios(values: Iterable[float]) -> RatioStats:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no ratios to summarize")
    if np.any(arr < 1.0 - 1e-9):
        raise ValueError(
            "a ratio below 1 means the 'optimum' was not optimal -- "
            f"min ratio {arr.min():.6f}"
        )
    arr = np.maximum(arr, 1.0)  # clamp float slack
    return RatioStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        geo_mean=float(np.exp(np.log(arr).mean())),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        max=float(arr.max()),
    )
