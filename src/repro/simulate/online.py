"""A dynamic (online) data management strategy, for contrast with the
static optimum.

The paper's related work (Awerbuch/Bartal/Fiat; Maggs et al.) studies the
*dynamic* setting: requests arrive online and the strategy migrates and
replicates copies as it goes.  This module implements a classic
count-based online strategy so the evaluation suite can measure how much
an adaptive policy recovers (or loses) against the clairvoyant static
optimum on the same request stream (Experiment E12):

* each node counts reads per object since the last write;
* once a node's count reaches ``replication_threshold``, it buys a local
  copy (paying the transfer from the nearest existing copy plus the
  storage price -- the ski-rental move);
* a write updates all copies through the current copy MST and then
  *invalidates* down to the single copy nearest the writer (the
  "update-or-invalidate-all" discipline the paper's model mandates;
  invalidation itself is free, like dropping rented storage).

Accounting matches the static simulator: per-link fees per traversal,
``cs(v)`` paid every time a copy is (re)materialized on ``v``, and a
request served by a local copy ships no message.  Routing state is the
same bounded :class:`~repro.simulate.paths.PathCache` of predecessor
arrays the simulator uses (and can literally be the same instance --
pass ``path_cache=``), so replaying long streams on large networks never
builds per-source path dictionaries.  Online strategies can beat the
best *static* placement in hindsight (they adapt between phases), and
they can lose badly when writes thrash replicas -- both regimes show up
in E12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..core.instance import DataManagementInstance
from ..graphs.mst import mst_edges
from .events import RequestLog
from .paths import PathCache
from .simulator import SimulationReport

__all__ = ["OnlineCountingStrategy"]


@dataclass
class _ObjectState:
    copies: set[int]
    read_counts: dict[int, int] = field(default_factory=dict)


class OnlineCountingStrategy:
    """Count-based online replication with write-back invalidation.

    Parameters
    ----------
    graph:
        Network with per-object link fees in ``weight``.  Must be
        connected (validated at construction).
    instance:
        Storage prices + metric (closure of ``graph``).
    replication_threshold:
        Reads from a node (since the last write) before it buys a copy.
        The ski-rental flavour: with threshold ``k``, wasted transfer cost
        is bounded by ``k`` reads' worth.
    path_cache:
        Optional shared :class:`~repro.simulate.paths.PathCache` over the
        same graph (e.g. the simulator's, when both replay one stream);
        built internally when omitted.
    cache_sources:
        LRU capacity of the internally-built path cache (``None``: sized
        from the :data:`~repro.simulate.paths.DEFAULT_PATH_CACHE_BYTES`
        budget).
    """

    def __init__(
        self,
        graph: nx.Graph,
        instance: DataManagementInstance,
        *,
        replication_threshold: int = 3,
        path_cache: PathCache | None = None,
        cache_sources: int | None = None,
    ) -> None:
        if replication_threshold < 1:
            raise ValueError("replication_threshold must be >= 1")
        n = instance.num_nodes
        if graph.number_of_nodes() != n or set(graph.nodes()) != set(range(n)):
            raise ValueError("graph must have nodes 0..n-1 matching the instance")
        if n > 1 and not nx.is_connected(graph):
            raise ValueError(
                "graph must be connected: some nodes could never reach a "
                "copy (no finite metric closure exists)"
            )
        self.graph = graph
        self.instance = instance
        self.threshold = replication_threshold
        # bounded per-source predecessor arrays, shared machinery (and
        # optionally the same instance) with NetworkSimulator
        if path_cache is not None and path_cache.n != n:
            raise ValueError("path_cache was built for a different graph")
        self._paths = path_cache or PathCache(graph, max_sources=cache_sources)

    # ------------------------------------------------------------------
    def _send(self, path: list[int], report: SimulationReport, *, write: bool) -> None:
        """Route one message, accruing fees and load; a single-node path
        (local service) ships nothing and counts no message."""
        if len(path) < 2:
            return
        cost = 0.0
        for a, b in zip(path[:-1], path[1:]):
            w = self.graph[a][b]["weight"]
            cost += w
            key = (a, b) if a < b else (b, a)
            report.edge_load[key] = report.edge_load.get(key, 0.0) + w
        if write:
            report.write_traffic_cost += cost
        else:
            report.read_traffic_cost += cost
        report.messages += 1

    def _nearest(self, copies: set[int], node: int) -> int:
        metric = self.instance.metric
        return min(copies, key=lambda c: (metric.d(node, c), c))

    # ------------------------------------------------------------------
    def run(self, log) -> tuple[SimulationReport, list[set[int]]]:
        """Process the log; returns (bill, final copy sets per object).

        ``log`` is a :class:`~repro.simulate.events.RequestLog` (or any
        iterable of :class:`~repro.simulate.events.Request`).  Every
        object starts with one copy on its cheapest storage node (the
        zero-knowledge initial placement).
        """
        inst = self.instance
        log = RequestLog.coerce(log)
        log.validate_for(inst.num_objects, inst.num_nodes)
        report = SimulationReport()
        start = int(np.argmin(inst.storage_costs))
        states = []
        for obj in range(inst.num_objects):
            states.append(_ObjectState(copies={start}))
            report.storage_cost += float(inst.storage_costs[start])

        for is_write, node, obj in log.iter_events():
            state = states[obj]
            serving = self._nearest(state.copies, node)
            if not is_write:
                self._send(self._paths.path(node, serving), report, write=False)
                if node not in state.copies:
                    count = state.read_counts.get(node, 0) + 1
                    state.read_counts[node] = count
                    if count >= self.threshold:
                        # buy a copy: transfer from the nearest replica,
                        # then pay the storage price
                        self._send(self._paths.path(serving, node), report, write=False)
                        report.storage_cost += float(inst.storage_costs[node])
                        state.copies.add(node)
                        state.read_counts[node] = 0
            else:
                # attach + multicast over the current copy MST
                self._send(self._paths.path(node, serving), report, write=True)
                for u, v, _ in mst_edges(inst.metric, sorted(state.copies)):
                    self._send(self._paths.path(u, v), report, write=True)
                # invalidate down to the copy nearest the writer
                state.copies = {serving}
                state.read_counts.clear()
        return report, [s.copies for s in states]
