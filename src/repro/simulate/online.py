"""A dynamic (online) data management strategy, for contrast with the
static optimum.

The paper's related work (Awerbuch/Bartal/Fiat; Maggs et al.) studies the
*dynamic* setting: requests arrive online and the strategy migrates and
replicates copies as it goes.  This module implements a classic
count-based online strategy so the evaluation suite can measure how much
an adaptive policy recovers (or loses) against the clairvoyant static
optimum on the same request stream (Experiment E12):

* each node counts reads per object since the last write;
* once a node's count reaches ``replication_threshold``, it buys a local
  copy (paying the transfer from the nearest existing copy plus the
  storage price -- the ski-rental move);
* a write updates all copies through the current copy MST and then
  *invalidates* down to the single copy nearest the writer (the
  "update-or-invalidate-all" discipline the paper's model mandates;
  invalidation itself is free, like dropping rented storage).

Accounting matches the static simulator: per-link fees per traversal,
``cs(v)`` paid every time a copy is (re)materialized on ``v``.  Online
strategies can beat the best *static* placement in hindsight (they adapt
between phases), and they can lose badly when writes thrash replicas --
both regimes show up in E12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..core.instance import DataManagementInstance
from ..graphs.mst import mst_edges
from .events import READ, WRITE, Request
from .simulator import SimulationReport

__all__ = ["OnlineCountingStrategy"]


@dataclass
class _ObjectState:
    copies: set[int]
    read_counts: dict[int, int] = field(default_factory=dict)


class OnlineCountingStrategy:
    """Count-based online replication with write-back invalidation.

    Parameters
    ----------
    graph:
        Network with per-object link fees in ``weight``.
    instance:
        Storage prices + metric (closure of ``graph``).
    replication_threshold:
        Reads from a node (since the last write) before it buys a copy.
        The ski-rental flavour: with threshold ``k``, wasted transfer cost
        is bounded by ``k`` reads' worth.
    """

    def __init__(
        self,
        graph: nx.Graph,
        instance: DataManagementInstance,
        *,
        replication_threshold: int = 3,
    ) -> None:
        if replication_threshold < 1:
            raise ValueError("replication_threshold must be >= 1")
        self.graph = graph
        self.instance = instance
        self.threshold = replication_threshold
        # per-source shortest-path trees, computed on demand (the online
        # strategy only routes from request homes and copy holders, so
        # the all-pairs structure would be O(n^2) waste on large networks)
        self._path_cache: dict[int, dict[int, list[int]]] = {}

    def _paths_from(self, u: int) -> dict[int, list[int]]:
        paths = self._path_cache.get(u)
        if paths is None:
            paths = nx.single_source_dijkstra_path(self.graph, u, weight="weight")
            self._path_cache[u] = paths
        return paths

    # ------------------------------------------------------------------
    def _send(self, path: list[int], report: SimulationReport, *, write: bool) -> None:
        cost = 0.0
        for a, b in zip(path[:-1], path[1:]):
            w = self.graph[a][b]["weight"]
            cost += w
            key = (a, b) if a < b else (b, a)
            report.edge_load[key] = report.edge_load.get(key, 0.0) + w
        if write:
            report.write_traffic_cost += cost
        else:
            report.read_traffic_cost += cost
        report.messages += 1

    def _nearest(self, copies: set[int], node: int) -> int:
        metric = self.instance.metric
        return min(copies, key=lambda c: (metric.d(node, c), c))

    # ------------------------------------------------------------------
    def run(self, log: list[Request]) -> tuple[SimulationReport, list[set[int]]]:
        """Process the log; returns (bill, final copy sets per object).

        Every object starts with one copy on its cheapest storage node
        (the zero-knowledge initial placement).
        """
        inst = self.instance
        report = SimulationReport()
        start = int(np.argmin(inst.storage_costs))
        states = []
        for obj in range(inst.num_objects):
            states.append(_ObjectState(copies={start}))
            report.storage_cost += float(inst.storage_costs[start])

        for req in log:
            state = states[req.obj]
            serving = self._nearest(state.copies, req.node)
            if req.kind == READ:
                self._send(self._paths_from(req.node)[serving], report, write=False)
                if req.node not in state.copies:
                    count = state.read_counts.get(req.node, 0) + 1
                    state.read_counts[req.node] = count
                    if count >= self.threshold:
                        # buy a copy: transfer from the nearest replica,
                        # then pay the storage price
                        self._send(self._paths_from(serving)[req.node], report, write=False)
                        report.storage_cost += float(inst.storage_costs[req.node])
                        state.copies.add(req.node)
                        state.read_counts[req.node] = 0
            elif req.kind == WRITE:
                # attach + multicast over the current copy MST
                self._send(self._paths_from(req.node)[serving], report, write=True)
                for u, v, _ in mst_edges(inst.metric, sorted(state.copies)):
                    self._send(self._paths_from(u)[v], report, write=True)
                # invalidate down to the copy nearest the writer
                state.copies = {serving}
                state.read_counts.clear()
        return report, [s.copies for s in states]
