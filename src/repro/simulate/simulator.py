"""Event-level network simulator: the paper's cost model, executed.

The analytic cost functions in :mod:`repro.core.costs` charge a placement
in closed form.  This simulator instead *executes* a billing period on the
actual network: every read is routed hop-by-hop along a cheapest path to
its nearest replica, every write ships an attach message plus a multicast
along the update tree, and every traversed link accrues its per-object
fee.  The output additionally exposes per-link load -- connecting the
commercial model back to the *total communication load* view the paper
generalizes (Section 1).

Agreement between the simulator and the closed-form accounting is itself
a reproduction result (Experiment E11): under the ``"mst"`` update policy
the simulated bill equals ``object_cost(..., policy="mst")`` to floating-
point precision, because

* a cheapest path realizes exactly the metric distance ``ct(u, v)``, and
* each metric-closure MST edge embeds as a cheapest path of the same
  total fee (multiset semantics allow the double-counted edges).

Supported update policies:

``"mst"``
    attach message to the nearest copy + multicast along the metric MST
    over the copy set, each metric edge embedded as a cheapest path.
    Matches the Section 2 strategy and the analytic ``"mst"`` policy.
``"kmb"``
    one Kou--Markowsky--Berman Steiner tree over writer + copies, each
    graph edge paid once.  A within-factor-2 executable stand-in for the
    exact Steiner policy (which is NP-hard to route).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..core.instance import DataManagementInstance
from ..core.placement import Placement
from ..graphs.metric import Metric
from ..graphs.mst import mst_edges
from ..graphs.steiner import steiner_kmb
from .events import READ, WRITE, Request

__all__ = ["SimulationReport", "NetworkSimulator"]


@dataclass
class SimulationReport:
    """Accrued bill and traffic statistics for one simulated period."""

    storage_cost: float = 0.0
    read_traffic_cost: float = 0.0
    write_traffic_cost: float = 0.0
    messages: int = 0
    edge_load: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def transmission_cost(self) -> float:
        return self.read_traffic_cost + self.write_traffic_cost

    @property
    def total_cost(self) -> float:
        return self.storage_cost + self.transmission_cost

    def max_edge_load(self) -> float:
        """Maximum per-link load (the congestion objective of Maggs et
        al., measured here in fee-weighted traversals)."""
        return max(self.edge_load.values(), default=0.0)

    def total_load(self) -> float:
        """Total communication load: summed fee-weighted traversals."""
        return float(sum(self.edge_load.values()))


class NetworkSimulator:
    """Replays request logs against a static placement on a real graph.

    Parameters
    ----------
    graph:
        The network; edge attribute ``weight`` is the per-object fee.
    instance:
        Supplies storage prices and the metric (must be the closure of
        ``graph``; checked cheaply on a few samples).
    update_policy:
        ``"mst"`` or ``"kmb"`` (see module docstring).
    """

    def __init__(
        self,
        graph: nx.Graph,
        instance: DataManagementInstance,
        *,
        update_policy: str = "mst",
    ) -> None:
        if update_policy not in ("mst", "kmb"):
            raise ValueError("update_policy must be 'mst' or 'kmb'")
        n = instance.num_nodes
        if graph.number_of_nodes() != n or set(graph.nodes()) != set(range(n)):
            raise ValueError("graph must have nodes 0..n-1 matching the instance")
        self.graph = graph
        self.instance = instance
        self.update_policy = update_policy
        # hop-by-hop routing: per-source shortest-path trees, computed on
        # demand and cached -- a replay only ever routes from nodes that
        # actually issue requests (plus copy holders), so the all-pairs
        # O(n^2) path structure is never built.
        self._path_cache: dict[int, dict[int, list[int]]] = {}
        # consistency spot-check against the instance metric
        metric = instance.metric
        rng = np.random.default_rng(0)
        for _ in range(min(10, n * n)):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            got = self._path_cost(self._paths_from(u)[v])
            if abs(got - metric.d(u, v)) > 1e-6 * (1.0 + got):
                raise ValueError(
                    "instance metric is not the closure of the given graph "
                    f"(d({u},{v}) mismatch: {metric.d(u, v)} vs {got})"
                )

    # ------------------------------------------------------------------
    def _paths_from(self, u: int) -> dict[int, list[int]]:
        """Cheapest paths from one source (cached single-source Dijkstra)."""
        paths = self._path_cache.get(u)
        if paths is None:
            paths = nx.single_source_dijkstra_path(self.graph, u, weight="weight")
            self._path_cache[u] = paths
        return paths

    def _path_cost(self, path: list[int]) -> float:
        return sum(
            self.graph[a][b]["weight"] for a, b in zip(path[:-1], path[1:])
        )

    def _send(self, path: list[int], report: SimulationReport, *, write: bool) -> None:
        """Route one message along a node path, accruing fees and load."""
        cost = 0.0
        for a, b in zip(path[:-1], path[1:]):
            w = self.graph[a][b]["weight"]
            cost += w
            key = (a, b) if a < b else (b, a)
            report.edge_load[key] = report.edge_load.get(key, 0.0) + w
        if write:
            report.write_traffic_cost += cost
        else:
            report.read_traffic_cost += cost
        report.messages += 1

    # ------------------------------------------------------------------
    def run(self, placement: Placement, log: list[Request]) -> SimulationReport:
        """Replay a log against a static placement; returns the bill."""
        placement.validate(self.instance)
        inst = self.instance
        metric = inst.metric
        report = SimulationReport()

        # storage: each copy is bought once for the billing period
        for obj in range(inst.num_objects):
            for v in placement.copies(obj):
                report.storage_cost += float(inst.storage_costs[v])

        # per-object routing state
        nearest: list[np.ndarray] = []
        update_trees: list[list[tuple[int, int, float]]] = []
        for obj in range(inst.num_objects):
            copies = placement.copies(obj)
            near, _ = metric.nearest_in_set(copies)
            nearest.append(near)
            if self.update_policy == "mst":
                update_trees.append(mst_edges(metric, copies))
            else:
                update_trees.append([])  # KMB trees are per-writer

        for req in log:
            if not 0 <= req.obj < inst.num_objects:
                raise ValueError(f"request for unknown object {req.obj}")
            copies = placement.copies(req.obj)
            target = int(nearest[req.obj][req.node])
            if req.kind == READ:
                self._send(self._paths_from(req.node)[target], report, write=False)
            elif req.kind == WRITE:
                if self.update_policy == "mst":
                    # attach message + multicast along the copy MST
                    self._send(self._paths_from(req.node)[target], report, write=True)
                    for u, v, _ in update_trees[req.obj]:
                        self._send(self._paths_from(u)[v], report, write=True)
                else:  # kmb: one embedded Steiner tree over writer + copies
                    edges, _ = steiner_kmb(
                        self.graph, set(copies) | {req.node}
                    )
                    for u, v in edges:
                        self._send([u, v], report, write=True)
            else:  # pragma: no cover - Request validates kind
                raise ValueError(f"unknown request kind {req.kind!r}")
        return report
