"""Event-level network simulator: the paper's cost model, executed.

The analytic cost functions in :mod:`repro.core.costs` charge a placement
in closed form.  This simulator instead *executes* a billing period on the
actual network: every read is billed to its nearest replica, every write
ships an attach message plus a multicast along the update tree, and every
traversed link accrues its per-object fee.  Accounting itself is
delegated to a pluggable :class:`~repro.costmodel.CostModel` (default
``"krw"``, the paper's bill); the vectorized path hands the grouped log
to ``bill_requests``, while hop-by-hop routing -- which realizes the
``krw`` bill on actual links -- requires a ``routable`` model.

Two execution modes share one accounting model:

**Vectorized replay** (the default for the ``"mst"`` policy)
    The columnar :class:`~repro.simulate.events.RequestLog` is grouped
    per (object, kind, node) with one ``bincount``; reads and write
    attach messages are billed through one batched ``nearest_in_set``
    distance vector per object, and each write's multicast through the
    per-object metric-MST cost.  This replays a million-event catalog
    log in milliseconds and charges *the same bill* as routing every
    event hop by hop -- each cheapest path realizes exactly the metric
    distance, and each MST edge embeds as a cheapest path of the same
    total fee.

**Hop-by-hop routing** (``track_edge_load=True``, or the ``"kmb"``
    policy)
    Every message walks an explicit cheapest path and every traversed
    link accrues load -- exposing the *per-link* view (the total
    communication load the paper generalizes, Section 1) that the
    closed form hides.  Paths come from a *bounded* LRU of predecessor
    arrays (:class:`~repro.simulate.paths.PathCache`) shared with the
    online strategy, so replay memory stays ``O(cache * n)`` even on
    10k-node networks.

Agreement between the simulator and the closed-form accounting is itself
a reproduction result (Experiment E11): under the ``"mst"`` update policy
the simulated bill equals ``object_cost(..., policy="mst")`` to floating-
point precision.

Message accounting: a request served by a *local* copy (the serving node
is the request home) ships nothing and counts no message; every routed
path with at least one hop counts one message.

Supported update policies:

``"mst"``
    attach message to the nearest copy + multicast along the metric MST
    over the copy set, each metric edge embedded as a cheapest path.
    Matches the Section 2 strategy and the analytic ``"mst"`` policy.
``"kmb"``
    one Kou--Markowsky--Berman Steiner tree over writer + copies, each
    graph edge paid once.  A within-factor-2 executable stand-in for the
    exact Steiner policy (which is NP-hard to route).  Always routed
    hop by hop (its update tree is per-writer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..core.instance import DataManagementInstance
from ..core.placement import Placement
from ..costmodel import CostModel, get_cost_model
from ..graphs.mst import mst_edges
from ..graphs.steiner import steiner_kmb
from .events import RequestLog
from .paths import PathCache

__all__ = ["SimulationReport", "NetworkSimulator"]


@dataclass
class SimulationReport:
    """Accrued bill and traffic statistics for one simulated period.

    ``edge_load`` is populated only by hop-by-hop replay
    (``track_edge_load=True`` or the ``"kmb"`` policy); the vectorized
    fast path bills identically but does not attribute traffic to links.
    """

    storage_cost: float = 0.0
    read_traffic_cost: float = 0.0
    write_traffic_cost: float = 0.0
    messages: int = 0
    edge_load: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def transmission_cost(self) -> float:
        return self.read_traffic_cost + self.write_traffic_cost

    @property
    def total_cost(self) -> float:
        return self.storage_cost + self.transmission_cost

    def max_edge_load(self) -> float:
        """Maximum per-link load (the congestion objective of Maggs et
        al., measured here in fee-weighted traversals)."""
        return max(self.edge_load.values(), default=0.0)

    def total_load(self) -> float:
        """Total communication load: summed fee-weighted traversals."""
        return float(sum(self.edge_load.values()))


class NetworkSimulator:
    """Replays request logs against a static placement on a real graph.

    Parameters
    ----------
    graph:
        The network; edge attribute ``weight`` is the per-object fee.
        Must be connected (validated at construction -- a disconnected
        graph has no finite metric closure to replay against).
    instance:
        Supplies storage prices and the metric (must be the closure of
        ``graph``; checked cheaply on a few samples).
    update_policy:
        ``"mst"`` or ``"kmb"`` (see module docstring).
    path_cache:
        Optional shared :class:`~repro.simulate.paths.PathCache` over the
        same graph (e.g. reused across epoch simulators or with an
        online strategy); built internally when omitted.
    cache_sources:
        LRU capacity of the internally-built path cache (``None``: sized
        from the :data:`~repro.simulate.paths.DEFAULT_PATH_CACHE_BYTES`
        budget).
    cost_model:
        Registered name or :class:`~repro.costmodel.CostModel` instance
        billing the replay (default ``"krw"``, the paper's accounting).
        Non-``routable`` models are closed-form only: they cannot be
        combined with ``"kmb"`` or ``track_edge_load=True``, whose bills
        are realized hop by hop.
    """

    def __init__(
        self,
        graph: nx.Graph,
        instance: DataManagementInstance,
        *,
        update_policy: str = "mst",
        path_cache: PathCache | None = None,
        cache_sources: int | None = None,
        cost_model: str | CostModel = "krw",
    ) -> None:
        if update_policy not in ("mst", "kmb"):
            raise ValueError("update_policy must be 'mst' or 'kmb'")
        if isinstance(cost_model, str):
            cost_model = get_cost_model(cost_model)
        self.cost_model = cost_model
        if update_policy == "kmb" and not cost_model.routable:
            raise ValueError(
                f"cost model {cost_model.name!r} is not routable and cannot "
                "bill the hop-by-hop 'kmb' policy"
            )
        n = instance.num_nodes
        if graph.number_of_nodes() != n or set(graph.nodes()) != set(range(n)):
            raise ValueError("graph must have nodes 0..n-1 matching the instance")
        if n > 1 and not nx.is_connected(graph):
            raise ValueError(
                "graph must be connected: some nodes could never reach a "
                "copy (no finite metric closure exists)"
            )
        self.graph = graph
        self.instance = instance
        self.update_policy = update_policy
        # hop-by-hop routing: bounded LRU of per-source predecessor
        # arrays (paths reconstructed on demand), shareable with the
        # online strategy -- never one materialized path dict per source.
        if path_cache is not None and path_cache.n != n:
            raise ValueError("path_cache was built for a different graph")
        self._paths = path_cache or PathCache(graph, max_sources=cache_sources)
        # consistency spot-check against the instance metric
        metric = instance.metric
        rng = np.random.default_rng(0)
        for _ in range(min(10, n * n)):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            got = self._path_cost(self._paths.path(u, v))
            if abs(got - metric.d(u, v)) > 1e-6 * (1.0 + got):
                raise ValueError(
                    "instance metric is not the closure of the given graph "
                    f"(d({u},{v}) mismatch: {metric.d(u, v)} vs {got})"
                )

    # ------------------------------------------------------------------
    def _path_cost(self, path: list[int]) -> float:
        return sum(
            self.graph[a][b]["weight"] for a, b in zip(path[:-1], path[1:])
        )

    def _send(self, path: list[int], report: SimulationReport, *, write: bool) -> None:
        """Route one message along a node path, accruing fees and load.

        A single-node path (request served by a local copy) ships
        nothing: no fee, no load, **no message**.
        """
        if len(path) < 2:
            return
        cost = 0.0
        for a, b in zip(path[:-1], path[1:]):
            w = self.graph[a][b]["weight"]
            cost += w
            key = (a, b) if a < b else (b, a)
            report.edge_load[key] = report.edge_load.get(key, 0.0) + w
        if write:
            report.write_traffic_cost += cost
        else:
            report.read_traffic_cost += cost
        report.messages += 1

    # ------------------------------------------------------------------
    def run(
        self,
        placement: Placement,
        log,
        *,
        track_edge_load: bool = False,
    ) -> SimulationReport:
        """Replay a log against a static placement; returns the bill.

        ``log`` is a :class:`~repro.simulate.events.RequestLog` (or any
        iterable of :class:`~repro.simulate.events.Request`).  Under the
        ``"mst"`` policy the replay is vectorized unless
        ``track_edge_load=True`` forces hop-by-hop routing (the only mode
        that can attribute traffic to individual links); the two bill
        identically.  The ``"kmb"`` policy always routes hop by hop.
        """
        placement.validate(self.instance)
        log = RequestLog.coerce(log)
        log.validate_for(self.instance.num_objects, self.instance.num_nodes)
        if self.update_policy == "mst" and not track_edge_load:
            return self._run_vectorized(placement, log)
        if not self.cost_model.routable:
            raise ValueError(
                f"cost model {self.cost_model.name!r} is not routable and "
                "cannot attribute traffic to links (track_edge_load)"
            )
        return self._run_events(placement, log)

    def _storage_bill(self, placement: Placement, report: SimulationReport) -> None:
        """Each copy is bought once for the billing period."""
        report.storage_cost += self.cost_model.bill_storage(self.instance, placement)

    # ------------------------------------------------------------------
    def _run_vectorized(
        self, placement: Placement, log: RequestLog
    ) -> SimulationReport:
        """Columnar fast path: bill the grouped log through the cost model.

        The log is grouped per (object, kind, node) with one ``bincount``
        and handed to :meth:`~repro.costmodel.CostModel.bill_requests` as
        one billing period.  Under the default ``krw`` model this equals
        the hop-by-hop bill because cheapest paths realize metric
        distances exactly.
        """
        inst = self.instance
        reads, writes = log.counts(inst.num_objects, inst.num_nodes)
        bill = self.cost_model.bill_requests(
            inst, placement, reads, writes, objects=np.unique(log.obj)
        )
        return SimulationReport(
            storage_cost=bill.storage,
            read_traffic_cost=bill.read,
            write_traffic_cost=bill.update,
            messages=int((bill.detail or {}).get("messages", 0)),
        )

    # ------------------------------------------------------------------
    def _run_events(self, placement: Placement, log: RequestLog) -> SimulationReport:
        """Hop-by-hop replay: route every event, accrue per-link load."""
        inst = self.instance
        metric = inst.metric
        report = SimulationReport()
        self._storage_bill(placement, report)

        # per-object routing state, built lazily for objects in the log
        nearest: dict[int, np.ndarray] = {}
        update_trees: dict[int, list[tuple[int, int, float]]] = {}

        for is_write, node, obj in log.iter_events():
            copies = placement.copies(obj)
            near = nearest.get(obj)
            if near is None:
                near, _ = metric.nearest_in_set(copies)
                nearest[obj] = near
            target = int(near[node])
            if not is_write:
                self._send(self._paths.path(node, target), report, write=False)
            elif self.update_policy == "mst":
                # attach message + multicast along the copy MST
                self._send(self._paths.path(node, target), report, write=True)
                tree = update_trees.get(obj)
                if tree is None:
                    tree = mst_edges(metric, copies)
                    update_trees[obj] = tree
                for u, v, _ in tree:
                    self._send(self._paths.path(u, v), report, write=True)
            else:  # kmb: one embedded Steiner tree over writer + copies
                edges, _ = steiner_kmb(self.graph, set(copies) | {node})
                for u, v in edges:
                    self._send([u, v], report, write=True)
        return report
