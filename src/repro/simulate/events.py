"""Request logs: explicit event streams realizing an instance's frequencies.

The static model summarizes a billing period by request *frequencies*;
the simulator (and the dynamic strategies) need the actual event stream.
This module expands an instance's integer-valued ``fr``/``fw`` matrices
into a deterministic log of :class:`Request` events, optionally shuffled
with a seed (frequencies are counts, so any interleaving realizes the
same static cost; the order only matters to *online* strategies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.instance import DataManagementInstance

__all__ = ["Request", "READ", "WRITE", "request_log_from_instance"]

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Request:
    """One request event: ``kind`` is ``"read"`` or ``"write"``, issued at
    ``node`` for object ``obj``."""

    kind: str
    node: int
    obj: int

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ValueError(f"kind must be 'read' or 'write', got {self.kind!r}")


def request_log_from_instance(
    instance: DataManagementInstance,
    *,
    seed: int | None = None,
) -> list[Request]:
    """Expand frequencies into an explicit event log.

    Frequencies must be integer-valued (the model's semantics; raises
    otherwise).  With ``seed=None`` the log is in canonical order (object,
    node, reads before writes); with a seed it is deterministically
    shuffled -- use this for online-strategy experiments where order
    matters.
    """
    fr = instance.read_freq
    fw = instance.write_freq
    if not np.allclose(fr, np.round(fr)) or not np.allclose(fw, np.round(fw)):
        raise ValueError(
            "request frequencies must be integer counts to expand into a log"
        )

    log: list[Request] = []
    for obj in range(instance.num_objects):
        for node in range(instance.num_nodes):
            log.extend(Request(READ, node, obj) for _ in range(int(round(fr[obj, node]))))
            log.extend(
                Request(WRITE, node, obj) for _ in range(int(round(fw[obj, node])))
            )
    if seed is not None:
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(log))
        log = [log[i] for i in perm]
    return log
