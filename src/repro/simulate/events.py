"""Request logs: explicit event streams realizing an instance's frequencies.

The static model summarizes a billing period by request *frequencies*;
the simulator (and the dynamic strategies) need the actual event stream.
This module provides the columnar :class:`RequestLog` -- a
struct-of-arrays event stream (``kind`` / ``node`` / ``obj`` numpy
arrays) generated *vectorized* from integer ``fr``/``fw`` matrices, so a
10k-object catalog's billing period expands in milliseconds instead of
building millions of Python objects.  The log still iterates as
:class:`Request` events (the online strategy and older callers consume
it unchanged), and :func:`request_log_from_instance` now returns one.

Event order: with ``seed=None`` the log is canonical (object, node,
reads before writes); with a seed it is deterministically shuffled --
bit-identical to permuting the per-event list, so seeded experiment
streams are unchanged.  Frequencies are counts, so any interleaving
realizes the same static cost; the order only matters to *online*
strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.instance import DataManagementInstance

__all__ = ["Request", "RequestLog", "READ", "WRITE", "request_log_from_instance"]

READ = "read"
WRITE = "write"

#: Columnar kind codes (``RequestLog.kind`` entries).
KIND_READ = 0
KIND_WRITE = 1


@dataclass(frozen=True)
class Request:
    """One request event: ``kind`` is ``"read"`` or ``"write"``, issued at
    ``node`` for object ``obj``."""

    kind: str
    node: int
    obj: int

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise ValueError(f"kind must be 'read' or 'write', got {self.kind!r}")


class RequestLog:
    """Columnar event stream: parallel ``kind`` / ``node`` / ``obj`` arrays.

    ``kind[i]`` is :data:`KIND_READ` (0) or :data:`KIND_WRITE` (1);
    ``node[i]`` is the request home and ``obj[i]`` the object of event
    ``i``.  The struct-of-arrays layout is what makes catalog-scale
    replay possible: grouping a million events per (object, kind, node)
    is one ``bincount``, not a Python loop.

    Back compatibility: a log iterates as :class:`Request` events,
    supports ``len``/indexing/slicing, and compares equal by content --
    so every consumer of the old per-event lists keeps working.
    """

    __slots__ = ("kind", "node", "obj")

    def __init__(self, kind, node, obj) -> None:
        kind = np.asarray(kind, dtype=np.uint8)
        node = np.asarray(node, dtype=np.int64)
        obj = np.asarray(obj, dtype=np.int64)
        if not (kind.ndim == node.ndim == obj.ndim == 1):
            raise ValueError("kind/node/obj must be 1-D arrays")
        if not (kind.shape == node.shape == obj.shape):
            raise ValueError(
                f"kind/node/obj must have equal lengths, got "
                f"{kind.shape}/{node.shape}/{obj.shape}"
            )
        if kind.size and int(kind.max()) > KIND_WRITE:
            raise ValueError("kind codes must be 0 (read) or 1 (write)")
        self.kind = kind
        self.node = node
        self.obj = obj

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_frequencies(
        cls,
        read_freq: np.ndarray,
        write_freq: np.ndarray,
        *,
        seed: int | None = None,
    ) -> "RequestLog":
        """Vectorized expansion of integer ``(m, n)`` frequency matrices.

        Equivalent -- event for event, including the seeded shuffle -- to
        expanding per-event ``Request`` objects in canonical order
        (object, node, reads before writes) and permuting the list, but
        built with two ``np.repeat`` calls instead of a Python loop.
        """
        fr = np.atleast_2d(np.asarray(read_freq, dtype=float))
        fw = np.atleast_2d(np.asarray(write_freq, dtype=float))
        if fr.shape != fw.shape:
            raise ValueError("read_freq and write_freq must have equal shapes")
        if not np.allclose(fr, np.round(fr)) or not np.allclose(fw, np.round(fw)):
            raise ValueError(
                "request frequencies must be integer counts to expand into a log"
            )
        m, n = fr.shape
        fr_i = np.rint(fr).astype(np.int64).ravel()
        fw_i = np.rint(fw).astype(np.int64).ravel()
        # canonical order: per (object, node) cell, reads then writes --
        # interleave the read/write counts so one repeat yields the order
        counts = np.empty(2 * m * n, dtype=np.int64)
        counts[0::2] = fr_i
        counts[1::2] = fw_i
        slot = np.repeat(np.arange(2 * m * n, dtype=np.int64), counts)
        kind = (slot & 1).astype(np.uint8)
        cell = slot >> 1
        log = cls(kind, node=cell % n, obj=cell // n)
        if seed is not None:
            return log.shuffled(seed)
        return log

    @classmethod
    def from_instance(
        cls, instance: DataManagementInstance, *, seed: int | None = None
    ) -> "RequestLog":
        """Expand one instance's billing period into an event stream."""
        return cls.from_frequencies(
            instance.read_freq, instance.write_freq, seed=seed
        )

    @classmethod
    def from_requests(cls, events: Iterable[Request]) -> "RequestLog":
        """Columnarize an explicit sequence of :class:`Request` events."""
        events = list(events)
        kind = np.fromiter(
            (KIND_WRITE if r.kind == WRITE else KIND_READ for r in events),
            dtype=np.uint8, count=len(events),
        )
        node = np.fromiter((r.node for r in events), dtype=np.int64, count=len(events))
        obj = np.fromiter((r.obj for r in events), dtype=np.int64, count=len(events))
        return cls(kind, node, obj)

    @classmethod
    def coerce(cls, log) -> "RequestLog":
        """Accept a :class:`RequestLog` or any iterable of requests."""
        if isinstance(log, cls):
            return log
        return cls.from_requests(log)

    @staticmethod
    def concat(logs: Sequence["RequestLog"]) -> "RequestLog":
        """Concatenate logs in order (e.g. epoch streams into one run).

        ``concat([])`` is a well-typed empty log (``uint8`` kind codes,
        ``int64`` node/object columns -- the same dtypes every non-empty
        log carries), so zero-demand horizons flow through
        :meth:`~repro.workloads.dynamic.DynamicWorkload.full_log` and
        the simulators without special-casing.
        """
        logs = list(logs)
        if not logs:
            return RequestLog(
                np.zeros(0, dtype=np.uint8),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )
        return RequestLog(
            np.concatenate([lg.kind for lg in logs]),
            np.concatenate([lg.node for lg in logs]),
            np.concatenate([lg.obj for lg in logs]),
        )

    def shuffled(self, seed: int) -> "RequestLog":
        """Deterministically permuted copy (order for online strategies)."""
        perm = np.random.default_rng(seed).permutation(len(self))
        return RequestLog(self.kind[perm], self.node[perm], self.obj[perm])

    # ------------------------------------------------------------------
    # grouping / accounting kernels
    # ------------------------------------------------------------------
    def counts(self, num_objects: int, num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
        """Group the log per (object, kind, node) with one ``bincount``.

        Returns ``(reads, writes)`` integer matrices of shape
        ``(num_objects, num_nodes)`` -- the exact inverse of
        :meth:`from_frequencies`, and the input of the vectorized replay.
        """
        self.validate_for(num_objects, num_nodes)
        size = num_objects * num_nodes
        flat = self.obj * num_nodes + self.node
        is_write = self.kind == KIND_WRITE
        reads = np.bincount(flat[~is_write], minlength=size)
        writes = np.bincount(flat[is_write], minlength=size)
        return (
            reads.reshape(num_objects, num_nodes),
            writes.reshape(num_objects, num_nodes),
        )

    def counts_by_object(self, num_objects: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-object event totals: ``(reads, writes)`` length-``num_objects``
        integer vectors, one ``bincount`` per kind.

        The node axis of :meth:`counts` summed out -- what a demand
        counter (the serving daemon's per-object stats) needs, without
        materializing the ``(objects, nodes)`` matrices.
        """
        if len(self) and (
            int(self.obj.min()) < 0 or int(self.obj.max()) >= num_objects
        ):
            bad = int(self.obj.min()) if int(self.obj.min()) < 0 else int(self.obj.max())
            raise ValueError(f"request for unknown object {bad}")
        is_write = self.kind == KIND_WRITE
        reads = np.bincount(self.obj[~is_write], minlength=num_objects)
        writes = np.bincount(self.obj[is_write], minlength=num_objects)
        return reads, writes

    def validate_for(self, num_objects: int, num_nodes: int) -> None:
        """Check every event addresses a known object and node."""
        if len(self) == 0:
            return
        if int(self.obj.min()) < 0 or int(self.obj.max()) >= num_objects:
            bad = int(self.obj.min()) if int(self.obj.min()) < 0 else int(self.obj.max())
            raise ValueError(f"request for unknown object {bad}")
        if int(self.node.min()) < 0 or int(self.node.max()) >= num_nodes:
            bad = int(self.node.min()) if int(self.node.min()) < 0 else int(self.node.max())
            raise ValueError(f"request from unknown node {bad}")

    @property
    def num_reads(self) -> int:
        return int((self.kind == KIND_READ).sum())

    @property
    def num_writes(self) -> int:
        return int((self.kind == KIND_WRITE).sum())

    def iter_events(self) -> Iterator[tuple[bool, int, int]]:
        """Fast iteration as ``(is_write, node, obj)`` tuples -- the
        per-event consumers' loop without building ``Request`` objects."""
        return zip(
            (self.kind == KIND_WRITE).tolist(),
            self.node.tolist(),
            self.obj.tolist(),
        )

    # ------------------------------------------------------------------
    # sequence protocol (back compatibility with per-event lists)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.kind.size)

    def __iter__(self) -> Iterator[Request]:
        for is_write, node, obj in self.iter_events():
            yield Request(WRITE if is_write else READ, node, obj)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return RequestLog(self.kind[item], self.node[item], self.obj[item])
        i = int(item)
        return Request(
            WRITE if self.kind[i] == KIND_WRITE else READ,
            int(self.node[i]),
            int(self.obj[i]),
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, RequestLog):
            return (
                np.array_equal(self.kind, other.kind)
                and np.array_equal(self.node, other.node)
                and np.array_equal(self.obj, other.obj)
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    __hash__ = None  # mutable arrays; content equality only

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestLog({len(self)} events: {self.num_reads} reads, "
            f"{self.num_writes} writes)"
        )


def request_log_from_instance(
    instance: DataManagementInstance,
    *,
    seed: int | None = None,
) -> RequestLog:
    """Expand frequencies into an explicit event log.

    Frequencies must be integer-valued (the model's semantics; raises
    otherwise).  With ``seed=None`` the log is in canonical order (object,
    node, reads before writes); with a seed it is deterministically
    shuffled -- use this for online-strategy experiments where order
    matters.  Returns a columnar :class:`RequestLog`, which iterates as
    :class:`Request` events.
    """
    return RequestLog.from_instance(instance, seed=seed)
