"""Bounded shortest-path routing state shared by the simulators.

Hop-by-hop replay needs actual node paths, not just distances.  The
original simulators kept one *materialized path dict* per source --
``O(n)`` paths of average length ``O(diameter)`` each, so a replay whose
requests touch many sources silently built an ``O(n^2)``-ish structure on
large networks.  :class:`PathCache` replaces that with the compact
single-source representation: one distance + predecessor array pair
(``12n`` bytes: float64 distances and int32 predecessors) per source,
computed by scipy's compiled Dijkstra and kept in a *bounded* LRU, with
paths reconstructed on demand by walking predecessors.  Both
:class:`~repro.simulate.simulator.NetworkSimulator` and
:class:`~repro.simulate.online.OnlineCountingStrategy` route through one
of these (and can share a single instance when they replay the same
graph).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import dijkstra

from ..graphs.metric import graph_to_adjacency

__all__ = ["PathCache", "DEFAULT_PATH_CACHE_BYTES", "MIN_PATH_CACHE_SOURCES"]

#: Soft memory budget behind the *default* LRU capacity: sources are
#: cached up to ``budget / 12n`` (each entry is ~``12n`` bytes).  On a
#: 1k-node network this covers every possible source (no thrash -- one
#: Dijkstra per distinct request home, like the old unbounded dict); on
#: a 10k-node network it caps the routing state at ~the budget instead
#: of the ``~120 MB`` an unbounded per-source structure would grow to.
DEFAULT_PATH_CACHE_BYTES = 64 * 1024 * 1024

#: Floor for the default capacity (tiny graphs get at least this many).
MIN_PATH_CACHE_SOURCES = 256


class PathCache:
    """Cheapest paths over a weighted graph via cached predecessor arrays.

    Parameters
    ----------
    graph:
        Undirected network with nodes ``0..n-1``; edge attribute
        ``weight`` holds the per-object transmission fee.
    max_sources:
        LRU capacity in *sources*.  Each cached source stores one
        distance array and one predecessor array (``~12n`` bytes
        together), never materialized path lists.  ``None`` (default)
        sizes the capacity from :data:`DEFAULT_PATH_CACHE_BYTES` --
        every source fits on networks up to a few thousand nodes, and
        memory stays bounded beyond that.
    """

    __slots__ = (
        "n", "_adj", "_max_sources", "_cache", "_lock",
        "sources_computed", "cache_hits",
    )

    def __init__(
        self,
        graph: nx.Graph,
        *,
        max_sources: int | None = None,
        weight: str = "weight",
    ) -> None:
        adj, index, _ = graph_to_adjacency(graph, weight=weight)
        if any(index[u] != u for u in graph.nodes()):
            raise ValueError("graph nodes must be 0..n-1; relabel first")
        self._adj = adj
        self.n = adj.shape[0]
        if max_sources is None:
            max_sources = max(
                MIN_PATH_CACHE_SOURCES,
                DEFAULT_PATH_CACHE_BYTES // (12 * max(self.n, 1)),
            )
        if max_sources < 1:
            raise ValueError("max_sources must be positive")
        self._max_sources = int(max_sources)
        self._cache: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        # Guards the LRU and counters: a foreground daemon lookup and a
        # background replan's simulator may share one cache.  The
        # Dijkstra runs outside the lock (a racing duplicate compute is
        # idempotent); the cached arrays themselves are append-only.
        self._lock = threading.Lock()
        self.sources_computed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def _entry(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """(distances, predecessors) from one source, LRU-cached."""
        u = int(u)
        with self._lock:
            entry = self._cache.get(u)
            if entry is not None:
                self._cache.move_to_end(u)
                self.cache_hits += 1
                return entry
        dist, pred = dijkstra(
            self._adj, directed=False, indices=[u], return_predecessors=True
        )
        entry = (dist[0], pred[0])
        with self._lock:
            self._cache[u] = entry
            self._cache.move_to_end(u)
            while len(self._cache) > self._max_sources:
                self._cache.popitem(last=False)
            self.sources_computed += 1
        return entry

    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Cheapest-path distance between two nodes."""
        return float(self._entry(u)[0][int(v)])

    def path(self, u: int, v: int) -> list[int]:
        """Cheapest ``u -> v`` node path (``[u]`` when ``u == v``).

        Raises a clear :class:`ValueError` when ``v`` is unreachable
        (disconnected graph) instead of a bare ``KeyError``.
        """
        u, v = int(u), int(v)
        if u == v:
            return [u]
        dist, pred = self._entry(u)
        if not np.isfinite(dist[v]):
            raise ValueError(
                f"node {v} is unreachable from node {u}: the network graph "
                "is disconnected"
            )
        path = [v]
        cur = v
        while cur != u:
            cur = int(pred[cur])
            path.append(cur)
        path.reverse()
        return path

    @property
    def cached_sources(self) -> int:
        """Number of sources currently held in the LRU."""
        return len(self._cache)

    @property
    def max_sources(self) -> int:
        return self._max_sources

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathCache(n={self.n}, cached={len(self._cache)}/"
            f"{self._max_sources}, computed={self.sources_computed})"
        )
