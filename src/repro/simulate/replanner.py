"""Epoch-wise re-placement with explicit migration cost.

The bridge between the paper's static optimum and the online setting its
related work studies: split the horizon into epochs, re-run the static
Section 2 pipeline (:class:`~repro.engine.PlacementEngine`) on each
epoch's frequencies, and *pay for the transition* -- every newly
materialized copy is transferred from the nearest copy of the previous
epoch (the migration model of "A Paradigm for Channel Assignment and
Data Migration in Distributed Systems"), on top of each epoch's normal
storage + traffic bill.

Accounting conventions (shared with Experiments E15/E16's comparisons):

* each epoch is one billing period -- copies held during an epoch pay
  their storage price for that epoch;
* epoch traffic is billed by the vectorized
  :class:`~repro.simulate.simulator.NetworkSimulator` replay of the
  epoch's request log against that epoch's placement;
* migration into epoch ``e`` charges ``d(v, S_{e-1}(x))`` for every node
  ``v`` that holds a copy of object ``x`` in epoch ``e`` but not in
  epoch ``e-1`` (transfer from the nearest old copy); dropping a copy is
  free, like releasing rented storage.  Before epoch 0 every object has
  one copy on the cheapest storage node -- the same zero-knowledge start
  as :class:`~repro.simulate.online.OnlineCountingStrategy`, so the two
  strategies' transfer accounting is comparable.

Incremental re-placement
------------------------
Theorem 7 places objects *independently*, so a drifted epoch only
invalidates the placements of objects whose demand actually changed.
With ``config.replan_mode == "incremental"`` the replanner detects the
dirty set with :func:`~repro.workloads.dynamic.drifted_rows`, comparing
each object's current demand against the snapshot *at its last
re-place*, carries every clean object's copy set forward from the
previous epoch, and fans only the dirty subset through
:meth:`~repro.engine.PlacementEngine.place_subset` -- the same chunked /
parallel pipeline the full solve uses, restricted to the objects that
need it.

* ``replan_tolerance == 0.0`` (exact): an object is dirty iff its
  ``fr``/``fw`` rows changed at all, so the per-epoch placements -- and
  therefore every storage, traffic and migration bill -- are
  **bit-identical** to the full re-solve (property-tested on dense and
  lazy backends).
* ``replan_tolerance == t > 0`` (approximate, in the spirit of
  "Approximate Data Structures with Applications"): objects whose
  normalized L1 demand delta *since their last re-place* is at most
  ``t`` also keep their stale copy sets.  Anchoring the comparison at
  the last-solved snapshot means a slow drift accumulates until it
  crosses ``t`` -- it cannot stay forever under a per-epoch threshold
  -- so at every epoch each carried object's demand is within ``t`` of
  the demand its placement was solved for.  The billing error is then
  bounded linearly in the tolerated shift: a carried object's serving
  bill differs from re-billing its stale placement under the new demand
  by at most ``t * T_x * (D + M(S_x))`` (``T_x`` the object's epoch
  volume, ``D`` the metric diameter, ``M(S_x)`` its update-tree cost),
  plus whatever the full re-solve would have saved by moving copies --
  itself within the constant approximation factor of optimal.  Speed is
  traded for a *bounded* cost gap, never for correctness of the
  accounting.

Migration is billed with one batched diff per epoch: gained copies are
grouped by their object's *previous* copy set and each distinct group is
charged through a single vectorized set-distance query
(``dist_to_set``), instead of one per-object Python query each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..config import PlanConfig
from ..core.placement import Placement
from ..costmodel import MigrationBill, get_cost_model
from ..engine import PlacementEngine
from .paths import PathCache
from .simulator import NetworkSimulator, SimulationReport

__all__ = ["EpochReport", "ReplanResult", "EpochReplanner", "migration_diff"]


def migration_diff(
    metric,
    prev: list[tuple[int, ...]],
    new: tuple[tuple[int, ...], ...],
) -> MigrationBill:
    """Batched migration bill for a whole placement transition.

    Compatibility wrapper over the single shared accounting entry point,
    :meth:`CostModel.bill_migration <repro.costmodel.CostModel>` of the
    default ``"krw"`` model -- the kernel :class:`EpochReplanner` and the
    live :class:`~repro.serve.PlacementDaemon` both bill through, which
    is what makes their cumulative migration bills comparable (and, at
    ``tolerance=0``, bit-identical).  Returns a
    :class:`~repro.costmodel.MigrationBill`; the legacy
    ``cost, added, dropped = ...`` unpacking keeps working.
    """
    return get_cost_model("krw").bill_migration(metric, prev, new)


@dataclass(frozen=True)
class EpochReport:
    """One epoch's outcome: the serving bill plus the transition cost.

    ``replaced_objects`` counts the objects actually re-solved this
    epoch (the whole catalog in full mode; the dirty subset in
    incremental mode) and ``solve_time_s`` the wall time of that
    re-placement plus its migration diff -- the quantities Experiment
    E16 compares across modes.
    """

    epoch: int
    report: SimulationReport
    migration_cost: float
    copies_added: int
    copies_dropped: int
    placement: Placement
    replaced_objects: int = -1
    solve_time_s: float = 0.0

    @property
    def total_cost(self) -> float:
        return self.report.total_cost + self.migration_cost


@dataclass
class ReplanResult:
    """All epoch reports of one replanned horizon."""

    epochs: list[EpochReport] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(e.total_cost for e in self.epochs)

    @property
    def serve_cost(self) -> float:
        """Storage + traffic across all epochs, migration excluded."""
        return sum(e.report.total_cost for e in self.epochs)

    @property
    def migration_cost(self) -> float:
        return sum(e.migration_cost for e in self.epochs)

    @property
    def replaced_objects(self) -> int:
        """Objects re-solved across the horizon (epoch 0 included)."""
        return sum(e.replaced_objects for e in self.epochs)

    @property
    def solve_time_s(self) -> float:
        """Total re-placement (placement + migration diff) wall time."""
        return sum(e.solve_time_s for e in self.epochs)

    @property
    def final_placement(self) -> Placement:
        if not self.epochs:
            raise ValueError("no epochs were replanned")
        return self.epochs[-1].placement


class EpochReplanner:
    """Re-solves the static placement per epoch, paying migration.

    Parameters
    ----------
    graph:
        The network (nodes ``0..n-1``, fees in ``weight``).
    metric:
        Its distance backend (dense or lazy closure of ``graph``).
    storage_costs:
        Per-node storage prices, shared by every epoch.
    config:
        A :class:`~repro.config.PlanConfig` shared by every per-epoch
        :class:`~repro.engine.PlacementEngine` solve.  Its
        ``replan_mode`` / ``replan_tolerance`` knobs choose between the
        full per-epoch re-solve and the incremental one (see the module
        docstring).  Legacy engine keywords (``fl_solver=...``,
        ``jobs=...``) are still accepted in its place and validated
        through the same config.
    """

    def __init__(
        self,
        graph: nx.Graph,
        metric,
        storage_costs: np.ndarray,
        config: PlanConfig | None = None,
        **engine_kwargs,
    ) -> None:
        if config is not None and engine_kwargs:
            raise TypeError(
                "pass either a PlanConfig or engine keywords, not both: "
                f"{sorted(engine_kwargs)}"
            )
        self.graph = graph
        self.metric = metric
        self.storage_costs = np.asarray(storage_costs, dtype=float)
        # the legacy kwargs spelling funnels through the same validation
        self.config = config if config is not None else PlanConfig(**engine_kwargs)
        # all accounting (epoch bills + migration) through one model
        self._cost_model = get_cost_model(self.config.cost_model)
        # one routing/path state for all per-epoch simulators
        self._path_cache = PathCache(graph)

    # ------------------------------------------------------------------
    def _migration(
        self, old: tuple[int, ...], new: tuple[int, ...]
    ) -> tuple[float, int, int]:
        """Transfer cost into a new copy set from the nearest old copies.

        The per-object reference implementation: :meth:`_migration_diff`
        must bill every object exactly like this (tested), it just
        batches the distance queries.
        """
        old_set = set(old)
        gained = [v for v in new if v not in old_set]
        dropped = len(old_set.difference(new))
        if not gained:
            return 0.0, 0, dropped
        dist = self.metric.dist_to_set(sorted(old_set))
        return float(dist[np.asarray(gained, dtype=int)].sum()), len(gained), dropped

    def _migration_diff(
        self,
        prev: list[tuple[int, ...]],
        new: tuple[tuple[int, ...], ...],
    ) -> MigrationBill:
        """Batched migration bill for a whole epoch transition -- the
        configured cost model's ``bill_migration`` on this replanner's
        metric."""
        return self._cost_model.bill_migration(self.metric, prev, new)

    # ------------------------------------------------------------------
    def run(self, workload, *, log_seed: int | None = None) -> ReplanResult:
        """Replan and bill every epoch of a
        :class:`~repro.workloads.dynamic.DynamicWorkload`.

        ``config.replan_mode`` picks the per-epoch solve: ``"full"``
        re-places the whole catalog, ``"incremental"`` re-places only
        the drifted objects and carries every clean object's copy set
        forward.  Epoch 0 is always a full solve -- there is no previous
        epoch to carry from.  Drift is measured with
        :func:`~repro.workloads.dynamic.drifted_rows` against each
        object's demand *at its last re-place* (not merely the previous
        epoch), so with ``replan_tolerance > 0`` a slow drift
        accumulates until it crosses the threshold instead of slipping
        under it epoch after epoch -- every carried object's demand
        stays within the tolerance of the snapshot its placement was
        solved for.  At ``tolerance=0`` the two baselines coincide (an
        unchanged row's last-re-place snapshot *is* the previous epoch's
        row), which is also what
        :meth:`~repro.workloads.dynamic.DynamicWorkload.drifted_objects`
        reports.

        ``log_seed`` shuffles each epoch's replayed log (``log_seed +
        epoch``); the static bill is order-independent, so this only
        matters when comparing against order-sensitive strategies on the
        same stream.
        """
        from ..workloads.drift import DriftTracker

        incremental = self.config.replan_mode == "incremental"
        result = ReplanResult()
        start = int(np.argmin(self.storage_costs))
        prev: list[tuple[int, ...]] = [
            (start,) for _ in range(workload.num_objects)
        ]
        # demand rows at each object's last re-place (incremental mode)
        tracker = DriftTracker(tolerance=self.config.replan_tolerance)
        for e in range(workload.num_epochs):
            inst = workload.epoch_instance(self.metric, self.storage_costs, e)
            # the timer covers re-placement + migration diff only --
            # instance construction is a fixed cost both modes share
            t0 = time.perf_counter()
            engine = PlacementEngine.from_config(inst, self.config)
            if incremental and e > 0:
                fr_e = workload.read_freqs[e]
                fw_e = workload.write_freqs[e]
                dirty = tracker.drifted(fr_e, fw_e)
                solved = engine.place_subset(dirty)
                copy_sets = list(prev)
                for obj, copies in solved.items():
                    copy_sets[obj] = copies
                placement = Placement(tuple(copy_sets))
                replaced = len(solved)
                if replaced:
                    tracker.rebase(dirty, fr_e, fw_e)
            else:
                placement = engine.place()
                replaced = workload.num_objects
                if incremental:
                    tracker.prime(workload.read_freqs[e], workload.write_freqs[e])

            migration, added, dropped = self._migration_diff(
                prev, placement.copy_sets
            )
            solve_time = time.perf_counter() - t0

            sim = NetworkSimulator(
                self.graph, inst, update_policy="mst",
                path_cache=self._path_cache, cost_model=self._cost_model,
            )
            log = workload.epoch_log(
                e, seed=None if log_seed is None else log_seed + e
            )
            report = sim.run(placement, log)
            result.epochs.append(
                EpochReport(
                    e, report, migration, added, dropped, placement,
                    replaced_objects=replaced, solve_time_s=solve_time,
                )
            )
            prev = list(placement.copy_sets)
        return result
