"""Epoch-wise re-placement with explicit migration cost.

The bridge between the paper's static optimum and the online setting its
related work studies: split the horizon into epochs, re-run the static
Section 2 pipeline (:class:`~repro.engine.PlacementEngine`) on each
epoch's frequencies, and *pay for the transition* -- every newly
materialized copy is transferred from the nearest copy of the previous
epoch (the migration model of "A Paradigm for Channel Assignment and
Data Migration in Distributed Systems"), on top of each epoch's normal
storage + traffic bill.

Accounting conventions (shared with Experiment E15's comparison):

* each epoch is one billing period -- copies held during an epoch pay
  their storage price for that epoch;
* epoch traffic is billed by the vectorized
  :class:`~repro.simulate.simulator.NetworkSimulator` replay of the
  epoch's request log against that epoch's placement;
* migration into epoch ``e`` charges ``d(v, S_{e-1}(x))`` for every node
  ``v`` that holds a copy of object ``x`` in epoch ``e`` but not in
  epoch ``e-1`` (transfer from the nearest old copy); dropping a copy is
  free, like releasing rented storage.  Before epoch 0 every object has
  one copy on the cheapest storage node -- the same zero-knowledge start
  as :class:`~repro.simulate.online.OnlineCountingStrategy`, so the two
  strategies' transfer accounting is comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..config import PlanConfig
from ..core.placement import Placement
from ..engine import PlacementEngine
from .paths import PathCache
from .simulator import NetworkSimulator, SimulationReport

__all__ = ["EpochReport", "ReplanResult", "EpochReplanner"]


@dataclass(frozen=True)
class EpochReport:
    """One epoch's outcome: the serving bill plus the transition cost."""

    epoch: int
    report: SimulationReport
    migration_cost: float
    copies_added: int
    copies_dropped: int
    placement: Placement

    @property
    def total_cost(self) -> float:
        return self.report.total_cost + self.migration_cost


@dataclass
class ReplanResult:
    """All epoch reports of one replanned horizon."""

    epochs: list[EpochReport] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(e.total_cost for e in self.epochs)

    @property
    def serve_cost(self) -> float:
        """Storage + traffic across all epochs, migration excluded."""
        return sum(e.report.total_cost for e in self.epochs)

    @property
    def migration_cost(self) -> float:
        return sum(e.migration_cost for e in self.epochs)

    @property
    def final_placement(self) -> Placement:
        if not self.epochs:
            raise ValueError("no epochs were replanned")
        return self.epochs[-1].placement


class EpochReplanner:
    """Re-solves the static placement per epoch, paying migration.

    Parameters
    ----------
    graph:
        The network (nodes ``0..n-1``, fees in ``weight``).
    metric:
        Its distance backend (dense or lazy closure of ``graph``).
    storage_costs:
        Per-node storage prices, shared by every epoch.
    config:
        A :class:`~repro.config.PlanConfig` shared by every per-epoch
        :class:`~repro.engine.PlacementEngine` solve.  Legacy engine
        keywords (``fl_solver=...``, ``jobs=...``) are still accepted in
        its place and validated through the same config.
    """

    def __init__(
        self,
        graph: nx.Graph,
        metric,
        storage_costs: np.ndarray,
        config: PlanConfig | None = None,
        **engine_kwargs,
    ) -> None:
        if config is not None and engine_kwargs:
            raise TypeError(
                "pass either a PlanConfig or engine keywords, not both: "
                f"{sorted(engine_kwargs)}"
            )
        self.graph = graph
        self.metric = metric
        self.storage_costs = np.asarray(storage_costs, dtype=float)
        # the legacy kwargs spelling funnels through the same validation
        self.config = config if config is not None else PlanConfig(**engine_kwargs)
        # one routing/path state for all per-epoch simulators
        self._path_cache = PathCache(graph)

    # ------------------------------------------------------------------
    def _migration(
        self, old: tuple[int, ...], new: tuple[int, ...]
    ) -> tuple[float, int, int]:
        """Transfer cost into a new copy set from the nearest old copies."""
        old_set = set(old)
        gained = [v for v in new if v not in old_set]
        dropped = len(old_set.difference(new))
        if not gained:
            return 0.0, 0, dropped
        dist = self.metric.dist_to_set(sorted(old_set))
        return float(dist[np.asarray(gained, dtype=int)].sum()), len(gained), dropped

    # ------------------------------------------------------------------
    def run(self, workload, *, log_seed: int | None = None) -> ReplanResult:
        """Replan and bill every epoch of a
        :class:`~repro.workloads.dynamic.DynamicWorkload`.

        ``log_seed`` shuffles each epoch's replayed log (``log_seed +
        epoch``); the static bill is order-independent, so this only
        matters when comparing against order-sensitive strategies on the
        same stream.
        """
        result = ReplanResult()
        start = int(np.argmin(self.storage_costs))
        prev: list[tuple[int, ...]] = [
            (start,) for _ in range(workload.num_objects)
        ]
        for e in range(workload.num_epochs):
            inst = workload.epoch_instance(self.metric, self.storage_costs, e)
            placement = PlacementEngine.from_config(inst, self.config).place()

            migration = 0.0
            added = dropped = 0
            for obj in range(workload.num_objects):
                cost, gained, lost = self._migration(
                    prev[obj], placement.copies(obj)
                )
                migration += cost
                added += gained
                dropped += lost

            sim = NetworkSimulator(
                self.graph, inst, update_policy="mst",
                path_cache=self._path_cache,
            )
            log = workload.epoch_log(
                e, seed=None if log_seed is None else log_seed + e
            )
            report = sim.run(placement, log)
            result.epochs.append(
                EpochReport(e, report, migration, added, dropped, placement)
            )
            prev = [placement.copies(obj) for obj in range(workload.num_objects)]
        return result
