"""Event-level simulation: executable cost model and dynamic strategies.

* :mod:`events` -- columnar :class:`RequestLog` event streams (vectorized
  expansion of frequencies; iterates as :class:`Request` objects);
* :mod:`paths` -- bounded LRU of per-source predecessor arrays, the
  shared hop-by-hop routing state;
* :mod:`simulator` -- replay a log against a static placement on the real
  graph: vectorized billing by default, hop-by-hop routing (per-link
  load) on request (validates the closed-form accounting, E11);
* :mod:`online` -- a count-based dynamic strategy for the online-vs-static
  comparison (Experiment E12);
* :mod:`replanner` -- epoch-wise static re-solving with explicit
  migration cost, the static/online bridge (Experiment E15).
"""

from .events import READ, WRITE, Request, RequestLog, request_log_from_instance
from .online import OnlineCountingStrategy
from .paths import PathCache
from .replanner import EpochReplanner, EpochReport, ReplanResult, migration_diff
from .simulator import NetworkSimulator, SimulationReport

__all__ = [
    "Request",
    "RequestLog",
    "READ",
    "WRITE",
    "request_log_from_instance",
    "PathCache",
    "NetworkSimulator",
    "SimulationReport",
    "OnlineCountingStrategy",
    "EpochReplanner",
    "migration_diff",
    "EpochReport",
    "ReplanResult",
]
