"""Event-level simulation: executable cost model and online strategies.

* :mod:`events` -- expand frequencies into explicit request logs;
* :mod:`simulator` -- replay a log against a static placement on the real
  graph, accruing per-link fees (validates the closed-form accounting and
  exposes per-link load);
* :mod:`online` -- a count-based dynamic strategy for the online-vs-static
  comparison (Experiment E12).
"""

from .events import READ, WRITE, Request, request_log_from_instance
from .online import OnlineCountingStrategy
from .simulator import NetworkSimulator, SimulationReport

__all__ = [
    "Request",
    "READ",
    "WRITE",
    "request_log_from_instance",
    "NetworkSimulator",
    "SimulationReport",
    "OnlineCountingStrategy",
]
