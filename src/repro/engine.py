"""Catalog-scale placement engine: batched, chunked, parallel.

The paper places objects independently (Theorem 7), and
:func:`repro.core.approx.approximate_placement` follows it literally --
one full pipeline pass per object.  Real catalogs (WWW content providers,
distributed file systems -- Section 1) hold thousands to millions of
objects over *one* network, so almost everything the per-object loop
recomputes is shared: distance rows, their sorted order, the facility
candidate geometry.  :class:`PlacementEngine` reorganizes the pipeline
around that observation without changing a single placement decision:

* **Columnar catalogs.**  The engine consumes the instance's
  ``(num_objects, n)`` frequency matrices directly and processes objects
  in chunks, so per-object temporaries (radii, prefix sums, facility
  matrices) never exist for more than ``chunk_size`` objects at once.
* **Batched radii.**  Per chunk, :func:`repro.core.radii.radii_for_objects`
  runs one shared row sweep: each node block is fetched (and argsorted)
  once for every object in the chunk, and sparse-demand objects restrict
  their prefix-sum state to their demand support.
* **Shared phases.**  Phases 1-3 call the exact helpers the per-object
  loop uses (:func:`~repro.core.approx.phase1_facility_copies`,
  :func:`~repro.core.approx.phase2_add_copies`,
  :func:`~repro.core.approx.phase3_delete_copies`), so the engine's copy
  sets are identical to the loop's -- bit-for-bit on integer request
  counts; the property suite asserts this.
* **Parallel execution.**  ``jobs > 1`` fans object chunks out over a
  process pool (pinned multiprocessing context).  The instance ships
  once: via :mod:`repro.shm` the dense closure / CSR adjacency and
  frequency matrices are published to shared memory and every worker
  attaches zero-copy read-only views (a few-hundred-byte handle per
  worker instead of an ``O(n^2)`` pickle); where shared memory is
  unavailable the initializer pickle path of old is kept
  (:class:`~repro.graphs.backend.LazyMetric` pickles as its ``O(n + m)``
  adjacency, dropping its row cache).  Each worker keeps its own warm
  row cache across all chunks it processes, and results merge in chunk
  order -- the outcome is independent of ``jobs``, ``chunk_size`` and
  the transport.
* **Compiled kernels.**  The hot loops (radii prefix sums, phase 2/3
  sweeps, backend reductions) dispatch through :mod:`repro.kernels`:
  numba-compiled when importable, the bit-identical numpy reference
  otherwise -- selected by the ``kernels`` knob, never changing results.
* **Streaming.**  :meth:`PlacementEngine.stream` yields
  ``(object, copies)`` pairs chunk by chunk for callers that persist or
  bill placements incrementally and never want the whole catalog's
  intermediate state in memory.
* **Sparse subsets.**  :meth:`PlacementEngine.place_subset` (and
  ``stream(objects=...)``) run the identical chunked/parallel pipeline
  over an arbitrary object subset -- what the incremental epoch
  replanner feeds with only the objects whose demand drifted, instead
  of re-solving a whole near-unchanged catalog.

Quickstart::

    from repro.engine import PlacementEngine
    placement = PlacementEngine(instance, jobs=4).place()

which equals ``approximate_placement(instance)`` on every object.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Iterator, Sequence

import numpy as np

from .core.approx import (
    phase1_facility_copies,
    phase2_add_copies,
    phase3_delete_copies,
    zero_demand_copies,
)
from .core.instance import DataManagementInstance
from .core.placement import Placement
from .core.radii import DEFAULT_RADII_BLOCK, radii_for_objects
from .facility import FL_SOLVERS
from .graphs.backend import PortalMetric
from .graphs.metric import Metric
from .graphs.partition import Partition
from .kernels import KERNEL_MODES, kernel_mode
from .shm import publish_instance

__all__ = ["PlacementEngine", "place_catalog", "DEFAULT_CHUNK_SIZE"]

#: Objects per chunk: each chunk holds three ``(chunk, n)`` radii arrays
#: plus per-object facility scratch, so 512 keeps a 10k-node network's
#: working set in tens of megabytes while amortizing the shared sweep.
DEFAULT_CHUNK_SIZE = 512


class PlacementEngine:
    """Places an entire object catalog with the Section 2 approximation.

    Parameters
    ----------
    instance:
        The multi-object :class:`~repro.core.instance.DataManagementInstance`.
    fl_solver, phase2, phase3, facility_candidates:
        Forwarded to the per-object pipeline; same semantics as
        :func:`~repro.core.approx.approximate_object_placement`.
    chunk_size:
        Objects per batch.  Bounds peak memory; does not affect results.
    jobs:
        Worker processes.  ``1`` (default) runs in-process; ``jobs > 1``
        distributes chunks over a pool.  Does not affect results.
    radii_block:
        Node-block size of the shared radii sweep (memory/batching knob).
    shared_memory:
        With ``jobs > 1``, publish the instance's arrays into
        :mod:`multiprocessing.shared_memory` once (:mod:`repro.shm`) so
        workers attach zero-copy instead of unpickling the whole
        instance per process.  Falls back to the pickle path silently
        when shared memory is unavailable; never affects results.
    kernels:
        Hot-loop dispatch mode (:data:`repro.kernels.KERNEL_MODES`):
        ``"auto"`` uses the compiled numba kernels when importable,
        ``"numpy"`` forces the reference implementations, ``"numba"``
        requests the compiled path (degrading to numpy with a
        provenance note if numba is absent).  Bit-identical either way.
    """

    def __init__(
        self,
        instance: DataManagementInstance,
        *,
        fl_solver: str = "local_search",
        phase2: bool = True,
        phase3: bool = True,
        facility_candidates: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        jobs: int = 1,
        radii_block: int = DEFAULT_RADII_BLOCK,
        shared_memory: bool = True,
        kernels: str = "auto",
    ) -> None:
        if fl_solver not in FL_SOLVERS:
            raise ValueError(
                f"unknown fl_solver {fl_solver!r}; choose from {sorted(FL_SOLVERS)}"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if jobs < 1:
            raise ValueError("jobs must be positive")
        if radii_block < 1:
            raise ValueError("radii_block must be positive")
        if kernels not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernels mode {kernels!r}; choose from {KERNEL_MODES}"
            )
        self.instance = instance
        self.fl_solver = fl_solver
        self.phase2 = phase2
        self.phase3 = phase3
        self.facility_candidates = facility_candidates
        self.chunk_size = int(chunk_size)
        self.jobs = int(jobs)
        self.radii_block = int(radii_block)
        self.shared_memory = bool(shared_memory)
        self.kernels = kernels
        #: Whether the last parallel run shipped the instance via shared
        #: memory (``None`` until a ``jobs > 1`` stream actually runs).
        self.used_shared_memory: bool | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, instance: DataManagementInstance, config) -> "PlacementEngine":
        """An engine configured by a :class:`~repro.config.PlanConfig`.

        The config is duck-typed (anything with ``engine_kwargs()``)
        because :mod:`repro.config` imports this module for its
        defaults; the concrete class cannot be imported here.
        """
        return cls(instance, **config.engine_kwargs())

    @property
    def config(self):
        """This engine's knobs as a :class:`~repro.config.PlanConfig`
        (backend ``"auto"``: the engine works on whatever metric the
        instance carries)."""
        from .config import PlanConfig

        return PlanConfig(
            fl_solver=self.fl_solver,
            phase2=self.phase2,
            phase3=self.phase3,
            facility_candidates=self.facility_candidates,
            chunk_size=self.chunk_size,
            jobs=self.jobs,
            radii_block=self.radii_block,
            shared_memory=self.shared_memory,
            kernels=self.kernels,
        )

    def for_instance(self, instance: DataManagementInstance) -> "PlacementEngine":
        """A new engine with this engine's configuration over another
        instance -- the epoch-replanning hook: re-solving a drifted
        billing period reuses solver/chunking/parallelism choices
        without re-spelling them."""
        return PlacementEngine.from_config(instance, self.config)

    # ------------------------------------------------------------------
    def place_objects(self, objects: Sequence[int]) -> list[tuple[int, ...]]:
        """Place one chunk of objects; returns their copy tuples in order.

        This is the batched kernel: phase 1 runs per object on its
        support-restricted facility problem, the radii of all live
        objects come from one shared sweep, and phases 2/3 consume those
        rows -- dispatched under this engine's ``kernels`` mode.  Every
        decision matches the per-object loop.
        """
        with kernel_mode(self.kernels):
            return self._place_objects(objects)

    def _place_objects(self, objects: Sequence[int]) -> list[tuple[int, ...]]:
        inst = self.instance
        metric = inst.metric
        objs = [int(o) for o in objects]
        results: list[tuple[int, ...] | None] = [None] * len(objs)

        live: list[int] = []
        for pos, obj in enumerate(objs):
            if inst.total_requests(obj) == 0:
                results[pos] = zero_demand_copies(inst)
            else:
                live.append(pos)
        if not live:
            return results  # type: ignore[return-value]

        opened = {
            pos: phase1_facility_copies(
                inst,
                objs[pos],
                fl_solver=self.fl_solver,
                facility_candidates=self.facility_candidates,
            )
            for pos in live
        }

        live_objs = [objs[pos] for pos in live]
        RW, RS, _ = radii_for_objects(
            metric,
            inst.storage_costs,
            inst.read_freq[live_objs],
            inst.write_freq[live_objs],
            block_size=self.radii_block,
        )
        for k, pos in enumerate(live):
            copies = opened[pos]
            if self.phase2:
                copies = phase2_add_copies(metric, copies, RS[k])
            if self.phase3:
                copies = phase3_delete_copies(metric, copies, RW[k])
            results[pos] = tuple(copies)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _chunked(self, objects: Sequence[int]) -> list[Sequence[int]]:
        """Slice an object sequence into ``chunk_size`` pieces.

        Ranges slice to ranges (the full-catalog case ships two ints per
        chunk to the workers); explicit subsets slice to lists.
        """
        return [
            objects[s:s + self.chunk_size]
            for s in range(0, len(objects), self.chunk_size)
        ]

    def place_subset(
        self, objects: Sequence[int]
    ) -> dict[int, tuple[int, ...]]:
        """Place a sparse object subset; returns ``{object: copy tuple}``.

        The subset rides the exact chunking/parallelism plumbing of
        :meth:`place` -- same chunked shared radii sweep, same process
        pool -- so placing the ``k`` drifted objects of an epoch costs
        what a ``k``-object catalog would, not an ``m``-object one.
        Each object's copies equal what a full :meth:`place` would
        assign it (objects are placed independently).  Duplicates are
        collapsed to their first occurrence; unknown indices raise.
        """
        unique = list(dict.fromkeys(int(o) for o in objects))
        return dict(self.stream(objects=unique))

    def stream(
        self, objects: Sequence[int] | None = None
    ) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(object index, copy tuple)`` chunk by chunk -- only one
        chunk's temporaries are ever live, so a huge catalog streams
        through bounded memory.

        ``objects`` restricts (and orders) the stream to an explicit
        subset; the default covers the whole catalog in object order.
        Unknown indices raise immediately (at the call, not at first
        iteration).
        """
        if objects is None:
            objs: Sequence[int] = range(self.instance.num_objects)
        else:
            m = self.instance.num_objects
            objs = [int(o) for o in objects]
            for o in objs:
                if not 0 <= o < m:
                    raise ValueError(
                        f"object index {o} out of range for a {m}-object catalog"
                    )
        return self._stream_chunks(self._chunked(objs))

    def _stream_chunks(
        self, chunks: list[Sequence[int]]
    ) -> Iterator[tuple[int, tuple[int, ...]]]:
        if self.jobs == 1 or len(chunks) <= 1:
            for chunk in chunks:
                yield from zip(chunk, self.place_objects(chunk))
            return
        kwargs = dict(
            fl_solver=self.fl_solver,
            phase2=self.phase2,
            phase3=self.phase3,
            facility_candidates=self.facility_candidates,
            chunk_size=self.chunk_size,
            radii_block=self.radii_block,
            kernels=self.kernels,
        )
        # Publish the instance's arrays into shared memory once, so the
        # pool initializer ships a few-hundred-byte handle instead of the
        # whole pickled instance; `shared` stays None (pickle path) when
        # shm is unavailable or the metric isn't shareable.
        shared = publish_instance(self.instance) if self.shared_memory else None
        self.used_shared_memory = shared is not None
        if shared is not None:
            initializer, initargs = _engine_worker_init_shm, (shared.handle, kwargs)
        else:
            initializer, initargs = _engine_worker_init, (self.instance, kwargs)
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                mp_context=_pool_context(),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                # Chunks are submitted through a bounded window (2 per worker)
                # and consumed in submission order, so the merge is
                # deterministic, at most a window's worth of results is ever
                # buffered, and a caller that stops iterating early leaves
                # only the in-flight window to drain -- not the whole catalog.
                window = 2 * min(self.jobs, len(chunks))
                pending: deque = deque()
                it = iter(chunks)
                try:
                    for c in it:
                        pending.append((c, pool.submit(_engine_worker_place, c)))
                        if len(pending) >= window:
                            break
                    while pending:
                        chunk_objs, fut = pending.popleft()
                        chunk = fut.result()
                        nxt = next(it, None)
                        if nxt is not None:
                            pending.append(
                                (nxt, pool.submit(_engine_worker_place, nxt))
                            )
                        yield from zip(chunk_objs, chunk)
                finally:
                    for _, fut in pending:
                        fut.cancel()
        finally:
            # The owner unlinks exactly once, after the pool has shut
            # down (the `with` block waits), so no blocks outlive an
            # early-exiting consumer.
            if shared is not None:
                shared.close()

    def place(self) -> Placement:
        """Place every object of the catalog; equals the per-object loop."""
        return Placement(tuple(copies for _, copies in self.stream()))

    def bill(self, placement: Placement, *, policy: str = "mst", cost_model=None):
        """Charge ``placement`` against this engine's instance.

        Accounting goes through the pluggable seam
        (:mod:`repro.costmodel`): ``cost_model`` is a registered name or
        model instance, ``None`` meaning the default ``"krw"`` -- whose
        bill is :func:`repro.core.costs.placement_cost` verbatim.
        Returns the model's :class:`~repro.core.costs.CostBreakdown`.
        """
        from .costmodel import get_cost_model

        if cost_model is None or isinstance(cost_model, str):
            cost_model = get_cost_model(cost_model or "krw")
        return cost_model.bill_placement(self.instance, placement, policy=policy)

    # ------------------------------------------------------------------
    # sharded dispatch: partition -> portal-summarized shard solves ->
    # stitch.  The second fan-out axis: tasks are (shard, chunk) pairs.
    # ------------------------------------------------------------------
    def place_sharded(self, partition: Partition) -> tuple[Placement, dict]:
        """Place the catalog shard-by-shard against portal summaries.

        Each object is solved only on the shards that carry its demand:
        a shard's subproblem sees the shard's nodes plus every portal,
        with distances from :class:`~repro.graphs.backend.PortalMetric`
        (intra-shard exact, inter-shard routed portal-to-portal) and
        demand masked to the shard's own nodes.  Copy sets of objects
        spanning several shards are merged by union and re-trimmed with
        one global phase-3 pass on the *real* metric, so the final
        placement is billed against true distances.  With a single-shard
        partition this degenerates to :meth:`place` exactly.

        Returns ``(placement, info)`` where ``info`` summarizes the
        decomposition (shard sizes, per-shard object counts, spanning
        objects, copies dropped by the stitch, backend cache stats).
        """
        inst = self.instance
        if partition.n != inst.num_nodes:
            raise ValueError(
                f"partition covers {partition.n} nodes but the instance "
                f"has {inst.num_nodes}"
            )
        if partition.num_shards == 1:
            placement = self.place()
            return placement, {
                "num_shards": 1,
                "num_portals": 0,
                "shard_sizes": [inst.num_nodes],
                "objects_per_shard": [inst.num_objects],
                "spanning_objects": 0,
                "stitch_dropped": 0,
            }

        m = inst.num_objects
        results: list[tuple[int, ...] | None] = [None] * m

        # Which shards support each object's demand?  An object solves
        # only there; demand-free objects take the global cheapest node
        # (same rule as the per-object loop).
        demand = inst.read_freq + inst.write_freq
        support: list[list[int]] = [[] for _ in range(m)]
        shard_objs: list[list[int]] = [[] for _ in range(partition.num_shards)]
        for s in range(partition.num_shards):
            nodes = partition.shard_array(s)
            for o in np.flatnonzero(demand[:, nodes].sum(axis=1) > 0).tolist():
                support[o].append(s)
                shard_objs[s].append(o)
        for o in range(m):
            if not support[o]:
                results[o] = zero_demand_copies(inst)

        tasks = [
            (s, chunk)
            for s in range(partition.num_shards)
            for chunk in self._chunked(shard_objs[s])
        ]
        outputs = self._run_shard_tasks(partition, tasks)

        # Merge: single-shard objects take their shard's copies as-is;
        # spanning objects union across shards (order-independent, so
        # the outcome does not depend on jobs or task scheduling).
        union: dict[int, set[int]] = {}
        for (s, chunk), mapped in zip(tasks, outputs):
            for o, copies in zip(chunk, mapped):
                union.setdefault(o, set()).update(copies)
        spanning = [o for o in range(m) if len(support[o]) > 1]

        # Stitch: one global phase-3 re-trim on the real metric for the
        # spanning objects -- their per-shard solves could not see that
        # another shard already hosts a nearby copy.
        dropped = 0
        if spanning and self.phase3:
            with kernel_mode(self.kernels):
                for start in range(0, len(spanning), self.chunk_size):
                    batch = spanning[start:start + self.chunk_size]
                    RW, _, _ = radii_for_objects(
                        inst.metric,
                        inst.storage_costs,
                        inst.read_freq[batch],
                        inst.write_freq[batch],
                        block_size=self.radii_block,
                    )
                    for k, o in enumerate(batch):
                        before = sorted(union[o])
                        after = phase3_delete_copies(inst.metric, before, RW[k])
                        dropped += len(before) - len(after)
                        union[o] = set(after)

        for o in range(m):
            if results[o] is None:
                results[o] = tuple(sorted(union[o]))
        placement = Placement(tuple(results))  # type: ignore[arg-type]

        info = {
            "num_shards": partition.num_shards,
            "num_portals": partition.num_portals,
            "shard_sizes": [len(s) for s in partition.shards],
            "objects_per_shard": [len(objs) for objs in shard_objs],
            "spanning_objects": len(spanning),
            "stitch_dropped": dropped,
        }
        stats = getattr(inst.metric, "cache_stats", None)
        if callable(stats):
            info["row_cache"] = stats()
        return placement, info

    def _run_shard_tasks(
        self, partition: Partition, tasks: list[tuple[int, Sequence[int]]]
    ) -> list[list[tuple[int, ...]]]:
        """Run ``(shard, chunk)`` subproblem solves, serially or over the
        pool; returns per-task copy lists already mapped to global node
        ids, in task order."""
        if self.jobs == 1 or len(tasks) <= 1:
            portal_metric = PortalMetric(self.instance.metric, partition)
            cache: dict[int, tuple[PlacementEngine, np.ndarray]] = {}
            outputs = []
            for s, chunk in tasks:
                if s not in cache:
                    sub, view = _shard_subproblem(self.instance, portal_metric, s)
                    cache[s] = (self._shard_engine(sub), view)
                engine, view = cache[s]
                copies = engine.place_objects(chunk)
                outputs.append([tuple(int(view[c]) for c in cs) for cs in copies])
            return outputs

        kwargs = dict(
            fl_solver=self.fl_solver,
            phase2=self.phase2,
            phase3=self.phase3,
            facility_candidates=self.facility_candidates,
            chunk_size=self.chunk_size,
            radii_block=self.radii_block,
            kernels=self.kernels,
        )
        shared = publish_instance(self.instance) if self.shared_memory else None
        self.used_shared_memory = shared is not None
        if shared is not None:
            initializer = _engine_worker_init_shm_sharded
            initargs = (shared.handle, kwargs, partition)
        else:
            initializer = _engine_worker_init_sharded
            initargs = (self.instance, kwargs, partition)
        outputs = [None] * len(tasks)
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks)),
                mp_context=_pool_context(),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                # Same bounded submission window as the chunk stream;
                # tasks are shard-major so a worker's per-shard
                # subproblem cache gets consecutive hits.
                window = 2 * min(self.jobs, len(tasks))
                pending: deque = deque()
                it = iter(enumerate(tasks))
                try:
                    for i, (s, chunk) in it:
                        pending.append(
                            (i, pool.submit(_engine_worker_place_shard, s, chunk))
                        )
                        if len(pending) >= window:
                            break
                    while pending:
                        i, fut = pending.popleft()
                        outputs[i] = fut.result()
                        nxt = next(it, None)
                        if nxt is not None:
                            j, (s, chunk) = nxt
                            pending.append(
                                (j, pool.submit(_engine_worker_place_shard, s, chunk))
                            )
                finally:
                    for _, fut in pending:
                        fut.cancel()
        finally:
            if shared is not None:
                shared.close()
        return outputs  # type: ignore[return-value]

    def _shard_engine(self, sub: DataManagementInstance) -> "PlacementEngine":
        """An in-process engine for one shard subproblem (the fan-out
        already happened at the shard level)."""
        return PlacementEngine(
            sub,
            fl_solver=self.fl_solver,
            phase2=self.phase2,
            phase3=self.phase3,
            facility_candidates=self.facility_candidates,
            chunk_size=self.chunk_size,
            jobs=1,
            radii_block=self.radii_block,
            shared_memory=False,
            kernels=self.kernels,
        )


def place_catalog(
    instance: DataManagementInstance,
    *,
    fl_solver: str = "local_search",
    phase2: bool = True,
    phase3: bool = True,
    facility_candidates: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    jobs: int = 1,
    radii_block: int = DEFAULT_RADII_BLOCK,
    shared_memory: bool = True,
    kernels: str = "auto",
) -> Placement:
    """One-call catalog placement with an explicit, typed knob set.

    The knobs are exactly the engine fields of
    :class:`~repro.config.PlanConfig` (which this delegates through), so
    an unknown keyword is an immediate ``TypeError`` naming the bad
    argument instead of an untyped ``**kwargs`` passthrough.
    """
    from .config import PlanConfig

    config = PlanConfig(
        fl_solver=fl_solver,
        phase2=phase2,
        phase3=phase3,
        facility_candidates=facility_candidates,
        chunk_size=chunk_size,
        jobs=jobs,
        radii_block=radii_block,
        shared_memory=shared_memory,
        kernels=kernels,
    )
    return PlacementEngine.from_config(instance, config).place()


def _shard_subproblem(
    instance: DataManagementInstance,
    portal_metric: PortalMetric,
    shard: int,
) -> tuple[DataManagementInstance, np.ndarray]:
    """One shard's portal-summarized subproblem.

    The node view is the shard's own nodes plus *every* portal (so
    inter-shard routes and remote placement sites stay representable);
    distances are the portal metric's, materialized dense over the view;
    demand is masked to the shard's own nodes -- other shards' requests
    are theirs to serve.  Returns ``(sub_instance, view)`` where
    ``view[i]`` is the global node id of sub-node ``i``.
    """
    part = portal_metric.partition
    nodes = part.shard_array(shard)
    pnodes = np.asarray(part.portal_nodes, dtype=np.int64)
    view = np.unique(np.concatenate([nodes, pnodes])) if pnodes.size else nodes
    sub_metric = Metric(portal_metric.pairwise(view), validate=False)
    in_shard = (part.shard_of[view] == shard).astype(float)
    sub = DataManagementInstance(
        sub_metric,
        instance.storage_costs[view],
        instance.read_freq[:, view] * in_shard,
        instance.write_freq[:, view] * in_shard,
        object_names=instance.object_names,
        object_sizes=instance.object_sizes,
    )
    return sub, view


# ----------------------------------------------------------------------
# worker plumbing: the instance ships once per worker -- as a zero-copy
# shared-memory handle when available, as the initializer pickle
# otherwise -- and each chunk task carries only its object indices (a
# range for full catalogs, an explicit list for sparse subsets).
# ----------------------------------------------------------------------
_WORKER_ENGINE: PlacementEngine | None = None
_WORKER_ATTACHED = None  # keeps the worker's shm segments mapped
_WORKER_SHARDED: dict | None = None  # partition + per-shard subproblem cache


def _pool_context() -> mp.context.BaseContext:
    """The pinned multiprocessing context for engine pools.

    Explicit rather than platform-default so fork/spawn behavior is
    deterministic: ``fork`` where the platform offers it (cheap worker
    start-up, the engine ships no state through inherited globals),
    ``spawn`` elsewhere (macOS/Windows).
    """
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def _engine_worker_init(instance: DataManagementInstance, kwargs: dict) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = PlacementEngine(instance, jobs=1, **kwargs)


def _engine_worker_init_shm(handle, kwargs: dict) -> None:
    """Pool initializer for the zero-copy path: attach read-only views
    onto the owner's shared-memory blocks instead of unpickling the
    instance.  The attachment is kept alive for the worker's lifetime
    and unmapped (never unlinked -- that's the owner's job) at exit."""
    global _WORKER_ENGINE, _WORKER_ATTACHED
    attached = handle.attach()
    _WORKER_ATTACHED = attached
    atexit.register(attached.close)
    _WORKER_ENGINE = PlacementEngine(attached.instance, jobs=1, **kwargs)


def _engine_worker_place(objects: Sequence[int]) -> list[tuple[int, ...]]:
    if _WORKER_ENGINE is None:
        raise RuntimeError(
            "engine worker pool not initialized: _engine_worker_place must "
            "run in a process prepared by _engine_worker_init / "
            "_engine_worker_init_shm"
        )
    return _WORKER_ENGINE.place_objects(objects)


def _engine_worker_init_sharded(
    instance: DataManagementInstance, kwargs: dict, partition: Partition
) -> None:
    """Pickle-path initializer for the shard fan-out: the base worker
    setup plus the partition; portal metric and per-shard subproblems
    build lazily and stay cached for the worker's lifetime."""
    _engine_worker_init(instance, kwargs)
    global _WORKER_SHARDED
    _WORKER_SHARDED = {"partition": partition, "portal_metric": None, "subs": {}}


def _engine_worker_init_shm_sharded(handle, kwargs: dict, partition: Partition) -> None:
    """Zero-copy initializer for the shard fan-out (shm attach + partition)."""
    _engine_worker_init_shm(handle, kwargs)
    global _WORKER_SHARDED
    _WORKER_SHARDED = {"partition": partition, "portal_metric": None, "subs": {}}


def _engine_worker_place_shard(
    shard: int, objects: Sequence[int]
) -> list[tuple[int, ...]]:
    """Solve one chunk of objects on one shard's subproblem; copies come
    back already mapped to global node ids."""
    if _WORKER_ENGINE is None or _WORKER_SHARDED is None:
        raise RuntimeError(
            "engine worker pool not initialized for sharded dispatch: "
            "_engine_worker_place_shard must run in a process prepared by "
            "_engine_worker_init_sharded / _engine_worker_init_shm_sharded"
        )
    ctx = _WORKER_SHARDED
    if ctx["portal_metric"] is None:
        ctx["portal_metric"] = PortalMetric(
            _WORKER_ENGINE.instance.metric, ctx["partition"]
        )
    if shard not in ctx["subs"]:
        sub, view = _shard_subproblem(
            _WORKER_ENGINE.instance, ctx["portal_metric"], shard
        )
        ctx["subs"][shard] = (_WORKER_ENGINE.for_instance(sub), view)
    engine, view = ctx["subs"][shard]
    copies = engine.place_objects(objects)
    return [tuple(int(view[c]) for c in cs) for cs in copies]
