"""Pluggable cost accounting: every bill in the package through one seam.

The paper's objective -- reads + writes + storage on a metric -- used to
be hard-coded in four places (the closed-form kernels of
:mod:`repro.core.costs`, both replay paths of
:class:`~repro.simulate.simulator.NetworkSimulator`, the replanner's
migration diff and the serving daemon's epoch bill).  This module pulls
that accounting behind one protocol so alternative billing scenarios
land as plug-ins instead of forks:

* a *cost model* is anything with a ``name`` and three bill methods
  (:class:`CostModel`), registered under a stable string with
  :func:`register_cost_model` and selected by
  :attr:`repro.config.PlanConfig.cost_model` / ``--cost-model``;
* ``bill_placement`` charges a placement in closed form against the
  instance's frequency matrices (what strategies and the metric-only
  daemon bill);
* ``bill_requests`` charges one billing period's grouped request counts
  (what the simulator's vectorized replay bills);
* ``bill_migration`` charges a whole placement transition (what the
  epoch replanner and the serving daemon both pay per epoch).

Built-in models:

``krw`` (the default)
    The paper's accounting, *bit-identical* to the pre-seam inline code:
    ``bill_placement`` is :func:`repro.core.costs.placement_cost`,
    ``bill_requests`` replicates the vectorized replay's accrual order
    exactly (storage per copy, then per demand-bearing object: reads at
    the nearest-copy distance into ``read``, write attach distances plus
    per-write copy-MST multicasts into ``update``), and
    ``bill_migration`` is the batched nearest-old-copy transfer diff.
    Property-tested equal to the legacy accounting on dense and lazy
    backends.

``admission``
    Per-timeslot admission-controlled accounting (the
    ``admittedNumOfQueriesPerTS`` decomposition of the
    sample-replication exemplar): each billing period splits into
    ``slots`` timeslots, reads are admitted cheapest-first against a
    per-slot capacity of ``capacity_per_copy * |copies|`` (rejected
    reads pay nothing and are reported), writes are always admitted.
    ``detail`` records the accepted/rejected split and a per-slot
    storage/read/update decomposition.  Uncapped
    (``capacity_per_copy=None``) it bills the ``krw`` total.

``broadcast-write``
    Multicast write propagation (the data-broadcast PTAS direction):
    instead of every write re-paying the copy-set MST, each object with
    at least one write pays **one** propagation charge of
    ``mst_cost(S)`` per billing period -- writers still pay their
    attach distance.  Never exceeds the ``krw`` bill and equals it on
    read-only demand.

Request-convention caveat: ``bill_requests`` (and the request-replay
``bill_placement`` of the two scenario models) follows the simulator's
per-object fee convention -- object sizes do not scale the bill, and the
split books write attach distances as update traffic.  The analytic
``krw`` ``bill_placement`` keeps the paper's restricted split (attach
booked as read) and size scaling; only the totals coincide (Experiment
E11 / E20).
"""

from __future__ import annotations

from typing import NamedTuple, Protocol, runtime_checkable

import numpy as np

from .core.costs import CostBreakdown, placement_cost
from .core.instance import DataManagementInstance
from .core.placement import Placement
from .graphs.mst import mst_cost

__all__ = [
    "MigrationBill",
    "CostModel",
    "register_cost_model",
    "get_cost_model",
    "available_cost_models",
    "KRWCostModel",
    "AdmissionCostModel",
    "BroadcastWriteCostModel",
]


class MigrationBill(NamedTuple):
    """One placement transition's bill: transfer cost + copy churn.

    A named tuple so legacy ``cost, added, dropped = ...`` unpacking
    (the pre-seam ``migration_diff`` contract) keeps working.
    """

    cost: float
    added: int
    dropped: int


@runtime_checkable
class CostModel(Protocol):
    """What every accounting consumer requires of a registered model.

    ``routable`` declares whether the model's traffic charges are
    realized by routing messages hop-by-hop on the actual graph (true
    for ``krw``: cheapest paths realize metric distances, MST edges
    embed as cheapest paths).  Non-routable models are closed-form only:
    the simulator refuses ``track_edge_load`` / ``"kmb"`` for them.
    """

    name: str
    routable: bool

    def bill_placement(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        *,
        policy: str = "mst",
    ) -> CostBreakdown: ...

    def bill_requests(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        reads: np.ndarray,
        writes: np.ndarray,
        *,
        objects=None,
    ) -> CostBreakdown: ...

    def bill_storage(
        self, instance: DataManagementInstance, placement: Placement
    ) -> float: ...

    def bill_migration(self, metric, prev, new) -> MigrationBill: ...


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_COST_MODELS: dict[str, CostModel] = {}


def register_cost_model(obj=None, *, name: str | None = None, override: bool = False):
    """Register a cost model class (instantiated) or instance.

    Usable bare (``@register_cost_model``, taking the model's ``name``
    attribute) or parameterized
    (``@register_cost_model(name="mine", override=True)``).  Registering
    a taken name without ``override=True`` is an error -- two plug-ins
    silently fighting over one name would make configs ambiguous.
    """
    if obj is None:
        def deco(inner):
            return register_cost_model(inner, name=name, override=override)
        return deco

    model: CostModel = obj() if isinstance(obj, type) else obj
    key = name or getattr(model, "name", "")
    if not key:
        raise ValueError("a cost model needs a non-empty name")
    for method in ("bill_placement", "bill_requests", "bill_migration"):
        if not callable(getattr(model, method, None)):
            raise TypeError(f"cost model {key!r} has no {method}() method")
    if key in _COST_MODELS and not override:
        raise ValueError(
            f"cost model name {key!r} is already registered; pass "
            "override=True to replace it"
        )
    model.name = key
    _COST_MODELS[key] = model
    return obj


def get_cost_model(name: str) -> CostModel:
    try:
        return _COST_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown cost model {name!r}; registered: "
            f"{', '.join(available_cost_models())}"
        ) from None


def available_cost_models() -> tuple[str, ...]:
    """Registered names, in registration order (built-ins first)."""
    return tuple(_COST_MODELS)


# ----------------------------------------------------------------------
# built-in models
# ----------------------------------------------------------------------
@register_cost_model
class KRWCostModel:
    """The paper's accounting, bit-identical to the pre-seam inline code.

    Every method reproduces the exact numpy operations *in the exact
    accumulation order* of the code it replaced, so the default model's
    bills are deterministically bit-identical to the legacy ones (the
    committed E15/E16/E19 artifacts pass the gate unchanged; the
    property suite asserts equality on dense and lazy backends).
    """

    name = "krw"
    routable = True

    def bill_placement(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        *,
        policy: str = "mst",
    ) -> CostBreakdown:
        """Closed-form catalog bill: the paper's restricted split, object
        sizes scaling each object's contribution
        (:func:`repro.core.costs.placement_cost` verbatim)."""
        return placement_cost(instance, placement, policy=policy)

    def bill_storage(
        self, instance: DataManagementInstance, placement: Placement
    ) -> float:
        """Each copy bought once for the billing period -- the
        simulator's per-copy accrual order, verbatim."""
        storage = 0.0
        cs = instance.storage_costs
        for obj in range(instance.num_objects):
            for v in placement.copies(obj):
                storage += float(cs[v])
        return storage

    def bill_requests(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        reads: np.ndarray,
        writes: np.ndarray,
        *,
        objects=None,
    ) -> CostBreakdown:
        """One billing period's grouped request counts, billed like the
        vectorized replay: reads (``read``) and write attach messages
        (``update``) pay the batched nearest-copy distance times their
        count; each write additionally pays the copy-set MST
        (``update``).  ``objects`` restricts the loop (the simulator
        passes the log's object set); by default every demand-bearing
        object is billed.  ``detail["messages"]`` counts routed
        messages (local serves ship none)."""
        metric = instance.metric
        if objects is None:
            demand = np.asarray(reads).sum(axis=1) + np.asarray(writes).sum(axis=1)
            objects = np.flatnonzero(demand > 0)
        storage = self.bill_storage(instance, placement)
        read_cost = 0.0
        update_cost = 0.0
        messages = 0
        node_ids = np.arange(instance.num_nodes)
        for obj in objects:
            obj = int(obj)
            r = reads[obj]
            w = writes[obj]
            copies = placement.copies(obj)
            nearest, dist = metric.nearest_in_set(copies)
            read_cost += float(r @ dist)
            update_cost += float(w @ dist)
            num_writes = int(w.sum())
            if num_writes and len(copies) > 1:
                update_cost += num_writes * mst_cost(metric, copies)
                # each MST edge is one multicast message per write
                messages += num_writes * (len(copies) - 1)
            # reads/attaches served by a local copy ship no message
            remote = nearest != node_ids
            messages += int(r[remote].sum() + w[remote].sum())
        return CostBreakdown(
            storage, read_cost, update_cost, detail={"messages": messages}
        )

    def bill_migration(self, metric, prev, new) -> MigrationBill:
        """Batched migration bill for a whole placement transition.

        Gained copies are grouped by their object's previous copy set;
        each distinct group is billed with one vectorized
        ``dist_to_set`` query (on a lazy backend: one multi-source
        Dijkstra) instead of one backend query per object.  Objects
        whose copy sets did not move -- the common case under
        incremental replanning -- are skipped outright.  Dropping a
        copy is free, like releasing rented storage.
        """
        gained_by_prev: dict[tuple[int, ...], list[int]] = {}
        added = dropped = 0
        for old, nxt in zip(prev, new):
            if old == nxt:
                continue
            old_set = set(old)
            gained = [v for v in nxt if v not in old_set]
            dropped += len(old_set.difference(nxt))
            if gained:
                added += len(gained)
                gained_by_prev.setdefault(old, []).extend(gained)
        cost = 0.0
        for old, nodes in gained_by_prev.items():
            dist = metric.dist_to_set(old)
            cost += float(dist[np.asarray(nodes, dtype=int)].sum())
        return MigrationBill(cost, added, dropped)


class AdmissionCostModel(KRWCostModel):
    """Per-timeslot capacity-admitted accounting.

    Each billing period is split into ``slots`` equal timeslots (demand
    splits evenly, the stationary-period convention).  Per slot and
    object, the copy set serves at most ``capacity_per_copy * |copies|``
    reads; reads are admitted cheapest-first (sorted by distance to the
    nearest copy, fractional at the capacity boundary) and rejected
    reads pay nothing.  Writes are always admitted -- consistency
    updates cannot be load-shed -- and are billed ``krw``-style.

    ``detail`` records ``accepted`` / ``rejected`` totals and a
    ``per_slot`` list with each slot's storage/read/update split and its
    own accepted/rejected counts (the per-TS cost lists of the
    sample-replication exemplar).  With ``capacity_per_copy=None`` every
    read is admitted and the total equals the ``krw`` request bill.
    """

    name = "admission"
    routable = False

    def __init__(
        self,
        *,
        slots: int = 4,
        capacity_per_copy: float | None = None,
        name: str | None = None,
    ) -> None:
        if int(slots) < 1:
            raise ValueError("slots must be >= 1")
        if capacity_per_copy is not None and float(capacity_per_copy) < 0:
            raise ValueError("capacity_per_copy must be non-negative (or None)")
        self.slots = int(slots)
        self.capacity_per_copy = (
            None if capacity_per_copy is None else float(capacity_per_copy)
        )
        if name is not None:
            self.name = name

    def bill_placement(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        *,
        policy: str = "mst",
    ) -> CostBreakdown:
        """The instance's frequency matrices billed as one admission-
        controlled period (request convention -- see the module
        docstring)."""
        if policy != "mst":
            raise ValueError(
                f"cost model {self.name!r} only supports the 'mst' cost "
                f"policy, not {policy!r}"
            )
        placement.validate(instance)
        return self.bill_requests(
            instance, placement, instance.read_freq, instance.write_freq
        )

    def bill_requests(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        reads: np.ndarray,
        writes: np.ndarray,
        *,
        objects=None,
    ) -> CostBreakdown:
        metric = instance.metric
        slots = self.slots
        if objects is None:
            demand = np.asarray(reads).sum(axis=1) + np.asarray(writes).sum(axis=1)
            objects = np.flatnonzero(demand > 0)
        storage = self.bill_storage(instance, placement)
        read_cost = 0.0
        update_cost = 0.0
        accepted = 0.0
        rejected = 0.0
        messages = 0
        slot_read = [0.0] * slots
        slot_accepted = [0.0] * slots
        slot_rejected = [0.0] * slots
        for obj in objects:
            obj = int(obj)
            r = np.asarray(reads[obj], dtype=float)
            w = writes[obj]
            copies = placement.copies(obj)
            _, dist = metric.nearest_in_set(copies)
            # writes: always admitted, krw-style (attach + per-write MST)
            update_cost += float(w @ dist)
            num_writes = int(w.sum())
            if num_writes and len(copies) > 1:
                update_cost += num_writes * mst_cost(metric, copies)
                messages += num_writes * (len(copies) - 1)
            # reads: even slot split, admitted cheapest-first vs capacity
            per_slot = r / slots
            slot_demand = float(per_slot.sum())
            if slot_demand == 0.0:
                continue
            cap = (
                None if self.capacity_per_copy is None
                else self.capacity_per_copy * len(copies)
            )
            if cap is None or slot_demand <= cap:
                cost_s = float(per_slot @ dist)
                acc_s, rej_s = slot_demand, 0.0
            else:
                order = np.argsort(dist, kind="stable")
                counts = per_slot[order]
                cum = np.cumsum(counts)
                take = np.clip(cap - (cum - counts), 0.0, counts)
                cost_s = float(take @ dist[order])
                acc_s, rej_s = float(cap), slot_demand - float(cap)
            # the slots are identical under the even split: bill one,
            # multiply -- the per-slot lists still expose the split
            read_cost += slots * cost_s
            accepted += slots * acc_s
            rejected += slots * rej_s
            for s in range(slots):
                slot_read[s] += cost_s
                slot_accepted[s] += acc_s
                slot_rejected[s] += rej_s
        detail = {
            "slots": slots,
            "capacity_per_copy": self.capacity_per_copy,
            "accepted": accepted,
            "rejected": rejected,
            "messages": messages,
            "per_slot": [
                {
                    "slot": s,
                    "storage": storage / slots,
                    "read": slot_read[s],
                    "update": update_cost / slots,
                    "accepted": slot_accepted[s],
                    "rejected": slot_rejected[s],
                }
                for s in range(slots)
            ],
        }
        return CostBreakdown(storage, read_cost, update_cost, detail=detail)


class BroadcastWriteCostModel(KRWCostModel):
    """Multicast write propagation: one copy-set MST charge per period.

    Under ``krw`` every write re-pays the copy-set MST -- the restricted
    per-write multicast.  A broadcast medium propagates one update wave
    to all copies, so here an object with at least one write pays
    ``mst_cost(S)`` **once** per billing period; writers still pay their
    attach distance to the nearest copy.  The bill therefore never
    exceeds ``krw``'s and equals it exactly on read-only demand.
    ``detail["propagations"]`` counts the per-object multicast charges.
    """

    name = "broadcast-write"
    routable = False

    def bill_placement(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        *,
        policy: str = "mst",
    ) -> CostBreakdown:
        """Closed-form analogue of the analytic ``krw`` bill: identical
        storage and restricted read terms (so read-only instances bill
        the ``krw`` amount bit-for-bit), update replaced by the single
        per-period propagation charge, object sizes scaling as usual."""
        if policy != "mst":
            raise ValueError(
                f"cost model {self.name!r} only supports the 'mst' cost "
                f"policy, not {policy!r}"
            )
        placement.validate(instance)
        metric = instance.metric
        total = CostBreakdown(0.0, 0.0, 0.0)
        for obj in range(instance.num_objects):
            nodes = placement.copies(obj)
            d_to_set = metric.dist_to_set(nodes)
            storage = float(instance.storage_costs[np.asarray(nodes)].sum())
            read = float(
                (instance.read_freq[obj] + instance.write_freq[obj]) @ d_to_set
            )
            update = (
                mst_cost(metric, nodes)
                if instance.total_writes(obj) > 0 else 0.0
            )
            total = total + CostBreakdown(storage, read, update).scaled(
                instance.object_size(obj)
            )
        return total

    def bill_requests(
        self,
        instance: DataManagementInstance,
        placement: Placement,
        reads: np.ndarray,
        writes: np.ndarray,
        *,
        objects=None,
    ) -> CostBreakdown:
        metric = instance.metric
        if objects is None:
            demand = np.asarray(reads).sum(axis=1) + np.asarray(writes).sum(axis=1)
            objects = np.flatnonzero(demand > 0)
        storage = self.bill_storage(instance, placement)
        read_cost = 0.0
        update_cost = 0.0
        messages = 0
        propagations = 0
        node_ids = np.arange(instance.num_nodes)
        for obj in objects:
            obj = int(obj)
            r = reads[obj]
            w = writes[obj]
            copies = placement.copies(obj)
            nearest, dist = metric.nearest_in_set(copies)
            read_cost += float(r @ dist)
            update_cost += float(w @ dist)
            num_writes = int(w.sum())
            if num_writes and len(copies) > 1:
                # ONE propagation wave per period, not one per write
                update_cost += mst_cost(metric, copies)
                messages += len(copies) - 1
                propagations += 1
            remote = nearest != node_ids
            messages += int(r[remote].sum() + w[remote].sum())
        return CostBreakdown(
            storage, read_cost, update_cost,
            detail={"messages": messages, "propagations": propagations},
        )


register_cost_model(AdmissionCostModel())
register_cost_model(BroadcastWriteCostModel())
