"""The front door: declare a problem, pick a strategy, get an artifact.

:class:`Planner` is the library's top-level façade.  It binds a
:class:`~repro.config.PlanConfig` (the *declaration*: backend, solver,
chunking, seed) to the strategies of :mod:`repro.registry` (the
*algorithms*) and returns :class:`PlanReport` objects (the *artifacts*:
placement, per-component costs, wall time, provenance config) that
``save()``/``load()`` round-trip through JSON or NPZ byte-exactly::

    from repro import Planner, PlanConfig, workloads

    sc = workloads.www_content_provider(num_objects=1000)
    planner = Planner(PlanConfig(jobs=4))
    report = planner.plan(sc)            # the Section 2 approximation
    report.save("www.npz")               # placement + costs + config
    later = PlanReport.load("www.npz")   # == report

    for r in planner.compare(sc):        # every registered strategy
        print(r.render())

``plan()``/``compare()`` accept either a bare
:class:`~repro.core.instance.DataManagementInstance` or a
:class:`~repro.workloads.scenarios.Scenario`; with a scenario the
config's ``backend`` knob can rebuild the metric (dense or lazy) from
the scenario's graph, because the graph is still at hand.  ``replan()``
is the dynamic-layer front door: it runs an
:class:`~repro.simulate.replanner.EpochReplanner` over a
:class:`~repro.workloads.dynamic.DynamicWorkload`, honoring the
config's ``replan_mode``/``replan_tolerance`` incremental knobs.

The registry is imported lazily inside the methods: strategies produce
``PlanReport`` objects, so :mod:`repro.registry` imports this module at
its top level and the façade must not import it back at import time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from .config import PlanConfig
from .core.costs import CostBreakdown
from .core.instance import DataManagementInstance
from .core.placement import Placement
from .graphs.backend import DENSE_MATERIALIZE_LIMIT, LazyMetric
from .graphs.metric import Metric
from .serialize import artifact_suffix as _artifact_suffix
from .serialize import placement_from_arrays, placement_to_arrays

__all__ = ["PlanReport", "Planner", "compare_table"]

_REPORT_FORMAT = "repro-plan-report"
_REPORT_VERSION = 1


@dataclass(frozen=True)
class PlanReport:
    """One strategy's answer to one instance, with full provenance.

    Attributes
    ----------
    strategy:
        Registry name of the strategy that produced the placement.
    placement:
        The copy sets, one tuple per object.
    cost:
        Storage / read / update breakdown under ``config.cost_policy``.
    wall_time_s:
        Wall-clock seconds the strategy spent (billing excluded).
    config:
        The exact :class:`~repro.config.PlanConfig` used -- re-running
        the same strategy with this config reproduces the placement.
    extras:
        Strategy-specific scalars (e.g. the ``epoch-replan`` migration
        bill, the ``online`` event count).
    """

    strategy: str
    placement: Placement
    cost: CostBreakdown
    wall_time_s: float
    config: PlanConfig
    num_nodes: int
    num_objects: int
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """One-line human summary."""
        return (
            f"[{self.strategy}] {self.num_objects} objects on "
            f"{self.num_nodes} nodes: {self.placement.total_copies()} copies "
            f"(mean {self.placement.replication_degree():.2f}), cost "
            f"{self.cost.total:.2f} (storage {self.cost.storage:.2f} + read "
            f"{self.cost.read:.2f} + update {self.cost.update:.2f}), "
            f"{self.wall_time_s:.3f}s"
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _meta_dict(self) -> dict:
        cost = {
            "storage": self.cost.storage,
            "read": self.cost.read,
            "update": self.cost.update,
        }
        if self.cost.detail is not None:
            # model-specific decomposition (per-slot splits, message
            # counts); omitted entirely for detail-free bills so krw
            # artifacts stay byte-identical to the pre-seam format
            cost["detail"] = self.cost.detail
        return {
            "format": _REPORT_FORMAT,
            "version": _REPORT_VERSION,
            "strategy": self.strategy,
            "cost": cost,
            "wall_time_s": self.wall_time_s,
            "config": self.config.to_dict(),
            "num_nodes": self.num_nodes,
            "num_objects": self.num_objects,
            "extras": self.extras,
        }

    def to_dict(self) -> dict:
        data = self._meta_dict()
        data["copy_sets"] = [list(s) for s in self.placement.copy_sets]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PlanReport":
        if data.get("format") != _REPORT_FORMAT:
            raise ValueError("not a serialized PlanReport")
        return cls(
            strategy=data["strategy"],
            placement=Placement(
                tuple(tuple(int(v) for v in s) for s in data["copy_sets"])
            ),
            cost=CostBreakdown(**data["cost"]),
            wall_time_s=float(data["wall_time_s"]),
            config=PlanConfig.from_dict(data["config"]),
            num_nodes=int(data["num_nodes"]),
            num_objects=int(data["num_objects"]),
            extras=dict(data["extras"]),
        )

    def save(self, path) -> None:
        """Write to ``*.json`` or ``*.npz`` (by suffix); both round-trip
        exactly (``PlanReport.load(p) == self``)."""
        path = Path(path)
        suffix = _artifact_suffix(path)
        if suffix == ".json":
            path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
            return
        nodes, offsets = placement_to_arrays(self.placement)
        np.savez_compressed(
            path,
            meta=np.str_(json.dumps(self._meta_dict())),
            copy_nodes=nodes,
            copy_offsets=offsets,
        )

    @classmethod
    def load(cls, path) -> "PlanReport":
        path = Path(path)
        if _artifact_suffix(path) == ".json":
            return cls.from_dict(json.loads(path.read_text()))
        with np.load(path, allow_pickle=False) as archive:
            data = json.loads(str(archive["meta"]))
            if data.get("format") != _REPORT_FORMAT:
                raise ValueError(f"{path} is not a serialized PlanReport")
            data["copy_sets"] = placement_from_arrays(
                archive["copy_nodes"], archive["copy_offsets"]
            ).copy_sets
            return cls.from_dict(data)


def compare_table(reports: Sequence[PlanReport]) -> str:
    """The bake-off table: one row per strategy, best total first kept in
    caller order (callers sort if they want a ranking)."""
    # deferred: repro.analysis pulls in the experiment runners, which use
    # the registry, which imports this module
    from .analysis.tables import format_table

    rows = [
        [
            r.strategy,
            r.placement.replication_degree(),
            r.cost.storage,
            r.cost.read,
            r.cost.update,
            r.cost.total,
            r.wall_time_s,
        ]
        for r in reports
    ]
    return format_table(
        ("strategy", "mean copies", "storage", "read", "update", "total",
         "time (s)"),
        rows,
    )


class Planner:
    """Bind one :class:`~repro.config.PlanConfig` to the strategy registry.

    ``plan()`` runs one strategy, ``compare()`` runs many; both accept a
    :class:`~repro.core.instance.DataManagementInstance` or a
    :class:`~repro.workloads.scenarios.Scenario` and return
    :class:`PlanReport` artifacts carrying the config as provenance.
    """

    def __init__(self, config: PlanConfig | None = None) -> None:
        self.config = PlanConfig() if config is None else config

    # ------------------------------------------------------------------
    def resolve_instance(self, problem) -> DataManagementInstance:
        """Apply the config's ``backend`` choice to a problem declaration.

        Scenarios still carry their graph, so any backend can be built;
        a bare instance can only be densified (``LazyMetric.as_dense``)
        -- requesting ``lazy`` for a dense-metric instance raises, since
        the adjacency that backend needs is gone.
        """
        instance = getattr(problem, "instance", problem)
        if not isinstance(instance, DataManagementInstance):
            raise TypeError(
                "plan() needs a DataManagementInstance or a Scenario, got "
                f"{type(problem).__name__}"
            )
        backend = self.config.backend
        if backend == "auto":
            return instance
        target = Metric if backend == "dense" else LazyMetric
        if isinstance(instance.metric, target):
            return instance
        graph = getattr(problem, "graph", None)
        if graph is not None:
            metric = (
                Metric.from_graph(graph) if backend == "dense"
                else LazyMetric.from_graph(graph, cache_rows=self.config.cache_rows)
            )
        elif backend == "dense" and isinstance(instance.metric, LazyMetric):
            metric = instance.metric.as_dense()
        else:
            raise ValueError(
                f"cannot rebuild a {backend!r} backend from a bare instance "
                f"with a {type(instance.metric).__name__} metric; pass the "
                "Scenario (its graph is needed) or backend='auto'"
            )
        return DataManagementInstance(
            metric,
            instance.storage_costs,
            instance.read_freq,
            instance.write_freq,
            object_names=instance.object_names,
            object_sizes=instance.object_sizes,
        )

    # ------------------------------------------------------------------
    def plan(self, problem, strategy: str = "krw") -> PlanReport:
        """Run one registered strategy; returns its report."""
        from .registry import get_strategy

        instance = self.resolve_instance(problem)
        return get_strategy(strategy).plan(instance, self.config)

    def compare(
        self, problem, strategies: Sequence[str] | None = None
    ) -> list[PlanReport]:
        """Run several strategies (default: every registered one) on the
        same resolved instance; reports come back in request order."""
        from .registry import available_strategies, get_strategy

        names = list(strategies) if strategies is not None else list(
            available_strategies()
        )
        instance = self.resolve_instance(problem)
        return [get_strategy(name).plan(instance, self.config) for name in names]

    # ------------------------------------------------------------------
    def replan(
        self,
        graph,
        workload,
        storage_costs,
        *,
        metric=None,
        log_seed: int | None = None,
    ):
        """Epoch-replan a dynamic workload under this planner's config.

        The front door to the dynamic layer: builds the distance backend
        from ``graph`` per the config's ``backend`` knob (``"auto"``:
        dense up to :data:`~repro.graphs.backend.DENSE_MATERIALIZE_LIMIT`
        nodes, lazy beyond; an explicit ``metric`` short-circuits the
        choice) and runs a
        :class:`~repro.simulate.replanner.EpochReplanner` over the
        :class:`~repro.workloads.dynamic.DynamicWorkload` -- the
        config's ``replan_mode`` / ``replan_tolerance`` knobs decide
        whether each epoch is a full catalog re-solve or an incremental
        one over the drifted objects only.  Returns the
        :class:`~repro.simulate.replanner.ReplanResult` with per-epoch
        serving bills, migration costs and solve times.

        The workload, the graph and any explicit metric must agree on
        the node count -- a mismatch means the demand matrices index
        nodes that do not exist (or miss nodes that do), so it is a
        :class:`ValueError` here rather than an index error several
        layers down.
        """
        from .simulate.replanner import EpochReplanner

        n_graph = graph.number_of_nodes()
        if workload.num_nodes != n_graph:
            raise ValueError(
                f"workload built for {workload.num_nodes} nodes cannot be "
                f"replanned on a {n_graph}-node graph; regenerate the "
                "workload for this network"
            )
        if metric is not None and metric.n != n_graph:
            raise ValueError(
                f"metric covers {metric.n} nodes but the graph has "
                f"{n_graph}; pass the graph's own distance backend (or "
                "metric=None to build one)"
            )
        if metric is None:
            backend = self.config.backend
            if backend == "auto":
                backend = (
                    "dense"
                    if graph.number_of_nodes() <= DENSE_MATERIALIZE_LIMIT
                    else "lazy"
                )
            metric = (
                Metric.from_graph(graph) if backend == "dense"
                else LazyMetric.from_graph(graph, cache_rows=self.config.cache_rows)
            )
        replanner = EpochReplanner(graph, metric, storage_costs, config=self.config)
        return replanner.run(workload, log_seed=log_seed)

    # ------------------------------------------------------------------
    def serve(
        self,
        graph,
        storage_costs,
        num_objects: int,
        *,
        metric=None,
        checkpoint_path=None,
        keep_history: bool = False,
    ):
        """A live :class:`~repro.serve.PlacementDaemon` under this
        planner's config -- the serving counterpart of :meth:`replan`.

        Builds the distance backend from ``graph`` with the same
        ``backend`` resolution as :meth:`replan` and hands it, the
        graph and the config to the daemon; the caller owns the
        returned daemon (it is a context manager -- ``with
        planner.serve(...) as daemon:``).
        """
        from .serve import PlacementDaemon

        n_graph = graph.number_of_nodes()
        if metric is not None and metric.n != n_graph:
            raise ValueError(
                f"metric covers {metric.n} nodes but the graph has "
                f"{n_graph}; pass the graph's own distance backend (or "
                "metric=None to build one)"
            )
        if metric is None:
            backend = self.config.backend
            if backend == "auto":
                backend = (
                    "dense" if n_graph <= DENSE_MATERIALIZE_LIMIT else "lazy"
                )
            metric = (
                Metric.from_graph(graph) if backend == "dense"
                else LazyMetric.from_graph(graph, cache_rows=self.config.cache_rows)
            )
        return PlacementDaemon(
            storage_costs,
            num_objects,
            metric=metric,
            graph=graph,
            config=self.config,
            checkpoint_path=checkpoint_path,
            keep_history=keep_history,
        )
