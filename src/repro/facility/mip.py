"""Exact UFL via mixed-integer programming (scipy/HiGHS).

Only the facility indicators ``y`` need integrality: once ``y`` is binary,
an optimal ``x`` simply routes every client to its nearest open facility,
so the LP relaxation of ``x`` is automatically integral.  This keeps the
MILP small (``nf`` binaries).

Used as ground truth in Experiment E8 and in the facility test suite to
certify the heuristics' empirical factors.  Exponential-time in the worst
case; intended for ``nf`` up to a few hundred.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import coo_matrix

from .problem import FacilityLocationProblem

__all__ = ["exact_ufl"]


def exact_ufl(problem: FacilityLocationProblem) -> list[int]:
    """Optimal open set (sorted).  Never empty: degenerate zero-demand
    instances open the cheapest facility."""
    f = problem.open_costs
    w = problem.demands
    dist = problem.dist
    nf, nc = dist.shape
    clients = np.flatnonzero(w > 0)
    m = clients.size
    if m == 0:
        return [problem.cheapest_facility()]

    nx = nf * m
    c_obj = np.concatenate([f, (dist[:, clients] * w[clients][None, :]).ravel()])

    # sum_i x_ij = 1
    rows = np.repeat(np.arange(m), nf)
    cols = nf + (np.tile(np.arange(nf), m) * m + np.repeat(np.arange(m), nf))
    a_eq = coo_matrix((np.ones(nf * m), (rows, cols)), shape=(m, nf + nx))
    eq = LinearConstraint(a_eq, lb=np.ones(m), ub=np.ones(m))

    # x_ij - y_i <= 0
    r = np.arange(nf * m)
    a_ub = coo_matrix(
        (
            np.concatenate([np.ones(nf * m), -np.ones(nf * m)]),
            (np.concatenate([r, r]), np.concatenate([nf + r, np.repeat(np.arange(nf), m)])),
        ),
        shape=(nf * m, nf + nx),
    )
    ub = LinearConstraint(a_ub, lb=-np.inf, ub=np.zeros(nf * m))

    integrality = np.concatenate([np.ones(nf), np.zeros(nx)])
    bounds = Bounds(lb=np.zeros(nf + nx), ub=np.ones(nf + nx))

    res = milp(
        c_obj,
        constraints=[eq, ub],
        integrality=integrality,
        bounds=bounds,
    )
    if not res.success:  # pragma: no cover - HiGHS is robust on these MIPs
        raise RuntimeError(f"UFL MILP failed: {res.message}")

    open_set = sorted(int(i) for i in np.flatnonzero(res.x[:nf] > 0.5))
    if not open_set:  # all-zero y can only happen with zero demand
        open_set = [problem.cheapest_facility()]
    return open_set
