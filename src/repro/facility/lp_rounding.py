"""LP relaxation + deterministic filtering/rounding for UFL.

The Shmoys--Tardos--Aardal (STOC'97) pipeline the paper cites as the first
constant-factor FL algorithm:

1. solve the LP relaxation

       min  sum_i f_i y_i + sum_ij w_j c_ij x_ij
       s.t. sum_i x_ij = 1          (every positive-demand client)
            x_ij <= y_i,  x, y >= 0

   (scipy's HiGHS solver);
2. *filtering*: for each client ``j`` compute the ``alpha``-point radius
   ``R_j`` -- the smallest radius around ``j`` containing at least
   ``alpha`` fractional assignment mass; Markov gives
   ``R_j <= C_j / (1 - alpha)`` with ``C_j`` the fractional connection
   cost;
3. *greedy clustering*: process clients by increasing ``R_j``; an
   unclustered client opens the cheapest facility in its radius ball and
   absorbs every client whose ball intersects it.  Triangle inequality
   bounds each absorbed client's connection cost by ``3 R_j``.

With ``alpha = 1/4`` this yields a deterministic 4-approximation; the LP
optimum also serves as a certified lower bound (used in tests to sandwich
the other heuristics).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from .problem import FacilityLocationProblem

__all__ = ["solve_ufl_lp", "lp_rounding_ufl"]


def solve_ufl_lp(
    problem: FacilityLocationProblem,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Solve the UFL LP relaxation.

    Returns ``(lp_value, y, x)`` with ``y`` of shape ``(nf,)`` and ``x`` of
    shape ``(nf, nc)``.  ``lp_value`` is a lower bound on the optimal UFL
    cost.  Zero-demand clients are dropped from the constraints (their
    ``x`` columns are returned as zero).
    """
    f = problem.open_costs
    w = problem.demands
    dist = problem.dist
    nf, nc = dist.shape
    clients = np.flatnonzero(w > 0)
    m = clients.size
    if m == 0:
        return 0.0, np.zeros(nf), np.zeros((nf, nc))

    # variable layout: [y_0..y_{nf-1}, x_{i,j} for i in 0..nf-1, j in clients]
    nx = nf * m
    c_obj = np.concatenate([f, (dist[:, clients] * w[clients][None, :]).ravel()])

    # equality: sum_i x_ij = 1 per client
    rows = np.repeat(np.arange(m), nf)
    cols = nf + (np.tile(np.arange(nf), m) * m + np.repeat(np.arange(m), nf))
    a_eq = coo_matrix(
        (np.ones(nf * m), (rows, cols)), shape=(m, nf + nx)
    ).tocsr()
    b_eq = np.ones(m)

    # inequality: x_ij - y_i <= 0
    r = np.arange(nf * m)
    x_cols = nf + r
    y_cols = np.repeat(np.arange(nf), m)
    a_ub = coo_matrix(
        (
            np.concatenate([np.ones(nf * m), -np.ones(nf * m)]),
            (np.concatenate([r, r]), np.concatenate([x_cols, y_cols])),
        ),
        shape=(nf * m, nf + nx),
    ).tocsr()
    b_ub = np.zeros(nf * m)

    res = linprog(
        c_obj,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not res.success:  # pragma: no cover - HiGHS is robust on these LPs
        raise RuntimeError(f"UFL LP failed: {res.message}")

    y = res.x[:nf]
    x = np.zeros((nf, nc))
    x[:, clients] = res.x[nf:].reshape(nf, m)
    return float(res.fun), y, x


def lp_rounding_ufl(
    problem: FacilityLocationProblem, *, alpha: float = 0.25
) -> list[int]:
    """Deterministic STA filtering + rounding; returns the open set."""
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must lie in (0, 1)")
    f = problem.open_costs
    w = problem.demands
    dist = problem.dist
    clients = np.flatnonzero(w > 0)
    if clients.size == 0:
        return [problem.cheapest_facility()]

    _, _, x = solve_ufl_lp(problem)

    # alpha-point radius per client
    radii = {}
    for j in clients:
        j = int(j)
        col = x[:, j]
        order = np.argsort(dist[:, j], kind="stable")
        mass = np.cumsum(col[order])
        k = int(np.searchsorted(mass, alpha - 1e-12, side="left"))
        k = min(k, order.size - 1)
        radii[j] = float(dist[order[k], j])

    open_set: set[int] = set()
    unclustered = sorted(radii, key=lambda j: (radii[j], j))
    absorbed: set[int] = set()
    for j in unclustered:
        if j in absorbed:
            continue
        ball = np.flatnonzero(dist[:, j] <= radii[j] + 1e-12)
        if ball.size == 0:  # degenerate; fall back to nearest facility
            ball = np.array([int(np.argmin(dist[:, j]))])
        centre = int(ball[np.argmin(f[ball])])
        open_set.add(centre)
        absorbed.add(j)
        # absorb every client whose ball intersects j's ball
        for k in unclustered:
            if k in absorbed:
                continue
            inter = (dist[:, j] <= radii[j] + 1e-12) & (
                dist[:, k] <= radii[k] + 1e-12
            )
            if inter.any():
                absorbed.add(k)

    if not open_set:  # pragma: no cover - defensive
        open_set.add(problem.cheapest_facility())
    return sorted(open_set)
