"""Uncapacitated facility location (UFL): the phase-1 substrate.

Phase 1 of the paper's approximation algorithm (Section 2.2) solves *the
related facility location problem*: the data management instance with every
write recast as a read, i.e. facilities = nodes with opening cost ``cs``,
clients = nodes with demand ``fr + fw``, connection prices = the metric
``ct``.  Lemma 9 shows the approximation factor ``f`` of whatever UFL
algorithm is plugged in carries through to the storage-cost bound
``f * (C^OPTW_s + C^OPTW_r)``.

The problem container is deliberately more general than the phase-1 use
(facility and client sets may differ), so the module doubles as a
standalone UFL library; solvers live in sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import DataManagementInstance

__all__ = ["FacilityLocationProblem", "related_facility_problem"]


@dataclass(frozen=True)
class FacilityLocationProblem:
    """Metric UFL with weighted clients.

    Attributes
    ----------
    open_costs:
        Shape ``(nf,)``: cost of opening each facility.
    demands:
        Shape ``(nc,)``: client weights (zero-demand clients impose no
        serving requirement but are legal).
    dist:
        Shape ``(nf, nc)``: connection price facility x client.
    """

    open_costs: np.ndarray
    demands: np.ndarray
    dist: np.ndarray

    def __post_init__(self) -> None:
        f = np.asarray(self.open_costs, dtype=float)
        d = np.asarray(self.demands, dtype=float)
        c = np.asarray(self.dist, dtype=float)
        object.__setattr__(self, "open_costs", f)
        object.__setattr__(self, "demands", d)
        object.__setattr__(self, "dist", c)
        if c.shape != (f.shape[0], d.shape[0]):
            raise ValueError(
                f"dist must have shape ({f.shape[0]}, {d.shape[0]}), got {c.shape}"
            )
        if np.any(f < 0) or np.any(d < 0) or np.any(c < 0):
            raise ValueError("costs, demands and distances must be non-negative")

    # ------------------------------------------------------------------
    @property
    def num_facilities(self) -> int:
        return self.open_costs.shape[0]

    @property
    def num_clients(self) -> int:
        return self.demands.shape[0]

    def connection_cost(self, open_set) -> float:
        """Demand-weighted nearest-open-facility cost."""
        idx = np.asarray(sorted(set(int(i) for i in open_set)), dtype=int)
        if idx.size == 0:
            raise ValueError("open set must be non-empty")
        return float(self.demands @ self.dist[idx].min(axis=0))

    def facility_cost(self, open_set) -> float:
        idx = np.asarray(sorted(set(int(i) for i in open_set)), dtype=int)
        return float(self.open_costs[idx].sum())

    def cost(self, open_set) -> float:
        """Total UFL objective for a set of open facilities."""
        return self.facility_cost(open_set) + self.connection_cost(open_set)

    def assignments(self, open_set) -> np.ndarray:
        """Nearest open facility per client (smallest-index tie-break)."""
        idx = np.asarray(sorted(set(int(i) for i in open_set)), dtype=int)
        if idx.size == 0:
            raise ValueError("open set must be non-empty")
        sub = self.dist[idx]
        return idx[sub.argmin(axis=0)]

    def cheapest_facility(self) -> int:
        """Deterministic fallback for degenerate (zero-demand) inputs."""
        return int(np.argmin(self.open_costs))


def related_facility_problem(
    instance: DataManagementInstance, obj: int
) -> FacilityLocationProblem:
    """The phase-1 UFL instance: writes recast as reads, updates ignored."""
    return FacilityLocationProblem(
        open_costs=instance.storage_costs,
        demands=instance.demand(obj),
        dist=instance.metric.dist,
    )
