"""Uncapacitated facility location (UFL): the phase-1 substrate.

Phase 1 of the paper's approximation algorithm (Section 2.2) solves *the
related facility location problem*: the data management instance with every
write recast as a read, i.e. facilities = nodes with opening cost ``cs``,
clients = nodes with demand ``fr + fw``, connection prices = the metric
``ct``.  Lemma 9 shows the approximation factor ``f`` of whatever UFL
algorithm is plugged in carries through to the storage-cost bound
``f * (C^OPTW_s + C^OPTW_r)``.

The problem container is deliberately more general than the phase-1 use
(facility and client sets may differ), so the module doubles as a
standalone UFL library; solvers live in sibling modules.

Scaling note: the solvers operate on a dense ``(nf, nc)`` connection
matrix, which is the right kernel shape for numpy but quadratic when every
node is a candidate facility.  On large networks
:func:`related_facility_problem` therefore restricts the candidate set to
a *hot set* (:func:`facility_candidate_set`: high-demand nodes, the
cheapest storage node, and a farthest-point sample for coverage) and the
problem carries a ``facility_nodes`` map from solver indices back to node
ids.  The restriction is an engineering trade -- Lemma 9's factor formally
assumes unrestricted facilities -- but phases 2/3 of the approximation
still run over *all* nodes, so every node can still acquire a copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.instance import DataManagementInstance

__all__ = [
    "FacilityLocationProblem",
    "related_facility_problem",
    "facility_candidate_set",
    "FACILITY_AUTO_THRESHOLD",
    "DEFAULT_FACILITY_CANDIDATES",
]

#: ``related_facility_problem`` keeps every node as a candidate facility
#: up to this instance size; above it the candidate set is capped.
FACILITY_AUTO_THRESHOLD = 1024

#: Candidate-set size used when the auto threshold kicks in.
DEFAULT_FACILITY_CANDIDATES = 256


@dataclass(frozen=True)
class FacilityLocationProblem:
    """Metric UFL with weighted clients.

    Attributes
    ----------
    open_costs:
        Shape ``(nf,)``: cost of opening each facility.
    demands:
        Shape ``(nc,)``: client weights (zero-demand clients impose no
        serving requirement but are legal).
    dist:
        Shape ``(nf, nc)``: connection price facility x client.
    facility_nodes:
        Optional shape ``(nf,)`` map from facility index to an external
        node id (set when facilities are a restricted candidate subset of
        a network's nodes).  ``None`` means facility ``i`` *is* node ``i``.
    client_nodes:
        Optional shape ``(nc,)`` map from client index to an external node
        id (set when clients are restricted to the nodes that actually
        issue requests).  ``None`` means client ``j`` *is* node ``j``.
    """

    open_costs: np.ndarray
    demands: np.ndarray
    dist: np.ndarray
    facility_nodes: np.ndarray | None = field(default=None)
    client_nodes: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        f = np.asarray(self.open_costs, dtype=float)
        d = np.asarray(self.demands, dtype=float)
        c = np.asarray(self.dist, dtype=float)
        object.__setattr__(self, "open_costs", f)
        object.__setattr__(self, "demands", d)
        object.__setattr__(self, "dist", c)
        if c.shape != (f.shape[0], d.shape[0]):
            raise ValueError(
                f"dist must have shape ({f.shape[0]}, {d.shape[0]}), got {c.shape}"
            )
        if np.any(f < 0) or np.any(d < 0) or np.any(c < 0):
            raise ValueError("costs, demands and distances must be non-negative")
        if self.facility_nodes is not None:
            fn = np.asarray(self.facility_nodes, dtype=int)
            object.__setattr__(self, "facility_nodes", fn)
            if fn.shape != (f.shape[0],):
                raise ValueError(
                    f"facility_nodes must have shape ({f.shape[0]},), got {fn.shape}"
                )
        if self.client_nodes is not None:
            cn = np.asarray(self.client_nodes, dtype=int)
            object.__setattr__(self, "client_nodes", cn)
            if cn.shape != (d.shape[0],):
                raise ValueError(
                    f"client_nodes must have shape ({d.shape[0]},), got {cn.shape}"
                )

    # ------------------------------------------------------------------
    @property
    def num_facilities(self) -> int:
        return self.open_costs.shape[0]

    @property
    def num_clients(self) -> int:
        return self.demands.shape[0]

    def connection_cost(self, open_set) -> float:
        """Demand-weighted nearest-open-facility cost."""
        idx = np.asarray(sorted(set(int(i) for i in open_set)), dtype=int)
        if idx.size == 0:
            raise ValueError("open set must be non-empty")
        return float(self.demands @ self.dist[idx].min(axis=0))

    def facility_cost(self, open_set) -> float:
        idx = np.asarray(sorted(set(int(i) for i in open_set)), dtype=int)
        return float(self.open_costs[idx].sum())

    def cost(self, open_set) -> float:
        """Total UFL objective for a set of open facilities."""
        return self.facility_cost(open_set) + self.connection_cost(open_set)

    def assignments(self, open_set) -> np.ndarray:
        """Nearest open facility per client (smallest-index tie-break)."""
        idx = np.asarray(sorted(set(int(i) for i in open_set)), dtype=int)
        if idx.size == 0:
            raise ValueError("open set must be non-empty")
        sub = self.dist[idx]
        return idx[sub.argmin(axis=0)]

    def cheapest_facility(self) -> int:
        """Deterministic fallback for degenerate (zero-demand) inputs."""
        return int(np.argmin(self.open_costs))

    def to_nodes(self, open_set) -> list[int]:
        """Map solver facility indices back to node ids, sorted."""
        idx = sorted(set(int(i) for i in open_set))
        if self.facility_nodes is None:
            return idx
        return sorted(int(self.facility_nodes[i]) for i in idx)


def facility_candidate_set(
    metric,
    storage_costs: np.ndarray,
    demand: np.ndarray,
    k: int,
) -> np.ndarray:
    """A deterministic hot set of ``k`` candidate facility nodes.

    Composition (all ties broken towards the smallest node index):

    * the cheapest-storage node -- the zero-demand fallback must stay
      representable;
    * the top ``k // 2`` nodes by demand weight -- where opening a
      facility pays off directly;
    * a farthest-point (k-center style) fill to ``k`` nodes -- so sparse
      regions keep a nearby candidate and no client is left stranded far
      from every facility.

    Works against any distance backend: the k-center fill needs one
    distance row per added node, nothing quadratic.
    """
    n = metric.n
    storage_costs = np.asarray(storage_costs, dtype=float)
    demand = np.asarray(demand, dtype=float)
    if k >= n:
        return np.arange(n)
    if k < 1:
        raise ValueError("k must be >= 1")

    chosen: list[int] = [int(np.argmin(storage_costs))]
    chosen_set = set(chosen)
    # stable demand ranking: weight descending, index ascending
    by_demand = np.lexsort((np.arange(n), -demand))
    for v in by_demand[: k // 2]:
        v = int(v)
        if demand[v] <= 0 or len(chosen) >= k:
            break
        if v not in chosen_set:
            chosen.append(v)
            chosen_set.add(v)

    dts = np.min(np.asarray(metric.rows(chosen)), axis=0)
    while len(chosen) < k:
        v = int(np.argmax(dts))  # first maximiser -> deterministic
        if v in chosen_set:  # pragma: no cover - only if graph degenerate
            break
        chosen.append(v)
        chosen_set.add(v)
        np.minimum(dts, np.asarray(metric.row(v)), out=dts)
    return np.asarray(sorted(chosen), dtype=int)


def related_facility_problem(
    instance: DataManagementInstance,
    obj: int,
    *,
    max_facilities: int | None = None,
    drop_zero_clients: bool = False,
) -> FacilityLocationProblem:
    """The phase-1 UFL instance: writes recast as reads, updates ignored.

    ``max_facilities`` caps the candidate facility set (``None`` = every
    node up to :data:`FACILITY_AUTO_THRESHOLD`, then
    :data:`DEFAULT_FACILITY_CANDIDATES`).  With a cap in effect the
    returned problem carries ``facility_nodes``; feed solver output
    through :meth:`FacilityLocationProblem.to_nodes`.

    ``drop_zero_clients`` restricts the client set to the nodes with
    positive demand (the object's *demand support*), carried in
    ``client_nodes``.  Zero-demand clients contribute exactly nothing to
    any UFL objective, connection cost or solver gain, so the restricted
    problem is equivalent -- but its connection matrix has ``nnz`` columns
    instead of ``n``, which is what makes phase 1 affordable across a
    sparse-demand catalog.  The facility candidate set is still derived
    from the full demand vector, so the cap composition is unchanged.
    """
    metric = instance.metric
    n = metric.n
    demand = instance.demand(obj)
    if max_facilities is None:
        max_facilities = (
            n if n <= FACILITY_AUTO_THRESHOLD else DEFAULT_FACILITY_CANDIDATES
        )
    if max_facilities < 1:
        raise ValueError("max_facilities must be >= 1")

    clients: np.ndarray | None = None
    if drop_zero_clients:
        clients = np.flatnonzero(demand > 0)
        # Restrict only when the support is genuinely sparse: slicing the
        # connection matrix copies it, which near-dense demand does not
        # repay (the restriction never changes any objective either way).
        if clients.size == 0 or 2 * clients.size > n:
            clients = None

    if max_facilities >= n:
        # All nodes are candidates; reuse the dense matrix when one exists
        # instead of copying n rows.
        dist = getattr(metric, "dist", None)
        if dist is None:
            dist = np.asarray(metric.rows(np.arange(n)))
        if clients is not None:
            dist = dist[:, clients]
        return FacilityLocationProblem(
            open_costs=instance.storage_costs,
            demands=demand if clients is None else demand[clients],
            dist=dist,
            client_nodes=clients,
        )

    nodes = facility_candidate_set(
        metric, instance.storage_costs, demand, max_facilities
    )
    dist = np.asarray(metric.rows(nodes))
    # Pin the hot set's rows on backends that support it: phases 2/3 and
    # later objects revisit these exact nodes (copy holders come out of
    # the candidate set), and pinned rows survive LRU churn.  The pins
    # are views into the full-width row block -- no copy.
    precompute = getattr(metric, "precompute", None)
    if precompute is not None:
        precompute(nodes, rows=dist)
    return FacilityLocationProblem(
        open_costs=instance.storage_costs[nodes],
        demands=demand if clients is None else demand[clients],
        dist=dist if clients is None else dist[:, clients],
        facility_nodes=nodes,
        client_nodes=clients,
    )
