"""Local search for UFL: add / drop / swap moves.

Korupolu, Plaxton and Rajaraman (SODA'98, cited by the paper) showed this
classic heuristic is a ``(5 + eps)``-approximation for metric UFL: any
solution that cannot be improved by opening one facility, closing one
facility, or swapping one open facility for a closed one is within a
constant of optimal.  The paper's phase 1 defaults to this solver because
it keeps the overall algorithm *combinatorial* (the headline claim).

Implementation notes (HPC guide style -- measure, then vectorize the hot
loop):

* all candidate *add* gains are evaluated in one numpy expression over the
  full ``(nf, nc)`` distance matrix;
* *drop* gains use the nearest/second-nearest open facility per client
  (one ``bincount``);
* *swap* gains are evaluated per open facility with one vectorized pass
  over all in-candidates, ``O(k * nf * nc)`` per round for ``k`` open;
* moves are prioritized: the best add/drop move is taken when one
  improves, and the ``O(k * nf * nc)`` swap scan only runs in rounds
  where neither does.  The search still terminates only when *no* move of
  any kind improves, so the result is a genuine add/drop/swap local
  optimum and the ``5 + eps`` factor is untouched -- but building a
  ``k``-facility solution costs ``O(k * nf * nc)`` instead of
  ``O(k^2 * nf * nc)``, which is what makes phase 1 usable on
  10k-client instances;
* an ``eps``-scaled acceptance threshold, the standard device that makes
  the iteration count polynomial while degrading the factor only to
  ``5 + eps``.
"""

from __future__ import annotations

import numpy as np

from .problem import FacilityLocationProblem

__all__ = ["local_search_ufl"]

#: Facility rows per chunk in the big (nf, nc) kernels -- bounds scratch
#: memory to ``chunk * nc`` floats instead of a full matrix-sized temp.
_CHUNK = 64


def _chunked_saving(dist: np.ndarray, d1: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``save[i] = sum_j w_j * max(d1_j - dist_ij, 0)`` without an
    ``(nf, nc)`` temporary."""
    nf = dist.shape[0]
    save = np.empty(nf)
    for c0 in range(0, nf, _CHUNK):
        blk = slice(c0, min(c0 + _CHUNK, nf))
        tmp = d1[None, :] - dist[blk]
        np.maximum(tmp, 0.0, out=tmp)
        save[blk] = tmp @ w
    return save


def _chunked_min_cost(dist: np.ndarray, alt: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``out[i] = sum_j w_j * min(dist_ij, alt_j)`` without an
    ``(nf, nc)`` temporary."""
    nf = dist.shape[0]
    out = np.empty(nf)
    for c0 in range(0, nf, _CHUNK):
        blk = slice(c0, min(c0 + _CHUNK, nf))
        out[blk] = np.minimum(dist[blk], alt[None, :]) @ w
    return out


def local_search_ufl(
    problem: FacilityLocationProblem,
    *,
    initial: list[int] | None = None,
    eps: float = 1e-9,
    max_rounds: int = 100_000,
) -> list[int]:
    """Run add/drop/swap local search; returns the sorted open set.

    Parameters
    ----------
    initial:
        Starting open set; defaults to the single facility minimizing the
        one-facility objective (deterministic).
    eps:
        A move is accepted only if it improves the objective by more than
        ``eps * current_cost / nf`` -- guarantees termination in
        polynomially many rounds.
    max_rounds:
        Hard safety cap on the number of accepted moves.
    """
    f = problem.open_costs
    w = problem.demands
    dist = problem.dist
    nf, nc = dist.shape

    if initial is None:
        # best single facility: f_i + sum_j w_j d_ij
        single = f + dist @ w
        open_set = {int(np.argmin(single))}
    else:
        open_set = set(int(i) for i in initial)
        if not open_set:
            raise ValueError("initial open set must be non-empty")

    cols = np.arange(nc)
    for _ in range(max_rounds):
        idx = np.asarray(sorted(open_set), dtype=int)
        sub = dist[idx]  # (k, nc) scratch copy
        pos = sub.argmin(axis=0)  # first (= smallest index) minimiser
        d1 = sub[pos, cols]
        assign = idx[pos]
        if idx.size >= 2:
            sub[pos, cols] = np.inf  # mask the nearest, min again = 2nd
            d2 = sub.min(axis=0)
        else:
            d2 = np.full(nc, np.inf)

        current = float(f[idx].sum() + w @ d1)
        threshold = eps * max(current, 1.0) / max(nf, 1)

        best_gain = threshold
        best_move: tuple[str, int, int] | None = None

        # --- add moves -------------------------------------------------
        save = _chunked_saving(dist, d1, w)  # (nf,)
        add_gain = save - f
        add_gain[idx] = -np.inf
        i_add = int(np.argmax(add_gain))
        if add_gain[i_add] > best_gain:
            best_gain = float(add_gain[i_add])
            best_move = ("add", i_add, -1)

        # --- drop moves ------------------------------------------------
        if idx.size >= 2:
            # cost increase when clients of i fall back to their 2nd choice
            extra = np.bincount(
                np.searchsorted(idx, assign),
                weights=w * (d2 - d1),
                minlength=idx.size,
            )
            drop_gain = f[idx] - extra
            j = int(np.argmax(drop_gain))
            if drop_gain[j] > best_gain:
                best_gain = float(drop_gain[j])
                best_move = ("drop", int(idx[j]), -1)

        # --- swap moves (out in open, in anywhere closed) ---------------
        # Only scanned when no add/drop improves: the expensive pass is
        # reserved for rounds that would otherwise terminate the search.
        closed_mask = np.ones(nf, dtype=bool)
        closed_mask[idx] = False
        if best_move is None and closed_mask.any():
            for out in idx:
                # nearest open distance once `out` is gone
                alt = np.where(assign == out, d2, d1)  # (nc,)
                if not np.all(np.isfinite(alt)):
                    # dropping the only facility: swap target must cover all
                    new_cost_rows = dist @ w
                else:
                    new_cost_rows = _chunked_min_cost(dist, alt, w)
                gain = (w @ d1 - new_cost_rows) + f[out] - f
                gain[~closed_mask] = -np.inf
                i_in = int(np.argmax(gain))
                if gain[i_in] > best_gain:
                    best_gain = float(gain[i_in])
                    best_move = ("swap", int(out), i_in)

        if best_move is None:
            break
        kind, a, b = best_move
        if kind == "add":
            open_set.add(a)
        elif kind == "drop":
            open_set.discard(a)
        else:
            open_set.discard(a)
            open_set.add(b)

    return sorted(open_set)
