"""Local search for UFL: add / drop / swap moves.

Korupolu, Plaxton and Rajaraman (SODA'98, cited by the paper) showed this
classic heuristic is a ``(5 + eps)``-approximation for metric UFL: any
solution that cannot be improved by opening one facility, closing one
facility, or swapping one open facility for a closed one is within a
constant of optimal.  The paper's phase 1 defaults to this solver because
it keeps the overall algorithm *combinatorial* (the headline claim).

Implementation notes (HPC guide style -- measure, then vectorize the hot
loop):

* all candidate *add* gains are evaluated in one numpy expression over the
  full ``(nf, nc)`` distance matrix;
* *drop* gains use the nearest/second-nearest open facility per client
  (one ``bincount``);
* *swap* gains are evaluated per open facility with one vectorized pass
  over all in-candidates, ``O(k * nf * nc)`` per round for ``k`` open;
  when the ``(nf, nc)`` slab fits the scratch budget all ``k``
  out-candidates run through one batched reshape + matmul (each output
  element is the same length-``nc`` row reduction either way) -- the
  catalog regime, where ``nc`` is an object's small demand support and
  per-call overhead would otherwise dominate;
* moves are prioritized: the best add/drop move is taken when one
  improves, and the ``O(k * nf * nc)`` swap scan only runs in rounds
  where neither does.  The search still terminates only when *no* move of
  any kind improves, so the result is a genuine add/drop/swap local
  optimum and the ``5 + eps`` factor is untouched -- but building a
  ``k``-facility solution costs ``O(k * nf * nc)`` instead of
  ``O(k^2 * nf * nc)``, which is what makes phase 1 usable on
  10k-client instances;
* an ``eps``-scaled acceptance threshold, the standard device that makes
  the iteration count polynomial while degrading the factor only to
  ``5 + eps``.
"""

from __future__ import annotations

import numpy as np

from .problem import FacilityLocationProblem

__all__ = ["local_search_ufl"]

#: Scratch budget (in floats) of the big (nf, nc) kernels: facility rows
#: are processed in chunks of ``max(64, _CHUNK_ELEMS // nc)`` rows, so the
#: temporary stays ~4 MB while narrow client sets (sparse-demand catalog
#: objects) run in one numpy call instead of one per 64 rows.  Chunking
#: only bounds scratch: every output element is the same per-row
#: reduction regardless of the chunk split.
_CHUNK_ELEMS = 512 * 1024


def _row_chunk(nc: int) -> int:
    return max(64, _CHUNK_ELEMS // max(nc, 1))


def _chunked_min_cost(dist: np.ndarray, alt: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``out[i] = sum_j w_j * min(dist_ij, alt_j)`` without an
    ``(nf, nc)`` temporary."""
    nf, nc = dist.shape
    chunk = _row_chunk(nc)
    out = np.empty(nf)
    for c0 in range(0, nf, chunk):
        blk = slice(c0, min(c0 + chunk, nf))
        out[blk] = np.minimum(dist[blk], alt[None, :]) @ w
    return out


def _chunked_saving(dist: np.ndarray, d1: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``save[i] = sum_j w_j * max(d1_j - dist_ij, 0)`` without an
    ``(nf, nc)`` temporary."""
    nf, nc = dist.shape
    chunk = _row_chunk(nc)
    save = np.empty(nf)
    for c0 in range(0, nf, chunk):
        blk = slice(c0, min(c0 + chunk, nf))
        tmp = d1[None, :] - dist[blk]
        np.maximum(tmp, 0.0, out=tmp)
        save[blk] = tmp @ w
    return save


def local_search_ufl(
    problem: FacilityLocationProblem,
    *,
    initial: list[int] | None = None,
    eps: float = 1e-9,
    max_rounds: int = 100_000,
) -> list[int]:
    """Run add/drop/swap local search; returns the sorted open set.

    Parameters
    ----------
    initial:
        Starting open set; defaults to the single facility minimizing the
        one-facility objective (deterministic).
    eps:
        A move is accepted only if it improves the objective by more than
        ``eps * current_cost / nf`` -- guarantees termination in
        polynomially many rounds.
    max_rounds:
        Hard safety cap on the number of accepted moves.
    """
    f = problem.open_costs
    w = problem.demands
    dist = problem.dist
    nf, nc = dist.shape

    if initial is None:
        # best single facility: f_i + sum_j w_j d_ij
        single = f + dist @ w
        open_set = {int(np.argmin(single))}
    else:
        open_set = set(int(i) for i in initial)
        if not open_set:
            raise ValueError("initial open set must be non-empty")

    cols = np.arange(nc)
    for _ in range(max_rounds):
        idx = np.asarray(sorted(open_set), dtype=int)
        sub = dist[idx]  # (k, nc) scratch copy
        pos = sub.argmin(axis=0)  # first (= smallest index) minimiser
        d1 = sub[pos, cols]
        assign = idx[pos]
        if idx.size >= 2:
            sub[pos, cols] = np.inf  # mask the nearest, min again = 2nd
            d2 = sub.min(axis=0)
        else:
            d2 = np.full(nc, np.inf)

        current = float(f[idx].sum() + w @ d1)
        threshold = eps * max(current, 1.0) / max(nf, 1)

        best_gain = threshold
        best_move: tuple[str, int, int] | None = None

        # --- add moves -------------------------------------------------
        save = _chunked_saving(dist, d1, w)  # (nf,)
        add_gain = save - f
        add_gain[idx] = -np.inf
        i_add = int(np.argmax(add_gain))
        if add_gain[i_add] > best_gain:
            best_gain = float(add_gain[i_add])
            best_move = ("add", i_add, -1)

        # --- drop moves ------------------------------------------------
        if idx.size >= 2:
            # cost increase when clients of i fall back to their 2nd choice
            extra = np.bincount(
                np.searchsorted(idx, assign),
                weights=w * (d2 - d1),
                minlength=idx.size,
            )
            drop_gain = f[idx] - extra
            j = int(np.argmax(drop_gain))
            if drop_gain[j] > best_gain:
                best_gain = float(drop_gain[j])
                best_move = ("drop", int(idx[j]), -1)

        # --- swap moves (out in open, in anywhere closed) ---------------
        # Only scanned when no add/drop improves: the expensive pass is
        # reserved for rounds that would otherwise terminate the search.
        closed_mask = np.ones(nf, dtype=bool)
        closed_mask[idx] = False
        if best_move is None and closed_mask.any():
            # All k out-candidates share one batched kernel: ALT[t] is the
            # nearest-open-distance vector once idx[t] is gone, and the
            # (k, nf) new-cost matrix is one einsum over min(dist, ALT) --
            # each entry the same per-row reduction the one-facility-at-a-
            # time scan computes.
            ALT = np.where(assign[None, :] == idx[:, None], d2[None, :], d1[None, :])
            finite = np.all(np.isfinite(ALT), axis=1)
            base_read = w @ d1
            k = idx.size
            new_cost = np.empty((k, nf))
            chunk = _CHUNK_ELEMS // max(nf * nc, 1)
            if chunk >= 1:
                # Small (nf, nc) slabs: batch all k out-candidates through
                # one reshape + matmul per slab group (each output row is
                # the same length-nc dot the per-candidate kernel computes).
                for t0 in range(0, k, chunk):
                    t1 = min(t0 + chunk, k)
                    tmp = np.minimum(dist[None, :, :], ALT[t0:t1, None, :])
                    new_cost[t0:t1] = (tmp.reshape(-1, nc) @ w).reshape(t1 - t0, nf)
            else:
                # Big problems keep the scratch-bounded per-candidate pass.
                for t in range(k):
                    new_cost[t] = _chunked_min_cost(dist, ALT[t], w)
            for t, out in enumerate(idx):
                if not finite[t]:
                    # dropping the only facility: swap target must cover all
                    new_cost_rows = dist @ w
                else:
                    new_cost_rows = new_cost[t]
                gain = (base_read - new_cost_rows) + f[out] - f
                gain[~closed_mask] = -np.inf
                i_in = int(np.argmax(gain))
                if gain[i_in] > best_gain:
                    best_gain = float(gain[i_in])
                    best_move = ("swap", int(out), i_in)

        if best_move is None:
            break
        kind, a, b = best_move
        if kind == "add":
            open_set.add(a)
        elif kind == "drop":
            open_set.discard(a)
        else:
            open_set.discard(a)
            open_set.add(b)

    return sorted(open_set)
