"""Local search for UFL: add / drop / swap moves.

Korupolu, Plaxton and Rajaraman (SODA'98, cited by the paper) showed this
classic heuristic is a ``(5 + eps)``-approximation for metric UFL: any
solution that cannot be improved by opening one facility, closing one
facility, or swapping one open facility for a closed one is within a
constant of optimal.  The paper's phase 1 defaults to this solver because
it keeps the overall algorithm *combinatorial* (the headline claim).

Implementation notes (HPC guide style -- measure, then vectorize the hot
loop):

* all candidate *add* gains are evaluated in one numpy expression over the
  full ``(nf, nc)`` distance matrix;
* *drop* gains use the nearest/second-nearest open facility per client
  (one ``bincount``);
* *swap* gains are evaluated per open facility with one vectorized pass
  over all in-candidates, ``O(k * nf * nc)`` per round for ``k`` open;
* steepest descent with an ``eps``-scaled acceptance threshold, which is
  the standard device that makes the iteration count polynomial while
  degrading the factor only to ``5 + eps``.
"""

from __future__ import annotations

import numpy as np

from .problem import FacilityLocationProblem

__all__ = ["local_search_ufl"]


def local_search_ufl(
    problem: FacilityLocationProblem,
    *,
    initial: list[int] | None = None,
    eps: float = 1e-9,
    max_rounds: int = 100_000,
) -> list[int]:
    """Run add/drop/swap local search; returns the sorted open set.

    Parameters
    ----------
    initial:
        Starting open set; defaults to the single facility minimizing the
        one-facility objective (deterministic).
    eps:
        A move is accepted only if it improves the objective by more than
        ``eps * current_cost / nf`` -- guarantees termination in
        polynomially many rounds.
    max_rounds:
        Hard safety cap on the number of accepted moves.
    """
    f = problem.open_costs
    w = problem.demands
    dist = problem.dist
    nf, nc = dist.shape

    if initial is None:
        # best single facility: f_i + sum_j w_j d_ij
        single = f + dist @ w
        open_set = {int(np.argmin(single))}
    else:
        open_set = set(int(i) for i in initial)
        if not open_set:
            raise ValueError("initial open set must be non-empty")

    for _ in range(max_rounds):
        idx = np.asarray(sorted(open_set), dtype=int)
        sub = dist[idx]  # (k, nc)
        order = np.argsort(sub, axis=0, kind="stable")
        d1 = sub[order[0], np.arange(nc)]
        assign = idx[order[0]]
        if idx.size >= 2:
            d2 = sub[order[1], np.arange(nc)]
        else:
            d2 = np.full(nc, np.inf)

        current = float(f[idx].sum() + w @ d1)
        threshold = eps * max(current, 1.0) / max(nf, 1)

        best_gain = threshold
        best_move: tuple[str, int, int] | None = None

        # --- add moves -------------------------------------------------
        save = np.maximum(d1[None, :] - dist, 0.0) @ w  # (nf,)
        add_gain = save - f
        add_gain[idx] = -np.inf
        i_add = int(np.argmax(add_gain))
        if add_gain[i_add] > best_gain:
            best_gain = float(add_gain[i_add])
            best_move = ("add", i_add, -1)

        # --- drop moves ------------------------------------------------
        if idx.size >= 2:
            # cost increase when clients of i fall back to their 2nd choice
            extra = np.bincount(
                np.searchsorted(idx, assign),
                weights=w * (d2 - d1),
                minlength=idx.size,
            )
            drop_gain = f[idx] - extra
            j = int(np.argmax(drop_gain))
            if drop_gain[j] > best_gain:
                best_gain = float(drop_gain[j])
                best_move = ("drop", int(idx[j]), -1)

        # --- swap moves (out in open, in anywhere closed) ---------------
        closed_mask = np.ones(nf, dtype=bool)
        closed_mask[idx] = False
        if closed_mask.any():
            for out in idx:
                # nearest open distance once `out` is gone
                alt = np.where(assign == out, d2, d1)  # (nc,)
                if not np.all(np.isfinite(alt)):
                    # dropping the only facility: swap target must cover all
                    new_cost_rows = dist @ w
                else:
                    new_cost_rows = np.minimum(dist, alt[None, :]) @ w
                gain = (w @ d1 - new_cost_rows) + f[out] - f
                gain[~closed_mask] = -np.inf
                i_in = int(np.argmax(gain))
                if gain[i_in] > best_gain:
                    best_gain = float(gain[i_in])
                    best_move = ("swap", int(out), i_in)

        if best_move is None:
            break
        kind, a, b = best_move
        if kind == "add":
            open_set.add(a)
        elif kind == "drop":
            open_set.discard(a)
        else:
            open_set.discard(a)
            open_set.add(b)

    return sorted(open_set)
