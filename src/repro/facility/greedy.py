"""Greedy UFL (Hochbaum-style ratio greedy).

Repeatedly pick the (facility, client-prefix) pair minimizing

    (remaining opening cost + summed connection cost) / served demand

and open it, until every positive-demand client is served.  This is the
classic set-cover-flavoured greedy: an ``O(log n)`` approximation in
general, but typically near-optimal on metric instances and extremely
fast.  Used in Experiment E8 as a phase-1 alternative to local search.

Already-open facilities may be picked again with zero opening cost, which
lets later rounds re-serve clients more cheaply -- the standard refinement.
"""

from __future__ import annotations

import numpy as np

from .problem import FacilityLocationProblem

__all__ = ["greedy_ufl"]


def greedy_ufl(problem: FacilityLocationProblem) -> list[int]:
    """Run the ratio greedy; returns the sorted open set (never empty)."""
    f = problem.open_costs.copy()
    w = problem.demands
    dist = problem.dist
    nf, nc = dist.shape

    active = w > 0
    open_set: set[int] = set()
    if not active.any():
        return [problem.cheapest_facility()]

    # Pre-sort each facility's client distances once; prefixes are then
    # contiguous slices of these orders restricted to still-active clients.
    order = np.argsort(dist, axis=1, kind="stable")

    for _ in range(nf * max(nc, 1) + 1):  # safety bound; loop exits earlier
        if not active.any():
            break
        best_ratio = np.inf
        best: tuple[int, np.ndarray] | None = None
        for i in range(nf):
            cols = order[i][active[order[i]]]
            if cols.size == 0:
                continue
            dd = dist[i, cols]
            ww = w[cols]
            cum_wd = np.cumsum(ww * dd)
            cum_w = np.cumsum(ww)
            ratios = (f[i] + cum_wd) / cum_w
            k = int(np.argmin(ratios))
            if ratios[k] < best_ratio - 1e-15:
                best_ratio = float(ratios[k])
                best = (i, cols[: k + 1])
        if best is None:  # pragma: no cover - defensive
            break
        i, served = best
        open_set.add(i)
        f[i] = 0.0  # reopening is free from now on
        active[served] = False

    if not open_set:  # pragma: no cover - defensive
        open_set.add(problem.cheapest_facility())
    return sorted(open_set)
