"""Facility location substrate: problem container and four solvers.

The paper's phase 1 plugs in "an approximation algorithm for the facility
location problem"; we provide

* :func:`local_search_ufl` -- add/drop/swap local search (Korupolu et al.,
  factor ``5 + eps``); the default, keeping the pipeline combinatorial;
* :func:`greedy_ufl` -- Hochbaum-style ratio greedy (``O(log n)``);
* :func:`lp_rounding_ufl` -- Shmoys--Tardos--Aardal LP filtering/rounding
  (deterministic factor 4);
* :func:`exact_ufl` -- HiGHS MILP ground truth;
* :func:`solve_ufl_lp` -- the LP relaxation value (certified lower bound).
"""

from .greedy import greedy_ufl
from .local_search import local_search_ufl
from .lp_rounding import lp_rounding_ufl, solve_ufl_lp
from .mip import exact_ufl
from .problem import (
    DEFAULT_FACILITY_CANDIDATES,
    FACILITY_AUTO_THRESHOLD,
    FacilityLocationProblem,
    facility_candidate_set,
    related_facility_problem,
)

__all__ = [
    "FacilityLocationProblem",
    "related_facility_problem",
    "facility_candidate_set",
    "FACILITY_AUTO_THRESHOLD",
    "DEFAULT_FACILITY_CANDIDATES",
    "local_search_ufl",
    "greedy_ufl",
    "lp_rounding_ufl",
    "solve_ufl_lp",
    "exact_ufl",
]

#: Registry used by the approximation algorithm's ``fl_solver`` parameter
#: and by Experiment E8.
FL_SOLVERS = {
    "local_search": local_search_ufl,
    "greedy": greedy_ufl,
    "lp_rounding": lp_rounding_ufl,
    "exact": exact_ufl,
}
