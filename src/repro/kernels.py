"""Compiled hot kernels behind a tiny dispatch registry.

Profiling the catalog pipeline shows a handful of inner loops dominating
wall clock once the algorithmic batching (chunked engine, shared radii
sweep, lazy backend) is in place:

* the radii prefix-sum state (``cumsum`` rows) and the vectorized
  breakpoint searches of :mod:`repro.core.radii`,
* the phase 2 nearest-copy sweep and the phase 3 chunked deletion sweep
  of :mod:`repro.core.approx`,
* :class:`~repro.graphs.backend.LazyMetric`'s small-set reductions
  (``nearest_in_set`` / ``dist_to_set`` argmin/min over a row block; the
  batched Dijkstra row *expansion* itself already runs compiled inside
  scipy and needs no help here).

This module holds, for each such kernel, the **numpy reference
implementation** (the tested source of truth -- the exact arithmetic the
rest of the library was validated against) and, when `numba
<https://numba.pydata.org>`_ is importable, an ``@njit(cache=True)``
twin that replays the identical operations in the identical order, so
the two are *bit-identical* -- never "close enough".  The property suite
(``tests/test_kernels.py``) asserts exact equality on every kernel.

Dispatch
--------
Callers fetch the active implementation through :func:`dispatch`::

    radii_cums = dispatch("radii_cums")
    CW, CWD = radii_cums(SD, SW)

Which implementation is active follows the *kernel mode*:

``"auto"``
    numba when importable, numpy otherwise (the default).
``"numpy"``
    always the reference implementation.
``"numba"``
    request the compiled path; **degrades to numpy with a provenance
    note** when numba is missing (an absent accelerator must never turn
    into an ``ImportError`` at placement time -- the CI fallback leg
    runs exactly this configuration).

The mode is process-global (:func:`set_kernel_mode`), with a
:func:`kernel_mode` context manager for scoped overrides -- that is how
:class:`repro.engine.PlacementEngine` applies its ``kernels`` knob
around each batch without threading a parameter through every helper
signature.  :func:`kernel_provenance` reports the requested mode, numba
availability and the per-kernel active implementation; strategies embed
it in :class:`~repro.api.PlanReport` extras.

Why bit-identity is feasible: numpy's ``cumsum``/``add.accumulate`` is a
*sequential* left-to-right accumulation (not pairwise), numba compiles
without fastmath by default (strict IEEE-754, no FMA contraction or
reassociation), and every search/threshold below is a pure comparison.
Replaying the same operations in the same order therefore produces the
same bits, which is what lets the fast path be a pure wall-clock choice
with zero numerical surface.
"""

from __future__ import annotations

import contextlib
import math

import numpy as np

__all__ = [
    "KERNEL_MODES",
    "KERNEL_NAMES",
    "dispatch",
    "get_kernel_mode",
    "set_kernel_mode",
    "kernel_mode",
    "kernel_provenance",
    "numba_available",
]

#: Valid values of the ``kernels`` knob (:class:`repro.config.PlanConfig`).
KERNEL_MODES = ("auto", "numpy", "numba")


# ----------------------------------------------------------------------
# numpy reference implementations
# ----------------------------------------------------------------------
def _radii_cums_numpy(SD: np.ndarray, SW: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise cumulative weights / weighted distances of sorted state.

    ``SW`` may be consumed in place (callers discard it); returns
    ``(CW, CWD)`` with ``CW[r, j] = sum_{t<=j} SW[r, t]`` and
    ``CWD[r, j] = sum_{t<=j} SW[r, t] * SD[r, t]``.
    """
    CWD = SW * SD
    np.cumsum(CWD, axis=1, out=CWD)
    CW = np.cumsum(SW, axis=1, out=SW)
    return CW, CWD


def _prefix_rows_numpy(
    SD: np.ndarray, CW: np.ndarray, CWD: np.ndarray, z: np.ndarray, total: float
) -> np.ndarray:
    """Vectorized ``P_v(z)`` with a per-row ``z``: exactly
    :func:`repro.core.radii._prefix_from_cums` replayed on every row."""
    b, size = SD.shape
    z = np.minimum(np.asarray(z, dtype=float), total)
    # searchsorted(cw, z, 'left') per row == count of entries < z
    i = np.minimum((CW < z[:, None]).sum(axis=1), size - 1)
    r = np.arange(b)
    prev_w = np.where(i > 0, CW[r, np.maximum(i - 1, 0)], 0.0)
    prev_wd = np.where(i > 0, CWD[r, np.maximum(i - 1, 0)], 0.0)
    out = prev_wd + (z - prev_w) * SD[r, i]
    return np.where(z <= 0, 0.0, out)


def _storage_radii_rows_numpy(
    SD: np.ndarray,
    CW: np.ndarray,
    CWD: np.ndarray,
    costs: np.ndarray,
    total: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(rs, zs)`` over a block of nodes.

    Bit-faithful to :func:`repro.core.radii._storage_radius_from_cums`
    per row: the same early-outs, the same binary-search trajectory
    (per-row ``lo``/``hi`` with the identical probe arithmetic) and the
    same interval formulas, just evaluated for every row of the block at
    once instead of through one Python call per node.
    """
    b = SD.shape[0]
    n_req = int(math.ceil(total))
    if n_req == 0:
        return np.full(b, np.inf), np.full(b, max(n_req, 1), dtype=int)

    p_total = _prefix_rows_numpy(SD, CW, CWD, np.full(b, float(total)), total)
    never = p_total <= costs  # storage never amortizes on these rows

    # binary search the smallest integer z >= 1 with P_v(z) > cs, exactly
    # as the scalar loop does; converged (and `never`) rows stay inactive.
    lo = np.ones(b, dtype=np.int64)
    hi = np.full(b, n_req, dtype=np.int64)
    hi[never] = 1
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) // 2
        pm = _prefix_rows_numpy(SD, CW, CWD, mid.astype(float), total)
        go_hi = active & (pm > costs)
        hi = np.where(go_hi, mid, hi)
        lo = np.where(active & ~go_hi, mid + 1, lo)
    zs = lo

    zm1 = np.maximum(zs - 1, 1)
    p_lo = _prefix_rows_numpy(SD, CW, CWD, (zs - 1).astype(float), total)
    d_lo = np.where(zs > 1, p_lo / zm1, 0.0)
    z_hi = np.minimum(zs.astype(float), total)
    d_hi = _prefix_rows_numpy(SD, CW, CWD, z_hi, total) / z_hi
    lower = np.maximum(d_lo, costs / zs)
    upper = np.where(zs > 1, np.minimum(d_hi, costs / zm1), d_hi)
    # The intersection is provably non-empty; guard against float slack.
    upper = np.maximum(upper, lower)
    rs = np.where(upper > lower, 0.5 * (lower + upper), lower)
    rs = np.where(never, np.inf, rs)
    zs = np.where(never, max(n_req, 1), zs)
    return rs, zs.astype(int)


def _phase2_sweep_numpy(
    dts: np.ndarray, rs: np.ndarray, dist: np.ndarray
) -> np.ndarray:
    """Phase-2 sweep over a dense distance matrix.

    ``dts`` (the nearest-copy vector) is updated in place; returns the
    node indices that received a new copy, in scan order.  Candidates
    are fixed from the *initial* ``dts`` (adding copies only shrinks
    nearest-copy distances) and re-checked at their turn -- the exact
    loop :func:`repro.core.approx.phase2_add_copies` always ran.
    """
    added = []
    for v in np.flatnonzero(dts > 5.0 * rs):
        v = int(v)
        if dts[v] > 5.0 * rs[v]:
            added.append(v)
            np.minimum(dts, dist[v], out=dts)
    return np.asarray(added, dtype=np.int64)


def _phase3_sweep_numpy(
    rows: np.ndarray, live: np.ndarray, u_bound: np.ndarray, alive: np.ndarray
) -> None:
    """Phase-3 deletion sweep over one chunk of scanned holders.

    ``rows[r]`` holds the distances from scanned holder ``live[r]``
    (a position into the scan order) to every holder; ``alive`` is
    updated in place.  The scanned holder never deletes itself and
    holders deleted earlier in the chunk stop scanning.
    """
    for r in range(live.size):
        i = int(live[r])
        if not alive[i]:
            continue
        doomed = alive & (rows[r] <= u_bound)
        doomed[i] = False
        alive[doomed] = False


def _nearest_reduce_numpy(
    sub: np.ndarray, idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Column-wise argmin reduction of a ``(k, n)`` row block: per node,
    the nearest target (first = smallest-index minimiser) and its
    distance."""
    arg = sub.argmin(axis=0)
    return idx[arg], sub[arg, np.arange(sub.shape[1])]


def _dist_reduce_numpy(sub: np.ndarray) -> np.ndarray:
    """Column-wise min reduction of a ``(k, n)`` row block."""
    return sub.min(axis=0)


#: Kernel name -> numpy reference implementation (always present).
_NUMPY_IMPLS = {
    "radii_cums": _radii_cums_numpy,
    "radii_prefix": _prefix_rows_numpy,
    "radii_storage": _storage_radii_rows_numpy,
    "phase2_sweep": _phase2_sweep_numpy,
    "phase3_sweep": _phase3_sweep_numpy,
    "nearest_reduce": _nearest_reduce_numpy,
    "dist_reduce": _dist_reduce_numpy,
}

#: The registry's kernel names, for introspection and tests.
KERNEL_NAMES = tuple(sorted(_NUMPY_IMPLS))


# ----------------------------------------------------------------------
# numba implementations (built lazily, only if numba imports)
# ----------------------------------------------------------------------
_NUMBA_IMPLS: dict = {}
_NUMBA_STATE: bool | None = None  # None = not probed yet


def numba_available() -> bool:
    """True when the numba accelerator can be imported (cached probe)."""
    global _NUMBA_STATE
    if _NUMBA_STATE is None:
        try:
            _build_numba_impls()
            _NUMBA_STATE = True
        except Exception:  # ImportError and any jit-decoration failure
            _NUMBA_STATE = False
            _NUMBA_IMPLS.clear()
    return _NUMBA_STATE


def _build_numba_impls() -> None:
    """Define and register the ``@njit`` twins (raises if numba is absent).

    Every function below replays its numpy reference operation-for-
    operation: sequential accumulation for the cumsums, the same
    searchsorted index, the same branch structure in the binary search
    and interval arithmetic.  No ``fastmath``, so the compiled code is
    IEEE-strict and the outputs match the reference bit for bit.
    """
    from numba import njit

    @njit(cache=True)
    def radii_cums(SD, SW):
        b, k = SD.shape
        CW = np.empty((b, k))
        CWD = np.empty((b, k))
        for r in range(b):
            aw = 0.0
            awd = 0.0
            for j in range(k):
                w = SW[r, j]
                aw += w
                awd += w * SD[r, j]
                CW[r, j] = aw
                CWD[r, j] = awd
        return CW, CWD

    @njit(cache=True)
    def _prefix_one(sd, cw, cwd, z, total):
        # scalar P_v(z), identical to radii._prefix_from_cums
        if z <= 0.0:
            return 0.0
        if z > total:
            z = total
        i = np.searchsorted(cw, z)
        if i >= sd.size:
            i = sd.size - 1
        prev_w = cw[i - 1] if i > 0 else 0.0
        prev_wd = cwd[i - 1] if i > 0 else 0.0
        return prev_wd + (z - prev_w) * sd[i]

    @njit(cache=True)
    def radii_prefix(SD, CW, CWD, z, total):
        b = SD.shape[0]
        out = np.empty(b)
        for r in range(b):
            out[r] = _prefix_one(SD[r], CW[r], CWD[r], z[r], total)
        return out

    @njit(cache=True)
    def radii_storage(SD, CW, CWD, costs, total):
        b = SD.shape[0]
        rs = np.empty(b)
        zs = np.empty(b, np.int64)
        n_req = int(math.ceil(total))
        if n_req == 0:
            for r in range(b):
                rs[r] = np.inf
                zs[r] = max(n_req, 1)
            return rs, zs
        for r in range(b):
            sd = SD[r]
            cw = CW[r]
            cwd = CWD[r]
            cost = costs[r]
            if _prefix_one(sd, cw, cwd, total, total) <= cost:
                rs[r] = np.inf
                zs[r] = max(n_req, 1)
                continue
            lo = 1
            hi = n_req
            while lo < hi:
                mid = (lo + hi) // 2
                if _prefix_one(sd, cw, cwd, float(mid), total) > cost:
                    hi = mid
                else:
                    lo = mid + 1
            z = lo
            zm1 = max(z - 1, 1)
            if z > 1:
                d_lo = _prefix_one(sd, cw, cwd, float(z - 1), total) / zm1
            else:
                d_lo = 0.0
            z_hi = min(float(z), total)
            d_hi = _prefix_one(sd, cw, cwd, z_hi, total) / z_hi
            lower = max(d_lo, cost / z)
            upper = min(d_hi, cost / zm1) if z > 1 else d_hi
            if upper < lower:
                upper = lower
            rs[r] = 0.5 * (lower + upper) if upper > lower else lower
            zs[r] = z
        return rs, zs

    @njit(cache=True)
    def phase2_sweep(dts, rs, dist):
        n = dts.size
        cand = np.empty(n, np.int64)
        m = 0
        for v in range(n):
            if dts[v] > 5.0 * rs[v]:
                cand[m] = v
                m += 1
        added = np.empty(m, np.int64)
        cnt = 0
        for t in range(m):
            v = cand[t]
            if dts[v] > 5.0 * rs[v]:
                added[cnt] = v
                cnt += 1
                row = dist[v]
                for j in range(n):
                    if row[j] < dts[j]:
                        dts[j] = row[j]
        return added[:cnt]

    @njit(cache=True)
    def phase3_sweep(rows, live, u_bound, alive):
        k = alive.size
        for r in range(live.size):
            i = live[r]
            if not alive[i]:
                continue
            for j in range(k):
                if alive[j] and j != i and rows[r, j] <= u_bound[j]:
                    alive[j] = False

    @njit(cache=True)
    def nearest_reduce(sub, idx):
        k, n = sub.shape
        out_idx = np.empty(n, np.int64)
        out_dist = np.empty(n)
        for j in range(n):
            best = sub[0, j]
            bi = 0
            for r in range(1, k):
                v = sub[r, j]
                if v < best:  # strict: the first minimiser wins, as argmin
                    best = v
                    bi = r
            out_idx[j] = idx[bi]
            out_dist[j] = best
        return out_idx, out_dist

    @njit(cache=True)
    def dist_reduce(sub):
        k, n = sub.shape
        out = np.empty(n)
        for j in range(n):
            best = sub[0, j]
            for r in range(1, k):
                v = sub[r, j]
                if v < best:
                    best = v
            out[j] = best
        return out

    _NUMBA_IMPLS.update(
        radii_cums=radii_cums,
        radii_prefix=radii_prefix,
        radii_storage=radii_storage,
        phase2_sweep=phase2_sweep,
        phase3_sweep=phase3_sweep,
        nearest_reduce=nearest_reduce,
        dist_reduce=dist_reduce,
    )


# ----------------------------------------------------------------------
# mode + dispatch
# ----------------------------------------------------------------------
_MODE = "auto"


def get_kernel_mode() -> str:
    """The process-global kernel mode (``auto`` | ``numpy`` | ``numba``)."""
    return _MODE


def set_kernel_mode(mode: str) -> str:
    """Set the global kernel mode; returns the previous one."""
    global _MODE
    if mode not in KERNEL_MODES:
        raise ValueError(f"unknown kernel mode {mode!r}; choose from {KERNEL_MODES}")
    previous = _MODE
    _MODE = mode
    return previous


@contextlib.contextmanager
def kernel_mode(mode: str):
    """Scoped kernel-mode override (restores the previous mode on exit)."""
    previous = set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)


def active_impl(name: str, mode: str | None = None) -> str:
    """Which implementation (``"numpy"``/``"numba"``) a dispatch resolves to."""
    if name not in _NUMPY_IMPLS:
        raise KeyError(f"unknown kernel {name!r}; known: {KERNEL_NAMES}")
    mode = _MODE if mode is None else mode
    if mode in ("auto", "numba") and numba_available() and name in _NUMBA_IMPLS:
        return "numba"
    return "numpy"


def dispatch(name: str, mode: str | None = None):
    """The callable implementing kernel ``name`` under the given (or
    current global) mode.  An explicit ``"numba"`` request without numba
    degrades to the numpy reference -- never an import error."""
    if active_impl(name, mode) == "numba":
        return _NUMBA_IMPLS[name]
    return _NUMPY_IMPLS[name]


def kernel_provenance(mode: str | None = None) -> dict:
    """Dispatch provenance for reports: requested mode, availability and
    the per-kernel active implementation.

    Embedded in :class:`~repro.api.PlanReport` extras so an artifact
    records whether its numbers came from the compiled or the reference
    path (and whether an explicit ``numba`` request silently degraded).
    """
    mode = _MODE if mode is None else mode
    available = numba_available()
    info = {
        "mode": mode,
        "numba_available": available,
        "active": {name: active_impl(name, mode) for name in KERNEL_NAMES},
    }
    if mode == "numba" and not available:
        info["note"] = "numba requested but not importable; using numpy reference"
    return info
