"""Graph substrate: metric closures, spanning/Steiner trees, generators."""

from .generators import (
    assign_random_weights,
    balanced_tree,
    caterpillar_tree,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    ring_graph,
    star_graph,
    torus_graph,
    transit_stub_graph,
)
from .metric import Metric, metric_from_graph
from .mst import mst_cost, mst_edges, mst_parent_array, tree_distances_from_root
from .steiner import (
    MAX_EXACT_TERMINALS,
    steiner_exact_cost,
    steiner_kmb,
    steiner_mst_cost,
)

__all__ = [
    "Metric",
    "metric_from_graph",
    "mst_cost",
    "mst_edges",
    "mst_parent_array",
    "tree_distances_from_root",
    "steiner_mst_cost",
    "steiner_exact_cost",
    "steiner_kmb",
    "MAX_EXACT_TERMINALS",
    "assign_random_weights",
    "random_tree",
    "balanced_tree",
    "path_graph",
    "star_graph",
    "caterpillar_tree",
    "grid_graph",
    "torus_graph",
    "ring_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "random_geometric_graph",
    "transit_stub_graph",
]
