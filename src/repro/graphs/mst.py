"""Minimum spanning trees over node subsets in a metric closure.

Section 2 of the paper uses minimum spanning trees in two roles:

* the *update multicast tree*: a write first travels to the nearest copy
  ``s(r)`` and then an update is propagated along an MST connecting all
  copies (in the metric closure), so the per-write update cost is
  ``mst_cost(S)``;
* the Lemma 1 transformation deletes under-used copies in order of
  *tree distance* from an (arbitrary) MST root.

The subset sizes are small-to-moderate (copies of one object), so a dense
``O(k^2)`` Prim on the induced distance submatrix -- fully vectorized over
numpy rows -- is the right tool (per the HPC guides: simple, measurable,
vectorized inner loop).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .metric import Metric

__all__ = [
    "mst_cost",
    "mst_cost_from_submatrix",
    "mst_edges",
    "mst_parent_array",
    "tree_distances_from_root",
]


def _as_index_array(nodes: Sequence[int]) -> np.ndarray:
    idx = np.asarray(list(nodes), dtype=int)
    if idx.size == 0:
        raise ValueError("node subset must be non-empty")
    if len(set(idx.tolist())) != idx.size:
        raise ValueError("node subset contains duplicates")
    return idx


def mst_edges(metric: Metric, nodes: Sequence[int]) -> list[tuple[int, int, float]]:
    """MST of the induced complete graph on ``nodes`` in the metric closure.

    Returns a list of ``(u, v, weight)`` edges using the *original* node
    indices.  Deterministic: Prim from the smallest node index with
    smallest-index tie-breaking.
    """
    idx = _as_index_array(nodes)
    k = idx.size
    if k == 1:
        return []
    sub = metric.pairwise(idx)

    in_tree = np.zeros(k, dtype=bool)
    best = np.full(k, np.inf)
    best_from = np.zeros(k, dtype=int)

    order = np.argsort(idx)  # start from the smallest original index
    start = int(order[0])
    in_tree[start] = True
    best = sub[start].copy()
    best_from[:] = start
    best[start] = np.inf

    edges: list[tuple[int, int, float]] = []
    for _ in range(k - 1):
        j = int(np.argmin(best))  # first minimiser -> deterministic
        w = float(best[j])
        edges.append((int(idx[best_from[j]]), int(idx[j]), w))
        in_tree[j] = True
        improved = sub[j] < best
        improved &= ~in_tree
        best_from[improved] = j
        best[improved] = sub[j][improved]
        best[j] = np.inf
    return edges


def mst_cost(metric: Metric, nodes: Sequence[int]) -> float:
    """Total weight of the metric-closure MST over ``nodes``.

    For a single node the cost is 0 (no update propagation needed beyond
    the copy itself).
    """
    idx = _as_index_array(nodes)
    if idx.size == 1:
        return 0.0
    return mst_cost_from_submatrix(metric.pairwise(idx))


def mst_cost_from_submatrix(sub: np.ndarray) -> float:
    """Prim's MST weight over an explicit ``(k, k)`` distance submatrix.

    The kernel behind :func:`mst_cost`, split out so batched callers
    (e.g. :func:`repro.core.costs.placement_cost`) can reuse distance rows
    they already fetched instead of querying the backend per object.
    """
    k = sub.shape[0]
    if k == 1:
        return 0.0
    in_tree = np.zeros(k, dtype=bool)
    in_tree[0] = True
    best = sub[0].copy()
    best[0] = np.inf
    total = 0.0
    for _ in range(k - 1):
        j = int(np.argmin(best))
        total += float(best[j])
        in_tree[j] = True
        improved = sub[j] < best
        improved &= ~in_tree
        best[improved] = sub[j][improved]
        best[j] = np.inf
    return total


def mst_parent_array(
    metric: Metric, nodes: Sequence[int], root: int | None = None
) -> dict[int, int | None]:
    """Parent map of the metric MST over ``nodes``, rooted at ``root``.

    ``root`` defaults to the smallest node index (the paper roots the MST
    "at an arbitrary node"; we fix the choice for determinism).  The root
    maps to ``None``.
    """
    idx = _as_index_array(nodes)
    if root is None:
        root = int(idx.min())
    if root not in set(idx.tolist()):
        raise ValueError("root must belong to the node subset")

    adjacency: dict[int, list[tuple[int, float]]] = {int(u): [] for u in idx}
    for u, v, w in mst_edges(metric, nodes):
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))

    parent: dict[int, int | None] = {root: None}
    stack = [root]
    while stack:
        u = stack.pop()
        for v, _ in sorted(adjacency[u]):
            if v not in parent:
                parent[v] = u
                stack.append(v)
    return parent


def tree_distances_from_root(
    metric: Metric, nodes: Sequence[int], root: int | None = None
) -> dict[int, float]:
    """Tree distance from ``root`` to every node *along MST edges*.

    The Lemma 1 transformation deletes the under-used copy with the
    *maximum tree distance* from the MST root; this helper supplies those
    distances (length of the unique MST path, not the metric distance).
    """
    idx = _as_index_array(nodes)
    if root is None:
        root = int(idx.min())

    adjacency: dict[int, list[tuple[int, float]]] = {int(u): [] for u in idx}
    for u, v, w in mst_edges(metric, nodes):
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))

    dist: dict[int, float] = {root: 0.0}
    stack = [root]
    while stack:
        u = stack.pop()
        for v, w in sorted(adjacency[u]):
            if v not in dist:
                dist[v] = dist[u] + w
                stack.append(v)
    return dist
