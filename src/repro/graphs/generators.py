"""Weighted network generators for the evaluation suite.

The paper targets "computer systems connected by networks": distributed
file systems on LANs, virtual shared memory machines (meshes/tori), and
WWW-scale commercial networks (Internet-like clustered topologies).  This
module generates deterministic, connected, positively-weighted instances of
each family, plus the standard graph-theory stock (rings, complete graphs,
Erdős–Rényi, random geometric) used by the experiments.

All generators:

* take an explicit ``seed`` and are fully deterministic,
* return a ``networkx.Graph`` whose nodes are ``0..n-1`` with edge
  attribute ``weight`` holding the transmission price ``ct(e) > 0``,
* guarantee connectivity (resampling or augmenting if necessary).

Storage prices ``cs`` are workload-level, not topology-level; see
:mod:`repro.workloads.request_models`.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

__all__ = [
    "random_tree",
    "balanced_tree",
    "path_graph",
    "star_graph",
    "caterpillar_tree",
    "grid_graph",
    "torus_graph",
    "ring_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "random_geometric_graph",
    "power_law_graph",
    "transit_stub_graph",
    "sized_transit_stub_graph",
    "assign_random_weights",
]


# ----------------------------------------------------------------------
# weight helpers
# ----------------------------------------------------------------------
def assign_random_weights(
    graph: nx.Graph,
    *,
    seed: int,
    low: float = 0.5,
    high: float = 2.0,
) -> nx.Graph:
    """Assign i.i.d. uniform transmission prices in ``[low, high)``.

    Weights are strictly positive whenever ``low > 0``; zero-cost links are
    legal in the model (``ct : E -> R+_0``) but the evaluation suite avoids
    them so that read/update costs discriminate between placements.
    """
    if low < 0 or high < low:
        raise ValueError("need 0 <= low <= high")
    rng = np.random.default_rng(seed)
    for u, v in sorted(graph.edges()):
        graph[u][v]["weight"] = float(rng.uniform(low, high))
    return graph


def _relabel_sorted(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving sorted order of the old labels."""
    mapping = {u: i for i, u in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping)


# ----------------------------------------------------------------------
# trees (Section 3 workloads)
# ----------------------------------------------------------------------
def random_tree(n: int, *, seed: int, low: float = 0.5, high: float = 2.0) -> nx.Graph:
    """Uniform random labelled tree (random Prüfer sequence) with weights."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    if n >= 2:
        if n == 2:
            g.add_edge(0, 1)
        else:
            prufer = [int(x) for x in rng.integers(0, n, size=n - 2)]
            g = nx.from_prufer_sequence(prufer)
    return assign_random_weights(g, seed=seed + 1, low=low, high=high)


def balanced_tree(
    branching: int, height: int, *, seed: int, low: float = 0.5, high: float = 2.0
) -> nx.Graph:
    """Complete ``branching``-ary tree of the given height."""
    g = _relabel_sorted(nx.balanced_tree(branching, height))
    return assign_random_weights(g, seed=seed, low=low, high=high)


def path_graph(n: int, *, seed: int, low: float = 0.5, high: float = 2.0) -> nx.Graph:
    """Path: the maximum-diameter tree (stress case for the tree DP)."""
    g = nx.path_graph(n)
    return assign_random_weights(g, seed=seed, low=low, high=high)


def star_graph(n: int, *, seed: int, low: float = 0.5, high: float = 2.0) -> nx.Graph:
    """Star with ``n`` nodes: maximum-degree tree (stress for binarization)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    g = nx.star_graph(n - 1)
    return assign_random_weights(g, seed=seed, low=low, high=high)


def caterpillar_tree(
    spine: int, legs: int, *, seed: int, low: float = 0.5, high: float = 2.0
) -> nx.Graph:
    """Caterpillar: a spine path with ``legs`` leaves per spine node."""
    if spine < 1 or legs < 0:
        raise ValueError("need spine >= 1 and legs >= 0")
    g = nx.Graph()
    g.add_nodes_from(range(spine * (1 + legs)))
    for i in range(spine - 1):
        g.add_edge(i, i + 1)
    nxt = spine
    for i in range(spine):
        for _ in range(legs):
            g.add_edge(i, nxt)
            nxt += 1
    return assign_random_weights(g, seed=seed, low=low, high=high)


# ----------------------------------------------------------------------
# meshes / tori (virtual shared memory machines)
# ----------------------------------------------------------------------
def grid_graph(
    rows: int, cols: int, *, seed: int, low: float = 0.5, high: float = 2.0
) -> nx.Graph:
    """2-D mesh (the paper notes static placement is NP-hard on 3x3 meshes)."""
    g = nx.grid_2d_graph(rows, cols)
    g = _relabel_sorted(g)
    return assign_random_weights(g, seed=seed, low=low, high=high)


def torus_graph(
    rows: int, cols: int, *, seed: int, low: float = 0.5, high: float = 2.0
) -> nx.Graph:
    """2-D torus (wrap-around mesh)."""
    g = nx.grid_2d_graph(rows, cols, periodic=True)
    g = _relabel_sorted(g)
    return assign_random_weights(g, seed=seed, low=low, high=high)


# ----------------------------------------------------------------------
# rings / complete graphs (Milo--Wolfson exact classes)
# ----------------------------------------------------------------------
def ring_graph(n: int, *, seed: int, low: float = 0.5, high: float = 2.0) -> nx.Graph:
    """Cycle of ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("a ring needs n >= 3")
    g = nx.cycle_graph(n)
    return assign_random_weights(g, seed=seed, low=low, high=high)


def complete_graph(n: int, *, seed: int, low: float = 0.5, high: float = 2.0) -> nx.Graph:
    """Complete graph; note uniform-weight complete graphs are the
    degenerate metric where every placement problem decomposes node-wise."""
    g = nx.complete_graph(n)
    return assign_random_weights(g, seed=seed, low=low, high=high)


# ----------------------------------------------------------------------
# random graphs
# ----------------------------------------------------------------------
def erdos_renyi_graph(
    n: int, p: float, *, seed: int, low: float = 0.5, high: float = 2.0
) -> nx.Graph:
    """Connected G(n, p): resample up to 100 times, then augment.

    Augmentation joins leftover components with cheap random edges so the
    generator is total; the seed fully determines the result.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    g = None
    for attempt in range(100):
        cand = nx.erdos_renyi_graph(n, p, seed=int(rng.integers(0, 2**31)))
        if n == 0 or nx.is_connected(cand):
            g = cand
            break
    if g is None:
        g = cand  # last attempt; stitch the components together
        comps = [sorted(c) for c in nx.connected_components(g)]
        for a, b in zip(comps[:-1], comps[1:]):
            g.add_edge(a[0], b[0])
    return assign_random_weights(g, seed=seed + 1, low=low, high=high)


def random_geometric_graph(
    n: int, radius: float, *, seed: int, scale: float = 1.0
) -> nx.Graph:
    """Random geometric graph; weights are Euclidean distances * ``scale``.

    Geometric instances make the metric structure visible (copies repel
    each other spatially), which is where facility-location-style placement
    is most interpretable.  Connectivity is restored by linking each
    component to its nearest neighbour component.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    g = nx.Graph()
    g.add_nodes_from(range(n))
    diff = pts[:, None, :] - pts[None, :, :]
    d = np.sqrt((diff**2).sum(axis=2))
    for i in range(n):
        for j in range(i + 1, n):
            if d[i, j] <= radius:
                g.add_edge(i, j, weight=float(d[i, j] * scale))
    # ensure connectivity: repeatedly link the two closest components
    while not nx.is_connected(g) and n > 1:
        comps = [sorted(c) for c in nx.connected_components(g)]
        best = None
        for a in comps[0]:
            for comp in comps[1:]:
                for b in comp:
                    if best is None or d[a, b] < best[2]:
                        best = (a, b, d[a, b])
        g.add_edge(best[0], best[1], weight=float(best[2] * scale))
    return g


def power_law_graph(
    n: int, *, seed: int, attach: int = 2, low: float = 0.5, high: float = 2.0
) -> nx.Graph:
    """Barabási–Albert preferential-attachment graph (power-law degrees).

    The degree distribution of real Internet/WWW topologies is heavy
    tailed; this generator covers that regime at any size (``O(n)`` edges,
    connected by construction), which is what the 10k-node scalability
    sweeps run on.  ``attach`` is the number of edges each arriving node
    brings (``m`` in the BA model).
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    attach = min(attach, n - 1)
    if attach < 1:
        raise ValueError("attach must be >= 1")
    g = nx.barabasi_albert_graph(n, attach, seed=seed)
    return assign_random_weights(g, seed=seed + 1, low=low, high=high)


# ----------------------------------------------------------------------
# Internet-like clustered networks (the paper's WWW motivation)
# ----------------------------------------------------------------------
def transit_stub_graph(
    transit: int,
    stubs_per_transit: int,
    stub_size: int,
    *,
    seed: int,
    transit_weight: float = 10.0,
    stub_weight: float = 1.0,
    jitter: float = 0.25,
) -> nx.Graph:
    """Two-level transit-stub topology (Internet-like clustered network).

    A ring of ``transit`` backbone routers; each backbone router attaches
    ``stubs_per_transit`` stub clusters of ``stub_size`` nodes.  Backbone
    links are expensive (``transit_weight``), intra-stub links cheap
    (``stub_weight``); multiplicative jitter keeps ties rare.  This mirrors
    the "Internet-like clustered networks" of Maggs et al. that the paper
    cites as the WWW-facing network class.
    """
    if transit < 1 or stubs_per_transit < 0 or stub_size < 1:
        raise ValueError("invalid transit-stub shape")
    rng = np.random.default_rng(seed)

    def w(base: float) -> float:
        return float(base * (1.0 + jitter * (rng.random() - 0.5)))

    g = nx.Graph()
    backbone = list(range(transit))
    g.add_nodes_from(backbone)
    if transit >= 2:
        for i in range(transit):
            j = (i + 1) % transit
            if transit == 2 and i == 1:
                break  # avoid a duplicate edge in the 2-ring
            g.add_edge(i, j, weight=w(transit_weight))

    nxt = transit
    for t in backbone:
        for _ in range(stubs_per_transit):
            members = list(range(nxt, nxt + stub_size))
            nxt += stub_size
            g.add_nodes_from(members)
            gateway = members[0]
            g.add_edge(t, gateway, weight=w(transit_weight / 2))
            # cheap intra-stub star + a chord for redundancy
            for m in members[1:]:
                g.add_edge(gateway, m, weight=w(stub_weight))
            if stub_size >= 3:
                g.add_edge(members[1], members[2], weight=w(stub_weight))
    return g


def sized_transit_stub_graph(
    n: int,
    *,
    seed: int,
    stubs_per_transit: int = 4,
    stub_size: int = 12,
    **kwargs,
) -> nx.Graph:
    """Transit-stub topology sized to approximately ``n`` nodes.

    Picks the backbone size so that ``transit * (1 + stubs_per_transit *
    stub_size)`` lands as close to ``n`` as possible, which is what the
    scalability experiments need ("give me a 10k-node Internet-like
    network") without hand-solving the shape equation.  The actual node
    count may deviate from ``n`` by up to one cluster; read it off the
    returned graph.  Extra keyword arguments pass through to
    :func:`transit_stub_graph`.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    cluster = 1 + stubs_per_transit * stub_size
    transit = max(1, round(n / cluster))
    return transit_stub_graph(
        transit, stubs_per_transit, stub_size, seed=seed, **kwargs
    )
