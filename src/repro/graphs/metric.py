"""Metric substrate: shortest-path closures of weighted networks.

The paper models the network as an undirected graph ``G = (V, E)`` with a
transmission price ``ct : E -> R+`` per edge.  The induced point-to-point
price ``ct(v, v')`` is the shortest-path distance, which is non-negative,
symmetric and satisfies the triangle inequality -- i.e. a (pseudo-)metric
over ``V`` (Section 1.1).  Every algorithm in this library works on that
metric closure.

This module provides :class:`Metric`, a dense all-pairs distance oracle with
numpy-vectorized nearest-copy queries, built either from an explicit distance
matrix or from a ``networkx`` graph via scipy's compiled Dijkstra.  It is
the reference implementation of the :class:`~repro.graphs.backend.DistanceBackend`
protocol; :class:`~repro.graphs.backend.LazyMetric` answers the same queries
without ``O(n^2)`` storage for large networks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

__all__ = ["Metric", "metric_from_graph", "graph_to_adjacency"]


class Metric:
    """Dense shortest-path metric over ``n`` nodes (indices ``0..n-1``).

    Parameters
    ----------
    dist:
        ``(n, n)`` array of pairwise distances.  Must be non-negative,
        symmetric, have a zero diagonal, and satisfy the triangle
        inequality up to floating-point tolerance (checked when
        ``validate=True``).
    validate:
        Verify metric axioms on construction.  Triangle-inequality
        verification costs ``O(n^3)`` via one matmul-style pass, so it can
        be disabled for large instances built from trusted sources
        (shortest-path closures are metrics by construction).
    """

    __slots__ = ("dist", "n")

    def __init__(self, dist: np.ndarray, *, validate: bool = True) -> None:
        dist = np.asarray(dist, dtype=float)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError(f"distance matrix must be square, got {dist.shape}")
        self.dist = dist
        self.n = dist.shape[0]
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: nx.Graph, *, weight: str = "weight") -> "Metric":
        """Metric closure of a connected undirected weighted graph.

        Nodes must be hashable; they are mapped to indices ``0..n-1`` in
        ``sorted`` order if sortable, else in insertion order.  Use
        :func:`metric_from_graph` to also obtain the node <-> index maps.
        """
        metric, _, _ = metric_from_graph(graph, weight=weight)
        return metric

    @classmethod
    def from_points(cls, points: np.ndarray, *, validate: bool = False) -> "Metric":
        """Euclidean metric over a set of points (rows = points)."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise ValueError("points must be a 2-D array")
        diff = pts[:, None, :] - pts[None, :, :]
        return cls(np.sqrt((diff**2).sum(axis=2)), validate=validate)

    # ------------------------------------------------------------------
    # metric axioms
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        d = self.dist
        if not np.all(np.isfinite(d)):
            raise ValueError("distance matrix contains non-finite entries "
                             "(is the underlying graph connected?)")
        if np.any(d < 0):
            raise ValueError("distances must be non-negative")
        if not np.allclose(np.diag(d), 0.0):
            raise ValueError("diagonal must be zero")
        if not np.allclose(d, d.T, rtol=1e-9, atol=1e-9):
            raise ValueError("distance matrix must be symmetric")
        if self.n <= 1:
            return
        # Triangle inequality: d[i, j] <= min_k d[i, k] + d[k, j].
        # One vectorized pass; tolerate tiny float slack.
        via = (d[:, :, None] + d[None, :, :]).min(axis=1)
        if np.any(d > via + 1e-7 * (1.0 + via)):
            raise ValueError("triangle inequality violated")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def d(self, u: int, v: int) -> float:
        """Distance between two nodes."""
        return float(self.dist[u, v])

    def row(self, v: int) -> np.ndarray:
        """Distance row ``d(v, .)`` -- a view into the dense matrix."""
        return self.dist[int(v)]

    def rows(self, nodes: Sequence[int]) -> np.ndarray:
        """Distance rows for a set of nodes: shape ``(len(nodes), n)``."""
        return self.dist[np.asarray(list(nodes), dtype=int)]

    def pairwise(self, nodes: Sequence[int]) -> np.ndarray:
        """Induced distance submatrix, shape ``(k, k)``, in given order."""
        idx = np.asarray(list(nodes), dtype=int)
        return self.dist[np.ix_(idx, idx)]

    def matvec(self, weights: np.ndarray) -> np.ndarray:
        """``out[v] = sum_u d(v, u) * weights[u]`` (one matrix-vector product)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n,):
            raise ValueError(f"weights must have shape ({self.n},)")
        return self.dist @ weights

    def dist_to_set(self, targets: Iterable[int]) -> np.ndarray:
        """Vector of ``d(v, S)`` for every node ``v`` (``S`` = targets).

        This is the nearest-copy read cost kernel: a read at ``v`` pays
        ``d(v, S)`` to reach its closest copy.
        """
        idx = np.fromiter(targets, dtype=int)
        if idx.size == 0:
            return np.full(self.n, np.inf)
        return self.dist[:, idx].min(axis=1)

    def nearest_in_set(self, targets: Iterable[int]) -> tuple[np.ndarray, np.ndarray]:
        """For every node, the nearest target and the distance to it.

        Ties are broken towards the smallest node index (deterministic),
        matching the tie-breaking convention used throughout the library.

        Returns
        -------
        (nearest, dist):
            ``nearest[v]`` is the index (a member of ``targets``) of the
            closest target to ``v``; ``dist[v] = d(v, nearest[v])``.
        """
        idx = np.unique(np.fromiter(targets, dtype=int))
        if idx.size == 0:
            raise ValueError("targets must be non-empty")
        sub = self.dist[:, idx]
        arg = sub.argmin(axis=1)  # first (= smallest index) minimiser
        return idx[arg], sub[np.arange(self.n), arg]

    def eccentricity(self, v: int) -> float:
        """Largest distance from ``v`` to any node."""
        return float(self.dist[v].max())

    def diameter(self) -> float:
        """Largest pairwise distance (weighted diameter of the closure)."""
        return float(self.dist.max())

    def submetric(self, nodes: Sequence[int]) -> "Metric":
        """Induced metric on a subset of nodes (in the given order)."""
        idx = np.asarray(list(nodes), dtype=int)
        return Metric(self.dist[np.ix_(idx, idx)], validate=False)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Metric(n={self.n}, diameter={self.diameter():.4g})"


def metric_from_graph(
    graph: nx.Graph, *, weight: str = "weight"
) -> tuple[Metric, dict, list]:
    """Metric closure plus node <-> index maps.

    Parameters
    ----------
    graph:
        Connected undirected graph.  Missing edge weights default to 1.
    weight:
        Edge-attribute name holding the transmission price ``ct(e)``.

    Returns
    -------
    (metric, node_to_index, index_to_node)
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    if not nx.is_connected(graph):
        raise ValueError("graph must be connected for a finite metric closure")
    adj, index, nodes = graph_to_adjacency(graph, weight=weight)
    dist = shortest_path(adj, method="D", directed=False)
    return Metric(dist, validate=False), index, nodes


def graph_to_adjacency(
    graph: nx.Graph, *, weight: str = "weight"
) -> tuple[csr_matrix, dict, list]:
    """Sparse adjacency of a weighted graph plus node <-> index maps.

    Nodes are mapped to ``0..n-1`` in ``sorted`` order if sortable, else in
    insertion order -- the shared convention of every distance backend.
    Missing edge weights default to 1.
    """
    try:
        nodes = sorted(graph.nodes())
    except TypeError:  # unsortable mixed node types
        nodes = list(graph.nodes())
    index = {u: i for i, u in enumerate(nodes)}

    n = len(nodes)
    rows, cols, vals = [], [], []
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0))
        if w < 0:
            raise ValueError(f"negative edge weight on ({u}, {v})")
        rows.append(index[u])
        cols.append(index[v])
        vals.append(w)
    return csr_matrix((vals, (rows, cols)), shape=(n, n)), index, nodes
