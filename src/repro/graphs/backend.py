"""Pluggable distance backends: dense and lazy metric-closure oracles.

Every algorithm in this library consumes the metric closure ``ct(u, v)``
of the network through a small query surface -- single distances, distance
rows, nearest-copy vectors -- rather than through the raw ``(n, n)`` matrix.
This module names that surface (:class:`DistanceBackend`) and provides the
scalable implementation (:class:`LazyMetric`) that answers the same queries
from the *sparse adjacency* via on-demand single-source Dijkstra, so the
Section 2 approximation pipeline runs on 10k+ node networks without ever
materializing the ``O(n^2)`` all-pairs matrix.

Backends
--------
:class:`~repro.graphs.metric.Metric`
    The dense closure: precomputes all pairs, answers every query with one
    numpy slice.  Right for ``n`` up to a few thousand, and required by the
    exponential exact baselines (Dreyfus--Wagner, brute force).
:class:`LazyMetric`
    Stores only the CSR adjacency (``O(n + m)``).  Distance rows are
    computed on demand by scipy's compiled Dijkstra -- batched when callers
    ask for blocks -- and kept in a bounded LRU cache; hot rows (facility
    candidates, copy holders) can be pinned with :meth:`LazyMetric.precompute`.
    Set queries (``dist_to_set`` / ``nearest_in_set``) over large target
    sets collapse to a *single* multi-source Dijkstra (``min_only=True``),
    which is how phase 2 of the approximation touches all ``n`` nodes in
    ``O(m log n)`` instead of ``O(n |S|)`` row lookups.

Choosing
--------
``Metric`` and ``LazyMetric`` return identical distances (both run
Dijkstra over the same adjacency); property tests assert parity of
``dist_to_set`` / ``nearest_in_set`` / end-to-end placements.  The dense
backend is faster per query once built; the lazy backend wins whenever the
``8 n^2`` bytes of the closure dominate -- roughly ``n >= 3000`` on
commodity RAM, and strictly necessary at ``n ~ 10^4``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Protocol, Sequence, runtime_checkable

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..kernels import dispatch
from .metric import Metric, graph_to_adjacency

__all__ = [
    "DistanceBackend",
    "LazyMetric",
    "PortalMetric",
    "lazy_metric_from_graph",
    "dense_distance_matrix",
    "DENSE_MATERIALIZE_LIMIT",
    "DEFAULT_CACHE_ROWS",
]

#: Default LRU row-cache capacity of :class:`LazyMetric`; tunable per
#: plan through the ``cache_rows`` knob of :class:`repro.config.PlanConfig`.
DEFAULT_CACHE_ROWS = 128

#: ``dense_distance_matrix`` refuses to materialize closures bigger than
#: this many nodes -- the exact/exponential baselines that need the full
#: matrix are only meaningful far below it anyway.
DENSE_MATERIALIZE_LIMIT = 4096

#: Set queries on at most this many targets go through (cached) rows,
#: preserving the library's smallest-index tie-break exactly; larger sets
#: use one multi-source Dijkstra.
_SMALL_TARGET_SET = 32


@runtime_checkable
class DistanceBackend(Protocol):
    """The distance-oracle surface every placement algorithm consumes.

    Implementations must agree on semantics: distances are the shortest
    path closure of a connected non-negatively weighted graph, symmetric
    with zero diagonal, and ``nearest_in_set`` breaks ties towards the
    smallest node index whenever it can do so without extra work.
    """

    n: int

    def d(self, u: int, v: int) -> float:
        """Distance between two nodes."""
        ...

    def row(self, v: int) -> np.ndarray:
        """Distance row ``d(v, .)`` of shape ``(n,)``."""
        ...

    def rows(self, nodes: Sequence[int]) -> np.ndarray:
        """Distance rows for a node block: shape ``(len(nodes), n)``."""
        ...

    def pairwise(self, nodes: Sequence[int]) -> np.ndarray:
        """Induced distance submatrix, shape ``(k, k)``, in given order."""
        ...

    def dist_to_set(self, targets: Iterable[int]) -> np.ndarray:
        """``d(v, S)`` for every node ``v``."""
        ...

    def nearest_in_set(self, targets: Iterable[int]) -> tuple[np.ndarray, np.ndarray]:
        """Per node: nearest target and distance to it."""
        ...

    def matvec(self, weights: np.ndarray) -> np.ndarray:
        """``out[v] = sum_u d(v, u) * weights[u]`` without storing all rows."""
        ...


class LazyMetric:
    """Shortest-path oracle over a sparse adjacency, no ``n x n`` storage.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` scipy sparse matrix of edge weights (upper or lower
        triangle suffices; treated as undirected).
    cache_rows:
        Capacity of the LRU row cache.  Rows pinned via
        :meth:`precompute` live outside this budget.
    validate:
        Run one Dijkstra from node 0 and require finite distances
        (i.e. a connected graph) at construction time.
    """

    __slots__ = (
        "n",
        "_adj",
        "_cache",
        "_cache_rows",
        "_pinned",
        "_lock",
        "rows_computed",
        "cache_hits",
    )

    def __init__(
        self, adjacency, *, cache_rows: int = DEFAULT_CACHE_ROWS, validate: bool = True
    ) -> None:
        adj = csr_matrix(adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise ValueError(f"adjacency must be square, got {adj.shape}")
        if adj.nnz and adj.data.min() < 0:
            raise ValueError("edge weights must be non-negative")
        if cache_rows < 1:
            raise ValueError("cache_rows must be positive")
        self._adj = adj
        self.n = adj.shape[0]
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._cache_rows = int(cache_rows)
        self._pinned: dict[int, np.ndarray] = {}
        # Guards the LRU / pinned dicts and the counters so concurrent
        # daemon lookups can't corrupt the OrderedDict mid-reorder.  The
        # Dijkstra itself runs outside the lock (recomputing a row twice
        # under a race is idempotent); re-entrant because precompute()
        # pins through rows() -> _lookup()/_insert().
        self._lock = threading.RLock()
        self.rows_computed = 0
        self.cache_hits = 0
        if validate and self.n > 1:
            if not np.all(np.isfinite(self.row(0))):
                raise ValueError(
                    "graph must be connected for a finite metric closure"
                )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: nx.Graph, *, weight: str = "weight",
        cache_rows: int = DEFAULT_CACHE_ROWS,
    ) -> "LazyMetric":
        """Lazy closure of a connected weighted graph (nodes ``0..n-1``
        in sorted label order; see :func:`lazy_metric_from_graph` for the
        node <-> index maps)."""
        metric, _, _ = lazy_metric_from_graph(
            graph, weight=weight, cache_rows=cache_rows
        )
        return metric

    # ------------------------------------------------------------------
    # row machinery
    # ------------------------------------------------------------------
    def _compute_rows(self, idx: np.ndarray) -> np.ndarray:
        """One batched compiled-Dijkstra call for a block of sources."""
        with self._lock:
            self.rows_computed += int(idx.size)
        out = dijkstra(self._adj, directed=False, indices=idx)
        return np.atleast_2d(out)

    def _lookup(self, v: int) -> np.ndarray | None:
        with self._lock:
            pinned = self._pinned.get(v)
            if pinned is not None:
                self.cache_hits += 1
                return pinned
            cached = self._cache.get(v)
            if cached is not None:
                self._cache.move_to_end(v)
                self.cache_hits += 1
            return cached

    def _insert(self, v: int, row: np.ndarray) -> None:
        with self._lock:
            if v in self._pinned:
                return
            self._cache[v] = row
            self._cache.move_to_end(v)
            while len(self._cache) > self._cache_rows:
                self._cache.popitem(last=False)

    def row(self, v: int) -> np.ndarray:
        v = int(v)
        row = self._lookup(v)
        if row is None:
            row = self._compute_rows(np.asarray([v]))[0]
            self._insert(v, row)
        return row

    def rows(self, nodes: Sequence[int]) -> np.ndarray:
        idx = np.asarray(list(nodes), dtype=int)
        out = np.empty((idx.size, self.n))
        missing: list[int] = []
        missing_pos: list[int] = []
        for pos, v in enumerate(idx.tolist()):
            row = self._lookup(v)
            if row is None:
                missing.append(v)
                missing_pos.append(pos)
            else:
                out[pos] = row
        if missing:
            computed = self._compute_rows(np.asarray(missing))
            for pos, v, row in zip(missing_pos, missing, computed):
                out[pos] = row
                # Large blocks (e.g. the radii sweep) would churn the LRU;
                # only fetches well under capacity are worth caching.
                if 4 * len(missing) <= self._cache_rows:
                    self._insert(v, row.copy())
        return out

    def precompute(self, nodes: Iterable[int], rows: np.ndarray | None = None) -> None:
        """Pin the rows of a hot set (facility candidates, copy holders)
        outside the LRU budget, computing missing ones in one batch.

        ``rows`` lets a caller that already fetched the block (e.g. the
        facility phase, which keeps the same block as its connection
        matrix) share storage with the pins instead of re-copying it.
        """
        order = list(dict.fromkeys(int(v) for v in nodes))
        if rows is not None:
            if rows.shape != (len(order), self.n):
                raise ValueError(
                    f"rows must have shape ({len(order)}, {self.n}), got {rows.shape}"
                )
            with self._lock:
                for pos, v in enumerate(order):
                    if v not in self._pinned:
                        self._pinned[v] = rows[pos]
                        self._cache.pop(v, None)
            return
        with self._lock:
            fresh = [v for v in order if v not in self._pinned]
            if not fresh:
                return
            block = self.rows(fresh)
            for v, row in zip(fresh, block):
                self._pinned[v] = row  # views share the block; no extra copy
                self._cache.pop(v, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> csr_matrix:
        """The backing CSR adjacency -- the backend's whole persistent
        state (what pickling ships and :mod:`repro.serialize` stores)."""
        return self._adj

    @property
    def cache_rows(self) -> int:
        """Capacity of the LRU row cache (the ``cache_rows`` knob)."""
        return self._cache_rows

    @property
    def cache_misses(self) -> int:
        """Rows computed because they were not cached (the complement of
        :attr:`cache_hits` over all row lookups)."""
        return self.rows_computed

    def cache_stats(self) -> dict:
        """Row-cache observability: hits, misses, hit rate and capacity.

        Surfaced in :class:`~repro.api.PlanReport` extras so ``repro
        plan`` output shows whether ``cache_rows`` is sized usefully
        without attaching a debugger.  ``hit_rate`` is a well-defined
        ``0.0`` before any lookup (never ``None``/NaN or a
        ``ZeroDivisionError``), so aggregating the stats of many
        per-shard backends stays plain arithmetic.
        """
        lookups = self.cache_hits + self.cache_misses
        return {
            "cache_rows": self._cache_rows,
            "hits": int(self.cache_hits),
            "misses": int(self.cache_misses),
            "hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
        }

    def d(self, u: int, v: int) -> float:
        return float(self.row(u)[int(v)])

    def pairwise(self, nodes: Sequence[int]) -> np.ndarray:
        idx = np.asarray(list(nodes), dtype=int)
        return self.rows(idx)[:, idx]

    def dist_to_set(self, targets: Iterable[int]) -> np.ndarray:
        idx = np.fromiter(targets, dtype=int)
        if idx.size == 0:
            return np.full(self.n, np.inf)
        if idx.size <= _SMALL_TARGET_SET:
            return dispatch("dist_reduce")(self.rows(idx))
        return dijkstra(self._adj, directed=False, indices=idx, min_only=True)

    def nearest_in_set(self, targets: Iterable[int]) -> tuple[np.ndarray, np.ndarray]:
        idx = np.unique(np.fromiter(targets, dtype=int))
        if idx.size == 0:
            raise ValueError("targets must be non-empty")
        if idx.size <= _SMALL_TARGET_SET:
            sub = self.rows(idx)  # (k, n)
            # column-wise argmin (first = smallest-index minimiser wins)
            return dispatch("nearest_reduce")(sub, idx)
        dist, _, sources = dijkstra(
            self._adj, directed=False, indices=idx,
            min_only=True, return_predecessors=True,
        )
        return sources.astype(idx.dtype), dist

    def matvec(self, weights: np.ndarray, *, block_size: int = 128) -> np.ndarray:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n,):
            raise ValueError(f"weights must have shape ({self.n},)")
        out = np.empty(self.n)
        for start in range(0, self.n, block_size):
            block = np.arange(start, min(start + block_size, self.n))
            out[block] = self.rows(block) @ weights
        return out

    # ------------------------------------------------------------------
    # pickling (worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Ship only the adjacency and configuration to worker processes.

        The LRU cache, pinned rows and counters are per-process working
        state: they can be large (each row is ``8n`` bytes) and are cheap
        to regrow, so a pickled ``LazyMetric`` -- e.g. the one-time
        per-worker payload of :class:`repro.engine.PlacementEngine` --
        carries ``O(n + m)`` bytes, not the cache contents.
        """
        return {"adj": self._adj, "cache_rows": self._cache_rows}

    def __setstate__(self, state) -> None:
        self._adj = state["adj"]
        self.n = self._adj.shape[0]
        self._cache = OrderedDict()
        self._cache_rows = int(state["cache_rows"])
        self._pinned = {}
        self._lock = threading.RLock()
        self.rows_computed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def as_dense(self, *, max_nodes: int = DENSE_MATERIALIZE_LIMIT) -> Metric:
        """Materialize the full closure as a dense :class:`Metric`.

        Guarded: refuses beyond ``max_nodes`` because defeating the lazy
        backend's memory bound should be an explicit decision.
        """
        if self.n > max_nodes:
            raise ValueError(
                f"refusing to materialize a {self.n}x{self.n} distance "
                f"matrix (limit {max_nodes}); raise max_nodes explicitly "
                "if you really want the dense closure"
            )
        dist = dijkstra(self._adj, directed=False)
        return Metric(dist, validate=False)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazyMetric(n={self.n}, cached={len(self._cache)}, "
            f"pinned={len(self._pinned)}, computed={self.rows_computed})"
        )


class PortalMetric:
    """Portal-summarized distance backend over a shard decomposition.

    Implements the full :class:`DistanceBackend` protocol on top of a
    base backend and a :class:`~repro.graphs.partition.Partition`:

    * **intra-shard** distances are the base metric's, exactly;
    * **inter-shard** distances are routed through portals --
      ``min over p in portals(shard(u)), q in portals(shard(v)) of
      d(u, p) + d(p, q) + d(q, v)`` with every term a true base
      distance, so the estimate is *admissible* (triangle inequality:
      never shorter than the base metric) and **symmetric** by
      construction.  With every boundary node a portal the routed
      distance is exact (some shortest path crosses the boundary at a
      portal); capping ``portals_per_shard`` trades a bounded
      overestimate for a smaller summary.

    Because the protocol surface is identical, radii sweeps, the
    approximation phases and cost accounting run unchanged on a shard
    view -- :meth:`repro.engine.PlacementEngine.place_sharded` takes its
    per-shard dense submatrices from :meth:`pairwise`.

    The ``(P, n)`` portal row block is fetched from the base backend
    once at construction (``P`` portals total); every query then costs
    base row fetches for the intra-shard part plus ``O(P)`` numpy work
    for the routing.
    """

    __slots__ = ("n", "base", "partition", "_portal_rows", "_quotient")

    def __init__(self, base, partition) -> None:
        if partition.n != base.n:
            raise ValueError(
                f"partition covers {partition.n} nodes but the base backend "
                f"has {base.n}"
            )
        self.base = base
        self.partition = partition
        self.n = base.n
        pnodes = np.asarray(partition.portal_nodes, dtype=int)
        if pnodes.size:
            self._portal_rows = np.asarray(base.rows(pnodes), dtype=float)
            self._quotient = self._portal_rows[:, pnodes]
        else:
            self._portal_rows = np.empty((0, self.n))
            self._quotient = np.empty((0, 0))

    # ------------------------------------------------------------------
    def _route(self, v: int, base_row: np.ndarray) -> np.ndarray:
        """One full portal-summarized row for source ``v``."""
        part = self.partition
        out = np.empty(self.n)
        s = int(part.shard_of[v])
        own = part.shard_array(s)
        out[own] = base_row[own]
        p_own = part.portal_positions(s)
        # admissible distance from v to every portal, leaving via own portals
        via = (
            self._portal_rows[p_own, v][:, None] + self._quotient[p_own, :]
        ).min(axis=0)
        for t in range(part.num_shards):
            if t == s:
                continue
            q = part.portal_positions(t)
            nodes_t = part.shard_array(t)
            out[nodes_t] = (
                via[q][:, None] + self._portal_rows[np.ix_(q, nodes_t)]
            ).min(axis=0)
        return out

    def row(self, v: int) -> np.ndarray:
        v = int(v)
        base_row = np.asarray(self.base.row(v), dtype=float)
        if self.partition.num_shards == 1:
            return base_row
        return self._route(v, base_row)

    def rows(self, nodes: Sequence[int]) -> np.ndarray:
        idx = np.asarray(list(nodes), dtype=int)
        base_rows = np.asarray(self.base.rows(idx), dtype=float)
        if self.partition.num_shards == 1:
            return base_rows
        out = np.empty((idx.size, self.n))
        for pos, v in enumerate(idx.tolist()):
            out[pos] = self._route(v, base_rows[pos])
        return out

    def d(self, u: int, v: int) -> float:
        return float(self.row(u)[int(v)])

    def pairwise(self, nodes: Sequence[int]) -> np.ndarray:
        idx = np.asarray(list(nodes), dtype=int)
        return self.rows(idx)[:, idx]

    def dist_to_set(self, targets: Iterable[int]) -> np.ndarray:
        idx = np.fromiter(targets, dtype=int)
        if idx.size == 0:
            return np.full(self.n, np.inf)
        return dispatch("dist_reduce")(self.rows(idx))

    def nearest_in_set(self, targets: Iterable[int]) -> tuple[np.ndarray, np.ndarray]:
        idx = np.unique(np.fromiter(targets, dtype=int))
        if idx.size == 0:
            raise ValueError("targets must be non-empty")
        return dispatch("nearest_reduce")(self.rows(idx), idx)

    def matvec(self, weights: np.ndarray, *, block_size: int = 128) -> np.ndarray:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n,):
            raise ValueError(f"weights must have shape ({self.n},)")
        out = np.empty(self.n)
        for start in range(0, self.n, block_size):
            block = np.arange(start, min(start + block_size, self.n))
            out[block] = self.rows(block) @ weights
        return out

    def cache_stats(self) -> dict | None:
        """The base backend's row-cache stats (``None`` on a dense base).

        Every per-shard solve routes its row fetches through the shared
        base backend, so after a sharded run this is the *aggregate*
        over all shard views -- what
        :class:`~repro.engine.PlacementEngine.place_sharded` surfaces
        into :class:`~repro.api.PlanReport` extras.
        """
        stats = getattr(self.base, "cache_stats", None)
        return stats() if callable(stats) else None

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        part = self.partition
        return (
            f"PortalMetric(n={self.n}, shards={part.num_shards}, "
            f"portals={part.num_portals}, base={type(self.base).__name__})"
        )


def lazy_metric_from_graph(
    graph: nx.Graph, *, weight: str = "weight", cache_rows: int = DEFAULT_CACHE_ROWS
) -> tuple[LazyMetric, dict, list]:
    """Lazy metric closure plus node <-> index maps.

    The sibling of :func:`repro.graphs.metric.metric_from_graph` with the
    same node-ordering convention, but ``O(n + m)`` memory: connectivity is
    checked on the graph up front instead of through infinite distances.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    if not nx.is_connected(graph):
        raise ValueError("graph must be connected for a finite metric closure")
    adj, index, nodes = graph_to_adjacency(graph, weight=weight)
    return LazyMetric(adj, cache_rows=cache_rows, validate=False), index, nodes


def dense_distance_matrix(
    backend, *, max_nodes: int = DENSE_MATERIALIZE_LIMIT, context: str = ""
) -> np.ndarray:
    """The full ``(n, n)`` matrix of a backend, for algorithms that truly
    need all pairs (Dreyfus--Wagner, brute force, the ILP).

    Dense metrics return their matrix for free; lazy metrics materialize
    under the :data:`DENSE_MATERIALIZE_LIMIT` guard.  ``context`` names the
    caller in the error message.
    """
    if isinstance(backend, Metric):
        return backend.dist
    if isinstance(backend, LazyMetric):
        if backend.n > max_nodes:
            where = f" ({context})" if context else ""
            raise ValueError(
                f"this algorithm{where} needs the dense {backend.n}x"
                f"{backend.n} distance matrix, which exceeds the "
                f"materialization limit of {max_nodes} nodes; use the "
                "scalable code paths or construct a dense Metric explicitly"
            )
        return backend.as_dense(max_nodes=max_nodes).dist
    dist = getattr(backend, "dist", None)
    if dist is not None:
        return np.asarray(dist, dtype=float)
    raise TypeError(f"cannot extract a dense matrix from {type(backend).__name__}")
