"""Graph partitioning for hierarchical sharded placement.

The KRW pipeline is metric-oblivious, so the network can be decomposed
into regions and each object solved against a *shard view* -- its own
region's nodes exactly, plus a portal summary of everything else --
following the partition-and-portal scheme of doubling-metric
decompositions (Cygan et al.).  This module produces that decomposition:

:class:`Partition`
    The frozen result: shard -> node sets, per-shard boundary **portal**
    nodes, and the portal-to-portal *quotient* distance matrix (true
    shortest-path distances, so portal-routed estimates are always
    admissible -- never shorter than the real metric).
:func:`partition_graph`
    Works on a sparse adjacency (or :class:`networkx.Graph`):
    transit-stub-aware *region extraction* -- cut the expensive backbone
    edges, take the cheap connected regions, agglomerate to the
    requested shard count -- with a METIS-style multi-source BFS/greedy
    growth fallback when the edge weights carry no two-level structure.
:func:`partition_metric`
    Fallback for backends that only expose the closure (dense
    :class:`~repro.graphs.metric.Metric`): farthest-point k-center
    seeding and nearest-seed assignment on the metric itself.
:func:`partition_instance`
    Dispatches an instance's backend to the right partitioner.

Every failure mode is a named :class:`PartitionError` (empty shard,
disconnected graph, more shards than nodes, missing adjacency), so
callers can distinguish "this graph cannot be sharded like that" from
programming errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

__all__ = [
    "Partition",
    "PartitionError",
    "PARTITION_METHODS",
    "partition_graph",
    "partition_metric",
    "partition_instance",
]

#: Partition methods :func:`partition_graph` understands (``"none"`` is
#: the config-level opt-out handled by the strategy, never passed here).
PARTITION_METHODS = ("auto", "transit_stub", "bfs", "none")

#: Region extraction needs a visible two-level weight structure: the
#: heaviest edge must exceed the lightest by at least this factor.
_HIERARCHY_RATIO = 4.0


class PartitionError(ValueError):
    """A graph/metric cannot be partitioned as requested (disconnected
    input, empty shard, more shards than nodes, missing adjacency)."""


@dataclass(frozen=True)
class Partition:
    """A shard decomposition of ``n`` nodes with portal summaries.

    Attributes
    ----------
    shards:
        Per-shard node tuples (sorted ascending); together they cover
        ``0..n-1`` exactly once.
    portals:
        Per-shard portal tuples -- boundary nodes of the shard, each a
        subset of the shard's own nodes.  Empty only in the trivial
        single-shard partition.
    quotient:
        ``(P, P)`` matrix of *true* shortest-path distances between the
        concatenated portal nodes (see :attr:`portal_nodes`).  Using
        true distances keeps every portal-routed estimate admissible:
        routing ``u -> portal -> portal -> v`` can overestimate but
        never undercut the real metric (triangle inequality).
    """

    shards: tuple
    portals: tuple
    quotient: np.ndarray
    #: Concatenation of the per-shard portal tuples (quotient row order).
    portal_nodes: tuple = field(init=False)
    #: ``(n,)`` int array mapping node -> shard index.
    shard_of: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        shards = tuple(tuple(int(v) for v in s) for s in self.shards)
        portals = tuple(tuple(int(v) for v in p) for p in self.portals)
        if not shards:
            raise PartitionError("a partition needs at least one shard")
        if len(portals) != len(shards):
            raise PartitionError(
                f"got {len(portals)} portal sets for {len(shards)} shards"
            )
        for s, members in enumerate(shards):
            if not members:
                raise PartitionError(f"shard {s} is empty")
        n = sum(len(s) for s in shards)
        shard_of = np.full(n, -1, dtype=np.int64)
        for s, members in enumerate(shards):
            idx = np.asarray(members, dtype=np.int64)
            if idx.min() < 0 or idx.max() >= n:
                raise PartitionError(
                    f"shard {s} references node ids outside 0..{n - 1}"
                )
            if np.any(shard_of[idx] != -1):
                raise PartitionError(
                    f"shard {s} overlaps another shard"
                )
            shard_of[idx] = s
        # coverage is implied: n ids, n slots, no overlap -> no -1 left
        for s, (members, ports) in enumerate(zip(shards, portals)):
            if not set(ports) <= set(members):
                raise PartitionError(
                    f"portals of shard {s} are not a subset of its nodes"
                )
            if len(shards) > 1 and not ports:
                raise PartitionError(
                    f"shard {s} has no portal; every shard of a multi-shard "
                    "partition needs at least one boundary portal"
                )
        portal_nodes = tuple(v for p in portals for v in p)
        quotient = np.asarray(self.quotient, dtype=float)
        P = len(portal_nodes)
        if P == 0 and quotient.size == 0:
            quotient = quotient.reshape(0, 0)  # JSON loads [] as shape (0,)
        if quotient.shape != (P, P):
            raise PartitionError(
                f"quotient must have shape ({P}, {P}) for {P} portals, "
                f"got {quotient.shape}"
            )
        if P and (not np.all(np.isfinite(quotient)) or quotient.min() < 0):
            raise PartitionError("quotient distances must be finite and >= 0")
        object.__setattr__(self, "shards", shards)
        object.__setattr__(self, "portals", portals)
        object.__setattr__(self, "quotient", quotient)
        object.__setattr__(self, "portal_nodes", portal_nodes)
        object.__setattr__(self, "shard_of", shard_of)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.shard_of.size)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_portals(self) -> int:
        return len(self.portal_nodes)

    def shard_array(self, shard: int) -> np.ndarray:
        """Shard ``shard``'s node ids as an int array (sorted)."""
        return np.asarray(self.shards[shard], dtype=np.int64)

    def portal_positions(self, shard: int) -> np.ndarray:
        """Positions of shard ``shard``'s portals in the global portal
        list (the quotient's row order)."""
        start = sum(len(p) for p in self.portals[:shard])
        return np.arange(start, start + len(self.portals[shard]))

    @classmethod
    def trivial(cls, n: int) -> "Partition":
        """The single-shard partition (the ``num_shards=1`` degenerate
        path: everything intra-shard, no portals, no quotient)."""
        if n < 1:
            raise PartitionError("n must be >= 1")
        return cls((tuple(range(n)),), ((),), np.empty((0, 0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(str(len(s)) for s in self.shards)
        return (
            f"Partition(n={self.n}, shards={self.num_shards} [{sizes}], "
            f"portals={self.num_portals})"
        )


# ----------------------------------------------------------------------
# graph-based partitioning
# ----------------------------------------------------------------------
def _as_csr(graph_or_adjacency, *, weight: str = "weight") -> csr_matrix:
    if hasattr(graph_or_adjacency, "number_of_nodes"):  # networkx graph
        from .metric import graph_to_adjacency

        adj, _, _ = graph_to_adjacency(graph_or_adjacency, weight=weight)
        return adj
    adj = csr_matrix(graph_or_adjacency)
    if adj.shape[0] != adj.shape[1]:
        raise PartitionError(f"adjacency must be square, got {adj.shape}")
    return adj


def _require_connected(adj: csr_matrix) -> None:
    pieces, _ = connected_components(adj, directed=False)
    if pieces > 1:
        raise PartitionError(
            f"graph is disconnected ({pieces} components); a partition "
            "needs a connected network"
        )


def _transit_stub_regions(adj: csr_matrix) -> np.ndarray:
    """Region labels by cutting the expensive (backbone) edges.

    Transit-stub topologies carry their structure in the edge weights:
    intra-stub links are cheap, backbone/gateway links expensive.
    Dropping every edge above the geometric midpoint of the weight range
    leaves each stub cluster as its own connected region (backbone
    routers become singletons).  Raises :class:`PartitionError` when the
    weights show no such two-level hierarchy.
    """
    sym = adj.maximum(adj.T).tocsr()
    if sym.nnz == 0:
        raise PartitionError("graph has no edges; nothing to extract")
    w_min, w_max = float(sym.data.min()), float(sym.data.max())
    if w_min <= 0 or w_max / w_min < _HIERARCHY_RATIO:
        raise PartitionError(
            "edge weights carry no transit-stub hierarchy "
            f"(max/min = {w_max / max(w_min, 1e-300):.2f} < "
            f"{_HIERARCHY_RATIO}); use the BFS fallback"
        )
    threshold = float(np.sqrt(w_min * w_max))
    keep = sym.copy()
    keep.data = np.where(keep.data <= threshold, keep.data, 0.0)
    keep.eliminate_zeros()
    regions, labels = connected_components(keep, directed=False)
    if regions < 2:
        raise PartitionError(
            "region extraction found a single region; use the BFS fallback"
        )
    return labels


def _agglomerate(adj: csr_matrix, labels: np.ndarray, num_shards: int) -> np.ndarray:
    """Merge fine regions into exactly ``num_shards`` groups.

    Greedy METIS-flavoured coarsening: repeatedly take the smallest
    group and merge it with the neighbour reached over the *cheapest*
    connecting edge (ties toward the smaller merged size, then the
    smaller group id).  On a transit-stub weight hierarchy the cheapest
    cross-region edges are the gateway links, so each backbone router
    collects its own stub clusters instead of one group snowballing.
    Deterministic.
    """
    num_regions = int(labels.max()) + 1
    if num_regions < num_shards:
        raise PartitionError(
            f"only {num_regions} regions extracted for {num_shards} shards"
        )
    group = np.arange(num_regions)  # region -> current group id
    sizes = np.bincount(labels, minlength=num_regions).astype(np.int64)
    coo = adj.maximum(adj.T).tocoo()
    # region-level min connecting edge weight
    cross: dict[tuple[int, int], float] = {}
    for u, v, w in zip(labels[coo.row], labels[coo.col], coo.data):
        if u != v:
            key = (int(min(u, v)), int(max(u, v)))
            w = float(w)
            if key not in cross or w < cross[key]:
                cross[key] = w
    alive = set(range(num_regions))
    while len(alive) > num_shards:
        small = min(alive, key=lambda g: (sizes[g], g))
        best: tuple[float, int, int] | None = None
        for (a, b), w in cross.items():
            if small in (a, b):
                other = b if a == small else a
                if other in alive:
                    rank = (w, int(sizes[other]), other)
                    if best is None or rank < best:
                        best = rank
        if best is None:  # isolated group (cannot happen when connected)
            target = min((g for g in alive if g != small),
                         key=lambda g: (sizes[g], g))
        else:
            target = best[2]
        # merge `small` into `target`
        group[group == small] = target
        sizes[target] += sizes[small]
        alive.discard(small)
        merged: dict[tuple[int, int], float] = {}
        for (a, b), w in cross.items():
            a2 = target if a == small else a
            b2 = target if b == small else b
            if a2 != b2:
                key = (min(a2, b2), max(a2, b2))
                if key not in merged or w < merged[key]:
                    merged[key] = w
        cross = merged
    remap = {g: i for i, g in enumerate(sorted(alive))}
    return np.asarray([remap[group[r]] for r in labels], dtype=np.int64)


def _farthest_point_seeds(dist_from, n: int, k: int) -> list[int]:
    """Deterministic k-center seeding: node 0, then repeated argmax of
    the distance to the seed set (first index wins ties)."""
    seeds = [0]
    dist = dist_from(0)
    for _ in range(1, k):
        nxt = int(np.argmax(dist))
        seeds.append(nxt)
        dist = np.minimum(dist, dist_from(nxt))
    return seeds


def _bfs_labels(adj: csr_matrix, num_shards: int) -> np.ndarray:
    """METIS-style greedy growth: multi-source Dijkstra from
    farthest-point seeds; each node joins its nearest seed's shard."""
    def dist_from(v: int) -> np.ndarray:
        return dijkstra(adj, directed=False, indices=[v], min_only=True)

    seeds = _farthest_point_seeds(dist_from, adj.shape[0], num_shards)
    _, _, sources = dijkstra(
        adj, directed=False, indices=np.asarray(seeds),
        min_only=True, return_predecessors=True,
    )
    seed_to_shard = {s: i for i, s in enumerate(seeds)}
    return np.asarray([seed_to_shard[int(s)] for s in sources], dtype=np.int64)


def _boundary_portals(
    adj: csr_matrix, labels: np.ndarray, portals_per_shard: int
) -> list[list[int]]:
    """Per shard: boundary nodes ranked by cross-shard edge count
    (descending, ties toward the smaller node id), capped."""
    sym = adj.maximum(adj.T).tocsr()
    num_shards = int(labels.max()) + 1
    cross_degree = np.zeros(labels.size, dtype=np.int64)
    indptr, indices = sym.indptr, sym.indices
    for v in range(labels.size):
        nbrs = indices[indptr[v]:indptr[v + 1]]
        cross_degree[v] = int(np.count_nonzero(labels[nbrs] != labels[v]))
    portals: list[list[int]] = []
    for s in range(num_shards):
        members = np.flatnonzero(labels == s)
        boundary = members[cross_degree[members] > 0]
        if boundary.size == 0 and num_shards > 1:
            raise PartitionError(
                f"shard {s} has no boundary node; is the graph connected?"
            )
        order = sorted(boundary.tolist(), key=lambda v: (-cross_degree[v], v))
        portals.append(sorted(order[:portals_per_shard]))
    return portals


def _labels_to_partition(
    labels: np.ndarray, portals: list[list[int]], quotient_rows
) -> Partition:
    num_shards = int(labels.max()) + 1
    shards = tuple(
        tuple(np.flatnonzero(labels == s).tolist()) for s in range(num_shards)
    )
    portal_nodes = [v for p in portals for v in p]
    quotient = quotient_rows(portal_nodes)
    return Partition(shards, tuple(tuple(p) for p in portals), quotient)


def partition_graph(
    graph_or_adjacency,
    *,
    num_shards: int,
    portals_per_shard: int,
    method: str = "auto",
    weight: str = "weight",
) -> Partition:
    """Partition a connected weighted graph into portal-summarized shards.

    ``method``: ``"transit_stub"`` cuts the expensive backbone edges and
    agglomerates the cheap regions; ``"bfs"`` grows shards from
    farthest-point seeds by multi-source Dijkstra; ``"auto"`` tries
    region extraction and falls back to BFS growth when the weights
    carry no two-level structure.  Portals are true boundary nodes
    (an incident edge leaves the shard), ranked by cross-shard degree;
    the quotient matrix holds true portal-to-portal shortest-path
    distances, so portal-routed estimates are always admissible.
    """
    if method not in ("auto", "transit_stub", "bfs"):
        raise PartitionError(
            f"unknown partition method {method!r}; choose from "
            "('auto', 'transit_stub', 'bfs')"
        )
    if num_shards < 1 or portals_per_shard < 1:
        raise PartitionError("num_shards and portals_per_shard must be >= 1")
    adj = _as_csr(graph_or_adjacency, weight=weight)
    n = adj.shape[0]
    if n == 0:
        raise PartitionError("graph has no nodes")
    _require_connected(adj)
    if num_shards > n:
        raise PartitionError(
            f"cannot cut {n} nodes into {num_shards} non-empty shards"
        )
    if num_shards == 1:
        return Partition.trivial(n)
    if method == "transit_stub":
        labels = _agglomerate(adj, _transit_stub_regions(adj), num_shards)
    elif method == "bfs":
        labels = _bfs_labels(adj, num_shards)
    else:
        try:
            labels = _agglomerate(adj, _transit_stub_regions(adj), num_shards)
        except PartitionError:
            labels = _bfs_labels(adj, num_shards)
    portals = _boundary_portals(adj, labels, portals_per_shard)

    def quotient_rows(portal_nodes: list[int]) -> np.ndarray:
        if not portal_nodes:
            return np.empty((0, 0))
        idx = np.asarray(portal_nodes, dtype=np.int64)
        return dijkstra(adj, directed=False, indices=idx)[:, idx]

    return _labels_to_partition(labels, portals, quotient_rows)


# ----------------------------------------------------------------------
# metric-based partitioning (dense backends: no adjacency to cut)
# ----------------------------------------------------------------------
def partition_metric(
    backend, *, num_shards: int, portals_per_shard: int
) -> Partition:
    """Partition any :class:`~repro.graphs.backend.DistanceBackend` by
    k-center: farthest-point seeds, nearest-seed assignment.

    The closure carries no edge structure, so "boundary" is metric:
    each shard's portals are its nodes closest to the *other* shards'
    seeds (the likely exits).  Quotient distances are the backend's own
    portal-to-portal distances -- true by construction, hence admissible.
    """
    if num_shards < 1 or portals_per_shard < 1:
        raise PartitionError("num_shards and portals_per_shard must be >= 1")
    n = backend.n
    if num_shards > n:
        raise PartitionError(
            f"cannot cut {n} nodes into {num_shards} non-empty shards"
        )
    if num_shards == 1:
        return Partition.trivial(n)

    def dist_from(v: int) -> np.ndarray:
        return np.asarray(backend.row(v), dtype=float)

    seeds = _farthest_point_seeds(dist_from, n, num_shards)
    seed_rows = np.asarray(backend.rows(seeds), dtype=float)  # (k, n)
    labels = np.argmin(seed_rows, axis=0).astype(np.int64)  # first seed wins ties
    labels[np.asarray(seeds)] = np.arange(num_shards)  # seeds own their shards
    portals: list[list[int]] = []
    for s in range(num_shards):
        members = np.flatnonzero(labels == s)
        if members.size == 0:  # pragma: no cover - seeds make shards non-empty
            raise PartitionError(f"shard {s} is empty")
        other = np.asarray([i for i in range(num_shards) if i != s])
        exit_dist = seed_rows[np.ix_(other, members)].min(axis=0)
        order = sorted(
            members.tolist(), key=lambda v, d=dict(zip(members.tolist(),
                                                       exit_dist.tolist())): (d[v], v)
        )
        portals.append(sorted(order[:portals_per_shard]))

    def quotient_rows(portal_nodes: list[int]) -> np.ndarray:
        if not portal_nodes:
            return np.empty((0, 0))
        return np.asarray(backend.pairwise(portal_nodes), dtype=float)

    return _labels_to_partition(labels, portals, quotient_rows)


def partition_instance(
    instance, *, num_shards: int, portals_per_shard: int, method: str = "auto"
) -> Partition:
    """Partition an instance's network with the right partitioner.

    Lazy backends expose their CSR adjacency and go through
    :func:`partition_graph`; dense closures have no adjacency to cut,
    so ``"auto"``/``"bfs"`` fall back to :func:`partition_metric` and an
    explicit ``"transit_stub"`` request raises a :class:`PartitionError`
    naming the limitation.
    """
    metric = instance.metric
    adjacency = getattr(metric, "adjacency", None)
    if adjacency is not None:
        return partition_graph(
            adjacency, num_shards=num_shards,
            portals_per_shard=portals_per_shard, method=method,
        )
    if method == "transit_stub":
        raise PartitionError(
            "transit-stub region extraction needs the graph adjacency, but "
            "this instance's metric only carries the dense closure; use the "
            "lazy backend or method='bfs'/'auto'"
        )
    return partition_metric(
        metric, num_shards=num_shards, portals_per_shard=portals_per_shard
    )
