"""Steiner trees: the exact optimum and the MST 2-approximation.

The paper's cost model charges a write request issued at ``h`` the cost of
an update set connecting ``h`` with *all* copies.  The cheapest such set is
a minimum Steiner tree over ``{h} ∪ S`` (used by the true optimum and the
tree algorithm of Section 3), while the approximation algorithm of
Section 2 settles for the classic factor-2 surrogate: a minimum spanning
tree over the terminals in the metric closure (Claim 2 is exactly the
``MST <= 2 * Steiner`` argument).

Provided here:

* :func:`steiner_mst_cost` -- the 2-approximation (terminal MST in the
  metric closure); this *is* the update tree the Section 2 algorithm ships.
* :func:`steiner_exact_cost` -- exact minimum Steiner tree cost via the
  Dreyfus--Wagner dynamic program, ``O(3^t * n + 2^t * n^2)`` for ``t``
  terminals.  Used by the brute-force true-optimum baseline on small
  instances (Experiment E3) and as the ground truth in property tests.
* :func:`steiner_kmb` -- Kou--Markowsky--Berman tree construction on an
  explicit graph (returns edges, not just cost), for callers that want an
  embeddable multicast tree.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from .backend import dense_distance_matrix
from .metric import Metric
from .mst import mst_cost

__all__ = [
    "steiner_mst_cost",
    "steiner_exact_cost",
    "steiner_kmb",
    "MAX_EXACT_TERMINALS",
]

#: Guard rail for the exponential exact solver.
MAX_EXACT_TERMINALS = 12


def steiner_mst_cost(metric: Metric, terminals: Sequence[int]) -> float:
    """Cost of the MST-over-terminals Steiner approximation (factor 2)."""
    return mst_cost(metric, _dedupe(terminals))


def steiner_exact_cost(metric: Metric, terminals: Sequence[int]) -> float:
    """Exact minimum Steiner tree cost (Dreyfus--Wagner DP).

    Steiner (branching) nodes may be any of the metric's nodes.  Raises
    for more than :data:`MAX_EXACT_TERMINALS` terminals -- the DP is
    exponential in the terminal count by design (the problem is NP-hard);
    larger instances should use :func:`steiner_mst_cost`.
    """
    terms = _dedupe(terminals)
    t = len(terms)
    if t == 0:
        raise ValueError("need at least one terminal")
    if t <= 2:
        # One terminal: empty tree.  Two: the shortest path between them.
        return 0.0 if t == 1 else metric.d(terms[0], terms[1])
    if t > MAX_EXACT_TERMINALS:
        raise ValueError(
            f"{t} terminals exceeds MAX_EXACT_TERMINALS={MAX_EXACT_TERMINALS}; "
            "use steiner_mst_cost for large instances"
        )

    # Dreyfus--Wagner grows trees through arbitrary Steiner nodes, so it
    # genuinely needs every distance row; lazy backends materialize here
    # (guarded -- the DP is exponential in terminals anyway).
    d = dense_distance_matrix(metric, context="steiner_exact_cost")
    n = metric.n
    root = terms[-1]
    others = terms[:-1]
    m = len(others)
    full = (1 << m) - 1

    # dp[mask] : length-n vector; dp[mask][v] = min cost of a tree spanning
    # {others[i] : bit i set} ∪ {v}.
    dp = np.full((full + 1, n), np.inf)
    for i, term in enumerate(others):
        dp[1 << i] = d[term]  # base: shortest path term -> v

    for mask in range(1, full + 1):
        if mask & (mask - 1) == 0:  # singleton handled in the base case
            continue
        row = dp[mask]
        # Merge step: two subtrees joined at v.  Enumerate proper submasks.
        sub = (mask - 1) & mask
        while sub:
            comp = mask ^ sub
            if sub < comp:  # each unordered split once
                np.minimum(row, dp[sub] + dp[comp], out=row)
            sub = (sub - 1) & mask
        # Grow step: attach v via the cheapest path from any u
        # (a Dijkstra over the metric closure collapses to one min-plus
        # product row because the closure is already transitively closed).
        np.minimum(row, (row[:, None] + d).min(axis=0), out=row)

    return float(dp[full][root])


def steiner_kmb(
    graph: nx.Graph, terminals: Iterable[int], *, weight: str = "weight"
) -> tuple[list[tuple[int, int]], float]:
    """Kou--Markowsky--Berman 2-approximate Steiner tree on a graph.

    Returns ``(edges, cost)`` where ``edges`` are graph edges forming a
    tree that spans all terminals.  Useful when the caller needs an actual
    embedded multicast tree rather than the metric-closure cost.
    """
    terms = _dedupe(terminals)
    if not terms:
        raise ValueError("need at least one terminal")
    if len(terms) == 1:
        return [], 0.0

    # 1. complete graph over terminals weighted by shortest-path distances
    paths: dict[tuple[int, int], list] = {}
    closure = nx.Graph()
    for u, v in combinations(terms, 2):
        length, path = nx.single_source_dijkstra(graph, u, v, weight=weight)
        closure.add_edge(u, v, weight=length)
        paths[(u, v)] = path
    # 2. MST of the closure, 3. expand to shortest paths
    expanded = nx.Graph()
    for u, v in nx.minimum_spanning_edges(closure, data=False):
        key = (u, v) if (u, v) in paths else (v, u)
        path = paths[key]
        for a, b in zip(path[:-1], path[1:]):
            expanded.add_edge(a, b, weight=graph[a][b].get(weight, 1.0))
    # 4. MST of the expanded subgraph, 5. prune non-terminal leaves
    tree = nx.minimum_spanning_tree(expanded, weight="weight")
    term_set = set(terms)
    while True:
        leaves = [v for v in tree.nodes if tree.degree(v) == 1 and v not in term_set]
        if not leaves:
            break
        tree.remove_nodes_from(leaves)
    cost = sum(data["weight"] for _, _, data in tree.edges(data=True))
    return [(u, v) for u, v in tree.edges()], float(cost)


def _dedupe(nodes: Iterable[int]) -> list[int]:
    return sorted(set(int(v) for v in nodes))
