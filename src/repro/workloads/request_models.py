"""Workload generators: request frequencies and storage prices.

The paper's motivation spans three request regimes -- WWW content (many
readers, few writers, Zipf popularity), distributed file systems (mixed
read/write with locality) and virtual shared memory (fine-grained,
write-heavy).  These generators produce the ``fr``/``fw`` matrices and
``cs`` vectors that, combined with a topology from
:mod:`repro.graphs.generators`, make a
:class:`~repro.core.instance.DataManagementInstance`.

All functions are seeded and return integer-valued float arrays (the model
treats frequencies as request counts).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import DataManagementInstance
from ..graphs.metric import Metric

__all__ = [
    "uniform_storage_costs",
    "heterogeneous_storage_costs",
    "uniform_requests",
    "zipf_object_popularity",
    "hotspot_requests",
    "split_read_write",
    "make_instance",
]


def uniform_storage_costs(n: int, price: float) -> np.ndarray:
    """Every memory module rents at the same per-object price."""
    if price < 0:
        raise ValueError("price must be non-negative")
    return np.full(n, float(price))


def heterogeneous_storage_costs(
    n: int, *, seed: int, low: float = 0.5, high: float = 4.0
) -> np.ndarray:
    """Per-node prices uniform in ``[low, high)`` -- a market of providers."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=n)


def uniform_requests(
    n: int, m: int, *, seed: int, mean: float = 4.0
) -> np.ndarray:
    """Independent Poisson request counts per (object, node)."""
    rng = np.random.default_rng(seed)
    return rng.poisson(mean, size=(m, n)).astype(float)


def zipf_object_popularity(
    n: int, m: int, *, seed: int, total_per_object: float = 100.0, exponent: float = 0.8
) -> np.ndarray:
    """Zipf-popular objects, uniform-random request homes.

    Object ``i`` receives ``total * (i+1)^-exponent / H`` requests (the
    classic WWW popularity curve), multinomially scattered over nodes.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, m + 1, dtype=float) ** (-exponent)
    ranks /= ranks.sum()
    out = np.zeros((m, n))
    for i in range(m):
        total = int(round(total_per_object * m * ranks[i]))
        if total > 0:
            out[i] = rng.multinomial(total, np.full(n, 1.0 / n))
    return out


def hotspot_requests(
    n: int,
    m: int,
    *,
    seed: int,
    hot_fraction: float = 0.2,
    hot_share: float = 0.8,
    total_per_object: float = 100.0,
) -> np.ndarray:
    """A small set of hot nodes issues most requests (locality skew)."""
    if not 0 < hot_fraction <= 1 or not 0 <= hot_share <= 1:
        raise ValueError("fractions must lie in (0,1] and [0,1]")
    rng = np.random.default_rng(seed)
    k = max(1, int(round(hot_fraction * n)))
    out = np.zeros((m, n))
    for i in range(m):
        hot = rng.choice(n, size=k, replace=False)
        probs = np.full(n, (1.0 - hot_share) / max(n - k, 1))
        if n == k:
            probs[:] = 0.0
        probs[hot] = hot_share / k
        probs /= probs.sum()
        out[i] = rng.multinomial(int(total_per_object), probs)
    return out


def split_read_write(
    demand: np.ndarray, *, write_fraction: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split a demand matrix into integer read/write counts.

    Each request independently becomes a write with probability
    ``write_fraction`` (binomial per cell), so the realized mix fluctuates
    realistically around the target.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    demand = np.asarray(demand, dtype=float)
    writes = rng.binomial(demand.astype(int), write_fraction).astype(float)
    reads = demand - writes
    return reads, writes


def make_instance(
    metric: Metric,
    *,
    seed: int,
    num_objects: int = 1,
    demand_model: str = "uniform",
    write_fraction: float = 0.2,
    storage_price: float | None = None,
    mean_demand: float = 4.0,
) -> DataManagementInstance:
    """One-stop instance factory used by tests and benchmarks.

    ``demand_model`` is ``"uniform"``, ``"zipf"`` or ``"hotspot"``;
    ``storage_price=None`` draws heterogeneous prices.
    """
    n = metric.n
    if demand_model == "uniform":
        demand = uniform_requests(n, num_objects, seed=seed, mean=mean_demand)
    elif demand_model == "zipf":
        demand = zipf_object_popularity(
            n, num_objects, seed=seed, total_per_object=mean_demand * n
        )
    elif demand_model == "hotspot":
        demand = hotspot_requests(
            n, num_objects, seed=seed, total_per_object=mean_demand * n
        )
    else:
        raise ValueError(f"unknown demand model {demand_model!r}")
    reads, writes = split_read_write(demand, write_fraction=write_fraction, seed=seed + 1)
    if storage_price is None:
        cs = heterogeneous_storage_costs(n, seed=seed + 2)
    else:
        cs = uniform_storage_costs(n, storage_price)
    return DataManagementInstance(metric, cs, reads, writes)
