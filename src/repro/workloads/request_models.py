"""Workload generators: request frequencies and storage prices.

The paper's motivation spans three request regimes -- WWW content (many
readers, few writers, Zipf popularity), distributed file systems (mixed
read/write with locality) and virtual shared memory (fine-grained,
write-heavy).  These generators produce the ``fr``/``fw`` matrices and
``cs`` vectors that, combined with a topology from
:mod:`repro.graphs.generators`, make a
:class:`~repro.core.instance.DataManagementInstance`.

All functions are seeded and return integer-valued float arrays (the model
treats frequencies as request counts).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import DataManagementInstance
from ..graphs.metric import Metric

__all__ = [
    "uniform_storage_costs",
    "heterogeneous_storage_costs",
    "uniform_requests",
    "zipf_object_popularity",
    "zipf_catalog",
    "hotspot_node_probs",
    "hotspot_requests",
    "split_read_write",
    "make_instance",
]


def uniform_storage_costs(n: int, price: float) -> np.ndarray:
    """Every memory module rents at the same per-object price."""
    if price < 0:
        raise ValueError("price must be non-negative")
    return np.full(n, float(price))


def heterogeneous_storage_costs(
    n: int, *, seed: int, low: float = 0.5, high: float = 4.0
) -> np.ndarray:
    """Per-node prices uniform in ``[low, high)`` -- a market of providers."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=n)


def uniform_requests(
    n: int, m: int, *, seed: int, mean: float = 4.0
) -> np.ndarray:
    """Independent Poisson request counts per (object, node)."""
    rng = np.random.default_rng(seed)
    return rng.poisson(mean, size=(m, n)).astype(float)


def zipf_object_popularity(
    n: int, m: int, *, seed: int, total_per_object: float = 100.0, exponent: float = 0.8
) -> np.ndarray:
    """Zipf-popular objects, uniform-random request homes.

    Object ``i`` receives ``total * (i+1)^-exponent / H`` requests (the
    classic WWW popularity curve), multinomially scattered over nodes.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, m + 1, dtype=float) ** (-exponent)
    ranks /= ranks.sum()
    out = np.zeros((m, n))
    for i in range(m):
        total = int(round(total_per_object * m * ranks[i]))
        if total > 0:
            out[i] = rng.multinomial(total, np.full(n, 1.0 / n))
    return out


def zipf_catalog(
    n: int,
    m: int,
    *,
    seed: int,
    total_requests: float | None = None,
    exponent: float = 0.8,
    node_probs: np.ndarray | None = None,
) -> np.ndarray:
    """Columnar Zipf catalog: the whole ``(m, n)`` demand matrix at once.

    The catalog-scale sibling of :func:`zipf_object_popularity`: instead of
    one multinomial *per object* (a Python loop that dominates generation
    beyond a few thousand objects), a single request budget is split across
    objects by Zipf popularity (one multinomial over objects), every
    request draws its home node (one vectorized draw), and the matrix is
    assembled with one ``bincount``.  Generation is ``O(T + m n)`` for
    ``T = total_requests``, so 100k-object catalogs build in seconds.

    Parameters
    ----------
    total_requests:
        Catalog-wide request budget; defaults to ``100 * m`` (the same
        mean load per object as :func:`zipf_object_popularity`).  Under a
        fixed per-object mean the tail of a large catalog is *sparse* --
        most objects are requested from a handful of nodes -- which is
        exactly the regime the batched placement engine exploits.
    exponent:
        Zipf popularity exponent (the classic WWW curve is ``~0.8``).
    node_probs:
        Optional ``(n,)`` distribution of request homes (e.g. from
        :func:`hotspot_node_probs`); uniform when ``None``.
    """
    if m < 1 or n < 1:
        raise ValueError("need at least one object and one node")
    rng = np.random.default_rng(seed)
    if total_requests is None:
        total_requests = 100.0 * m
    total = int(round(total_requests))
    if total < 0:
        raise ValueError("total_requests must be non-negative")
    ranks = np.arange(1, m + 1, dtype=float) ** (-exponent)
    ranks /= ranks.sum()
    per_object = rng.multinomial(total, ranks)
    if node_probs is None:
        homes = rng.integers(0, n, size=total)
    else:
        probs = np.asarray(node_probs, dtype=float)
        if probs.shape != (n,) or np.any(probs < 0) or probs.sum() <= 0:
            raise ValueError("node_probs must be a non-negative (n,) distribution")
        homes = rng.choice(n, size=total, p=probs / probs.sum())
    obj_of_request = np.repeat(np.arange(m), per_object)
    flat = np.bincount(obj_of_request * n + homes, minlength=m * n)
    return flat.reshape(m, n).astype(float)


def hotspot_node_probs(
    n: int, *, seed: int, hot_fraction: float = 0.2, hot_share: float = 0.8
) -> np.ndarray:
    """A request-home distribution where a few hot nodes issue most
    requests -- the catalog-wide analogue of :func:`hotspot_requests`'
    per-object hot sets."""
    if not 0 < hot_fraction <= 1 or not 0 <= hot_share <= 1:
        raise ValueError("fractions must lie in (0,1] and [0,1]")
    rng = np.random.default_rng(seed)
    k = max(1, int(round(hot_fraction * n)))
    hot = rng.choice(n, size=k, replace=False)
    probs = np.full(n, (1.0 - hot_share) / max(n - k, 1))
    if n == k:
        probs[:] = 0.0
    probs[hot] = hot_share / k
    if probs.sum() <= 0:
        raise ValueError(
            "degenerate hotspot distribution: every node is hot "
            "(hot_fraction ~ 1) with hot_share = 0 leaves no request mass"
        )
    return probs / probs.sum()


def hotspot_requests(
    n: int,
    m: int,
    *,
    seed: int,
    hot_fraction: float = 0.2,
    hot_share: float = 0.8,
    total_per_object: float = 100.0,
) -> np.ndarray:
    """A small set of hot nodes issues most requests (locality skew)."""
    if not 0 < hot_fraction <= 1 or not 0 <= hot_share <= 1:
        raise ValueError("fractions must lie in (0,1] and [0,1]")
    rng = np.random.default_rng(seed)
    k = max(1, int(round(hot_fraction * n)))
    out = np.zeros((m, n))
    for i in range(m):
        hot = rng.choice(n, size=k, replace=False)
        probs = np.full(n, (1.0 - hot_share) / max(n - k, 1))
        if n == k:
            probs[:] = 0.0
        probs[hot] = hot_share / k
        probs /= probs.sum()
        out[i] = rng.multinomial(int(total_per_object), probs)
    return out


def split_read_write(
    demand: np.ndarray, *, write_fraction: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split a demand matrix into integer read/write counts.

    Each request independently becomes a write with probability
    ``write_fraction`` (binomial per cell), so the realized mix fluctuates
    realistically around the target.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    demand = np.asarray(demand, dtype=float)
    writes = rng.binomial(demand.astype(int), write_fraction).astype(float)
    reads = demand - writes
    return reads, writes


def make_instance(
    metric: Metric,
    *,
    seed: int,
    num_objects: int = 1,
    demand_model: str = "uniform",
    write_fraction: float = 0.2,
    storage_price: float | None = None,
    mean_demand: float = 4.0,
    total_requests: float | None = None,
) -> DataManagementInstance:
    """One-stop instance factory used by tests and benchmarks.

    ``demand_model`` is ``"uniform"``, ``"zipf"``, ``"hotspot"``,
    ``"catalog"`` or ``"catalog_hotspot"``; ``storage_price=None`` draws
    heterogeneous prices.  The ``catalog*`` models build the whole demand
    matrix columnar via :func:`zipf_catalog` under one catalog-wide
    ``total_requests`` budget (default ``100 * num_objects``) -- the
    scalable path for 10k+-object catalogs; the other models scale demand
    per object via ``mean_demand``.
    """
    n = metric.n
    if total_requests is not None and demand_model not in ("catalog", "catalog_hotspot"):
        raise ValueError(
            f"total_requests only applies to the catalog demand models, "
            f"not {demand_model!r} (its demand scales via mean_demand)"
        )
    if demand_model == "uniform":
        demand = uniform_requests(n, num_objects, seed=seed, mean=mean_demand)
    elif demand_model == "zipf":
        demand = zipf_object_popularity(
            n, num_objects, seed=seed, total_per_object=mean_demand * n
        )
    elif demand_model == "hotspot":
        demand = hotspot_requests(
            n, num_objects, seed=seed, total_per_object=mean_demand * n
        )
    elif demand_model in ("catalog", "catalog_hotspot"):
        probs = (
            hotspot_node_probs(n, seed=seed + 3)
            if demand_model == "catalog_hotspot"
            else None
        )
        demand = zipf_catalog(
            n, num_objects, seed=seed, total_requests=total_requests,
            node_probs=probs,
        )
    else:
        raise ValueError(f"unknown demand model {demand_model!r}")
    reads, writes = split_read_write(demand, write_fraction=write_fraction, seed=seed + 1)
    if storage_price is None:
        cs = heterogeneous_storage_costs(n, seed=seed + 2)
    else:
        cs = uniform_storage_costs(n, storage_price)
    return DataManagementInstance(metric, cs, reads, writes)
