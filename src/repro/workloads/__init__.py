"""Workload generators, named scenarios, and time-evolving workloads."""

from .drift import DriftTracker
from .dynamic import (
    DynamicWorkload,
    drifted_rows,
    drifting_zipf_catalog,
    flash_crowd,
)
from .request_models import (
    heterogeneous_storage_costs,
    hotspot_node_probs,
    hotspot_requests,
    make_instance,
    split_read_write,
    uniform_requests,
    uniform_storage_costs,
    zipf_catalog,
    zipf_object_popularity,
)
from .scenarios import (
    CATALOG_AUTO_THRESHOLD,
    DYNAMIC_SCENARIOS,
    SCENARIO_BUILDERS,
    Scenario,
    distributed_file_system,
    tree_network,
    virtual_shared_memory,
    www_content_provider,
)

__all__ = [
    "uniform_storage_costs",
    "heterogeneous_storage_costs",
    "uniform_requests",
    "zipf_object_popularity",
    "zipf_catalog",
    "hotspot_node_probs",
    "hotspot_requests",
    "split_read_write",
    "make_instance",
    "Scenario",
    "CATALOG_AUTO_THRESHOLD",
    "SCENARIO_BUILDERS",
    "DYNAMIC_SCENARIOS",
    "www_content_provider",
    "distributed_file_system",
    "virtual_shared_memory",
    "tree_network",
    "DriftTracker",
    "DynamicWorkload",
    "drifted_rows",
    "drifting_zipf_catalog",
    "flash_crowd",
]
