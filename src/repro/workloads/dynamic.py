"""Time-evolving workloads: epoch-structured demand for the dynamic layer.

The static model freezes one billing period; the dynamic setting the
paper's related work studies (Awerbuch/Bartal/Fiat; the migration model
of Khuller et al.) evolves.  This module provides the bridge
representation -- :class:`DynamicWorkload`, a stack of per-epoch
``fr``/``fw`` frequency matrices -- plus generators for the two classic
churn shapes:

* :func:`drifting_zipf_catalog` -- WWW popularity churn: the catalog's
  Zipf rank assignment drifts between epochs (a fraction of objects
  swap popularity ranks), so yesterday's hot pages cool off and cold
  ones break out.
* :func:`flash_crowd` -- a handful of previously-cold objects suddenly
  draw a read burst from a localized crowd of nodes for one epoch, then
  demand returns to baseline.

Each epoch is one billing period: an
:class:`~repro.simulate.replanner.EpochReplanner` re-solves the static
problem per epoch (paying migration), while the clairvoyant-static and
online strategies consume the same epochs through
:meth:`DynamicWorkload.aggregate_instance` and
:meth:`DynamicWorkload.full_log` (Experiment E15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import DataManagementInstance
from ..simulate.events import RequestLog

__all__ = [
    "DynamicWorkload",
    "drifted_rows",
    "drifting_zipf_catalog",
    "flash_crowd",
]


def drifted_rows(
    base_fr: np.ndarray,
    base_fw: np.ndarray,
    fr: np.ndarray,
    fw: np.ndarray,
    *,
    tolerance: float = 0.0,
) -> np.ndarray:
    """Objects whose ``(fr, fw)`` rows drifted from a baseline.

    The shared detection kernel: :meth:`DynamicWorkload.drifted_objects`
    applies it with the *previous epoch* as the baseline, while
    :class:`~repro.simulate.replanner.EpochReplanner`'s incremental mode
    applies it with each object's demand *at its last re-place* -- so a
    slow per-epoch drift accumulates against the snapshot the current
    placement was actually solved for and cannot stay under a positive
    tolerance forever.

    ``tolerance=0.0`` is an exact bitwise row-change test (no float
    thresholding); ``tolerance>0`` compares the normalized L1 delta
    (see :meth:`DynamicWorkload.demand_delta`) against the threshold.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if tolerance == 0.0:
        changed = np.any(fr != base_fr, axis=1) | np.any(fw != base_fw, axis=1)
        return np.flatnonzero(changed)
    return np.flatnonzero(_normalized_l1(base_fr, base_fw, fr, fw) > tolerance)


def _normalized_l1(
    base_fr: np.ndarray,
    base_fw: np.ndarray,
    fr: np.ndarray,
    fw: np.ndarray,
) -> np.ndarray:
    """Per-object L1 demand change between two row stacks, normalized by
    the larger of the two volumes -- the one delta metric shared by
    :meth:`DynamicWorkload.demand_delta` and :func:`drifted_rows`."""
    l1 = np.abs(fr - base_fr).sum(axis=1) + np.abs(fw - base_fw).sum(axis=1)
    base = base_fr.sum(axis=1) + base_fw.sum(axis=1)
    curr = fr.sum(axis=1) + fw.sum(axis=1)
    return l1 / np.maximum(np.maximum(base, curr), 1.0)


@dataclass(frozen=True)
class DynamicWorkload:
    """Epoch-structured demand: ``(epochs, m, n)`` frequency stacks.

    ``read_freqs[e]`` / ``write_freqs[e]`` are the integer ``(m, n)``
    read/write matrices of epoch ``e`` -- each epoch is a complete
    static instance's billing period over the same catalog and network.
    """

    read_freqs: np.ndarray
    write_freqs: np.ndarray
    name: str = "dynamic"

    def __post_init__(self) -> None:
        fr = np.asarray(self.read_freqs, dtype=float)
        fw = np.asarray(self.write_freqs, dtype=float)
        if fr.ndim != 3 or fr.shape != fw.shape:
            raise ValueError(
                "read_freqs and write_freqs must be equal-shaped "
                f"(epochs, m, n) stacks, got {fr.shape} and {fw.shape}"
            )
        if fr.shape[0] < 1:
            raise ValueError("need at least one epoch")
        if np.any(fr < 0) or np.any(fw < 0):
            raise ValueError("frequencies must be non-negative")
        object.__setattr__(self, "read_freqs", fr)
        object.__setattr__(self, "write_freqs", fw)

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return self.read_freqs.shape[0]

    @property
    def num_objects(self) -> int:
        return self.read_freqs.shape[1]

    @property
    def num_nodes(self) -> int:
        return self.read_freqs.shape[2]

    @property
    def total_events(self) -> int:
        """Total request count across all epochs."""
        return int(round(float(self.read_freqs.sum() + self.write_freqs.sum())))

    # ------------------------------------------------------------------
    # drift detection (the incremental replanner's dirty-object oracle)
    # ------------------------------------------------------------------
    def demand_delta(self, epoch: int) -> np.ndarray:
        """Normalized per-object L1 demand change entering ``epoch``.

        For object ``x`` with per-node frequency rows ``fr_e[x]`` /
        ``fw_e[x]``::

            delta[x] = (|fr_e[x] - fr_{e-1}[x]| + |fw_e[x] - fw_{e-1}[x]|).sum()
                       / max(T_{e-1}[x], T_e[x], 1)

        where ``T_e[x]`` is the object's total request count in epoch
        ``e`` -- i.e. the fraction of the object's demand that moved,
        measured against the larger of the two epochs' volumes so the
        delta lies in ``[0, 2]`` and a zero-demand pair scores ``0``.
        Epoch ``0`` has no predecessor and is rejected.
        """
        if not 1 <= epoch < self.num_epochs:
            raise ValueError(
                f"demand_delta needs an epoch in [1, {self.num_epochs}), "
                f"got {epoch}"
            )
        return _normalized_l1(
            self.read_freqs[epoch - 1], self.write_freqs[epoch - 1],
            self.read_freqs[epoch], self.write_freqs[epoch],
        )

    def drifted_objects(self, epoch: int, *, tolerance: float = 0.0) -> np.ndarray:
        """Objects whose demand drifted into ``epoch`` beyond ``tolerance``.

        The consecutive-epoch dirty-object detector: epoch ``0`` returns
        every object (there is no previous epoch to carry placements
        from).  At ``tolerance=0.0`` the set is *exactly* the objects
        whose ``fr``/``fw`` rows changed at all (compared bitwise, no
        float thresholding), so re-placing only these objects reproduces
        the full per-epoch re-solve bit-identically -- objects are
        placed independently, and an unchanged row yields an unchanged
        copy set.  ``tolerance > 0`` additionally keeps objects whose
        :meth:`demand_delta` is at most the tolerance.

        Note: the incremental replanner measures positive tolerances
        against each object's demand *at its last re-place* (via
        :func:`drifted_rows`), not against epoch ``epoch - 1`` -- a slow
        drift accumulates there instead of slipping under the threshold
        epoch after epoch.  At ``tolerance=0`` the two baselines
        coincide (an unchanged-row object's last-re-place snapshot *is*
        the previous epoch's row).
        """
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if not 0 <= epoch < self.num_epochs:
            raise ValueError(
                f"epoch must lie in [0, {self.num_epochs}), got {epoch}"
            )
        if epoch == 0:
            return np.arange(self.num_objects)
        return drifted_rows(
            self.read_freqs[epoch - 1], self.write_freqs[epoch - 1],
            self.read_freqs[epoch], self.write_freqs[epoch],
            tolerance=tolerance,
        )

    # ------------------------------------------------------------------
    def epoch_instance(
        self, metric, storage_costs, epoch: int
    ) -> DataManagementInstance:
        """One epoch as a static instance (shared metric and prices)."""
        return DataManagementInstance(
            metric, storage_costs, self.read_freqs[epoch], self.write_freqs[epoch]
        )

    def aggregate_instance(self, metric, storage_costs) -> DataManagementInstance:
        """All epochs summed into one instance -- what a clairvoyant
        static strategy optimizes for (total traffic over the horizon)."""
        return DataManagementInstance(
            metric,
            storage_costs,
            self.read_freqs.sum(axis=0),
            self.write_freqs.sum(axis=0),
        )

    def epoch_log(self, epoch: int, *, seed: int | None = None) -> RequestLog:
        """One epoch's event stream (vectorized columnar expansion)."""
        return RequestLog.from_frequencies(
            self.read_freqs[epoch], self.write_freqs[epoch], seed=seed
        )

    def full_log(self, *, seed: int | None = None) -> RequestLog:
        """The whole horizon as one stream: epochs in order, each epoch
        internally shuffled (``seed + epoch``) when a seed is given."""
        return RequestLog.concat([
            self.epoch_log(e, seed=None if seed is None else seed + e)
            for e in range(self.num_epochs)
        ])


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def _catalog_demand(
    rng: np.random.Generator,
    n: int,
    m: int,
    total: int,
    obj_probs: np.ndarray,
    node_probs: np.ndarray | None,
) -> np.ndarray:
    """One epoch's ``(m, n)`` demand matrix: a request budget split over
    objects by popularity and over nodes by the home distribution --
    the columnar kernel of :func:`~repro.workloads.request_models.zipf_catalog`.
    Delegates to :func:`_catalog_demand_rows` over every row (bit-identical
    RNG stream: same multinomial, then same full-budget home draw)."""
    return _catalog_demand_rows(rng, n, total, obj_probs, node_probs, np.arange(m))


def _catalog_demand_rows(
    rng: np.random.Generator,
    n: int,
    total: int,
    obj_probs: np.ndarray,
    node_probs: np.ndarray | None,
    rows: np.ndarray,
) -> np.ndarray:
    """Demand for a subset of object rows only: the ``redraw="changed"``
    kernel.  Budgets are still split over the *whole* catalog by
    popularity (so each touched row's marginal matches a full
    :func:`_catalog_demand` draw), but request homes are sampled and
    binned only for the touched objects -- ``O(k * n)`` scratch instead
    of ``O(m * n)`` for ``k`` churned rows."""
    per_object = rng.multinomial(total, obj_probs)
    k = rows.size
    budget = int(per_object[rows].sum())
    if node_probs is None:
        homes = rng.integers(0, n, size=budget)
    else:
        homes = rng.choice(n, size=budget, p=node_probs)
    row_of_request = np.repeat(np.arange(k), per_object[rows])
    flat = np.bincount(row_of_request * n + homes, minlength=k * n)
    return flat.reshape(k, n).astype(float)


def _split_writes(
    rng: np.random.Generator, demand: np.ndarray, write_fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    writes = rng.binomial(demand.astype(int), write_fraction).astype(float)
    return demand - writes, writes


def _zipf_probs(m: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, m + 1, dtype=float) ** (-exponent)
    return ranks / ranks.sum()


def drifting_zipf_catalog(
    n: int,
    m: int,
    *,
    epochs: int,
    seed: int,
    exponent: float = 0.8,
    drift: float = 0.15,
    requests_per_epoch: int | None = None,
    write_fraction: float = 0.05,
    node_probs: np.ndarray | None = None,
    redraw: str = "all",
) -> DynamicWorkload:
    """Zipf catalog whose popularity ranking churns between epochs.

    Epoch 0 assigns Zipf ranks to objects at random; each later epoch
    swaps the ranks of ``round(drift * m)`` random object pairs before
    drawing its demand -- so a ``drift`` of 0.15 relabels ~30% of the
    catalog's popularity mass per epoch while the *shape* of the
    popularity curve stays fixed.  Every epoch spends the same request
    budget (``requests_per_epoch``, default ``100 * m``) and splits each
    request into a write with probability ``write_fraction``.

    ``redraw`` controls how much of the demand matrix is resampled per
    epoch:

    ``"all"`` (default)
        Every epoch redraws the full multinomial demand, so sampling
        noise touches every object's rows even when its rank is
        unchanged -- the historical behavior.
    ``"changed"``
        Each later epoch redraws demand for *exactly*
        ``round(drift * m)`` randomly chosen objects (``drift`` is then
        the exact fraction of the catalog whose demand changes per
        epoch): with two or more touched objects their ranks rotate
        cyclically first, with exactly one its demand is redrawn from
        its unchanged popularity (a rank rotation needs a pair); every
        other object's ``fr``/``fw`` rows carry forward bit-identically.  This is the sparse-drift
        regime the incremental replanner exploits: at ``tolerance=0``
        its dirty set is exactly the rotated objects.  Per-epoch
        request budgets are then only approximately
        ``requests_per_epoch`` (carried rows keep their realized
        counts).
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must lie in [0, 1]")
    if redraw not in ("all", "changed"):
        raise ValueError(f"redraw must be 'all' or 'changed', got {redraw!r}")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    total = int(requests_per_epoch if requests_per_epoch is not None else 100 * m)
    if total < 0:
        raise ValueError("requests_per_epoch must be non-negative")
    if node_probs is not None:
        node_probs = np.asarray(node_probs, dtype=float)
        if node_probs.shape != (n,) or np.any(node_probs < 0) or node_probs.sum() <= 0:
            raise ValueError("node_probs must be a non-negative (n,) distribution")
        node_probs = node_probs / node_probs.sum()

    ranks = _zipf_probs(m, exponent)
    rank_of = rng.permutation(m)  # object -> popularity rank
    swaps = int(round(drift * m))

    fr = np.empty((epochs, m, n))
    fw = np.empty((epochs, m, n))
    for e in range(epochs):
        touched: np.ndarray | None = None
        if e > 0:
            if redraw == "all":
                if swaps:
                    a = rng.integers(0, m, size=swaps)
                    b = rng.integers(0, m, size=swaps)
                    for i, j in zip(a.tolist(), b.tolist()):
                        rank_of[i], rank_of[j] = rank_of[j], rank_of[i]
            elif swaps >= 1:
                touched = np.sort(rng.choice(m, size=swaps, replace=False))
                if swaps >= 2:
                    rank_of[touched] = rank_of[np.roll(touched, 1)]
                # swaps == 1: a rank rotation needs a pair, but the single
                # touched object still gets its demand redrawn below
            else:
                touched = np.empty(0, dtype=int)
        if touched is None:
            demand = _catalog_demand(rng, n, m, total, ranks[rank_of], node_probs)
            fr[e], fw[e] = _split_writes(rng, demand, write_fraction)
        else:
            # sparse-drift mode: untouched rows carry forward
            # bit-identically; only the churned rows are sampled
            fr[e], fw[e] = fr[e - 1], fw[e - 1]
            if touched.size:
                demand = _catalog_demand_rows(
                    rng, n, total, ranks[rank_of], node_probs, touched
                )
                reads, writes = _split_writes(rng, demand, write_fraction)
                fr[e][touched], fw[e][touched] = reads, writes
    return DynamicWorkload(fr, fw, name="drifting_zipf")


def flash_crowd(
    n: int,
    m: int,
    *,
    epochs: int,
    seed: int,
    crowd_epoch: int | None = None,
    crowd_objects: int | None = None,
    crowd_node_fraction: float = 0.1,
    crowd_multiplier: float = 20.0,
    exponent: float = 0.8,
    requests_per_epoch: int | None = None,
    write_fraction: float = 0.05,
    redraw: str = "all",
) -> DynamicWorkload:
    """A stable Zipf catalog hit by a one-epoch read burst.

    Baseline epochs draw from a *fixed* Zipf popularity (no churn).  In
    ``crowd_epoch`` (default: the middle epoch), ``crowd_objects``
    previously-cold tail objects each receive an extra read burst of
    ``crowd_multiplier`` times the mean per-object epoch demand, issued
    from a random crowd of ``crowd_node_fraction * n`` nodes -- the
    flash-crowd / slashdot shape that makes static placements stale and
    re-planning (or online adaptation) worthwhile.  Bursts are pure
    reads; the baseline's ``write_fraction`` is untouched.

    ``redraw="all"`` (default) resamples the baseline demand every
    epoch; ``redraw="changed"`` draws the baseline once and carries it
    forward bit-identically, so only the burst objects' rows change --
    into the crowd epoch and back out of it.  The incremental
    replanner's dirty set is then empty on quiet epochs and exactly the
    burst objects around the crowd.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if redraw not in ("all", "changed"):
        raise ValueError(f"redraw must be 'all' or 'changed', got {redraw!r}")
    if not 0.0 < crowd_node_fraction <= 1.0:
        raise ValueError("crowd_node_fraction must lie in (0, 1]")
    if crowd_multiplier < 0:
        raise ValueError("crowd_multiplier must be non-negative")
    rng = np.random.default_rng(seed)
    total = int(requests_per_epoch if requests_per_epoch is not None else 100 * m)
    if crowd_epoch is None:
        crowd_epoch = epochs // 2
    if not 0 <= crowd_epoch < epochs:
        raise ValueError(f"crowd_epoch must lie in [0, {epochs})")
    if crowd_objects is None:
        crowd_objects = max(1, m // 50)
    if not 1 <= crowd_objects <= m:
        raise ValueError(f"crowd_objects must lie in [1, {m}]")

    probs = _zipf_probs(m, exponent)
    # the crowd hits the coldest tail objects: the ones a demand-driven
    # placement has no reason to replicate beforehand
    burst_objects = np.arange(m - crowd_objects, m)
    crowd_size = max(1, int(round(crowd_node_fraction * n)))
    crowd_nodes = rng.choice(n, size=crowd_size, replace=False)
    burst_per_object = int(round(crowd_multiplier * total / max(m, 1)))

    fr = np.empty((epochs, m, n))
    fw = np.empty((epochs, m, n))
    base: tuple[np.ndarray, np.ndarray] | None = None
    for e in range(epochs):
        if base is None or redraw == "all":
            demand = _catalog_demand(rng, n, m, total, probs, None)
            reads, writes = _split_writes(rng, demand, write_fraction)
            if base is None:
                base = (reads, writes)
        else:
            reads, writes = base[0].copy(), base[1].copy()
        if e == crowd_epoch and burst_per_object > 0:
            if redraw == "changed" and reads is base[0]:
                reads = reads.copy()
            for obj in burst_objects.tolist():
                homes = crowd_nodes[rng.integers(0, crowd_size, size=burst_per_object)]
                reads[obj] += np.bincount(homes, minlength=n)
        fr[e], fw[e] = reads, writes
    return DynamicWorkload(fr, fw, name="flash_crowd")
