"""Time-evolving workloads: epoch-structured demand for the dynamic layer.

The static model freezes one billing period; the dynamic setting the
paper's related work studies (Awerbuch/Bartal/Fiat; the migration model
of Khuller et al.) evolves.  This module provides the bridge
representation -- :class:`DynamicWorkload`, a stack of per-epoch
``fr``/``fw`` frequency matrices -- plus generators for the two classic
churn shapes:

* :func:`drifting_zipf_catalog` -- WWW popularity churn: the catalog's
  Zipf rank assignment drifts between epochs (a fraction of objects
  swap popularity ranks), so yesterday's hot pages cool off and cold
  ones break out.
* :func:`flash_crowd` -- a handful of previously-cold objects suddenly
  draw a read burst from a localized crowd of nodes for one epoch, then
  demand returns to baseline.

Each epoch is one billing period: an
:class:`~repro.simulate.replanner.EpochReplanner` re-solves the static
problem per epoch (paying migration), while the clairvoyant-static and
online strategies consume the same epochs through
:meth:`DynamicWorkload.aggregate_instance` and
:meth:`DynamicWorkload.full_log` (Experiment E15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import DataManagementInstance
from ..simulate.events import RequestLog

__all__ = ["DynamicWorkload", "drifting_zipf_catalog", "flash_crowd"]


@dataclass(frozen=True)
class DynamicWorkload:
    """Epoch-structured demand: ``(epochs, m, n)`` frequency stacks.

    ``read_freqs[e]`` / ``write_freqs[e]`` are the integer ``(m, n)``
    read/write matrices of epoch ``e`` -- each epoch is a complete
    static instance's billing period over the same catalog and network.
    """

    read_freqs: np.ndarray
    write_freqs: np.ndarray
    name: str = "dynamic"

    def __post_init__(self) -> None:
        fr = np.asarray(self.read_freqs, dtype=float)
        fw = np.asarray(self.write_freqs, dtype=float)
        if fr.ndim != 3 or fr.shape != fw.shape:
            raise ValueError(
                "read_freqs and write_freqs must be equal-shaped "
                f"(epochs, m, n) stacks, got {fr.shape} and {fw.shape}"
            )
        if fr.shape[0] < 1:
            raise ValueError("need at least one epoch")
        if np.any(fr < 0) or np.any(fw < 0):
            raise ValueError("frequencies must be non-negative")
        object.__setattr__(self, "read_freqs", fr)
        object.__setattr__(self, "write_freqs", fw)

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return self.read_freqs.shape[0]

    @property
    def num_objects(self) -> int:
        return self.read_freqs.shape[1]

    @property
    def num_nodes(self) -> int:
        return self.read_freqs.shape[2]

    def total_events(self) -> int:
        """Total request count across all epochs."""
        return int(round(float(self.read_freqs.sum() + self.write_freqs.sum())))

    # ------------------------------------------------------------------
    def epoch_instance(
        self, metric, storage_costs, epoch: int
    ) -> DataManagementInstance:
        """One epoch as a static instance (shared metric and prices)."""
        return DataManagementInstance(
            metric, storage_costs, self.read_freqs[epoch], self.write_freqs[epoch]
        )

    def aggregate_instance(self, metric, storage_costs) -> DataManagementInstance:
        """All epochs summed into one instance -- what a clairvoyant
        static strategy optimizes for (total traffic over the horizon)."""
        return DataManagementInstance(
            metric,
            storage_costs,
            self.read_freqs.sum(axis=0),
            self.write_freqs.sum(axis=0),
        )

    def epoch_log(self, epoch: int, *, seed: int | None = None) -> RequestLog:
        """One epoch's event stream (vectorized columnar expansion)."""
        return RequestLog.from_frequencies(
            self.read_freqs[epoch], self.write_freqs[epoch], seed=seed
        )

    def full_log(self, *, seed: int | None = None) -> RequestLog:
        """The whole horizon as one stream: epochs in order, each epoch
        internally shuffled (``seed + epoch``) when a seed is given."""
        return RequestLog.concat([
            self.epoch_log(e, seed=None if seed is None else seed + e)
            for e in range(self.num_epochs)
        ])


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def _catalog_demand(
    rng: np.random.Generator,
    n: int,
    m: int,
    total: int,
    obj_probs: np.ndarray,
    node_probs: np.ndarray | None,
) -> np.ndarray:
    """One epoch's ``(m, n)`` demand matrix: a request budget split over
    objects by popularity and over nodes by the home distribution --
    the columnar kernel of :func:`~repro.workloads.request_models.zipf_catalog`."""
    per_object = rng.multinomial(total, obj_probs)
    if node_probs is None:
        homes = rng.integers(0, n, size=total)
    else:
        homes = rng.choice(n, size=total, p=node_probs)
    obj_of_request = np.repeat(np.arange(m), per_object)
    flat = np.bincount(obj_of_request * n + homes, minlength=m * n)
    return flat.reshape(m, n).astype(float)


def _split_writes(
    rng: np.random.Generator, demand: np.ndarray, write_fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    writes = rng.binomial(demand.astype(int), write_fraction).astype(float)
    return demand - writes, writes


def _zipf_probs(m: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, m + 1, dtype=float) ** (-exponent)
    return ranks / ranks.sum()


def drifting_zipf_catalog(
    n: int,
    m: int,
    *,
    epochs: int,
    seed: int,
    exponent: float = 0.8,
    drift: float = 0.15,
    requests_per_epoch: int | None = None,
    write_fraction: float = 0.05,
    node_probs: np.ndarray | None = None,
) -> DynamicWorkload:
    """Zipf catalog whose popularity ranking churns between epochs.

    Epoch 0 assigns Zipf ranks to objects at random; each later epoch
    swaps the ranks of ``round(drift * m)`` random object pairs before
    drawing its demand -- so a ``drift`` of 0.15 relabels ~30% of the
    catalog's popularity mass per epoch while the *shape* of the
    popularity curve stays fixed.  Every epoch spends the same request
    budget (``requests_per_epoch``, default ``100 * m``) and splits each
    request into a write with probability ``write_fraction``.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must lie in [0, 1]")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    total = int(requests_per_epoch if requests_per_epoch is not None else 100 * m)
    if total < 0:
        raise ValueError("requests_per_epoch must be non-negative")
    if node_probs is not None:
        node_probs = np.asarray(node_probs, dtype=float)
        if node_probs.shape != (n,) or np.any(node_probs < 0) or node_probs.sum() <= 0:
            raise ValueError("node_probs must be a non-negative (n,) distribution")
        node_probs = node_probs / node_probs.sum()

    ranks = _zipf_probs(m, exponent)
    rank_of = rng.permutation(m)  # object -> popularity rank
    swaps = int(round(drift * m))

    fr = np.empty((epochs, m, n))
    fw = np.empty((epochs, m, n))
    for e in range(epochs):
        if e > 0 and swaps:
            a = rng.integers(0, m, size=swaps)
            b = rng.integers(0, m, size=swaps)
            for i, j in zip(a.tolist(), b.tolist()):
                rank_of[i], rank_of[j] = rank_of[j], rank_of[i]
        demand = _catalog_demand(rng, n, m, total, ranks[rank_of], node_probs)
        fr[e], fw[e] = _split_writes(rng, demand, write_fraction)
    return DynamicWorkload(fr, fw, name="drifting_zipf")


def flash_crowd(
    n: int,
    m: int,
    *,
    epochs: int,
    seed: int,
    crowd_epoch: int | None = None,
    crowd_objects: int | None = None,
    crowd_node_fraction: float = 0.1,
    crowd_multiplier: float = 20.0,
    exponent: float = 0.8,
    requests_per_epoch: int | None = None,
    write_fraction: float = 0.05,
) -> DynamicWorkload:
    """A stable Zipf catalog hit by a one-epoch read burst.

    Baseline epochs draw from a *fixed* Zipf popularity (no churn).  In
    ``crowd_epoch`` (default: the middle epoch), ``crowd_objects``
    previously-cold tail objects each receive an extra read burst of
    ``crowd_multiplier`` times the mean per-object epoch demand, issued
    from a random crowd of ``crowd_node_fraction * n`` nodes -- the
    flash-crowd / slashdot shape that makes static placements stale and
    re-planning (or online adaptation) worthwhile.  Bursts are pure
    reads; the baseline's ``write_fraction`` is untouched.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if not 0.0 < crowd_node_fraction <= 1.0:
        raise ValueError("crowd_node_fraction must lie in (0, 1]")
    if crowd_multiplier < 0:
        raise ValueError("crowd_multiplier must be non-negative")
    rng = np.random.default_rng(seed)
    total = int(requests_per_epoch if requests_per_epoch is not None else 100 * m)
    if crowd_epoch is None:
        crowd_epoch = epochs // 2
    if not 0 <= crowd_epoch < epochs:
        raise ValueError(f"crowd_epoch must lie in [0, {epochs})")
    if crowd_objects is None:
        crowd_objects = max(1, m // 50)
    if not 1 <= crowd_objects <= m:
        raise ValueError(f"crowd_objects must lie in [1, {m}]")

    probs = _zipf_probs(m, exponent)
    # the crowd hits the coldest tail objects: the ones a demand-driven
    # placement has no reason to replicate beforehand
    burst_objects = np.arange(m - crowd_objects, m)
    crowd_size = max(1, int(round(crowd_node_fraction * n)))
    crowd_nodes = rng.choice(n, size=crowd_size, replace=False)
    burst_per_object = int(round(crowd_multiplier * total / max(m, 1)))

    fr = np.empty((epochs, m, n))
    fw = np.empty((epochs, m, n))
    for e in range(epochs):
        demand = _catalog_demand(rng, n, m, total, probs, None)
        reads, writes = _split_writes(rng, demand, write_fraction)
        if e == crowd_epoch and burst_per_object > 0:
            for obj in burst_objects.tolist():
                homes = crowd_nodes[rng.integers(0, crowd_size, size=burst_per_object)]
                reads[obj] += np.bincount(homes, minlength=n)
        fr[e], fw[e] = reads, writes
    return DynamicWorkload(fr, fw, name="flash_crowd")
