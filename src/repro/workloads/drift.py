"""Drift-anchor bookkeeping shared by the replanner and the daemon.

Incremental re-placement compares each object's current demand rows to
the rows it had *at its last re-place* -- not the previous epoch -- so a
slow drift accumulates against the snapshot the live placement was
actually solved for and cannot stay under a positive tolerance forever.
Both consumers of that invariant (the batch
:class:`~repro.simulate.replanner.EpochReplanner` and the live
:class:`~repro.serve.PlacementDaemon`) used to carry their own copy of
the anchor arrays; :class:`DriftTracker` is the one tested home for it.

The lifecycle is three calls:

* :meth:`prime` -- a full solve anchored *every* object at the given
  demand (the zero-knowledge epoch, or a full re-solve);
* :meth:`drifted` -- which objects moved past the tolerance since their
  anchor (the dirty set handed to ``place_subset``);
* :meth:`rebase` -- after the dirty objects were re-placed, move *their*
  anchors (and only theirs) to the demand they were just solved for.

>>> import numpy as np
>>> t = DriftTracker(tolerance=0.0)
>>> t.prime(np.ones((2, 3)), np.zeros((2, 3)))
>>> fr = np.ones((2, 3)); fr[1, 0] = 5.0
>>> dirty = t.drifted(fr, np.zeros((2, 3)))
>>> dirty.tolist()
[1]
>>> t.rebase(dirty, fr, np.zeros((2, 3)))
>>> t.drifted(fr, np.zeros((2, 3))).tolist()
[]
"""

from __future__ import annotations

import numpy as np

from .dynamic import drifted_rows

__all__ = ["DriftTracker"]


class DriftTracker:
    """Last-re-place demand anchors plus the drift test against them.

    ``tolerance`` has :func:`~repro.workloads.dynamic.drifted_rows`
    semantics: ``0.0`` is an exact bitwise row-change test, a positive
    value thresholds the normalized accumulated L1 delta.
    """

    __slots__ = ("tolerance", "_base_fr", "_base_fw")

    def __init__(self, tolerance: float = 0.0) -> None:
        tolerance = float(tolerance)
        if not np.isfinite(tolerance) or tolerance < 0:
            raise ValueError("tolerance must be finite and non-negative")
        self.tolerance = tolerance
        self._base_fr: np.ndarray | None = None
        self._base_fw: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def primed(self) -> bool:
        """Whether anchors exist yet (``False`` before the first solve)."""
        return self._base_fr is not None

    @property
    def anchors(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(base_fr, base_fw)`` anchor rows (copies; checkpointing)."""
        if self._base_fr is None or self._base_fw is None:
            raise ValueError("tracker has no anchors yet; prime() it first")
        return self._base_fr.copy(), self._base_fw.copy()

    # ------------------------------------------------------------------
    def prime(self, fr: np.ndarray, fw: np.ndarray) -> None:
        """Anchor every object at ``(fr, fw)`` -- a full (re-)solve."""
        fr = np.asarray(fr, dtype=float)
        fw = np.asarray(fw, dtype=float)
        if fr.shape != fw.shape or fr.ndim != 2:
            raise ValueError(
                f"anchor stacks must be matching (objects, nodes) matrices; "
                f"got {fr.shape} and {fw.shape}"
            )
        self._base_fr = fr.copy()
        self._base_fw = fw.copy()

    def drifted(self, fr: np.ndarray, fw: np.ndarray) -> np.ndarray:
        """Objects whose rows drifted past the tolerance since their anchor."""
        if self._base_fr is None or self._base_fw is None:
            raise ValueError("tracker has no anchors yet; prime() it first")
        return drifted_rows(
            self._base_fr, self._base_fw, fr, fw, tolerance=self.tolerance
        )

    def rebase(self, rows, fr: np.ndarray, fw: np.ndarray) -> None:
        """Move the anchors of ``rows`` (only) to their ``(fr, fw)`` demand.

        Call it after the dirty set came back from ``place_subset``: the
        re-placed objects are now solved for the new demand, everyone
        else keeps accumulating against their old anchor.  An empty
        ``rows`` is a no-op.
        """
        if self._base_fr is None or self._base_fw is None:
            raise ValueError("tracker has no anchors yet; prime() it first")
        rows = np.asarray(rows, dtype=int)
        if rows.size == 0:
            return
        self._base_fr[rows] = np.asarray(fr, dtype=float)[rows]
        self._base_fw[rows] = np.asarray(fw, dtype=float)[rows]
