"""Named end-to-end scenarios mirroring the paper's motivating systems.

Each scenario bundles a topology, a workload and storage prices into a
ready :class:`~repro.core.instance.DataManagementInstance`:

* :func:`www_content_provider` -- a transit-stub Internet with Zipf page
  popularity and a low write rate (page updates): the paper's commercial
  content-provider story.
* :func:`distributed_file_system` -- a LAN-like cluster (cheap local
  links) with hotspot file access and a moderate write share.
* :func:`virtual_shared_memory` -- a mesh machine with near-uniform,
  write-heavy cache-line traffic.
* :func:`tree_network` -- a random tree instance for the Section 3
  optimum (also the shape used in E2/E9).

Every scenario accepts ``num_objects``.  The WWW and file-system
scenarios switch from their per-object generators to the columnar
Zipf-catalog path (:func:`~repro.workloads.request_models.zipf_catalog`,
one request budget split across the catalog by popularity) once the
catalog exceeds :data:`CATALOG_AUTO_THRESHOLD` objects -- or immediately
with ``catalog=True`` -- so ``www_content_provider(num_objects=100_000)``
builds in seconds and feeds straight into
:class:`repro.engine.PlacementEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.instance import DataManagementInstance
from ..graphs.generators import grid_graph, random_tree, transit_stub_graph
from ..graphs.metric import Metric
from .request_models import make_instance

__all__ = [
    "Scenario",
    "CATALOG_AUTO_THRESHOLD",
    "SCENARIO_BUILDERS",
    "DYNAMIC_SCENARIOS",
    "www_content_provider",
    "distributed_file_system",
    "virtual_shared_memory",
    "tree_network",
]

#: Scenarios switch to the columnar catalog generators at this many
#: objects: the per-object multinomial loop is fine below it and a
#: visible build-time cost beyond it.
CATALOG_AUTO_THRESHOLD = 256


def _use_catalog(num_objects: int, catalog: bool | None) -> bool:
    return catalog if catalog is not None else num_objects >= CATALOG_AUTO_THRESHOLD


@dataclass(frozen=True)
class Scenario:
    """A named instance plus the graph it was built from."""

    name: str
    graph: nx.Graph
    instance: DataManagementInstance


def www_content_provider(
    *,
    seed: int = 7,
    transit: int = 4,
    stubs_per_transit: int = 2,
    stub_size: int = 4,
    num_objects: int = 8,
    write_fraction: float = 0.05,
    storage_price: float = 6.0,
    catalog: bool | None = None,
    total_requests: float | None = None,
) -> Scenario:
    """Content provider renting bandwidth/storage on an Internet-like net.

    ``catalog=None`` auto-selects the columnar Zipf-catalog workload for
    large ``num_objects`` (see :data:`CATALOG_AUTO_THRESHOLD`);
    ``total_requests`` overrides the catalog's request budget.
    """
    g = transit_stub_graph(
        transit, stubs_per_transit, stub_size, seed=seed
    )
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model="catalog" if _use_catalog(num_objects, catalog) else "zipf",
        write_fraction=write_fraction,
        storage_price=storage_price,
        mean_demand=6.0,
        total_requests=total_requests,
    )
    return Scenario("www_content_provider", g, inst)


def distributed_file_system(
    *,
    seed: int = 11,
    n: int = 24,
    num_objects: int = 6,
    write_fraction: float = 0.3,
    catalog: bool | None = None,
    total_requests: float | None = None,
) -> Scenario:
    """Ethernet-connected workstations sharing files (hotspot access).

    Large catalogs use the columnar generator with a shared hot-node
    request-home distribution (``catalog_hotspot``)."""
    g = transit_stub_graph(2, 2, max(n // 4 - 1, 1), seed=seed, transit_weight=4.0)
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model=(
            "catalog_hotspot" if _use_catalog(num_objects, catalog) else "hotspot"
        ),
        write_fraction=write_fraction,
        storage_price=None,
        mean_demand=5.0,
        total_requests=total_requests,
    )
    return Scenario("distributed_file_system", g, inst)


def virtual_shared_memory(
    *,
    seed: int = 13,
    rows: int = 5,
    cols: int = 5,
    num_objects: int = 4,
    write_fraction: float = 0.5,
    storage_price: float = 2.0,
) -> Scenario:
    """Cache lines on a mesh multiprocessor: write-heavy, uniform access."""
    g = grid_graph(rows, cols, seed=seed)
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model="uniform",
        write_fraction=write_fraction,
        storage_price=storage_price,
        mean_demand=3.0,
    )
    return Scenario("virtual_shared_memory", g, inst)


def tree_network(
    *,
    seed: int = 17,
    n: int = 30,
    num_objects: int = 4,
    write_fraction: float = 0.2,
) -> Scenario:
    """Random tree instance for the optimal Section 3 algorithm."""
    g = random_tree(n, seed=seed)
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model="uniform",
        write_fraction=write_fraction,
        storage_price=None,
        mean_demand=4.0,
    )
    return Scenario("tree_network", g, inst)


#: The static scenario surface by CLI/API short name -- the single
#: source the CLI, the planner examples and the tests look names up in.
SCENARIO_BUILDERS = {
    "www": www_content_provider,
    "dfs": distributed_file_system,
    "vsm": virtual_shared_memory,
    "tree": tree_network,
}

#: The epoch-structured workload shapes of :mod:`repro.workloads.dynamic`
#: (consumed by ``python -m repro dynamic --scenario ...``).
DYNAMIC_SCENARIOS = ("drift", "flash")
