"""Named end-to-end scenarios mirroring the paper's motivating systems.

Each scenario bundles a topology, a workload and storage prices into a
ready :class:`~repro.core.instance.DataManagementInstance`:

* :func:`www_content_provider` -- a transit-stub Internet with Zipf page
  popularity and a low write rate (page updates): the paper's commercial
  content-provider story.
* :func:`distributed_file_system` -- a LAN-like cluster (cheap local
  links) with hotspot file access and a moderate write share.
* :func:`virtual_shared_memory` -- a mesh machine with near-uniform,
  write-heavy cache-line traffic.
* :func:`tree_network` -- a random tree instance for the Section 3
  optimum (also the shape used in E2/E9).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.instance import DataManagementInstance
from ..graphs.generators import grid_graph, random_tree, transit_stub_graph
from ..graphs.metric import Metric
from .request_models import make_instance

__all__ = [
    "Scenario",
    "www_content_provider",
    "distributed_file_system",
    "virtual_shared_memory",
    "tree_network",
]


@dataclass(frozen=True)
class Scenario:
    """A named instance plus the graph it was built from."""

    name: str
    graph: nx.Graph
    instance: DataManagementInstance


def www_content_provider(
    *,
    seed: int = 7,
    transit: int = 4,
    stubs_per_transit: int = 2,
    stub_size: int = 4,
    num_objects: int = 8,
    write_fraction: float = 0.05,
    storage_price: float = 6.0,
) -> Scenario:
    """Content provider renting bandwidth/storage on an Internet-like net."""
    g = transit_stub_graph(
        transit, stubs_per_transit, stub_size, seed=seed
    )
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model="zipf",
        write_fraction=write_fraction,
        storage_price=storage_price,
        mean_demand=6.0,
    )
    return Scenario("www_content_provider", g, inst)


def distributed_file_system(
    *,
    seed: int = 11,
    n: int = 24,
    num_objects: int = 6,
    write_fraction: float = 0.3,
) -> Scenario:
    """Ethernet-connected workstations sharing files (hotspot access)."""
    g = transit_stub_graph(2, 2, max(n // 4 - 1, 1), seed=seed, transit_weight=4.0)
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model="hotspot",
        write_fraction=write_fraction,
        storage_price=None,
        mean_demand=5.0,
    )
    return Scenario("distributed_file_system", g, inst)


def virtual_shared_memory(
    *,
    seed: int = 13,
    rows: int = 5,
    cols: int = 5,
    num_objects: int = 4,
    write_fraction: float = 0.5,
    storage_price: float = 2.0,
) -> Scenario:
    """Cache lines on a mesh multiprocessor: write-heavy, uniform access."""
    g = grid_graph(rows, cols, seed=seed)
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model="uniform",
        write_fraction=write_fraction,
        storage_price=storage_price,
        mean_demand=3.0,
    )
    return Scenario("virtual_shared_memory", g, inst)


def tree_network(
    *,
    seed: int = 17,
    n: int = 30,
    num_objects: int = 4,
    write_fraction: float = 0.2,
) -> Scenario:
    """Random tree instance for the optimal Section 3 algorithm."""
    g = random_tree(n, seed=seed)
    metric = Metric.from_graph(g)
    inst = make_instance(
        metric,
        seed=seed + 1,
        num_objects=num_objects,
        demand_model="uniform",
        write_fraction=write_fraction,
        storage_price=None,
        mean_demand=4.0,
    )
    return Scenario("tree_network", g, inst)
