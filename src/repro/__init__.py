"""repro: Approximation Algorithms for Data Management in Networks.

A faithful, tested reproduction of Krick, Räcke and Westermann (SPAA 2001):
constant-factor approximate placement of replicated shared objects under
commercial storage + transmission costs on arbitrary networks, and the
exact polynomial-time optimum on trees.

Quickstart
----------
>>> from repro import graphs, workloads, approximate_placement, placement_cost
>>> g = graphs.transit_stub_graph(3, 2, 3, seed=1)
>>> metric = graphs.Metric.from_graph(g)
>>> inst = workloads.make_instance(metric, seed=2, num_objects=4)
>>> placement = approximate_placement(inst)
>>> placement_cost(inst, placement).total  # doctest: +SKIP
123.4

For networks beyond a few thousand nodes, build the instance on
``graphs.LazyMetric.from_graph(g)`` instead -- identical results, no
``O(n^2)`` distance matrix (see docs/ARCHITECTURE.md).

Package layout
--------------
``repro.core``
    problem model, cost accounting, the Section 2 approximation, the
    Section 3 tree optimum.
``repro.engine``
    catalog-scale placement: the batched, chunked, optionally parallel
    :class:`~repro.engine.PlacementEngine` (identical copy sets to the
    per-object loop).
``repro.graphs``
    distance backends (dense :class:`~repro.graphs.metric.Metric` and
    scalable :class:`~repro.graphs.backend.LazyMetric`), MST/Steiner
    substrate, topology generators.
``repro.facility``
    facility-location solvers (phase 1 of the approximation).
``repro.baselines``
    exhaustive optima and heuristic comparison strategies.
``repro.workloads``
    request/price generators and named scenarios.
``repro.simulate``
    columnar request logs replayed against the real network (vectorized
    or hop-by-hop), an online dynamic strategy, and epoch-wise
    re-placement with migration costs -- full per-epoch re-solves or
    incremental ones over only the drifted objects
    (``PlanConfig(replan_mode="incremental")``).
``repro.analysis``
    experiment runners, ratio statistics, table formatting.
``repro.costmodel``
    the pluggable accounting seam: a ``CostModel`` protocol with a
    ``@register_cost_model`` registry; ``krw`` (the paper's bill,
    bit-identical to the pre-seam inline accounting), ``admission``
    (per-timeslot capacity with accepted/rejected splits) and
    ``broadcast-write`` (one multicast propagation charge per period),
    selected via ``PlanConfig.cost_model`` / ``--cost-model``.
``repro.config`` / ``repro.registry`` / ``repro.api``
    the front door: the typed :class:`~repro.config.PlanConfig`, the
    ``@register_strategy`` plug-in registry, and the
    :class:`~repro.api.Planner` façade whose ``plan()``/``compare()``
    return serializable :class:`~repro.api.PlanReport` artifacts.
``repro.serve``
    the live subsystem: a long-lived
    :class:`~repro.serve.PlacementDaemon` ingesting request batches,
    replanning in the background on demand drift, answering
    placement/nearest-replica lookups from an atomically published
    immutable generation, and warm-restarting from checkpoints.
``repro.serialize``
    instance/placement persistence (JSON/NPZ round trips).
"""

from . import (
    analysis,
    api,
    baselines,
    config,
    core,
    costmodel,
    engine,
    facility,
    graphs,
    registry,
    serialize,
    serve,
    simulate,
    workloads,
)
from .api import Planner, PlanReport
from .config import PlanConfig
from .core import (
    DataManagementInstance,
    Placement,
    approximate_object_placement,
    approximate_placement,
    object_cost,
    optimal_tree_placement,
    placement_cost,
)
from .costmodel import (
    CostModel,
    MigrationBill,
    available_cost_models,
    get_cost_model,
    register_cost_model,
)
from .engine import PlacementEngine, place_catalog
from .registry import available_strategies, get_strategy, register_strategy
from .serialize import load_instance, save_instance
from .serve import PlacementDaemon

__version__ = "1.7.0"

__all__ = [
    "core",
    "costmodel",
    "engine",
    "graphs",
    "facility",
    "baselines",
    "workloads",
    "simulate",
    "analysis",
    "api",
    "config",
    "registry",
    "serialize",
    "serve",
    "CostModel",
    "MigrationBill",
    "register_cost_model",
    "get_cost_model",
    "available_cost_models",
    "DataManagementInstance",
    "Placement",
    "PlacementDaemon",
    "PlacementEngine",
    "PlanConfig",
    "PlanReport",
    "Planner",
    "place_catalog",
    "approximate_placement",
    "approximate_object_placement",
    "optimal_tree_placement",
    "object_cost",
    "placement_cost",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "save_instance",
    "load_instance",
    "__version__",
]
