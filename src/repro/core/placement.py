"""Placements: which nodes hold copies of which objects.

A placement assigns every object a non-empty copy set.  Given the copy set,
the model determines the rest (Section 1.1): reads go to the nearest copy
(optimal by definition), and writes ship an update set connecting the
writer with all copies -- whose cost depends on the update policy (see
:mod:`repro.core.costs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..graphs.metric import Metric
from ..graphs.mst import mst_edges
from .instance import DataManagementInstance

__all__ = ["Placement", "serving_nodes", "update_tree_edges"]


@dataclass(frozen=True)
class Placement:
    """Copy sets for every object of an instance.

    ``copy_sets[i]`` is the frozen, sorted tuple of nodes that hold copies
    of object ``i``.  Placements are immutable value objects: algorithms
    return fresh placements rather than mutating.
    """

    copy_sets: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        normalized = []
        for copies in self.copy_sets:
            nodes = tuple(sorted(set(int(v) for v in copies)))
            if not nodes:
                raise ValueError("every object needs at least one copy")
            normalized.append(nodes)
        object.__setattr__(self, "copy_sets", tuple(normalized))

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, copies: Iterable[int]) -> "Placement":
        """Placement for a single-object instance."""
        return cls((tuple(copies),))

    @classmethod
    def from_sets(cls, sets: Sequence[Iterable[int]]) -> "Placement":
        return cls(tuple(tuple(s) for s in sets))

    @classmethod
    def full_replication(cls, num_nodes: int, num_objects: int) -> "Placement":
        everywhere = tuple(range(num_nodes))
        return cls(tuple(everywhere for _ in range(num_objects)))

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self.copy_sets)

    def copies(self, obj: int) -> tuple[int, ...]:
        return self.copy_sets[obj]

    def replication_degree(self, obj: int | None = None) -> float:
        """Number of copies of one object, or the mean across objects."""
        if obj is not None:
            return float(len(self.copy_sets[obj]))
        return float(np.mean([len(s) for s in self.copy_sets]))

    def total_copies(self) -> int:
        return sum(len(s) for s in self.copy_sets)

    def validate(self, instance: DataManagementInstance) -> None:
        if self.num_objects != instance.num_objects:
            raise ValueError(
                f"placement covers {self.num_objects} objects, instance has "
                f"{instance.num_objects}"
            )
        for copies in self.copy_sets:
            if copies[0] < 0 or copies[-1] >= instance.num_nodes:
                raise ValueError("copy node index out of range")

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.copy_sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"x{i}->{list(s)}" for i, s in enumerate(self.copy_sets))
        return f"Placement({inner})"


def serving_nodes(metric: Metric, copies: Iterable[int]) -> np.ndarray:
    """``s(r)`` for every potential request home: the nearest copy.

    Returns an array ``serve`` with ``serve[v]`` the copy node serving a
    request issued at ``v`` (ties broken towards the smallest node index).
    For a read this is the node actually read from; for a write it is the
    node the initial ``h(r) -> s(r)`` message targets.
    """
    nearest, _ = metric.nearest_in_set(copies)
    return nearest


def update_tree_edges(
    metric: Metric, copies: Iterable[int]
) -> list[tuple[int, int, float]]:
    """The multicast tree the Section 2 strategy uses to update copies.

    A minimum spanning tree over the copy set in the metric closure; each
    metric edge ``(u, v, w)`` stands for a cheapest ``u``-``v`` path in the
    underlying network.  Every write request is charged ``w`` for each of
    these edges on top of its ``h(r) -> s(r)`` message.
    """
    return mst_edges(metric, sorted(set(int(v) for v in copies)))
