"""Lower envelopes of lines: the export-placement data structure.

Section 3 encodes, for every subtree ``Tv``, the optimal *export
placement* cost as a function of the distance ``D`` from ``v`` to the
nearest outside copy:

    E(D) = min over placements P of  ( cost(P) + |R_out(P)| * D ).

Each concrete placement contributes one *line* ``C + m * D`` (intercept =
its internal cost, slope = its number of outgoing requests), so ``E`` is a
lower envelope of lines: concave, piecewise linear, with slopes decreasing
in ``D``.  The paper maintains these envelopes as sorted tuple sequences
with optimality intervals (Claims 15/16); we package the same object as a
small algebra -- build, query, shift, pointwise min, pointwise sum -- which
keeps the DP readable and independently property-testable against brute
force minimisation over lines.

Every line carries an opaque ``payload`` so the DP can reconstruct the
actual placement from the winning line.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import math

import numpy as np

__all__ = ["Line", "LowerEnvelope"]


@dataclass(frozen=True)
class Line:
    """A line ``y = intercept + slope * x`` with a reconstruction payload."""

    intercept: float
    slope: float
    payload: Any = None

    def at(self, x: float) -> float:
        return self.intercept + self.slope * x


class LowerEnvelope:
    """Lower envelope of lines over the domain ``x >= 0``.

    Invariants: hull lines have strictly decreasing slopes and strictly
    increasing intercepts; ``starts[i]`` is the beginning of the interval
    on which ``lines[i]`` is minimal (``starts[0] == 0``).  An empty
    envelope represents "no feasible placement" and queries return
    ``(inf, None)``.
    """

    __slots__ = ("lines", "starts")

    def __init__(self, lines: Sequence[Line], starts: Sequence[float]):
        self.lines = list(lines)
        self.starts = list(starts)

    # ------------------------------------------------------------------
    @classmethod
    def from_lines(cls, lines: Iterable[Line]) -> "LowerEnvelope":
        """Build the envelope; infinite-intercept lines are discarded."""
        cand = [l for l in lines if math.isfinite(l.intercept)]
        if not cand:
            return cls([], [])
        # slope descending, then intercept ascending; drop duplicates of a
        # slope (only the smallest intercept can ever win)
        cand.sort(key=lambda l: (-l.slope, l.intercept))
        filtered: list[Line] = []
        for l in cand:
            if filtered and filtered[-1].slope == l.slope:
                continue  # same slope, larger-or-equal intercept: useless
            filtered.append(l)

        hull: list[Line] = []
        for c in filtered:
            while hull:
                if hull[-1].intercept >= c.intercept:
                    # steeper but not cheaper anywhere on x >= 0: dominated
                    hull.pop()
                elif len(hull) >= 2 and cls._bad(hull[-2], hull[-1], c):
                    hull.pop()
                else:
                    break
            hull.append(c)

        # Hull lines now have strictly decreasing slopes and strictly
        # increasing intercepts, so consecutive intersections are positive
        # and increasing; clamp defensively against float slack.
        starts = [0.0]
        for prev, c in zip(hull[:-1], hull[1:]):
            x = (c.intercept - prev.intercept) / (prev.slope - c.slope)
            starts.append(max(x, starts[-1]))
        return cls(hull, starts)

    @staticmethod
    def _bad(a: Line, b: Line, c: Line) -> bool:
        """Is ``b`` everywhere dominated by ``a`` or ``c``?

        Slopes satisfy ``a.slope > b.slope > c.slope``; ``b`` is useless
        iff ``a``/``c`` intersect left of ``a``/``b``.
        """
        return (c.intercept - a.intercept) * (a.slope - b.slope) <= (
            b.intercept - a.intercept
        ) * (a.slope - c.slope)

    @classmethod
    def constant(cls, value: float, payload: Any = None) -> "LowerEnvelope":
        """Envelope of the single horizontal line ``y = value``."""
        return cls.from_lines([Line(value, 0.0, payload)])

    @classmethod
    def empty(cls) -> "LowerEnvelope":
        return cls([], [])

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self.lines

    def query(self, x: float) -> tuple[float, Line | None]:
        """Minimum value and winning line at ``x >= 0``."""
        if x < 0:
            raise ValueError("envelope domain is x >= 0")
        if not self.lines:
            return math.inf, None
        i = bisect_right(self.starts, x) - 1
        line = self.lines[i]
        return line.at(x), line

    def value(self, x: float) -> float:
        return self.query(x)[0]

    def min_at_infinity(self) -> tuple[float, Line | None]:
        """The eventually-optimal line (smallest slope).  For export
        envelopes this is the all-internal ``J^0`` placement."""
        if not self.lines:
            return math.inf, None
        return self.lines[-1].intercept, self.lines[-1]

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def shifted(self, delta: float, *, extra_intercept: float = 0.0) -> "LowerEnvelope":
        """Envelope of ``x -> self(x + delta) + extra_intercept``.

        Used when a child's export distance is the parent's distance plus
        the connecting edge weight: each line ``C + m*x`` becomes
        ``(C + m*delta + extra) + m*x`` with the payload preserved.
        """
        if delta < 0:
            raise ValueError("shift must be non-negative")
        return LowerEnvelope.from_lines(
            Line(l.intercept + l.slope * delta + extra_intercept, l.slope, l.payload)
            for l in self.lines
        )

    def with_added_slope(self, extra_slope: float) -> "LowerEnvelope":
        """Add ``extra_slope`` to every line (e.g. the scanned node's own
        outgoing requests).  Relative order of lines is preserved, so the
        hull structure survives intact."""
        lines = [Line(l.intercept, l.slope + extra_slope, l.payload) for l in self.lines]
        return LowerEnvelope(lines, list(self.starts))

    def minimum(self, other: "LowerEnvelope") -> "LowerEnvelope":
        """Pointwise minimum.  Correct because every line of either
        envelope is a globally valid placement (infimum over the union of
        the two line families)."""
        return LowerEnvelope.from_lines([*self.lines, *other.lines])

    def sum(
        self, other: "LowerEnvelope", combine_payload=lambda a, b: (a, b)
    ) -> "LowerEnvelope":
        """Pointwise sum.

        The sum of two concave piecewise-linear envelopes is concave with
        breakpoints at the union of the inputs' breakpoints; each result
        piece pairs one line from each input and its payload is
        ``combine_payload(payload_a, payload_b)``.
        """
        if self.is_empty or other.is_empty:
            return LowerEnvelope.empty()
        # Breakpoints of the sum = union of both inputs' breakpoints; the
        # winning (a, b) pair at each is found with two batched bisections
        # (the tree DP calls this in its inner loop, so it is vectorized).
        xs = np.union1d(self.starts, other.starts)
        ia = np.searchsorted(self.starts, xs, side="right") - 1
        ib = np.searchsorted(other.starts, xs, side="right") - 1
        out: list[Line] = []
        for i, j in zip(ia.tolist(), ib.tolist()):
            a, b = self.lines[i], other.lines[j]
            out.append(
                Line(
                    a.intercept + b.intercept,
                    a.slope + b.slope,
                    combine_payload(a.payload, b.payload),
                )
            )
        return LowerEnvelope.from_lines(out)

    def __len__(self) -> int:
        return len(self.lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"[{s:.3g}:] {l.intercept:.4g}+{l.slope:.4g}x"
            for s, l in zip(self.starts, self.lines)
        )
        return f"LowerEnvelope({parts})"
