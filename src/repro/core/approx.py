"""The combinatorial constant-factor approximation (Section 2.2).

The headline result of the paper (Theorem 7): a polynomial-time constant
factor approximation for the static data management problem on arbitrary
networks.  Objects are placed independently; for one object the pipeline is

1. **Facility location phase.**  Solve the *related facility location
   problem* -- the same instance with every write recast as a read and the
   update cost ignored -- with any constant-factor UFL algorithm (Lemma 9
   carries its factor ``f`` through to the storage bound).
2. **Copy addition phase.**  While some node ``v`` has its nearest copy
   farther than ``5 * rs(v)`` (storage radius), store a new copy on ``v``.
   Claim 10 shows read + storage cost never increases in this phase.
3. **Copy deletion phase.**  Scan copy holders in ascending write radius
   ``rw``; the currently scanned holder ``v`` deletes any other copy ``u``
   with ``ct(u, v) <= 4 * rw(u)``.

Lemma 8: the result is a *proper placement* with constants ``k1 = 29``
(every node has a copy within ``29 * max(rw, rs)``) and ``k2 = 2`` (copies
are pairwise farther than ``4 * max(rw(u), rw(v))``), which by Theorem 3 +
Lemma 1 yields a constant total-cost approximation factor.

Implementation notes:

* Phase 2 needs only a single pass in fixed node order: adding a copy only
  *shrinks* nearest-copy distances, so previously satisfied nodes remain
  satisfied.  The nearest-copy vector is maintained incrementally with one
  ``np.minimum`` per addition.
* Phase 3 follows the paper literally: holders scanned by ascending
  ``rw`` (node index breaking ties); holders already deleted are skipped;
  the scanned holder itself is never deleted (hence the copy set stays
  non-empty -- the minimum-``rw`` holder provably survives).
* Zero-demand objects are stored once on the cheapest node.
* All metric access goes through the
  :class:`~repro.graphs.backend.DistanceBackend` row/set queries -- never
  the full matrix -- so the pipeline runs unchanged on a
  :class:`~repro.graphs.backend.LazyMetric` at 10k+ nodes.  On networks
  above :data:`repro.facility.FACILITY_AUTO_THRESHOLD` nodes, phase 1
  restricts candidate facilities to a hot set (see
  :func:`repro.facility.facility_candidate_set`); pass
  ``facility_candidates`` to control or disable the cap.
* Each phase is exposed as a standalone helper
  (:func:`phase1_facility_copies`, :func:`phase2_add_copies`,
  :func:`phase3_delete_copies`) so the catalog engine
  (:mod:`repro.engine`) can drive the identical decisions from batched
  per-chunk radii.  Phase 1 solves the related FL problem on the
  object's demand support (zero-demand clients are objective-neutral).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..facility import FL_SOLVERS, related_facility_problem
from ..kernels import dispatch
from .instance import DataManagementInstance
from .placement import Placement
from .radii import radii_for_object

__all__ = [
    "approximate_placement",
    "approximate_object_placement",
    "phase1_facility_copies",
    "phase2_add_copies",
    "phase3_delete_copies",
    "zero_demand_copies",
    "ApproxDiagnostics",
    "proper_placement_margins",
    "K1",
    "K2",
]

#: Constants proven by Lemma 8 for the phase thresholds 5*rs and 4*rw.
K1 = 29.0
K2 = 2.0


@dataclass(frozen=True)
class ApproxDiagnostics:
    """Intermediate state of the three phases, for ablation/introspection.

    Attributes record the copy set after each phase plus the radii used.
    """

    after_phase1: tuple[int, ...]
    after_phase2: tuple[int, ...]
    after_phase3: tuple[int, ...]
    write_radii: np.ndarray
    storage_radii: np.ndarray
    storage_numbers: np.ndarray


def zero_demand_copies(instance: DataManagementInstance) -> tuple[int, ...]:
    """Copy set for an object nobody requests: one copy, cheapest node."""
    return (int(np.argmin(instance.storage_costs)),)


def phase1_facility_copies(
    instance: DataManagementInstance,
    obj: int,
    *,
    fl_solver: str = "local_search",
    facility_candidates: int | None = None,
) -> list[int]:
    """Phase 1: solve the related facility location problem for one object.

    Clients are restricted to the object's demand support (an equivalent
    problem -- zero-demand clients affect no objective); the open set maps
    back to node ids, sorted.
    """
    fl = related_facility_problem(
        instance, obj, max_facilities=facility_candidates, drop_zero_clients=True
    )
    return sorted(set(fl.to_nodes(FL_SOLVERS[fl_solver](fl))))


def phase2_add_copies(metric, copies, rs: np.ndarray) -> list[int]:
    """Phase 2: store a copy on every node whose nearest copy is farther
    than ``5 * rs(v)``; returns the enlarged, sorted copy set."""
    dts = metric.dist_to_set(copies)
    copy_set = set(copies)
    # Adding a copy only shrinks nearest-copy distances, so only nodes
    # violating the threshold under the *initial* dts can ever fire;
    # scan those (in ascending node order, as before) and re-check.
    dense = getattr(metric, "dist", None)
    if dense is not None:
        # Dense backends hand the whole sweep to the kernel registry
        # (numpy reference or its bit-identical compiled twin).
        added = dispatch("phase2_sweep")(dts, np.asarray(rs, dtype=float), dense)
        copy_set.update(int(v) for v in added)
        return sorted(copy_set)
    for v in np.flatnonzero(dts > 5.0 * rs):
        v = int(v)
        if dts[v] > 5.0 * rs[v]:
            copy_set.add(v)
            np.minimum(dts, metric.row(v), out=dts)
    return sorted(copy_set)


def phase3_delete_copies(metric, copies, rw: np.ndarray) -> list[int]:
    """Phase 3: scan holders by ascending write radius; the scanned holder
    deletes any other copy ``u`` with ``ct(u, v) <= 4 * rw(u)``."""
    scan = np.asarray(sorted(copies, key=lambda v: (rw[v], v)), dtype=int)
    u_bound = 4.0 * rw[scan]  # per-column threshold for the deleted copy u
    alive = np.ones(scan.size, dtype=bool)
    # Row access is chunked so a large post-phase-2 copy set never
    # materializes a (k, k) block at once; rows of holders already
    # deleted by an earlier chunk are never fetched.
    chunk = 256
    sweep = dispatch("phase3_sweep")
    for c0 in range(0, scan.size, chunk):
        live = [i for i in range(c0, min(c0 + chunk, scan.size)) if alive[i]]
        if not live:
            continue
        rows = np.asarray(metric.rows(scan[live]))[:, scan]  # (|live|, k)
        # The in-chunk sweep (scanned holder never deletes itself,
        # already-deleted holders stop scanning) runs as a kernel.
        sweep(rows, np.asarray(live, dtype=np.int64), u_bound, alive)
    return sorted(int(v) for v in scan[alive])


def approximate_object_placement(
    instance: DataManagementInstance,
    obj: int,
    *,
    fl_solver: str = "local_search",
    phase2: bool = True,
    phase3: bool = True,
    return_diagnostics: bool = False,
    facility_candidates: int | None = None,
):
    """Place a single object; returns the sorted copy tuple.

    Parameters
    ----------
    fl_solver:
        Phase-1 algorithm name from :data:`repro.facility.FL_SOLVERS`
        (``local_search``, ``greedy``, ``lp_rounding`` or ``exact``).
    phase2 / phase3:
        Ablation switches (Experiment E5); the theorem requires both.
    return_diagnostics:
        Also return an :class:`ApproxDiagnostics` with per-phase states.
    facility_candidates:
        Cap on the phase-1 candidate facility set.  ``None`` (default)
        keeps every node on networks up to
        :data:`repro.facility.FACILITY_AUTO_THRESHOLD` nodes and switches
        to a :data:`repro.facility.DEFAULT_FACILITY_CANDIDATES`-node hot
        set beyond -- identical behaviour for the dense and lazy backends,
        so results stay backend-independent at every size.
    """
    if fl_solver not in FL_SOLVERS:
        raise ValueError(f"unknown fl_solver {fl_solver!r}; choose from {sorted(FL_SOLVERS)}")
    metric = instance.metric

    if instance.total_requests(obj) == 0:
        copies = zero_demand_copies(instance)
        if return_diagnostics:
            n = metric.n
            zero = np.zeros(n)
            diag = ApproxDiagnostics(copies, copies, copies, zero, np.full(n, np.inf), np.ones(n, dtype=int))
            return copies, diag
        return copies

    # ------------------------------------------------------ phase 1: UFL
    copies = phase1_facility_copies(
        instance, obj, fl_solver=fl_solver, facility_candidates=facility_candidates
    )
    after1 = tuple(copies)

    rw, rs, zs = radii_for_object(
        metric, instance.storage_costs, instance.read_freq[obj], instance.write_freq[obj]
    )

    # ----------------------------------------------- phase 2: add copies
    if phase2:
        copies = phase2_add_copies(metric, copies, rs)
    after2 = tuple(copies)

    # -------------------------------------------- phase 3: delete copies
    if phase3:
        copies = phase3_delete_copies(metric, copies, rw)
    after3 = tuple(copies)

    if return_diagnostics:
        return after3, ApproxDiagnostics(after1, after2, after3, rw, rs, zs)
    return after3


def approximate_placement(
    instance: DataManagementInstance,
    *,
    fl_solver: str = "local_search",
    phase2: bool = True,
    phase3: bool = True,
    facility_candidates: int | None = None,
) -> Placement:
    """Place every object independently (the paper's per-object scheme)."""
    return Placement(
        tuple(
            approximate_object_placement(
                instance,
                obj,
                fl_solver=fl_solver,
                phase2=phase2,
                phase3=phase3,
                facility_candidates=facility_candidates,
            )
            for obj in range(instance.num_objects)
        )
    )


def proper_placement_margins(
    instance: DataManagementInstance,
    obj: int,
    copies,
    *,
    k1: float = K1,
    k2: float = K2,
) -> dict[str, float]:
    """Executable form of the Lemma 8 invariants.

    Returns the two *margins* (positive = invariant satisfied):

    ``coverage``
        ``min_v ( k1 * max(rw(v), rs(v)) - d(v, S) )`` -- property 1 of a
        proper placement.  ``+inf`` when every node has an infinite
        storage radius term.
    ``separation``
        ``min_{u != v in S} ( d(u, v) - 2 k2 * max(rw(u), rw(v)) )`` --
        property 2.  ``+inf`` for single-copy placements.
    """
    nodes = instance.validate_copies(copies)
    metric = instance.metric
    rw, rs, _ = radii_for_object(
        metric, instance.storage_costs, instance.read_freq[obj], instance.write_freq[obj]
    )
    dts = metric.dist_to_set(nodes)
    bound = k1 * np.maximum(rw, rs)
    with np.errstate(invalid="ignore"):
        coverage = float(np.min(np.where(np.isinf(bound), np.inf, bound - dts)))

    separation = np.inf
    if len(nodes) >= 2:
        idx = np.asarray(nodes, dtype=int)
        pair = np.asarray(metric.pairwise(idx))
        rwn = rw[idx]
        margin = pair - 2.0 * k2 * np.maximum.outer(rwn, rwn)
        iu = np.triu_indices(idx.size, k=1)
        separation = float(margin[iu].min())
    return {"coverage": coverage, "separation": float(separation)}
