"""The read-only tree algorithm, implemented literally (Section 3.1).

:mod:`repro.core.tree_dp` implements the general (read + write) DP using
a lower-envelope abstraction and covers the read-only case as its
``fw = 0`` specialization.  This module is an *independent second
implementation* that follows the paper's Section 3.1 text line by line --
explicit import/export **tuple sequences** with optimality intervals,
Claim 15's linear merge for imports and Claim 16's shift/intersect/
crossover construction for exports:

* an **import tuple** ``(C_P, d_P, payload)`` describes an optimal
  placement in which the copy nearest to the subtree root sits at
  distance ``d_P``; sequences are sorted by ``d_P``;
* an **export tuple** ``(C_P, |R_P|, [lo, hi), payload)`` describes the
  optimal export placement for outside-copy distances ``D`` in its
  optimality interval; sequences partition ``[0, inf)``;
* a leaf has one import tuple ``(cs(v), 0)`` and the two export tuples
  of the paper (no copy while ``D < cs/fr``, a copy afterwards);
* an inner node builds imports from (copy at ``v``) + (each child import
  tuple paired with the other child's export queried at the implied
  distance, walked with a moving pointer), and exports by shifting both
  children's interval sequences by the edge weights, intersecting them
  in one linear walk, and finally truncating against ``E^infinity =
  I^0`` at the cost crossover.

Having two structurally different implementations agree with each other
(and with brute force / an exact UFL MILP) on thousands of random trees
is the strongest correctness evidence this repository offers for
Theorem 13.  Only binary trees with 0/1/2 children are handled here --
use :func:`repro.core.tree_binarize.binarize_tree` first, exactly as the
paper prescribes.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any

import networkx as nx
import numpy as np

from .placement import Placement
from .tree_binarize import BinaryTreeInstance, binarize_tree

__all__ = [
    "optimal_tree_object_placement_readonly",
    "optimal_tree_placement_readonly",
]


@dataclass(frozen=True)
class _Imp:
    """Import tuple: (cost, copy distance, reconstruction payload)."""

    cost: float
    dist: float
    payload: Any


@dataclass(frozen=True)
class _Exp:
    """Export tuple: (cost, outgoing requests, [lo, hi), payload)."""

    cost: float
    nout: float
    lo: float
    hi: float
    payload: Any

    def value(self, d: float) -> float:
        return self.cost + self.nout * d


def _query_export(seq: list[_Exp], d: float) -> _Exp:
    """The export tuple optimal at distance ``d`` (sequence partitions
    [0, inf) by construction)."""
    lows = [t.lo for t in seq]
    i = bisect_right(lows, d) - 1
    return seq[max(i, 0)]


def _shift_exports(seq: list[_Exp], w: float, extra: str) -> list[_Exp]:
    """Shift a child's export sequence to the parent's distance variable:
    ``D_child = D + w`` means cost += nout * w and intervals drop by w."""
    out = []
    for t in seq:
        lo, hi = t.lo - w, t.hi - w
        if hi <= 0:
            continue
        out.append(_Exp(t.cost + t.nout * w, t.nout, max(lo, 0.0), hi, (extra, t)))
    return out


def _dedupe_imports(tuples: list[_Imp]) -> list[_Imp]:
    """Sort by copy distance, keep the cheapest tuple per distance (the
    paper keeps one optimal placement per distinct ``d_P``)."""
    tuples.sort(key=lambda t: (t.dist, t.cost))
    out: list[_Imp] = []
    for t in tuples:
        if not math.isfinite(t.cost):
            continue
        if out and abs(out[-1].dist - t.dist) <= 1e-15:
            continue
        out.append(t)
    return out


def optimal_tree_object_placement_readonly(
    bt: BinaryTreeInstance,
) -> tuple[tuple[int, ...], float]:
    """Run the Section 3.1 algorithm on a binarized read-only instance.

    Returns ``(copies, cost)`` with copies as original node ids.  Raises
    if any node carries writes -- this module is the read-only algorithm;
    the general case lives in :mod:`repro.core.tree_dp`.
    """
    if bt.total_writes() != 0:
        raise ValueError("read-only algorithm: instance has writes")

    imports: dict[int, list[_Imp]] = {}
    exports: dict[int, list[_Exp]] = {}

    for v in bt.postorder:
        node = bt.nodes[v]
        kids = node.children

        if not kids:  # ---------------------------------------- leaf
            imp = (
                [_Imp(node.cs, 0.0, ("copy", node.original, ()))]
                if math.isfinite(node.cs)
                else []
            )
            exp: list[_Exp] = []
            if node.fr > 0 and math.isfinite(node.cs):
                threshold = node.cs / node.fr
                exp.append(_Exp(0.0, node.fr, 0.0, threshold, ("nocopy",)))
                exp.append(
                    _Exp(node.cs, 0.0, threshold, math.inf, ("copy", node.original, ()))
                )
            elif node.fr > 0:  # cannot store here: always export
                exp.append(_Exp(0.0, node.fr, 0.0, math.inf, ("nocopy",)))
            else:  # no demand: never store at a leaf
                exp.append(_Exp(0.0, 0.0, 0.0, math.inf, ("nocopy",)))
            imports[v] = imp
            exports[v] = exp
            continue

        # ------------------------------------------- inner node imports
        imp_tuples: list[_Imp] = []
        # copy on v itself: children export towards v at distance w_i
        if math.isfinite(node.cs):
            cost = node.cs
            chosen = []
            for c, w in kids:
                t = _query_export(exports[c], w)
                cost += t.value(w)
                chosen.append(("exp", t))
            imp_tuples.append(_Imp(cost, 0.0, ("copy", node.original, tuple(chosen))))

        # nearest copy inside child a; the other child exports to it.
        for a in range(len(kids)):
            ca, wa = kids[a]
            other = kids[1 - a] if len(kids) == 2 else None
            # Claim 15's moving pointer: child-a imports are distance
            # sorted, so the other child's export queries are monotone.
            ptr = 0
            oseq = exports[other[0]] if other is not None else None
            for t in imports[ca]:
                d = wa + t.dist
                cost = t.cost + node.fr * d
                opay: Any = None
                if other is not None:
                    co, wo = other
                    d2 = wo + d
                    while ptr + 1 < len(oseq) and oseq[ptr + 1].lo <= d2:
                        ptr += 1
                    ot = oseq[ptr]
                    cost += ot.value(d2)
                    opay = ("exp", ot)
                imp_tuples.append(_Imp(cost, d, ("imp", t.payload, opay)))
        imp_tuples = _dedupe_imports(imp_tuples)

        # ------------------------------------------- inner node exports
        if len(kids) == 1:
            c, w = kids[0]
            combined = [
                _Exp(t.cost, t.nout + node.fr, t.lo, t.hi, ("exp1", t.payload))
                for t in _shift_exports(exports[c], w, "s")
            ]
        else:
            (c1, w1), (c2, w2) = kids
            s1 = _shift_exports(exports[c1], w1, "s1")
            s2 = _shift_exports(exports[c2], w2, "s2")
            combined = []
            i = j = 0
            while i < len(s1) and j < len(s2):
                a, b = s1[i], s2[j]
                lo = max(a.lo, b.lo)
                hi = min(a.hi, b.hi)
                if hi > lo:
                    combined.append(
                        _Exp(
                            a.cost + b.cost,
                            a.nout + b.nout + node.fr,
                            lo,
                            hi,
                            ("exp2", a.payload, b.payload),
                        )
                    )
                if a.hi <= b.hi:
                    i += 1
                else:
                    j += 1

        # Claim 16 finale: truncate against the eventually-optimal flat
        # placement.  The paper takes E^infinity = I^0 (all requests served
        # internally); with zero-demand subtrees a *no-copy* combined tuple
        # can also be flat (nout = 0) and cheaper than any import -- a
        # corner the paper's prose skips -- so the terminal is the cheaper
        # of the two (a flat tuple is a valid placement for every D).
        terminal_cost = math.inf
        terminal_payload: Any = None
        if imp_tuples:
            best_imp = min(imp_tuples, key=lambda t: t.cost)
            terminal_cost = best_imp.cost
            terminal_payload = ("imp_ref", best_imp.payload)
        for t in combined:
            if t.nout == 0 and t.cost < terminal_cost:
                terminal_cost = t.cost
                terminal_payload = t.payload
        if math.isfinite(terminal_cost):
            final: list[_Exp] = []
            crossover = 0.0
            for t in combined:
                if t.nout <= 0 or t.value(t.lo) >= terminal_cost - 1e-12:
                    # never strictly better than the flat terminal
                    crossover = t.lo
                    break
                if t.value(t.hi) > terminal_cost:
                    d_cross = (terminal_cost - t.cost) / t.nout
                    if d_cross < t.hi:
                        final.append(_Exp(t.cost, t.nout, t.lo, d_cross, t.payload))
                        crossover = d_cross
                        break
                final.append(t)
                crossover = t.hi
            final.append(
                _Exp(terminal_cost, 0.0, crossover, math.inf, terminal_payload)
            )
            combined = final
        imports[v] = imp_tuples
        exports[v] = combined

    root_imps = imports[bt.root]
    if not root_imps:
        raise RuntimeError("no feasible placement: every node has infinite storage cost")
    best = min(root_imps, key=lambda t: t.cost)

    copies: set[int] = set()
    stack: list[Any] = [best.payload]
    while stack:
        p = stack.pop()
        if p is None:
            continue
        tag = p[0]
        if tag == "copy":
            copies.add(p[1])
            stack.extend(p[2])
        elif tag == "imp":
            stack.append(p[1])
            stack.append(p[2])
        elif tag == "exp":
            stack.append(p[1].payload)
        elif tag in ("s", "s1", "s2"):
            stack.append(p[1].payload)
        elif tag == "exp1":
            stack.append(p[1])
        elif tag == "exp2":
            stack.append(p[1])
            stack.append(p[2])
        elif tag == "imp_ref":
            stack.append(p[1])
        elif tag == "nocopy":
            pass
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown payload tag {tag!r}")
    return tuple(sorted(copies)), float(best.cost)


def optimal_tree_placement_readonly(
    tree: nx.Graph,
    storage_costs,
    read_freq,
    *,
    root: int = 0,
    weight: str = "weight",
) -> tuple[Placement, float]:
    """Optimal read-only placement on a tree via the Section 3.1 tuples."""
    cs = np.asarray(storage_costs, dtype=float)
    fr = np.atleast_2d(np.asarray(read_freq, dtype=float))
    zeros = np.zeros_like(fr[0])
    sets: list[tuple[int, ...]] = []
    total = 0.0
    for obj in range(fr.shape[0]):
        bt = binarize_tree(tree, cs, fr[obj], zeros, root=root, weight=weight)
        copies, cost = optimal_tree_object_placement_readonly(bt)
        sets.append(copies)
        total += cost
    return Placement(tuple(sets)), total
