"""Problem instances for the static data management problem.

An instance (Section 1.1 of the paper) consists of

* a metric ``ct`` over nodes -- here a :class:`~repro.graphs.metric.Metric`
  (the shortest-path closure of the network's transmission prices),
* per-node storage prices ``cs : V -> R+_0``,
* a set ``X`` of shared objects, and
* read/write request frequencies ``fr, fw : V x X -> N``.

Frequencies are stored as float arrays but the model semantics treat them
as request *counts*; the radii machinery of Section 2.1 (``R^z_v``, the
``z`` closest requests) interprets them as multiset multiplicities and
supports fractional weights transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..graphs.backend import DistanceBackend, lazy_metric_from_graph
from ..graphs.metric import Metric, metric_from_graph

__all__ = ["DataManagementInstance"]


@dataclass(frozen=True)
class DataManagementInstance:
    """A static data management problem over ``n`` nodes and ``m`` objects.

    Attributes
    ----------
    metric:
        Transmission-price metric ``ct`` (closure of the network) -- any
        :class:`~repro.graphs.backend.DistanceBackend`: the dense
        :class:`~repro.graphs.metric.Metric` or the scalable
        :class:`~repro.graphs.backend.LazyMetric`.
    storage_costs:
        Array of shape ``(n,)``: ``cs(v)`` per node.  The model is uniform
        in object size, so storage prices do not depend on the object
        (Section 1.1); the non-uniform extension simply uses one instance
        per object.
    read_freq / write_freq:
        Arrays of shape ``(m, n)``: ``fr(v, x)`` and ``fw(v, x)``.
    object_names:
        Optional labels for the ``m`` objects (defaults to ``x0, x1, ...``).
    object_sizes:
        Optional per-object sizes (defaults to all 1).  The paper's
        non-uniform model: ``cs``/``ct`` are fees *per byte*, so an object
        of size ``s`` multiplies every cost term it generates by ``s``.
        Since the scaling is uniform across storage, read and update cost,
        the optimal copy set of each object is invariant under its size --
        "all our results hold also in a non-uniform model" (Section 1.1) --
        and only the bill changes; cost accounting applies the factor.
    """

    metric: DistanceBackend
    storage_costs: np.ndarray
    read_freq: np.ndarray
    write_freq: np.ndarray
    object_names: tuple[str, ...] = field(default=())
    object_sizes: np.ndarray | None = field(default=None)

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if isinstance(self.metric, tuple):
            raise TypeError(
                "metric is a tuple -- metric_from_graph()/"
                "lazy_metric_from_graph() return (metric, index, nodes); "
                "pass the metric element, or build one directly with "
                "Metric.from_graph()/LazyMetric.from_graph()"
            )
        cs = np.asarray(self.storage_costs, dtype=float)
        fr = np.atleast_2d(np.asarray(self.read_freq, dtype=float))
        fw = np.atleast_2d(np.asarray(self.write_freq, dtype=float))
        object.__setattr__(self, "storage_costs", cs)
        object.__setattr__(self, "read_freq", fr)
        object.__setattr__(self, "write_freq", fw)

        n = self.metric.n
        if cs.shape != (n,):
            raise ValueError(f"storage_costs must have shape ({n},), got {cs.shape}")
        if fr.shape != fw.shape:
            raise ValueError("read_freq and write_freq must have equal shapes")
        if fr.shape[1] != n:
            raise ValueError(f"frequency arrays must have {n} columns, got {fr.shape[1]}")
        if np.any(cs < 0) or np.any(fr < 0) or np.any(fw < 0):
            raise ValueError("storage costs and frequencies must be non-negative")

        if not self.object_names:
            object.__setattr__(
                self, "object_names", tuple(f"x{i}" for i in range(fr.shape[0]))
            )
        elif len(self.object_names) != fr.shape[0]:
            raise ValueError("object_names length must match the number of objects")

        if self.object_sizes is None:
            object.__setattr__(self, "object_sizes", np.ones(fr.shape[0]))
        else:
            sizes = np.asarray(self.object_sizes, dtype=float)
            if sizes.shape != (fr.shape[0],):
                raise ValueError(
                    f"object_sizes must have shape ({fr.shape[0]},), got {sizes.shape}"
                )
            if np.any(sizes <= 0):
                raise ValueError("object sizes must be positive")
            object.__setattr__(self, "object_sizes", sizes)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        storage_costs,
        read_freq,
        write_freq,
        *,
        weight: str = "weight",
        object_names: tuple[str, ...] = (),
        backend: str = "dense",
    ) -> "DataManagementInstance":
        """Build an instance from a weighted network.

        Node labels must already be ``0..n-1`` (the generator convention);
        use :func:`repro.graphs.metric.metric_from_graph` directly for
        arbitrary labels.  ``backend`` selects the distance oracle:
        ``"dense"`` (full closure) or ``"lazy"`` (on-demand Dijkstra, for
        large networks).
        """
        if backend == "dense":
            metric, index, _ = metric_from_graph(graph, weight=weight)
        elif backend == "lazy":
            metric, index, _ = lazy_metric_from_graph(graph, weight=weight)
        else:
            raise ValueError(f"unknown backend {backend!r}; use 'dense' or 'lazy'")
        if any(index[u] != u for u in graph.nodes()):
            raise ValueError(
                "graph nodes must be 0..n-1; relabel first or build the "
                "Metric explicitly"
            )
        return cls(metric, storage_costs, read_freq, write_freq, object_names)

    @classmethod
    def single_object(
        cls, metric: Metric, storage_costs, read_freq, write_freq
    ) -> "DataManagementInstance":
        """Convenience constructor for one shared object."""
        return cls(
            metric,
            storage_costs,
            np.atleast_2d(read_freq),
            np.atleast_2d(write_freq),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.metric.n

    @property
    def num_objects(self) -> int:
        return self.read_freq.shape[0]

    def demand(self, obj: int) -> np.ndarray:
        """Total request frequency ``fr + fw`` per node for one object.

        This is the demand vector of the *related facility location
        problem* (Section 2.2 phase 1), where writes are recast as reads.
        """
        return self.read_freq[obj] + self.write_freq[obj]

    # -- columnar (whole-catalog) accessors ----------------------------
    def demand_matrix(self) -> np.ndarray:
        """``fr + fw`` for every object at once: shape ``(m, n)``."""
        return self.read_freq + self.write_freq

    def total_requests_all(self) -> np.ndarray:
        """Per-object total request counts, shape ``(m,)``."""
        return self.read_freq.sum(axis=1) + self.write_freq.sum(axis=1)

    def total_writes_all(self) -> np.ndarray:
        """Per-object total write counts ``W``, shape ``(m,)``."""
        return self.write_freq.sum(axis=1)

    def demand_support(self, obj: int) -> np.ndarray:
        """Nodes with positive demand for one object (sorted indices)."""
        return np.flatnonzero(self.demand(obj) > 0)

    def total_writes(self, obj: int) -> float:
        """``W = sum_v fw(v)`` -- the total write count for one object."""
        return float(self.write_freq[obj].sum())

    def total_reads(self, obj: int) -> float:
        return float(self.read_freq[obj].sum())

    def total_requests(self, obj: int) -> float:
        return self.total_reads(obj) + self.total_writes(obj)

    def object_size(self, obj: int) -> float:
        """Size of one object (fees are per byte; costs scale linearly)."""
        return float(self.object_sizes[obj])

    def is_read_only(self, obj: int | None = None) -> bool:
        """True if the object (or, with ``None``, every object) has no writes."""
        if obj is None:
            return bool(np.all(self.write_freq == 0))
        return bool(np.all(self.write_freq[obj] == 0))

    def validate_copies(self, copies) -> list[int]:
        """Normalize and validate a copy set: non-empty, unique, in range."""
        nodes = sorted(set(int(v) for v in copies))
        if not nodes:
            raise ValueError("a placement must store at least one copy")
        if nodes[0] < 0 or nodes[-1] >= self.num_nodes:
            raise ValueError("copy node index out of range")
        return nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataManagementInstance(n={self.num_nodes}, "
            f"objects={self.num_objects})"
        )
