"""Restricted placements and the Lemma 1 transformation.

Section 2 compares the algorithm against an *optimal restricted* placement
``OPT_W``, where

1. every write first messages the nearest copy ``s(r)`` and then updates
   all copies along one shared multicast tree ``T_x`` (our accounting uses
   the metric-closure MST, exactly as the algorithm itself does), and
2. every copy serves at least ``W`` requests (``W`` = total writes).

Lemma 1 proves ``C^{OPT_W} <= 4 * C^{OPT}`` via a two-step constructive
transformation, which this module implements:

* **Claim 2 step** -- re-route every update set through (path to nearest
  copy) + (copy MST); in cost terms this is just switching a placement's
  accounting to the ``"mst"`` policy, at most doubling write cost.
* **Deletion step** -- while some copy serves fewer than ``W`` requests,
  delete the under-used copy with maximum *tree distance* from the MST
  root (MST built once, on the initial copy set) and reassign its
  requests to their now-nearest copies.

Experiment E3 measures the resulting empirical gap against the true
(Steiner-policy) optimum and checks the factor-4 guarantee end to end.
"""

from __future__ import annotations

import numpy as np

from ..graphs.mst import tree_distances_from_root
from .instance import DataManagementInstance

__all__ = ["requests_served_per_copy", "is_restricted", "restrict_placement"]


def requests_served_per_copy(
    instance: DataManagementInstance, obj: int, copies
) -> dict[int, float]:
    """Request mass (reads + writes) served by each copy under
    nearest-copy assignment with smallest-index tie-breaking."""
    nodes = instance.validate_copies(copies)
    nearest, _ = instance.metric.nearest_in_set(nodes)
    demand = instance.demand(obj)
    served = {v: 0.0 for v in nodes}
    for v in range(instance.num_nodes):
        served[int(nearest[v])] += float(demand[v])
    return served


def is_restricted(instance: DataManagementInstance, obj: int, copies) -> bool:
    """Does every copy serve at least ``W`` requests? (Constraint 2 of a
    restricted placement; constraint 1 is an accounting convention.)"""
    w_total = instance.total_writes(obj)
    served = requests_served_per_copy(instance, obj, copies)
    return all(count >= w_total - 1e-9 for count in served.values())


def restrict_placement(
    instance: DataManagementInstance, obj: int, copies
) -> tuple[int, ...]:
    """Apply the Lemma 1 deletion step to a copy set.

    Deletes under-used copies (serving ``< W`` requests) in order of
    decreasing tree distance from the MST root until every remaining copy
    serves at least ``W``.  Terminates because the total request count is
    at least ``W`` (the writes themselves), so the last copy never
    qualifies for deletion.

    Read-only objects (``W = 0``) are already restricted and returned
    unchanged.
    """
    nodes = list(instance.validate_copies(copies))
    w_total = instance.total_writes(obj)
    if w_total == 0 or len(nodes) == 1:
        return tuple(nodes)

    # Tree distances on the *initial* MST (the lemma's proof relies on
    # children being deleted before their MST fathers, which a fixed tree
    # guarantees for max-tree-distance-first deletion).
    tree_dist = tree_distances_from_root(instance.metric, nodes)

    alive = list(nodes)
    while len(alive) > 1:
        served = requests_served_per_copy(instance, obj, alive)
        under = [v for v in alive if served[v] < w_total - 1e-9]
        if not under:
            break
        # max tree distance; larger node index breaks ties deterministically
        victim = max(under, key=lambda v: (tree_dist[v], v))
        alive.remove(victim)
    return tuple(sorted(alive))
