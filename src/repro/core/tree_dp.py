"""Optimal static data management on trees (Section 3 of the paper).

Computes an *optimal* placement of one object on a tree in polynomial time
via the paper's bottom-up sufficient-set DP, generalized -- as in Section
3.2 -- to arbitrary read **and** write frequencies.  Combined with
:mod:`repro.core.tree_binarize` this realizes Theorem 13's
``O(|X| * |V| * diam(T) * log(deg(T)))`` algorithm (our envelopes add a
log factor from binary-searched queries; irrelevant in practice and
absorbed by the hull's automatic interval maintenance).

Cost model on trees.  A write issued at ``h`` costs the total weight of
the minimal subtree of ``T`` spanning ``{h} ∪ S`` (the tree Steiner tree);
reads pay the tree distance to the nearest copy; storage pays ``cs``.
Edge-wise, an edge ``e`` (separating the subtree below it from the rest)
is crossed by a write from ``h`` iff *both* sides of ``e`` contain a node
of ``{h} ∪ S`` -- the bookkeeping identity all recurrences below rest on:

* copies on both sides of ``e``           -> all ``W`` writes cross;
* copies only below ``e``                 -> the ``W - W_below(e)`` writes
  issued elsewhere cross;
* copies only above ``e``                 -> the ``W_below(e)`` writes
  issued below cross.

Sufficient families per subtree ``Tv`` (mirroring the paper's
``E^D, E_v, I^R, J^R``; each entry stores a reconstruction payload):

``EV``
    the placement with **no copy** in ``Tv``: a single (cost, outgoing
    reads) pair.
``IMP0`` (the paper's ``I^R``)
    import placements assuming **no copy outside** ``Tv``: a
    dominance-pruned list of (copy distance, cost) tuples, cost including
    ``cost^0_W`` write accounting.
``IMP1`` (the paper's ``J^R``)
    import placements assuming **at least one copy outside**: same shape,
    with ``cost^1_W`` accounting.
``EXP1`` (the paper's ``E^D`` family)
    copy-carrying export placements as a
    :class:`~repro.core.envelope.LowerEnvelope` over the outside-copy
    distance ``D``; its slope-0 line is the all-internal ``J^0``.

The recurrences and their write-accounting terms follow Section 3 of the
paper (see docs/ARCHITECTURE.md for the pipeline overview); each
candidate corresponds to an *achievable* placement
(pessimistic tuples are dominated, never selected below true optimum), and
every naturally-assigned optimal placement maps onto some candidate, so
the root minimum over ``IMP0`` is exactly the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import networkx as nx
import numpy as np

from .envelope import Line, LowerEnvelope
from .placement import Placement
from .tree_binarize import BinaryTreeInstance, binarize_tree

__all__ = ["TreeOptimum", "optimal_tree_object_placement", "optimal_tree_placement"]

_EV = ("ev",)


@dataclass(frozen=True)
class _ImpTuple:
    """An import placement: nearest-copy distance, cost, reconstruction."""

    dist: float
    cost: float
    payload: Any


@dataclass
class _SubtreeState:
    ev_cost: float
    ev_nout: float
    imp0: list[_ImpTuple]
    imp1: list[_ImpTuple]
    exp1: LowerEnvelope
    writes: float  # total writes issued within the subtree


@dataclass(frozen=True)
class TreeOptimum:
    """Result of the tree DP: copy set (original node ids) and its cost
    under the exact (tree-Steiner) update policy."""

    copies: tuple[int, ...]
    cost: float


def _prune(tuples: list[_ImpTuple]) -> list[_ImpTuple]:
    """Dominance pruning: sort by distance and keep strictly improving
    costs.  Keeps at most one tuple per distinct nearest-copy distance,
    bounding list sizes by the subtree size (Lemma 12's counting)."""
    tuples.sort(key=lambda t: (t.dist, t.cost))
    out: list[_ImpTuple] = []
    best = math.inf
    for t in tuples:
        if not math.isfinite(t.cost):
            continue
        if t.cost < best - 1e-15:
            out.append(t)
            best = t.cost
    return out


def _combo(pa: Any, pb: Any) -> tuple:
    return ("combo", pa, pb)


def optimal_tree_object_placement(bt: BinaryTreeInstance) -> TreeOptimum:
    """Run the DP on a binarized tree; returns the optimal copy set."""
    nodes = bt.nodes
    w_total = bt.total_writes()
    states: dict[int, _SubtreeState] = {}

    for v in bt.postorder:
        node = nodes[v]
        kids = node.children  # [(child_idx, edge_weight)], len 0..2

        # ---------------------------------------------------------- EV
        ev_cost = 0.0
        ev_nout = node.fr
        writes = node.fw
        for c, w in kids:
            st = states[c]
            ev_cost += st.ev_cost + st.ev_nout * w + st.writes * w
            ev_nout += st.ev_nout
            writes += st.writes

        # ------------------------------------------- child choice helpers
        def ev_choice(c: int, w: float, dist: float) -> tuple[float, Any]:
            """Child keeps no copy; its reads travel ``dist`` from the
            child root to the serving copy; its writes cross the edge."""
            st = states[c]
            return st.ev_cost + st.ev_nout * dist + st.writes * w, _EV

        def copy_choice(c: int, w: float, dist: float) -> tuple[float, Any]:
            """Child keeps >= 1 copy (so every write crosses the edge);
            unserved child reads travel ``dist`` beyond the child root."""
            st = states[c]
            val, line = st.exp1.query(dist)
            if line is None:
                return math.inf, None
            return val + w_total * w, line.payload

        def best_choice(c: int, w: float, dist: float) -> tuple[float, Any]:
            a = ev_choice(c, w, dist)
            b = copy_choice(c, w, dist)
            return a if a[0] <= b[0] else b

        # -------------------------------------------------- import lists
        imp0: list[_ImpTuple] = []
        imp1: list[_ImpTuple] = []

        # copy at v itself (both families; identical accounting because no
        # edge of Tv lies above all copies once v holds one)
        if math.isfinite(node.cs):
            cost = node.cs
            chosen = []
            for c, w in kids:
                val, pay = best_choice(c, w, w)
                cost += val
                chosen.append(pay)
            if math.isfinite(cost):
                t = _ImpTuple(0.0, cost, ("copy_at", node.original, tuple(chosen)))
                imp0.append(t)
                imp1.append(t)

        # nearest copy inside a child's subtree
        for a in range(len(kids)):
            ca, wa = kids[a]
            sta = states[ca]
            other = kids[1 - a] if len(kids) == 2 else None

            # IMP1 candidates: copy outside Tv exists; child a supplies the
            # nearest copy via its own J family; the other child is free.
            for t in sta.imp1:
                d = wa + t.dist
                cost = t.cost + w_total * wa + node.fr * d
                opay: Any = None
                if other is not None:
                    co, wo = other
                    val, opay = best_choice(co, wo, wo + d)
                    cost += val
                if math.isfinite(cost):
                    imp1.append(_ImpTuple(d, cost, ("imp", t.payload, opay)))

            # IMP0-A: *all* copies of the whole tree live in T_a.
            for t in sta.imp0:
                d = wa + t.dist
                cost = t.cost + (w_total - sta.writes) * wa + node.fr * d
                opay = None
                if other is not None:
                    co, wo = other
                    val, opay = ev_choice(co, wo, wo + d)
                    cost += val
                if math.isfinite(cost):
                    imp0.append(_ImpTuple(d, cost, ("imp", t.payload, opay)))

            # IMP0-B: copies in both children (child a nearest).
            if other is not None:
                co, wo = other
                for t in sta.imp1:
                    d = wa + t.dist
                    val, opay = copy_choice(co, wo, wo + d)
                    cost = t.cost + w_total * wa + node.fr * d + val + 0.0
                    if math.isfinite(cost):
                        imp0.append(_ImpTuple(d, cost, ("imp", t.payload, opay)))

        imp0 = _prune(imp0)
        imp1 = _prune(imp1)

        # ------------------------------------------------ export envelope
        def child_copy_env(c: int, w: float) -> LowerEnvelope:
            return states[c].exp1.shifted(w, extra_intercept=w_total * w)

        def child_ev_env(c: int, w: float) -> LowerEnvelope:
            st = states[c]
            return LowerEnvelope.from_lines(
                [Line(st.ev_cost + st.ev_nout * w + st.writes * w, st.ev_nout, _EV)]
            )

        if not kids:
            combos = LowerEnvelope.empty()
        elif len(kids) == 1:
            c, w = kids[0]
            combos = child_copy_env(c, w)
        else:
            (c1, w1), (c2, w2) = kids
            copy1, copy2 = child_copy_env(c1, w1), child_copy_env(c2, w2)
            ev1, ev2 = child_ev_env(c1, w1), child_ev_env(c2, w2)
            combos = (
                copy1.sum(copy2, _combo)
                .minimum(copy1.sum(ev2, _combo))
                .minimum(ev1.sum(copy2, _combo))
            )
        combos = combos.with_added_slope(node.fr)

        if imp1:
            best = min(imp1, key=lambda t: t.cost)
            j0 = LowerEnvelope.from_lines([Line(best.cost, 0.0, best.payload)])
            exp1 = combos.minimum(j0)
        else:
            exp1 = combos

        states[v] = _SubtreeState(ev_cost, ev_nout, imp0, imp1, exp1, writes)

    root_state = states[bt.root]
    if not root_state.imp0:
        raise RuntimeError("no feasible placement: every node has infinite storage cost")
    best = min(root_state.imp0, key=lambda t: t.cost)

    copies: set[int] = set()
    stack: list[Any] = [best.payload]
    while stack:
        p = stack.pop()
        if p is None:
            continue
        tag = p[0]
        if tag == "copy_at":
            copies.add(p[1])
            stack.extend(p[2])
        elif tag == "imp":
            stack.append(p[1])
            stack.append(p[2])
        elif tag == "combo":
            stack.append(p[1])
            stack.append(p[2])
        elif tag == "ev":
            pass
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown payload tag {tag!r}")

    return TreeOptimum(tuple(sorted(copies)), float(best.cost))


def optimal_tree_placement(
    tree: nx.Graph,
    storage_costs,
    read_freq,
    write_freq,
    *,
    root: int = 0,
    weight: str = "weight",
) -> tuple[Placement, float]:
    """Optimal placement of all objects on a tree (Theorem 13).

    Parameters
    ----------
    tree:
        Weighted tree with nodes ``0..n-1``.
    storage_costs:
        Shape ``(n,)``.
    read_freq / write_freq:
        Shape ``(m, n)``: per-object frequencies.

    Returns ``(placement, total_cost)``; the cost is exact under the
    tree-Steiner update policy (each write pays the minimal subtree
    spanning writer + copies).
    """
    cs = np.asarray(storage_costs, dtype=float)
    fr = np.atleast_2d(np.asarray(read_freq, dtype=float))
    fw = np.atleast_2d(np.asarray(write_freq, dtype=float))
    if fr.shape != fw.shape:
        raise ValueError("read_freq and write_freq must have equal shapes")

    sets: list[tuple[int, ...]] = []
    total = 0.0
    for obj in range(fr.shape[0]):
        bt = binarize_tree(tree, cs, fr[obj], fw[obj], root=root, weight=weight)
        result = optimal_tree_object_placement(bt)
        sets.append(result.copies)
        total += result.cost
    return Placement(tuple(sets)), total
